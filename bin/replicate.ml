(* The command-line front end: runs any experiment or scenario of the
   reproduction.  `replicate --help` lists the commands. *)

module Sim = Repro_sim
open Cmdliner

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let duration_t =
  let doc = "Measurement window in virtual seconds." in
  Arg.(value & opt float 8.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

let servers_t =
  let doc = "Number of replicas (the paper used 14)." in
  Arg.(value & opt int 14 & info [ "servers" ] ~docv:"N" ~doc)

let clients_t =
  let doc = "Comma-separated client counts to sweep." in
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 6; 8; 10; 12; 14 ]
    & info [ "clients" ] ~docv:"LIST" ~doc)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let fig5a duration servers clients =
  ignore
    (Repro_harness.Figures.figure_5a ~clients ~servers
       ~duration:(Sim.Time.of_sec duration) ppf ())

let fig5a_cmd =
  Cmd.v
    (Cmd.info "fig5a"
       ~doc:"Figure 5(a): engine vs COReL vs 2PC throughput sweep.")
    Term.(const fig5a $ duration_t $ servers_t $ clients_t)

let fig5b duration servers clients =
  ignore
    (Repro_harness.Figures.figure_5b ~clients ~servers
       ~duration:(Sim.Time.of_sec duration) ppf ())

let fig5b_cmd =
  Cmd.v
    (Cmd.info "fig5b"
       ~doc:"Figure 5(b): engine throughput, forced vs delayed disk writes.")
    Term.(const fig5b $ duration_t $ servers_t $ clients_t)

let latency () = ignore (Repro_harness.Figures.latency_table ppf ())

let latency_cmd =
  Cmd.v
    (Cmd.info "latency"
       ~doc:"The §7 latency experiment: mean action latency per protocol.")
    Term.(const latency $ const ())

let ablation () =
  ignore (Repro_harness.Figures.ablation_ack_batching ppf ());
  ignore (Repro_harness.Figures.ablation_query_path ppf ());
  ignore (Repro_harness.Figures.ablation_quorum_availability ppf ())

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Ablation A1: GCS acknowledgement batching sweep.")
    Term.(const ablation $ const ())

let wan () = ignore (Repro_harness.Figures.wan_prediction ppf ())

let wan_cmd =
  Cmd.v
    (Cmd.info "wan"
       ~doc:"The §7 wide-area prediction: protocol latencies, LAN vs WAN.")
    Term.(const wan $ const ())

let partition () = ignore (Repro_harness.Figures.partition_timeline ppf ())

let partition_cmd =
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Ablation A2: throughput timeline across a partition and merge.")
    Term.(const partition $ const ())

let scenario seed =
  (* A guided fault-schedule demo with the consistency checker on. *)
  let open Repro_harness in
  let w = World.make ~seed ~n:5 () in
  World.run w ~ms:800.;
  Format.fprintf ppf "5 replicas up; primary installed.@.";
  for i = 1 to 20 do
    World.submit_update w ~node:(i mod 5) ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:500.;
  Consistency.assert_ok (World.replicas w);
  Format.fprintf ppf "20 actions committed; safety checks pass.@.";
  Repro_net.Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  World.run w ~ms:1500.;
  for i = 21 to 30 do
    World.submit_update w ~node:(i mod 5) ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:800.;
  Consistency.assert_ok (World.replicas w);
  Format.fprintf ppf "partitioned {0,1,2}/{3,4}: majority commits, minority buffers red.@.";
  Repro_core.Replica.crash (World.replica w 1);
  World.run w ~ms:800.;
  Consistency.assert_ok (World.replicas w);
  Format.fprintf ppf "replica 1 crashed; primary continues with quorum.@.";
  World.heal_and_settle w;
  Consistency.assert_ok ~converged:true (World.replicas w);
  Format.fprintf ppf
    "healed and recovered: all replicas converged to identical databases.@.";
  Format.fprintf ppf "scenario OK.@."

let fuzz seed rounds =
  (* Random fault schedules with the consistency checker after each. *)
  let open Repro_harness in
  let rng = Repro_sim.Rng.of_int seed in
  let w = World.make ~seed ~n:5 () in
  World.run w ~ms:1000.;
  let key = ref 0 in
  for round = 1 to rounds do
    (match Repro_sim.Rng.int rng 4 with
    | 0 ->
      let pivot = Repro_sim.Rng.int rng 4 + 1 in
      Repro_net.Topology.partition (World.topology w)
        [ List.init pivot Fun.id; List.init (5 - pivot) (fun i -> pivot + i) ]
    | 1 -> Repro_net.Topology.merge_all (World.topology w)
    | 2 -> Repro_core.Replica.crash (World.replica w (Repro_sim.Rng.int rng 5))
    | _ ->
      Repro_core.Replica.recover (World.replica w (Repro_sim.Rng.int rng 5)));
    for _ = 1 to 5 do
      incr key;
      World.submit_update w ~node:(!key mod 5) ~key:(Printf.sprintf "f%d" !key)
        !key
    done;
    World.run w ~ms:700.;
    Consistency.assert_ok (World.replicas w);
    Format.fprintf ppf "round %2d: safety OK@." round
  done;
  World.heal_and_settle ~ms:8000. w;
  Consistency.assert_ok ~converged:true (World.replicas w);
  Format.fprintf ppf "healed: converged. fuzz OK (seed %d, %d rounds)@." seed
    rounds

let fuzz_cmd =
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let rounds_t =
    Arg.(value & opt int 20 & info [ "rounds" ] ~docv:"N" ~doc:"Fault rounds.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Random partition/crash/recover schedule with the consistency           checker after every step.")
    Term.(const fuzz $ seed_t $ rounds_t)

let nemesis_outcome_json seed (o : Repro_harness.Nemesis.outcome) =
  let open Repro_harness in
  let b = Buffer.create 512 in
  let field name v = Printf.bprintf b "  %S: %d,\n" name v in
  Buffer.add_string b "{\n";
  field "seed" seed;
  field "steps" o.Nemesis.o_steps;
  field "submitted" o.o_submitted;
  field "crashes" o.o_crashes;
  field "recoveries" o.o_recoveries;
  field "corruptions" o.o_corruptions;
  field "partitions" o.o_partitions;
  field "heals" o.o_heals;
  field "clean" o.o_clean;
  field "torn" o.o_torn;
  field "salvaged" o.o_salvaged;
  field "amnesia" o.o_amnesia;
  field "ready" o.o_ready;
  field "greens" o.o_greens;
  field "client_acked" o.o_client_acked;
  field "retries" o.o_retries;
  field "failovers" o.o_failovers;
  field "dupes_suppressed" o.o_dupes_suppressed;
  field "shed" o.o_shed;
  Printf.bprintf b "  %S: %b,\n" "converged" (Nemesis.converged o);
  Printf.bprintf b "  %S: [%s]\n" "violations"
    (String.concat ", " (List.map (Printf.sprintf "%S") o.o_violations));
  Buffer.add_string b "}";
  Buffer.contents b

let nemesis seed nodes ms settle expect json =
  let open Repro_harness in
  let config =
    {
      Nemesis.default_config with
      seed;
      nodes;
      active_ms = ms;
      settle_ms = settle;
    }
  in
  (* [--json] keeps stdout machine-parseable: the human narration moves
     to stderr so the document can be piped or archived as-is. *)
  let human = if json then Format.err_formatter else ppf in
  Format.fprintf human
    "nemesis: seed %d, %d nodes, %.0f ms active / %.0f ms settle@." seed nodes
    ms settle;
  let o = Nemesis.run ~config () in
  Format.fprintf human "%a@." Nemesis.pp_outcome o;
  if json then Format.fprintf ppf "%s@." (nemesis_outcome_json seed o);
  if expect = `Clean && not (Nemesis.converged o) then begin
    Format.fprintf human
      "FAILED expectation: convergence with zero checker violations@.";
    exit 1
  end

let nemesis_cmd =
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
  in
  let nodes_t =
    Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Replicas.")
  in
  let ms_t =
    Arg.(
      value & opt float 4_000.
      & info [ "ms" ] ~docv:"MS"
          ~doc:"Fault-injection phase duration in virtual milliseconds.")
  in
  let settle_t =
    Arg.(
      value & opt float 30_000.
      & info [ "settle-ms" ] ~docv:"MS"
          ~doc:"Budget for the final heal-and-settle phase.")
  in
  let expect_t =
    Arg.(
      value
      & opt (enum [ ("any", `Any); ("clean", `Clean) ]) `Any
      & info [ "expect" ] ~docv:"WHAT"
          ~doc:
            "With 'clean', exit non-zero unless every replica converged and \
             both checkers (repcheck monitor + consistency catalogue) are \
             silent.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Also print the outcome as a JSON object (machine-readable, for \
             sweeps).")
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "A seeded randomized fault campaign: crash/restart with storage \
          faults (torn tails, corruption, read errors), partitions and \
          heals under sustained load, then heal, recover and assert \
          convergence and a clean invariant-monitor sweep.")
    Term.(const nemesis $ seed_t $ nodes_t $ ms_t $ settle_t $ expect_t $ json_t)

let scale () = ignore (Repro_harness.Figures.ablation_scale ppf ())

let scale_cmd =
  Cmd.v
    (Cmd.info "scale" ~doc:"Ablation A4: engine scalability in replicas.")
    Term.(const scale $ const ())

let scenario_cmd =
  let seed_t =
    Arg.(value & opt int 5 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"A guided partition/crash/heal scenario with safety checks.")
    Term.(const scenario $ seed_t)

let all () =
  ignore (Repro_harness.Figures.figure_5a ppf ());
  ignore (Repro_harness.Figures.figure_5b ppf ());
  ignore (Repro_harness.Figures.latency_table ppf ());
  ignore (Repro_harness.Figures.wan_prediction ppf ());
  ignore (Repro_harness.Figures.ablation_ack_batching ppf ());
  ignore (Repro_harness.Figures.ablation_query_path ppf ());
  ignore (Repro_harness.Figures.partition_timeline ppf ())

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Every figure, table and ablation in sequence.")
    Term.(const all $ const ())

(* ------------------------------------------------------------------ *)
(* Model checking                                                      *)

let mc_policy mutate =
  if mutate then Repro_core.Quorum.Mutated_weak_majority
  else Repro_core.Quorum.Dynamic_linear

let mc_policy_name mutate = if mutate then "mutated-weak-majority" else "dynamic-linear"

let mcheck nodes depth faults submits mutate no_cache max_states expect
    script_out =
  let open Repro_mcheck in
  Format.fprintf ppf
    "mcheck: %d nodes, depth %d, %d faults, %d submissions, %s quorum@." nodes
    depth faults submits (mc_policy_name mutate);
  let outcome =
    Explore.run ~policy:(mc_policy mutate) ~use_cache:(not no_cache)
      ~max_states ~nodes ~depth ~faults ~submits ()
  in
  Format.fprintf ppf "%a@." Explore.pp_stats outcome.Explore.stats;
  if not outcome.Explore.complete then
    Format.fprintf ppf "WARNING: search stopped at --max-states; not exhaustive@.";
  (match outcome.Explore.found with
  | None ->
    Format.fprintf ppf "no violations within bounds (%s)@."
      (if outcome.Explore.complete then "exhaustive" else "truncated")
  | Some cx ->
    Format.fprintf ppf
      "VIOLATION (counterexample: %d transitions, minimized from %d):@."
      (List.length cx.Explore.cx_script)
      cx.Explore.cx_raw_len;
    List.iter
      (fun v ->
        Format.fprintf ppf "  %a@." Repro_check.Snapshot.pp_violation v)
      cx.Explore.cx_violations;
    let script =
      Printf.sprintf "# mcheck counterexample\n# nodes=%d policy=%s\n%s" nodes
        (mc_policy_name mutate)
        (Script.to_string cx.Explore.cx_script)
    in
    Format.fprintf ppf "%s" script;
    (match script_out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc script;
      close_out oc;
      Format.fprintf ppf "script written to %s (replay with mcheck-replay)@."
        file));
  let ok =
    match expect with
    | `Any -> true
    | `Clean -> outcome.Explore.found = None && outcome.Explore.complete
    | `Violation -> outcome.Explore.found <> None
  in
  if not ok then begin
    Format.fprintf ppf "FAILED expectation: %s@."
      (match expect with
      | `Clean -> "exhaustive exploration with zero violations"
      | `Violation -> "a violation within the bounds"
      | `Any -> assert false);
    exit 1
  end

let mcheck_cmd =
  let nodes_t =
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc:"Replicas.")
  in
  let depth_t =
    Arg.(
      value & opt int 12
      & info [ "depth" ] ~docv:"D" ~doc:"Delivery-transition budget.")
  in
  let faults_t =
    Arg.(
      value & opt int 2
      & info [ "faults" ] ~docv:"F"
          ~doc:"Fault budget (crashes, recoveries, partitions, merges).")
  in
  let submits_t =
    Arg.(
      value & opt int 0
      & info [ "submits" ] ~docv:"S" ~doc:"Client-submission budget.")
  in
  let mutate_t =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Run the seeded quorum mutation (majority weakened to >= half, \
             no tie-breaker): the checker must find it.")
  in
  let no_cache_t =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the state-fingerprint cache.")
  in
  let max_states_t =
    Arg.(
      value & opt int 5_000_000
      & info [ "max-states" ] ~docv:"N" ~doc:"Stop after expanding N states.")
  in
  let expect_t =
    Arg.(
      value
      & opt (enum [ ("any", `Any); ("clean", `Clean); ("violation", `Violation) ]) `Any
      & info [ "expect" ] ~docv:"WHAT"
          ~doc:
            "Exit non-zero unless the outcome matches: 'clean' (exhaustive, \
             zero violations) or 'violation' (a counterexample was found).")
  in
  let script_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "script-out" ] ~docv:"FILE"
          ~doc:"Write the minimized counterexample script to FILE.")
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Bounded model checking with dynamic partial-order reduction over \
          the replica state machine, against the repcheck invariant \
          catalogue and the abstract-specification refinement oracle.")
    Term.(
      const mcheck $ nodes_t $ depth_t $ faults_t $ submits_t $ mutate_t
      $ no_cache_t $ max_states_t $ expect_t $ script_out_t)

let mcheck_replay file nodes mutate =
  let open Repro_mcheck in
  let ic = open_in file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let script = Script.of_string text in
  Format.fprintf ppf "replaying %d transitions on %d nodes (%s quorum):@."
    (List.length script) nodes (mc_policy_name mutate);
  List.iter (fun tr -> Format.fprintf ppf "  %a@." Script.pp tr) script;
  match Explore.replay_violations ~policy:(mc_policy mutate) ~nodes script with
  | Some (prefix, violations) ->
    Format.fprintf ppf "violation after %d transition(s):@."
      (List.length prefix);
    List.iter
      (fun v -> Format.fprintf ppf "  %a@." Repro_check.Snapshot.pp_violation v)
      violations
  | None ->
    Format.fprintf ppf "replay completed with no violations@.";
    exit 1

let mcheck_replay_cmd =
  let file_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE" ~doc:"Transition script to replay.")
  in
  let nodes_t =
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc:"Replicas.")
  in
  let mutate_t =
    Arg.(
      value & flag
      & info [ "mutate" ] ~doc:"Replay against the seeded quorum mutation.")
  in
  Cmd.v
    (Cmd.info "mcheck-replay"
       ~doc:
         "Deterministically replay a model-checker counterexample script; \
          exits non-zero if the violation does not reproduce.")
    Term.(const mcheck_replay $ file_t $ nodes_t $ mutate_t)

let spec () =
  (* The Figure 4 table as lib/check/spec.ml declares it — the same
     table the online checker enforces and the spec-drift analysis
     (dune build @analyze) diffs the engine against. *)
  Format.fprintf ppf "Figure 4 engine_state transitions (lib/check/spec.ml):@.";
  List.iter
    (fun (from_, target) ->
      Format.fprintf ppf "  %-16s -> %s@."
        (match from_ with
        | Some s -> Repro_check.Spec.state_name s
        | None -> "*")
        (Repro_check.Spec.state_name target))
    Repro_check.Spec.edges;
  Format.fprintf ppf "(%d edges over %d states; * = any state)@."
    (List.length Repro_check.Spec.edges)
    (List.length Repro_check.Spec.all_states)

let spec_cmd =
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Print the Figure 4 state-machine specification the checker and \
          the static spec-drift analysis enforce.")
    Term.(const spec $ const ())

let main_cmd =
  let doc =
    "Reproduction of 'From Total Order to Database Replication' (Amir & \
     Tutu, ICDCS 2002)."
  in
  Cmd.group (Cmd.info "replicate" ~version:"1.0.0" ~doc)
    [
      fig5a_cmd;
      fig5b_cmd;
      latency_cmd;
      wan_cmd;
      ablation_cmd;
      partition_cmd;
      scenario_cmd;
      fuzz_cmd;
      nemesis_cmd;
      scale_cmd;
      all_cmd;
      spec_cmd;
      mcheck_cmd;
      mcheck_replay_cmd;
    ]

(* REPRO_LOG=debug|info enables engine/replica tracing on stderr. *)
let setup_logs () =
  match Sys.getenv_opt "REPRO_LOG" with
  | None -> ()
  | Some level ->
    Logs.set_level
      (match level with
      | "debug" -> Some Logs.Debug
      | "info" -> Some Logs.Info
      | _ -> Some Logs.Warning);
    Logs.set_reporter
      {
        Logs.report =
          (fun src lvl ~over k msgf ->
            msgf (fun ?header:_ ?tags:_ fmt ->
                Format.kfprintf
                  (fun _ ->
                    over ();
                    k ())
                  Format.err_formatter
                  ("[%s %s] " ^^ fmt ^^ "@.")
                  (Logs.level_to_string (Some lvl))
                  (Logs.Src.name src)));
      }

let () =
  setup_logs ();
  exit (Cmd.eval main_cmd)
