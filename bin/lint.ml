(* The static-analysis driver (see lib/analysis for the framework).

   Loads the .cmt typed ASTs dune produced for the units under the
   given roots (default: lib) and runs, on one shared traversal
   infrastructure:

   - the pattern-level rule catalogue (Repro_analysis.Rules);
   - interprocedural effect inference (Repro_analysis.Effects) feeding
     the write-ahead ordering analysis (Repro_analysis.Writeahead):
     every GCS send in the core must be dominated by a stable-storage
     force (paper §4, the vulnerable-record discipline);
   - spec drift (Repro_analysis.Specdrift): the engine_state transition
     graph statically extracted from the core, diffed against the
     Figure 4 table exported by Repro_check.Spec — transitions in code
     but not in spec (or vice versa) fail the build.

   Output is deterministic: findings are deduplicated and totally
   ordered, and --report writes a SARIF-lite JSON that is byte-
   identical across runs over the same tree.  --baseline grandfathers
   known findings: the exit code then reflects *new* findings only.

   Runs from the build context root (dune executes it in
   _build/default), so the .cmt files and the copied sources are
   reachable by the relative paths recorded in the cmts.

   NOTE: this executable links both compiler-libs and the project
   libraries; project modules are referenced fully qualified
   (Repro_check.Spec) — never [open]ed — because compiler-libs has
   top-level modules named Types, Path and Location too. *)

module A = Repro_analysis

type drift_mode = Drift_full | Drift_code_only | Drift_off

type config = {
  mutable roots : string list;
  mutable core : string list;
  mutable entry : string list;  (* ambient-state engine entry prefixes *)
  mutable race_roots : string list;  (* declared parallel roots *)
  mutable passes : string list;  (* [] = every pass *)
  mutable manifest : string option;  (* procedure-manifest output path *)
  mutable report : string option;
  mutable baseline : string option;
  mutable drift : drift_mode;
  mutable exit_zero : bool;
  mutable check_baseline : (string * string) option; (* baseline, report *)
}

let usage () =
  prerr_endline
    "usage: lint.exe [--core PREFIX]... [--entry PREFIX]...\n\
    \                [--globals] [--races] [--race-root NAME]...\n\
    \                [--cost] [--procedures] [--manifest FILE]\n\
    \                [--drift full|code-only|off]\n\
    \                [--report FILE] [--baseline FILE] [--exit-zero]\n\
    \                [--check-baseline BASELINE --against REPORT] [ROOT]...\n\
     By default every pass runs; --globals / --races / --procedures \n\
     restrict the run to the named passes.  --procedures writes the \n\
     key-space footprint manifest (procedure-manifest.json unless \n\
     --manifest names another file).";
  exit 2

let parse_args () =
  let cfg =
    {
      roots = [];
      core = [];
      entry = [];
      race_roots = [];
      passes = [];
      manifest = None;
      report = None;
      baseline = None;
      drift = Drift_full;
      exit_zero = false;
      check_baseline = None;
    }
  in
  let against = ref None and check = ref None in
  let rec go = function
    | [] -> ()
    | "--core" :: v :: rest ->
      cfg.core <- cfg.core @ [ v ];
      go rest
    | "--entry" :: v :: rest ->
      cfg.entry <- cfg.entry @ [ v ];
      go rest
    | "--race-root" :: v :: rest ->
      cfg.race_roots <- cfg.race_roots @ [ v ];
      go rest
    | "--globals" :: rest ->
      cfg.passes <- cfg.passes @ [ "globals" ];
      go rest
    | "--races" :: rest ->
      cfg.passes <- cfg.passes @ [ "races" ];
      go rest
    | "--cost" :: rest ->
      cfg.passes <- cfg.passes @ [ "cost" ];
      go rest
    | "--procedures" :: rest ->
      cfg.passes <- cfg.passes @ [ "procedures" ];
      if cfg.manifest = None then cfg.manifest <- Some "procedure-manifest.json";
      go rest
    | "--manifest" :: v :: rest ->
      cfg.manifest <- Some v;
      go rest
    | "--report" :: v :: rest ->
      cfg.report <- Some v;
      go rest
    | "--baseline" :: v :: rest ->
      cfg.baseline <- Some v;
      go rest
    | "--check-baseline" :: v :: rest ->
      check := Some v;
      go rest
    | "--against" :: v :: rest ->
      against := Some v;
      go rest
    | "--drift" :: v :: rest ->
      (cfg.drift <-
         (match v with
         | "full" -> Drift_full
         | "code-only" -> Drift_code_only
         | "off" -> Drift_off
         | _ -> usage ()));
      go rest
    | "--exit-zero" :: rest ->
      cfg.exit_zero <- true;
      go rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "lint: unknown option %s\n" arg;
      usage ()
    | root :: rest ->
      cfg.roots <- cfg.roots @ [ root ];
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (match (!check, !against) with
  | Some b, Some r -> cfg.check_baseline <- Some (b, r)
  | None, None -> ()
  | _ -> usage ());
  if cfg.roots = [] then cfg.roots <- [ "lib" ];
  if cfg.core = [] then cfg.core <- [ "lib/core/" ];
  if cfg.entry = [] then cfg.entry <- [ "lib/core/"; "lib/db/"; "lib/gcs/" ];
  cfg

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let load_report path =
  match A.Diag.parse_report (read_file path) with
  | findings -> findings
  | exception Sys_error msg ->
    Printf.eprintf "lint: cannot read %s: %s\n" path msg;
    exit 2
  | exception A.Diag.Parse_error msg ->
    Printf.eprintf "lint: cannot parse %s: %s\n" path msg;
    exit 2

(* --- spec drift wiring ----------------------------------------------- *)

let spec_loc = Location.in_file "lib/check/spec.ml"

let run_drift cfg (eff : A.Effects.t) sink =
  let state_name = Repro_check.Spec.state_name in
  let all_states = List.map state_name Repro_check.Spec.all_states in
  let code = A.Specdrift.extract eff ~core:cfg.core ~all_states in
  let code_pairs = List.map fst code in
  let spec_pairs =
    A.Specdrift.expand_spec ~all_states
      (List.map
         (fun (from_, target) ->
           (Option.map state_name from_, state_name target))
         Repro_check.Spec.edges)
  in
  let code_only, spec_only = A.Specdrift.diff ~spec_pairs ~code_pairs in
  List.iter
    (fun (from_, target) ->
      let loc =
        match List.assoc_opt (from_, target) code with
        | Some loc -> loc
        | None -> spec_loc
      in
      A.Diag.addf sink ~rule:"spec-drift" ~loc
        "transition %s -> %s is taken in code but is not an edge of the \
         Fig. 4 specification (lib/check/spec.ml); either the engine or \
         the spec table is wrong"
        from_ target)
    code_only;
  if cfg.drift = Drift_full then
    List.iter
      (fun (from_, target) ->
        A.Diag.addf sink ~rule:"spec-drift" ~loc:spec_loc
          "Fig. 4 edge %s -> %s has no corresponding transition in the core \
           (%s); dead spec edges hide refinement gaps"
          from_ target
          (String.concat " " cfg.core))
      spec_only

(* --- main ------------------------------------------------------------- *)

let () =
  let cfg = parse_args () in
  (* Pure report-vs-baseline comparison: no cmt analysis. *)
  (match cfg.check_baseline with
  | Some (baseline_file, report_file) ->
    let baseline = load_report baseline_file in
    let report = load_report report_file in
    let fresh = A.Diag.new_findings ~baseline report in
    if fresh = [] then begin
      Printf.printf "lint: no findings beyond the baseline (%d grandfathered)\n"
        (List.length report);
      exit 0
    end
    else begin
      List.iter (fun d -> Format.eprintf "%a@.@." A.Diag.pp d) fresh;
      Printf.eprintf "lint: %d new finding(s) not in %s\n" (List.length fresh)
        baseline_file;
      exit 1
    end
  | None -> ());
  let cmts, units = A.Cmt_load.load_roots cfg.roots in
  if cmts = [] then begin
    Printf.eprintf "lint: no .cmt files under %s (build the libraries first)\n"
      (String.concat " " cfg.roots);
    exit 2
  end;
  let graph = A.Callgraph.build units in
  let sink = A.Diag.create_sink () in
  (* Pass selection: no --globals/--races flag means every pass runs, so
     the @lint and @analyze dune rules cover the new passes without
     changing their command lines; naming passes restricts the run. *)
  let want p = cfg.passes = [] || List.mem p cfg.passes in
  if want "rules" then A.Rules.run ~core:cfg.core graph sink;
  let eff = A.Effects.infer graph in
  if want "writeahead" then A.Writeahead.run eff ~core:cfg.core sink;
  if want "drift" && cfg.drift <> Drift_off then run_drift cfg eff sink;
  if want "globals" then A.Globals.run eff ~entry:cfg.entry sink;
  if want "races" then begin
    let globals = List.map fst (A.Globals.mutable_globals graph) in
    let fp = A.Footprint.scan graph ~globals in
    A.Racecheck.run fp ~declared:cfg.race_roots sink
  end;
  if want "cost" then begin
    let cost = A.Cost.analyze graph in
    A.Cost.run cost sink;
    (* The ranked table — the profiling worklist — only when --cost was
       asked for by name: the implicit all-passes runs (@lint) stay
       terse, and the SARIF report stays the only machine artifact. *)
    if List.mem "cost" cfg.passes then print_string (A.Cost.ranked_table cost)
  end;
  if want "procedures" || cfg.manifest <> None then begin
    let procs = A.Procfoot.analyze eff in
    if want "procedures" then A.Procfoot.run procs sink;
    match cfg.manifest with
    | Some path -> write_file path (A.Procfoot.manifest_json procs)
    | None -> ()
  end;
  let diags = A.Diag.to_list sink in
  (match cfg.report with
  | Some path -> write_file path (A.Diag.report_json diags)
  | None -> ());
  let effective =
    match cfg.baseline with
    | Some path ->
      let baseline = load_report path in
      List.iter
        (fun d ->
          Printf.printf
            "lint: note: stale baseline entry (no current finding): %s %s %s\n"
            d.A.Diag.d_rule d.A.Diag.d_file d.A.Diag.d_message)
        (A.Diag.stale_baseline ~baseline diags);
      A.Diag.new_findings ~baseline diags
    | None -> diags
  in
  match (diags, effective) with
  | [], _ ->
    Printf.printf "lint: %d compilation units clean\n" (List.length units)
  | _, [] ->
    List.iter (fun d -> Format.eprintf "%a@.@." A.Diag.pp d) diags;
    Printf.printf "lint: %d finding(s), all grandfathered in the baseline\n"
      (List.length diags)
  | _, fresh ->
    List.iter (fun d -> Format.eprintf "%a@.@." A.Diag.pp d) diags;
    Printf.eprintf "lint: %d finding(s), %d new\n" (List.length diags)
      (List.length fresh);
    if not cfg.exit_zero then exit 1
