(* repcheck lint: project-specific static checks over the typed AST.

   Reads the .cmt files dune produced for the libraries under the given
   roots (default: lib) and enforces three rules that reviews kept
   re-litigating:

   1. no-poly-id-compare — polymorphic [=] / [<>] / [compare] (and the
      other Stdlib comparison operators) must not be applied to the
      abstract identifier types [Node_id.t], [Action.Id.t], [Conf_id.t].
      Identifier representations are an implementation detail; use the
      dedicated [equal] / [compare] of the owning module.

   2. no-engine-state-wildcard — [match] on [Types.engine_state] must
      enumerate its constructors.  A [_ ->] branch silently absorbs any
      state later added to the protocol state machine; the compiler's
      exhaustiveness check is the safety net and a wildcard disables it.

   3. no-failwith-in-core — [failwith] and [assert false] are forbidden
      inside lib/core: the replication engine must degrade through its
      protocol states, not abort.  Deliberate exceptions are allowed by
      tagging the line (or the line above) with [(* repcheck: allow *)].

   4. no-ambient-nondeterminism — [Stdlib.Random] and wall-clock reads
      ([Unix.gettimeofday] / [Unix.time]) are forbidden outside lib/sim.
      Reproducibility (and the model checker's deterministic replay)
      depends on all randomness flowing from [Repro_sim.Rng] and all
      time from the virtual clock.

   5. no-poly-id-hash — [Hashtbl.hash] (and [seeded_hash]) must not be
      applied to the abstract identifier types [Node_id.t], [Conf_id.t],
      [Action.Id.t]: a representation change would silently reshuffle
      every hash-keyed structure.  Use the owning module's [hash].

   6. no-wlog-recover-outside-persist — [Wlog.recover] may only be
      called from lib/core/persist.ml.  Recovery returns a typed damage
      verdict (clean / torn tail / corrupt interior) whose policy —
      truncate, salvage, or amnesiac rejoin — lives in [Persist.recover];
      a direct call would silently trust a damaged log.

   Runs from the build context root (dune executes it in _build/default),
   so both the .cmt files and the copied sources are reachable by the
   relative paths recorded in the cmt. *)

let allow_tag = "repcheck: allow"

let id_type_suffixes =
  [ "Node_id.t"; "Action.Id.t"; "Conf_id.t"; "Id.t" ]

let poly_compare_names =
  [ "="; "<>"; "=="; "!="; "compare"; "<"; ">"; "<="; ">=" ]

let violations : (Location.t * string) list ref = ref []

let report loc fmt =
  Format.kasprintf
    (fun msg ->
      (* one application can trip on both arguments: report it once *)
      if not (List.mem (loc, msg) !violations) then
        violations := (loc, msg) :: !violations)
    fmt

(* --- source-line suppression --------------------------------------- *)

let source_lines : (string, string array) Hashtbl.t = Hashtbl.create 8

let lines_of_file fname =
  match Hashtbl.find_opt source_lines fname with
  | Some l -> l
  | None ->
    let l =
      try
        let ic = open_in fname in
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> close_in ic);
        Array.of_list (List.rev !acc)
      with Sys_error _ -> [||]
    in
    Hashtbl.replace source_lines fname l;
    l

let allowed loc =
  let fname = loc.Location.loc_start.Lexing.pos_fname in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let lines = lines_of_file fname in
  let has n =
    n >= 1 && n <= Array.length lines
    &&
    let s = lines.(n - 1) in
    let tag_len = String.length allow_tag and len = String.length s in
    let rec scan i =
      i + tag_len <= len && (String.sub s i tag_len = allow_tag || scan (i + 1))
    in
    scan 0
  in
  has line || has (line - 1)

(* --- type and path predicates -------------------------------------- *)

let rec path_name p =
  match p with
  | Path.Pident id -> Ident.name id
  | Path.Pdot (p, s) -> path_name p ^ "." ^ s
  | Path.Papply (a, b) -> path_name a ^ "(" ^ path_name b ^ ")"
  | Path.Pextra_ty (p, _) -> path_name p

(* Strip the dune mangling: "Repro_net__Node_id.t" -> "Node_id.t". *)
let demangle name =
  let strip part =
    let len = String.length part in
    let rec find i =
      if i + 1 >= len then None
      else if part.[i] = '_' && part.[i + 1] = '_' then
        Some (String.sub part (i + 2) (len - i - 2))
      else find (i + 1)
    in
    match find 0 with Some tail when tail <> "" -> tail | _ -> part
  in
  String.concat "." (List.map strip (String.split_on_char '.' name))

let is_id_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
    let name = demangle (path_name p) in
    List.exists
      (fun suffix ->
        name = suffix
        || (String.length name > String.length suffix
           && String.sub name
                (String.length name - String.length suffix - 1)
                (String.length suffix + 1)
              = "." ^ suffix))
      id_type_suffixes
  | _ -> false

let is_engine_state ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
    let name = demangle (path_name p) in
    name = "engine_state" || Filename.check_suffix name ".engine_state"
  | _ -> false

let stdlib_ident p names =
  match p with
  | Path.Pdot (Path.Pident m, s) -> Ident.name m = "Stdlib" && List.mem s names
  | _ -> false

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_ambient_nondet p =
  let n = demangle (path_name p) in
  has_prefix "Stdlib.Random." n
  || has_prefix "Random." n
  || n = "Unix.gettimeofday" || n = "Unix.time"

let is_poly_hash p =
  let n = demangle (path_name p) in
  List.mem n
    [
      "Hashtbl.hash";
      "Stdlib.Hashtbl.hash";
      "Hashtbl.seeded_hash";
      "Stdlib.Hashtbl.seeded_hash";
    ]

let is_wlog_recover p =
  let n = demangle (path_name p) in
  n = "Wlog.recover" || Filename.check_suffix n ".Wlog.recover"

(* --- the iterator --------------------------------------------------- *)

let in_core = ref false
let in_sim = ref false
let cur_src = ref ""

let check_expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
  (match e.exp_desc with
  | Typedtree.Texp_apply
      ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
    when stdlib_ident p poly_compare_names ->
    let op =
      match p with Path.Pdot (_, s) -> s | _ -> assert false
    in
    List.iter
      (function
        | _, Some (arg : Typedtree.expression) when is_id_type arg.exp_type ->
          if not (allowed e.exp_loc) then
            report e.exp_loc
              "no-poly-id-compare: polymorphic (%s) applied to abstract id \
               type %s; use the module's equal/compare"
              op
              (match Types.get_desc arg.exp_type with
              | Types.Tconstr (p, _, _) -> demangle (path_name p)
              | _ -> "?")
        | _ -> ())
      args
  | Typedtree.Texp_match (scrut, cases, _) when is_engine_state scrut.exp_type
    ->
    List.iter
      (fun (c : Typedtree.computation Typedtree.case) ->
        let is_wild =
          match c.Typedtree.c_lhs.Typedtree.pat_desc with
          | Typedtree.Tpat_value arg -> (
            match
              (arg :> Typedtree.value Typedtree.general_pattern)
                .Typedtree.pat_desc
            with
            | Typedtree.Tpat_any -> true
            | _ -> false)
          | _ -> false
        in
        if is_wild && not (allowed c.Typedtree.c_lhs.Typedtree.pat_loc) then
          report c.Typedtree.c_lhs.Typedtree.pat_loc
            "no-engine-state-wildcard: match on engine_state uses a _ branch; \
             enumerate the states so new ones fail exhaustiveness")
      cases
  | Typedtree.Texp_apply
      ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
    when is_poly_hash p ->
    List.iter
      (function
        | _, Some (arg : Typedtree.expression) when is_id_type arg.exp_type ->
          if not (allowed e.exp_loc) then
            report e.exp_loc
              "no-poly-id-hash: Hashtbl.hash applied to abstract id type %s; \
               use the owning module's hash"
              (match Types.get_desc arg.exp_type with
              | Types.Tconstr (p, _, _) -> demangle (path_name p)
              | _ -> "?")
        | _ -> ())
      args
  | Typedtree.Texp_ident (p, _, _)
    when is_wlog_recover p
         && !cur_src <> "lib/core/persist.ml"
         && !cur_src <> "lib/storage/wlog.ml"
         && not (allowed e.exp_loc) ->
    report e.exp_loc
      "no-wlog-recover-outside-persist: Wlog.recover called from %s; the \
       damage-verdict policy lives in Repro_core.Persist.recover — go \
       through it"
      !cur_src
  | Typedtree.Texp_ident (p, _, _)
    when (not !in_sim) && is_ambient_nondet p && not (allowed e.exp_loc) ->
    report e.exp_loc
      "no-ambient-nondeterminism: %s outside lib/sim; draw randomness from \
       Repro_sim.Rng and time from the virtual clock"
      (demangle (path_name p))
  | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _)
    when !in_core
         && stdlib_ident p [ "failwith" ]
         && not (allowed e.exp_loc) ->
    report e.exp_loc
      "no-failwith-in-core: lib/core must not abort; return through the \
       protocol state machine or tag the line with (* %s *)"
      allow_tag
  | Typedtree.Texp_assert
      ({ exp_desc = Typedtree.Texp_construct (_, { cstr_name = "false"; _ }, _); _ }, loc)
    when !in_core && not (allowed loc) ->
    report loc
      "no-failwith-in-core: assert false in lib/core; handle the case or tag \
       the line with (* %s *)"
      allow_tag
  | _ -> ());
  Tast_iterator.default_iterator.expr it e

let iterator = { Tast_iterator.default_iterator with expr = check_expr }

(* --- cmt walking ----------------------------------------------------- *)

let rec find_cmts dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then find_cmts path @ acc
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      [] entries

let lint_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> ()
  | infos -> (
    match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation tstr, Some src ->
      in_core :=
        String.length src >= 9 && String.sub src 0 9 = "lib/core/";
      in_sim := String.length src >= 8 && String.sub src 0 8 = "lib/sim/";
      cur_src := src;
      iterator.Tast_iterator.structure iterator tstr
    | _ -> ())

let () =
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: r -> r
  in
  let cmts = List.concat_map find_cmts roots in
  if cmts = [] then begin
    Printf.eprintf "lint: no .cmt files under %s (build the libraries first)\n"
      (String.concat " " roots);
    exit 2
  end;
  List.iter lint_cmt (List.sort compare cmts);
  match List.rev !violations with
  | [] ->
    Printf.printf "lint: %d compilation units clean\n" (List.length cmts)
  | vs ->
    List.iter
      (fun (loc, msg) ->
        Format.eprintf "%a@.Error: %s@.@." Location.print_loc loc msg)
      vs;
    Printf.eprintf "lint: %d violation(s)\n" (List.length vs);
    exit 1
