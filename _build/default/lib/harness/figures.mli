open Repro_sim

(** Reproduction of every artifact in the paper's evaluation (§7), plus
    the two ablations DESIGN.md commits to.

    Each generator prints the series the paper reports (same rows/axes)
    to the given formatter and returns the measured numbers so tests and
    EXPERIMENTS.md tooling can assert on the *shape* (who wins, by what
    factor, where curves flatten). *)

type series = (int * float) list
(** (x, value) points, e.g. (clients, actions/second). *)

val figure_5a :
  ?clients:int list ->
  ?servers:int ->
  ?duration:Time.t ->
  Format.formatter ->
  unit ->
  (string * series) list
(** Figure 5(a): throughput of engine (forced writes) vs COReL vs 2PC,
    14 replicas, 1..14 closed-loop clients. *)

val figure_5b :
  ?clients:int list ->
  ?servers:int ->
  ?duration:Time.t ->
  Format.formatter ->
  unit ->
  (string * series) list
(** Figure 5(b): engine with forced vs delayed (asynchronous) disk
    writes. *)

val latency_table :
  ?servers:int list ->
  ?actions:int ->
  Format.formatter ->
  unit ->
  (string * series) list
(** The §7 latency experiment: one client, sequential actions, average
    response time per protocol as the number of servers grows (paper:
    ≈19.3 ms for 2PC, ≈11.4 ms for COReL and the engine, flat in the
    number of servers). *)

val wan_prediction :
  ?servers:int -> Format.formatter -> unit -> (string * float * float) list
(** §7's wide-area claim: with network latency dominant, COReL's (and the
    engine's) advantage over 2PC grows — per-protocol mean latency on the
    LAN profile vs a 30 ms WAN profile.  Returns (protocol, lan_ms,
    wan_ms) rows. *)

val ablation_ack_batching :
  ?delays_us:int list ->
  ?clients:int ->
  ?duration:Time.t ->
  Format.formatter ->
  unit ->
  series
(** Ablation A1: cost of per-action end-to-end acknowledgement pressure —
    sweep the group-communication acknowledgement batching delay and
    measure engine throughput (smaller delay ≈ per-action acks). *)

val ablation_quorum_availability :
  ?n:int ->
  ?rounds:int ->
  Format.formatter ->
  unit ->
  (float * float) * (float * float)
(** Ablation A5: fraction of churn time with a live primary component,
    ((dlv, static) under cascading splits, (dlv, static) under chaotic
    splits) — quantifies the §3.1 quorum-system choice and its known
    trade-off. *)

val ablation_scale :
  ?servers:int list ->
  ?clients:int ->
  ?duration:Time.t ->
  Format.formatter ->
  unit ->
  (int * (float * float)) list
(** Ablation A4: engine throughput and latency as the replica count grows
    at a fixed client count — the cost of adding replicas when nothing is
    acknowledged per action. *)

val ablation_query_path :
  ?clients:int ->
  ?read_fraction:float ->
  ?duration:Time.t ->
  Format.formatter ->
  unit ->
  (float * float) * (float * float)
(** Ablation A3: the §6 read-only optimisation — ((throughput, latency)
    with ordered reads, (throughput, latency) with local session reads)
    under a read-heavy mix. *)

val partition_timeline :
  ?servers:int ->
  ?clients:int ->
  Format.formatter ->
  unit ->
  (float * float) list
(** Ablation A2: throughput timeline across a partition and a merge —
    demonstrates that the engine pays end-to-end synchronisation only at
    membership-change events.  Returns (second, actions/s) buckets. *)
