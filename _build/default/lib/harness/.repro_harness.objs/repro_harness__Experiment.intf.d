lib/harness/experiment.mli: Disk Format Repro_gcs Repro_net Repro_sim Repro_storage Time
