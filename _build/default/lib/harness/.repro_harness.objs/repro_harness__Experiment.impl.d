lib/harness/experiment.ml: Action Disk Format Fun List Network Node_id Replica Repro_baselines Repro_core Repro_db Repro_gcs Repro_net Repro_sim Repro_storage
