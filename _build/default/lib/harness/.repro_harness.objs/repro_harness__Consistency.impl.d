lib/harness/consistency.ml: Action Database Engine Format Hashtbl Int List Replica Repro_core Repro_db Repro_net Types
