lib/harness/figures.mli: Format Repro_sim Time
