lib/harness/consistency.mli: Format Replica Repro_core
