lib/harness/world.mli: Disk Network Node_id Quorum Replica Repro_core Repro_gcs Repro_net Repro_sim Repro_storage Topology
