lib/harness/figures.ml: Action Disk Experiment Format Fun List Network Node_id Printf Replica Repro_core Repro_db Repro_gcs Repro_net Repro_sim Repro_storage Rng Stats Time Topology Workload World
