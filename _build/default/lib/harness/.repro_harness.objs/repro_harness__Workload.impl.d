lib/harness/workload.ml: Action Fun List Op Printf Replica Repro_core Repro_db Repro_sim Rng Stats Time Value
