lib/harness/workload.mli: Replica Repro_core Repro_sim Stats Time
