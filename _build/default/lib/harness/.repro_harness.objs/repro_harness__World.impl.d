lib/harness/world.ml: Action Disk Fun Hashtbl List Network Node_id Op Replica Repro_core Repro_db Repro_gcs Repro_net Repro_sim Repro_storage Topology Value
