module SimE = Repro_sim.Engine
open Repro_sim
open Repro_db
open Repro_core

type mix = {
  read_fraction : float;
  commutative_fraction : float;
  optimized_reads : bool;
  keys : int;
  action_size : int;
}

let default_mix =
  {
    read_fraction = 0.;
    commutative_fraction = 0.;
    optimized_reads = false;
    keys = 64;
    action_size = 200;
  }

type t = {
  sim : SimE.t;
  mix : mix;
  rng : Rng.t;
  mutable measuring : bool;
  mutable stopped : bool;
  mutable completed : int;
  latencies : Stats.Summary.t;
}

let key_of t n = Printf.sprintf "k%d" (n mod t.mix.keys)

let record t t0 =
  if t.measuring then begin
    t.completed <- t.completed + 1;
    Stats.Summary.add t.latencies
      (Time.to_ms (Time.diff (SimE.now t.sim) t0))
  end

(* Issue one operation per the mix; [k] fires on completion. *)
let issue t replica ~k =
  let t0 = SimE.now t.sim in
  let done_ () =
    record t t0;
    k ()
  in
  let key = key_of t (Rng.int t.rng t.mix.keys) in
  if Rng.float t.rng 1.0 < t.mix.read_fraction then
    if t.mix.optimized_reads then
      Replica.local_query replica [ key ] ~on_response:(fun _ -> done_ ())
    else
      Replica.submit replica ~size:t.mix.action_size (Action.Query [ key ])
        ~on_response:(fun _ -> done_ ())
  else if Rng.float t.rng 1.0 < t.mix.commutative_fraction then
    Replica.submit replica ~semantics:Action.Commutative
      ~size:t.mix.action_size
      (Action.Update [ Op.Add (key, 1) ])
      ~on_response:(fun _ -> done_ ())
  else
    Replica.submit replica ~size:t.mix.action_size
      (Action.Update [ Op.Set (key, Value.Int (Rng.int t.rng 1000)) ])
      ~on_response:(fun _ -> done_ ())

let make ~sim ~mix =
  {
    sim;
    mix;
    rng = Rng.split (SimE.rng sim);
    measuring = false;
    stopped = false;
    completed = 0;
    latencies = Stats.Summary.create ();
  }

let closed_loop ~sim ~mix ~clients ~replicas =
  let t = make ~sim ~mix in
  let n = List.length replicas in
  let rec client replica =
    if not t.stopped then issue t replica ~k:(fun () -> client replica)
  in
  List.iteri
    (fun i _ -> client (List.nth replicas (i mod n)))
    (List.init clients Fun.id);
  t

let open_loop ~sim ~mix ~rate_per_sec ~replicas =
  let t = make ~sim ~mix in
  let n = List.length replicas in
  let counter = ref 0 in
  let rec arrival () =
    if not t.stopped then begin
      let gap = Rng.exponential t.rng ~mean:(1. /. rate_per_sec) in
      ignore
        (SimE.schedule sim ~delay:(Time.of_sec gap) (fun () ->
             if not t.stopped then begin
               incr counter;
               let replica = List.nth replicas (!counter mod n) in
               issue t replica ~k:(fun () -> ());
               arrival ()
             end))
    end
  in
  arrival ();
  t

let start_measuring t =
  t.measuring <- true;
  t.completed <- 0

let stop t = t.stopped <- true
let completed t = t.completed
let latencies_ms t = t.latencies

let throughput t ~over =
  let secs = Time.to_sec over in
  if secs <= 0. then 0. else float_of_int t.completed /. secs
