open Repro_sim
open Repro_core

(** Workload generators over a set of replicas.

    Two arrival models:
    - {b closed-loop}: each client keeps exactly one transaction in
      flight (the paper's §7 setup);
    - {b open-loop}: Poisson arrivals at a target rate, regardless of
      completions — exposes saturation behaviour the closed loop hides.

    The operation mix is configurable: a fraction of reads (served
    through the §6 local-query path when [optimized_reads], or as
    globally ordered query actions when not — the A3 ablation), strict
    writes, and commutative writes. *)

type mix = {
  read_fraction : float;  (** in [0,1] *)
  commutative_fraction : float;
      (** fraction of the *writes* that are commutative increments *)
  optimized_reads : bool;
      (** serve reads via [local_query] instead of ordering them *)
  keys : int;  (** key-space size *)
  action_size : int;
}

val default_mix : mix
(** Write-only strict updates, 200-byte actions (the paper's workload). *)

type t

val closed_loop :
  sim:Repro_sim.Engine.t -> mix:mix -> clients:int -> replicas:Replica.t list -> t
(** Starts [clients] closed-loop clients round-robin over the replicas. *)

val open_loop :
  sim:Repro_sim.Engine.t ->
  mix:mix ->
  rate_per_sec:float ->
  replicas:Replica.t list ->
  t
(** Starts a Poisson arrival process at [rate_per_sec], submissions
    spread round-robin over the replicas.  Runs until [stop]. *)

val start_measuring : t -> unit
(** Resets counters; subsequent completions are recorded. *)

val stop : t -> unit
(** Stops issuing new operations (outstanding ones still complete). *)

val completed : t -> int
val latencies_ms : t -> Stats.Summary.t
val throughput : t -> over:Time.t -> float
