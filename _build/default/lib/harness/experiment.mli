open Repro_sim
open Repro_storage

(** The closed-loop measurement driver used by every figure.

    Mirrors the paper's §7 methodology: [clients] closed-loop clients
    spread round-robin over the replicas, each injecting its next
    200-byte action as soon as the previous one completes (is globally
    ordered); no database is attached to the measured path.  Throughput
    counts completions inside the measurement window; latency is
    per-action, submit-to-global-order at the submitting client. *)

type protocol =
  | Engine_protocol of Disk.mode  (** the paper's replication engine *)
  | Corel_protocol
  | Twopc_protocol

val protocol_name : protocol -> string

type result = {
  r_protocol : protocol;
  r_servers : int;
  r_clients : int;
  r_throughput : float;  (** actions per (virtual) second *)
  r_mean_latency_ms : float;
  r_p99_latency_ms : float;
  r_completed : int;
}

val run :
  ?net_config:Repro_net.Network.config ->
  ?params:Repro_gcs.Params.t ->
  ?servers:int ->
  ?action_size:int ->
  ?warmup:Time.t ->
  ?duration:Time.t ->
  ?seed:int ->
  clients:int ->
  protocol ->
  result
(** Defaults: 14 servers (the paper's testbed), 200-byte actions, 2 s
    warm-up, 8 s measurement. *)

val pp_result : Format.formatter -> result -> unit
