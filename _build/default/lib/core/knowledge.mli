open Repro_net


(** ComputeKnowledge (paper CodeSegment A.7) plus the retransmission
    planning derived from the same state messages.

    A pure function of the set of state messages, so every member of the
    view computes identical knowledge. *)

type t = {
  k_prim : Types.prim_component;
      (** maximal (prim_index, attempt) among the state messages *)
  k_attempt : int;  (** max attempt index within the updated group *)
  k_yellow : Types.yellow;
      (** valid iff some updated server had valid yellow; the set is the
          intersection of valid yellow sets (order preserved) *)
  k_vulnerable : Types.vulnerable Node_id.Map.t;
      (** every member's vulnerable record after the invalidation steps *)
  k_green_target : int;  (** max green count among members *)
  k_green_plan : (Node_id.t * int * int) list;
      (** chain of green retransmission duties [(source, from_exclusive,
          to_inclusive)] covering positions (min green, max green]: at
          each point the source reaching furthest whose stored bodies go
          low enough (green floor), lowest id among equals.  May end
          short of the target if no member holds the bodies (the gap
          then requires a state transfer). *)
  k_green_from : int;  (** min green count among members *)
  k_red_targets : int Node_id.Map.t;
      (** per creator: max red-cut among members *)
}

val compute :
  members:Node_id.Set.t -> Types.state_msg Node_id.Map.t -> t
(** Requires a state message from every member. *)

val red_duties :
  self:Node_id.t ->
  knowledge:t ->
  states:Types.state_msg Node_id.Map.t ->
  (Node_id.t * int * int) list
(** The per-creator index ranges [(creator, from_exclusive, to_inclusive)]
    that [self] must retransmit as red: for each creator, the member with
    the maximal red cut (lowest id among equals) covers the span from the
    minimal red cut to the maximal. *)

val exchange_finished :
  green_count:int -> red_cut:(Node_id.t -> int) -> t -> bool
(** Whether this server has reached the retransmission targets. *)
