open Repro_db

(** The ordered action queue (paper's [actionsQueue]).

    Holds the global green prefix (positions 1..green_count) followed by
    the red actions in local delivery order.  Yellow actions live in the
    red region; their ids are tracked by the engine's [yellow] record.
    White actions (green everywhere) could be discarded; this
    implementation retains them so any replica can serve as a green
    retransmitter (the green floor in state messages accounts for
    replicas that joined by snapshot and hold no early bodies). *)

type t

val create : unit -> t

val green_count : t -> int
val green_line : t -> Action.Id.t option
val nth_green : t -> int -> Action.t
(** 1-based; raises [Invalid_argument] out of range or below the floor. *)

val greens_from : t -> int -> Action.t list
(** [greens_from t n] are the green actions at positions [n+1..count]. *)

val green_floor : t -> int
(** Positions [<= floor] have no stored body (inherited by snapshot). *)

val set_join_floor : t -> count:int -> line:Action.Id.t option -> unit
(** Initialise a snapshot-created queue: green prefix of [count] virtual
    actions ending at [line], with no bodies. *)

val discard_below : t -> int -> int
(** [discard_below t n] frees the stored bodies of green positions
    [<= n] (white actions: known green at every server, paper Figure 1)
    and raises the floor accordingly.  Greenness of the discarded ids
    remains queryable; only the bodies go.  Returns the number of bodies
    discarded.  No-op when [n <= floor]. *)

val append_green : t -> Action.t -> int
(** Appends at the top of the green prefix (removing the action from the
    red region if present) and returns its green position.  Must not be
    called on an action that is already green. *)

val is_green : t -> Action.Id.t -> bool
val add_red : t -> Action.t -> unit
val red_actions : t -> Action.t list
(** Red actions in local order (excludes greens). *)

val red_count : t -> int
val find : t -> Action.Id.t -> Action.t option
(** Any action this queue holds a body for, red or green. *)

val mem : t -> Action.Id.t -> bool
