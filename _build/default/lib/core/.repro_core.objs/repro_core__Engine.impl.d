lib/core/engine.ml: Action Action_queue Conf_id Endpoint Hashtbl Knowledge List Logs Node_id Option Persist Quorum Repro_db Repro_gcs Repro_net Repro_sim Types
