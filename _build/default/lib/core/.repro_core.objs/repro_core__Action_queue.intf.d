lib/core/action_queue.mli: Action Repro_db
