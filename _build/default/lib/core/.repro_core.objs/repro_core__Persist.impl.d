lib/core/persist.ml: Action Database Disk Hashtbl List Node_id Repro_db Repro_net Repro_storage Types Wlog
