lib/core/session.mli: Action Replica Repro_db Value
