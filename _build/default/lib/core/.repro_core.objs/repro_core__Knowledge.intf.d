lib/core/knowledge.mli: Node_id Repro_net Types
