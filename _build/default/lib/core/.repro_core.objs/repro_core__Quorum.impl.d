lib/core/quorum.ml: Node_id Repro_net
