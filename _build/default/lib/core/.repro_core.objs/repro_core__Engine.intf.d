lib/core/engine.mli: Action Database Endpoint Node_id Persist Quorum Repro_db Repro_gcs Repro_net Repro_sim Types
