lib/core/knowledge.ml: Action Format List Node_id Repro_db Repro_net Types
