lib/core/persist.mli: Action Database Disk Node_id Repro_db Repro_net Repro_sim Repro_storage Types
