lib/core/replica.ml: Action Database Disk Endpoint Engine Executor Hashtbl List Logs Network Node_id Params Persist Quorum Repro_db Repro_gcs Repro_net Repro_sim Repro_storage Topology Types
