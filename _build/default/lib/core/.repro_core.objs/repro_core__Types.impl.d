lib/core/types.ml: Action Conf_id Format Int List Node_id Repro_db Repro_gcs Repro_net
