lib/core/quorum.mli: Node_id Repro_net
