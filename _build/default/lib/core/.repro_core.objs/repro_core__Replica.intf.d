lib/core/replica.mli: Action Database Disk Engine Network Node_id Params Quorum Repro_db Repro_gcs Repro_net Repro_sim Repro_storage Topology Types Value
