lib/core/action_queue.ml: Action Array Hashtbl List Printf Repro_db
