lib/core/session.ml: Action Queue Replica Repro_db Value
