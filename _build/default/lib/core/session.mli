open Repro_db

(** A client session against one replica.

    Wraps {!Replica.submit} with the conveniences a database client
    expects: sequential execution (at most one outstanding transaction;
    further submissions queue locally), read-your-writes reads via the
    §6 local-query optimisation, and per-session statistics.  Sessions
    are how the examples and workload generators talk to the system. *)

type t

val attach : Replica.t -> client:int -> t
(** Binds a session to a replica under a client id. *)

val replica : t -> Replica.t
val client : t -> int

val exec :
  t -> ?semantics:Action.semantics -> ?size:int -> Action.kind ->
  k:(Action.response -> unit) -> unit
(** Queues a transaction; it is submitted when all earlier transactions
    of this session have completed, preserving the session's program
    order end-to-end. *)

val read : t -> string list -> k:((string * Value.t option) list -> unit) -> unit
(** Read-your-writes read: served through {!Replica.local_query} after
    the session's queued writes have drained — never globally ordered. *)

val outstanding : t -> int
(** Transactions queued or in flight. *)

val completed : t -> int
val aborted : t -> int
