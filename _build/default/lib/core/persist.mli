open Repro_net
open Repro_storage
open Repro_db

(** The replication engine's stable storage.

    A typed write-ahead log over a simulated {!Disk}.  Appends are
    buffered; [sync] marks the paper's "** sync to disk" points
    (group-committed with concurrent syncs on the same disk — this is
    the engine's single forced write per action).  Red and green marks
    are appended without forcing: their durability is covered by the
    vulnerability mechanism, which is exactly the gap the paper's
    [vulnerable] record exists to close.

    Recovery replays the durable prefix into the full engine state:
    per-creator red cuts, the green prefix (in green order), the
    remaining red actions (in arrival order), the ongoing queue of own
    actions not yet delivered, and the last meta record. *)

type t

val create : engine:Repro_sim.Engine.t -> disk:Disk.t -> unit -> t
val disk : t -> Disk.t

val log_ongoing : t -> Action.t -> unit
(** A client action created at this server (its [ongoingQueue]). *)

val log_red : t -> Action.t -> unit
val log_green : t -> Action.Id.t -> unit
val log_meta : t -> Types.meta -> unit

(** A durable summary of everything up to a green position: the database
    snapshot at that point, the green line, and the per-creator green
    cuts.  Written by a replica instantiated from a state transfer
    (paper CodeSegment 5.2) and periodically as a checkpoint; log entries
    it covers can then be compacted away. *)
type checkpoint = {
  c_snapshot : Database.snapshot;
  c_green_count : int;
  c_green_line : Action.Id.t option;
  c_green_cut : int Node_id.Map.t;
  c_meta : Types.meta;
}

val log_checkpoint : t -> checkpoint -> unit

val compact : t -> unit
(** Drops log entries superseded by the latest checkpoint: everything
    before it except red actions not yet inside its green cuts and own
    ongoing actions.  Call after the checkpoint has been synced. *)

val sync : t -> (unit -> unit) -> unit
(** Force everything appended so far; callback when durable. *)

val crash : t -> unit

type recovered = {
  r_meta : Types.meta option;
  r_green : Action.t list;
      (** green actions after the checkpoint, in green order *)
  r_checkpoint : checkpoint option;
      (** the latest durable checkpoint (also the state-transfer floor) *)
  r_red : Action.t list;  (** still-red actions, in arrival order *)
  r_ongoing : Action.t list;  (** own actions not yet delivered back *)
  r_red_cut : int Node_id.Map.t;
  r_action_index : int;  (** highest own action index ever created *)
}

val recover : self:Node_id.t -> t -> recovered
val entries_logged : t -> int
