type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "n%d" t
let to_string t = Format.asprintf "%a" pp t

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list l = Set.of_list l

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp)
    (Set.elements s)
