lib/net/network.mli: Engine Node_id Repro_sim Resource Time Topology
