lib/net/network.ml: Engine Hashtbl List Node_id Repro_sim Resource Rng Time Topology
