lib/net/topology.mli: Node_id
