lib/net/topology.ml: Format Hashtbl List Node_id
