(** Node (server) identifiers.

    Integers wrapped for documentation; ordering is total and is used by
    higher layers (the group-communication coordinator is the minimal
    member of a view). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
