lib/gcs/endpoint.mli: Conf_id Format Network Node_id Params Repro_net
