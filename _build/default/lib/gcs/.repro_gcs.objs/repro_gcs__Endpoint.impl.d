lib/gcs/endpoint.ml: Conf_id Engine Format Hashtbl Int List Logs Network Node_id Params Printf Repro_net Repro_sim Time
