lib/gcs/conf_id.ml: Format Int Node_id Repro_net
