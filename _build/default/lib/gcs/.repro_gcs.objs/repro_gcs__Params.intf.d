lib/gcs/params.mli: Repro_sim Time
