lib/gcs/conf_id.mli: Format Node_id Repro_net
