lib/gcs/params.ml: Repro_sim Time
