open Repro_net

(** Configuration (view) identifiers.

    A configuration id is the pair of the proposing coordinator and a
    counter the coordinator guarantees monotonic (seeded from virtual
    time so that identifiers stay unique across coordinator crashes and
    recoveries, as a real implementation would use timestamps). *)

type t = { coord : Node_id.t; counter : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
