open Repro_net

type t = { coord : Node_id.t; counter : int }

let compare a b =
  let c = Int.compare a.counter b.counter in
  if c <> 0 then c else Node_id.compare a.coord b.coord

let equal a b = compare a b = 0
let pp ppf t = Format.fprintf ppf "c%d.%d" t.coord t.counter
let to_string t = Format.asprintf "%a" pp t
