(** A serial resource: jobs execute one at a time, FIFO.

    Models a CPU core or any sequential device.  Each job occupies the
    resource for a duration, then its completion callback fires.  Used to
    model per-action processing cost, which caps throughput when disk
    writes are taken off the critical path. *)

type t

val create : Engine.t -> t

val submit : t -> duration:Time.t -> (unit -> unit) -> unit
(** [submit t ~duration k] queues a job; [k] runs when the job finishes
    (after all previously queued jobs). *)

val queue_length : t -> int
(** Jobs waiting or running. *)

val busy_time : t -> Time.t
(** Cumulative time the resource has spent occupied. *)

val reset : t -> unit
(** Drops all queued jobs (their callbacks never fire) — crash semantics. *)
