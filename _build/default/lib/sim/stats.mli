(** Online statistics used by the measurement harness. *)

(** A streaming summary of a scalar sample (latencies, sizes, ...). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100]; exact (retains samples).
      Returns [nan] on an empty summary. *)

  val pp : Format.formatter -> t -> unit
end

(** A monotonically increasing event counter with rate computation. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int

  val rate : t -> over:Time.t -> float
  (** Events per second over a virtual-time span. *)
end

(** Fixed-bucket histogram over time, for throughput timelines. *)
module Timeline : sig
  type t

  val create : bucket:Time.t -> t
  val record : t -> at:Time.t -> unit

  val buckets : t -> (Time.t * int) list
  (** Bucket start times with event counts, in time order. *)

  val rates : t -> (float * float) list
  (** (bucket start in seconds, events/second) pairs. *)
end
