type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (bits64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 bits: always non-negative in OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  if bound < 0. then invalid_arg "Rng.float: negative bound";
  (* 53 uniform bits -> [0,1) *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992. *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let uniform_span t max_span =
  let us = Time.to_us max_span in
  if us = 0 then Time.zero else Time.of_us (int t (us + 1))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
