(** Structured, bounded trace of simulation events.

    Primarily a debugging and test-assertion aid: scenarios record what
    happened (view changes, state transitions, deliveries) and tests can
    assert over the sequence.  Keeps at most [capacity] most recent
    entries to bound memory in long runs. *)

type entry = { at : Time.t; node : int; tag : string; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 100_000 entries. *)

val record : t -> at:Time.t -> node:int -> tag:string -> string -> unit
val entries : t -> entry list
(** Oldest first. *)

val find_all : t -> tag:string -> entry list
val count : t -> tag:string -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
