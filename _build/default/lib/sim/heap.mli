(** A minimal binary min-heap, specialised by a comparison function.

    Used as the backing store of the simulation event queue; exposed
    separately so it can be unit- and property-tested in isolation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is not modified. *)
