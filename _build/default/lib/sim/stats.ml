module Summary = struct
  type t = {
    mutable samples : float list;
    mutable sorted : float array option; (* cache, invalidated on add *)
    mutable count : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    {
      samples = [];
      sorted = None;
      count = 0;
      sum = 0.;
      sumsq = 0.;
      min = infinity;
      max = neg_infinity;
    }

  let add t x =
    t.samples <- x :: t.samples;
    t.sorted <- None;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

  let stddev t =
    if t.count < 2 then 0.
    else
      let n = float_of_int t.count in
      let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.) in
      sqrt (Float.max var 0.)

  let min t = t.min
  let max t = t.max

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Array.of_list t.samples in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

  let percentile t p =
    if t.count = 0 then nan
    else begin
      let a = sorted t in
      let n = Array.length a in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.of_int (int_of_float rank)) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
    end

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f"
        t.count (mean t) (percentile t 50.) (percentile t 99.) t.min t.max
end

module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let incr ?(by = 1) t = t.value <- t.value + by
  let value t = t.value

  let rate t ~over =
    let secs = Time.to_sec over in
    if secs <= 0. then 0. else float_of_int t.value /. secs
end

module Timeline = struct
  type t = { bucket : Time.t; counts : (int, int ref) Hashtbl.t }

  let create ~bucket =
    if Time.(bucket <= Time.zero) then invalid_arg "Timeline.create: bucket must be positive";
    { bucket; counts = Hashtbl.create 64 }

  let record t ~at =
    let idx = Time.to_us at / Time.to_us t.bucket in
    match Hashtbl.find_opt t.counts idx with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts idx (ref 1)

  let buckets t =
    Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (idx, n) -> (Time.of_us (idx * Time.to_us t.bucket), n))

  let rates t =
    let secs = Time.to_sec t.bucket in
    buckets t
    |> List.map (fun (start, n) -> (Time.to_sec start, float_of_int n /. secs))
end
