type entry = { at : Time.t; node : int; tag : string; detail : string }

type t = {
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable length : int;
}

let create ?(capacity = 100_000) () = { capacity; entries = []; length = 0 }

let record t ~at ~node ~tag detail =
  t.entries <- { at; node; tag; detail } :: t.entries;
  t.length <- t.length + 1;
  if t.length > t.capacity * 2 then begin
    (* Amortised trim: keep the newest [capacity] entries. *)
    t.entries <- List.filteri (fun i _ -> i < t.capacity) t.entries;
    t.length <- t.capacity
  end

let entries t = List.rev t.entries
let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)
let count t ~tag = List.length (find_all t ~tag)

let clear t =
  t.entries <- [];
  t.length <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%a] n%d %s: %s" Time.pp e.at e.node e.tag e.detail
