(** The discrete-event simulation engine.

    A single-threaded scheduler: events are closures executed at a virtual
    time point.  Events scheduled for the same time fire in scheduling
    order (FIFO tie-break), which keeps runs fully deterministic. *)

type t

type timer
(** A handle to a scheduled event, usable to cancel it. *)

val create : ?seed:int -> unit -> t
(** A fresh simulation with its clock at {!Time.zero}.  [seed] (default 1)
    seeds the root RNG from which component streams should be [split]. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The root random stream of this simulation. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t + delay]. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> timer
(** [schedule_at t ~at f] runs [f] at absolute time [at]; [at] must not be
    in the past. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val is_active : timer -> bool

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val run : ?until:Time.t -> t -> unit
(** Executes events in time order until the queue is empty, or until the
    clock would pass [until] (events at exactly [until] are executed).
    When stopped by [until], the clock is advanced to [until]. *)

val step : t -> bool
(** Executes the single next event. Returns [false] if the queue was
    empty. *)

exception Stopped

val stop : t -> unit
(** Makes the current [run] return after the current event completes. *)
