(** Deterministic pseudo-random number generation.

    A SplitMix64 generator.  Each stream is an independent mutable state;
    [split] derives a statistically independent child stream, so every
    simulated component can own its own generator and the global event
    order never depends on which component draws first. *)

type t

val create : int64 -> t
(** [create seed] makes a new stream from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] draws from [t] to seed an independent child stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound >= 0]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution. *)

val uniform_span : t -> Time.t -> Time.t
(** [uniform_span t max] is a uniform time span in [\[0, max\]]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** A uniformly random permutation. *)
