type timer = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable active : bool;
}

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
  mutable stopping : bool;
}

exception Stopped

let cmp_timer a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1) () =
  {
    clock = Time.zero;
    seq = 0;
    queue = Heap.create ~cmp:cmp_timer;
    root_rng = Rng.of_int seed;
    stopping = false;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t ~at action =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let timer = { at; seq = t.seq; action; active = true } in
  t.seq <- t.seq + 1;
  Heap.push t.queue timer;
  timer

let schedule t ~delay action = schedule_at t ~at:(Time.add t.clock ~span:delay) action
let cancel timer = timer.active <- false
let is_active timer = timer.active
let pending t = Heap.length t.queue
let stop t = t.stopping <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some timer ->
    if timer.active then begin
      t.clock <- timer.at;
      timer.action ()
    end;
    true

let run ?until t =
  t.stopping <- false;
  let continue = ref true in
  while !continue do
    if t.stopping then continue := false
    else
      match Heap.peek t.queue with
      | None -> continue := false
      | Some next -> (
        match until with
        | Some limit when Time.(next.at > limit) ->
          t.clock <- limit;
          continue := false
        | _ -> ignore (step t))
  done;
  match until with
  | Some limit when (not t.stopping) && Time.(t.clock < limit) -> t.clock <- limit
  | _ -> ()
