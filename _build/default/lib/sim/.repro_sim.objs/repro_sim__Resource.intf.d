lib/sim/resource.mli: Engine Time
