lib/sim/stats.ml: Array Float Format Hashtbl Int List Stdlib Time
