lib/sim/heap.mli:
