lib/sim/engine.ml: Heap Int Rng Time
