(** Virtual time for the discrete-event simulation.

    Time is an integer number of microseconds since the start of the
    simulation.  Integer time keeps the simulation fully deterministic:
    there is no floating-point accumulation drift and event timestamps
    compare exactly. *)

type t = private int
(** A point in virtual time, in microseconds. Totally ordered. *)

val zero : t

val of_us : int -> t
(** [of_us n] is the time [n] microseconds after the origin.
    Raises [Invalid_argument] if [n] is negative. *)

val of_ms : float -> t
(** [of_ms x] converts milliseconds to a time point (rounded to µs). *)

val of_sec : float -> t
(** [of_sec x] converts seconds to a time point (rounded to µs). *)

val to_us : t -> int
val to_ms : t -> float
val to_sec : t -> float

val add : t -> span:t -> t
(** [add t ~span] is [t + span]. *)

val diff : t -> t -> t
(** [diff a b] is [a - b]. Raises [Invalid_argument] if [b > a]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val scale : t -> float -> t
(** [scale t f] multiplies a span by a non-negative factor. *)

val pp : Format.formatter -> t -> unit
(** Prints as seconds with millisecond precision, e.g. ["1.250s"]. *)
