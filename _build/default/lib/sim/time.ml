type t = int

let zero = 0

let of_us n =
  if n < 0 then invalid_arg "Time.of_us: negative";
  n

let of_ms x = of_us (int_of_float (Float.round (x *. 1_000.)))
let of_sec x = of_us (int_of_float (Float.round (x *. 1_000_000.)))
let to_us t = t
let to_ms t = float_of_int t /. 1_000.
let to_sec t = float_of_int t /. 1_000_000.
let add t ~span = t + span

let diff a b =
  if b > a then invalid_arg "Time.diff: negative result";
  a - b

let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = a <= b
let ( < ) (a : t) b = a < b
let ( >= ) (a : t) b = a >= b
let ( > ) (a : t) b = a > b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b

let scale t f =
  if Stdlib.( < ) f 0. then invalid_arg "Time.scale: negative factor";
  int_of_float (Float.round (float_of_int t *. f))

let pp ppf t = Format.fprintf ppf "%.3fs" (to_sec t)
