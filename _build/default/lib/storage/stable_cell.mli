(** A durable single-value register on a simulated {!Disk}.

    Holds one value of arbitrary type (e.g. the replication engine's
    [vulnerable] record or [primComponent]).  [set] updates the volatile
    copy; [sync] makes the current copy durable.  On [crash] the register
    reverts to the last durable value. *)

type 'a t

val create : disk:Disk.t -> init:'a -> 'a t
(** The initial value is considered durable. *)

val get : 'a t -> 'a
val set : 'a t -> 'a -> unit

val sync : 'a t -> (unit -> unit) -> unit
(** Durability callback, group-committed on the underlying disk. *)

val set_sync : 'a t -> 'a -> (unit -> unit) -> unit
val crash : 'a t -> unit
