type 'a t = {
  disk : Disk.t;
  mutable volatile : 'a;
  mutable volatile_epoch : int;
  mutable durable : 'a;
  mutable durable_epoch : int;
}

let create ~disk ~init =
  { disk; volatile = init; volatile_epoch = 0; durable = init; durable_epoch = 0 }

let get t = t.volatile

let set t v =
  t.volatile <- v;
  t.volatile_epoch <- Disk.note_write t.disk

let sync t k =
  let snapshot = t.volatile and epoch = t.volatile_epoch in
  Disk.force t.disk (fun () ->
      if epoch >= t.durable_epoch then begin
        t.durable <- snapshot;
        t.durable_epoch <- epoch
      end;
      k ())

let set_sync t v k =
  set t v;
  sync t k

let crash t =
  Disk.crash t.disk;
  (* In delayed mode acknowledged-but-unflushed values are lost too:
     survival is governed by the disk's durable epoch. *)
  if t.volatile_epoch > Disk.last_durable_epoch t.disk then begin
    t.volatile <- t.durable;
    t.volatile_epoch <- t.durable_epoch
  end
  else begin
    t.durable <- t.volatile;
    t.durable_epoch <- t.volatile_epoch
  end
