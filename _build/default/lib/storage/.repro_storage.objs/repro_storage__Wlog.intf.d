lib/storage/wlog.mli: Disk Engine Repro_sim
