lib/storage/wlog.ml: Disk List
