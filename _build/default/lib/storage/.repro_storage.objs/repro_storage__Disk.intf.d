lib/storage/disk.mli: Engine Repro_sim Time
