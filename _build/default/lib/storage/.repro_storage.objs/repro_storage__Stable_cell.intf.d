lib/storage/stable_cell.mli: Disk
