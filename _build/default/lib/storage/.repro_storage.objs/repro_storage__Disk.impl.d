lib/storage/disk.ml: Engine List Repro_sim Rng Time
