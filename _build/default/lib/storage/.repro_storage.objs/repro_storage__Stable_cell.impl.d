lib/storage/stable_cell.ml: Disk
