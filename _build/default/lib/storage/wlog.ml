type 'entry stamped = { entry : 'entry; epoch : int }

type 'entry t = {
  disk : Disk.t;
  mutable entries : 'entry stamped list; (* newest first *)
}

let create ~engine:_ ~disk () = { disk; entries = [] }
let disk t = t.disk

let append t entry =
  let epoch = Disk.note_write t.disk in
  t.entries <- { entry; epoch } :: t.entries

let sync t k = Disk.force t.disk k

let append_sync t entry k =
  append t entry;
  sync t k

let crash t =
  Disk.crash t.disk;
  let durable = Disk.last_durable_epoch t.disk in
  t.entries <- List.filter (fun s -> s.epoch <= durable) t.entries

let recover t = List.rev_map (fun s -> s.entry) t.entries
let length t = List.length t.entries

let compact t ~keep =
  (* [keep] may be stateful and expects append order (oldest first). *)
  t.entries <-
    List.rev (List.filter (fun s -> keep s.entry) (List.rev t.entries))
