open Repro_sim

(** A typed write-ahead log on top of a simulated {!Disk}.

    Entries are appended to the device buffer immediately; [sync]
    confirms durability of everything appended so far.  On [crash],
    entries whose stamp is newer than the disk's last durable epoch are
    lost (in [Delayed] mode this can include acknowledged entries —
    the Figure 5(b) trade-off).  [recover] returns the surviving prefix
    in append order. *)

type 'entry t

val create : engine:Engine.t -> disk:Disk.t -> unit -> 'entry t
val disk : 'entry t -> Disk.t

val append : 'entry t -> 'entry -> unit
(** Buffer an entry; not yet durable. *)

val sync : 'entry t -> (unit -> unit) -> unit
(** Make all appended entries durable; callback on completion
    (group-committed with concurrent syncs on the same disk).  In
    [Delayed] disk mode, the callback fires quickly and durability is
    *not* guaranteed. *)

val append_sync : 'entry t -> 'entry -> (unit -> unit) -> unit
(** [append] then [sync]. *)

val crash : 'entry t -> unit
(** Applies crash semantics: the non-durable suffix is discarded. *)

val recover : 'entry t -> 'entry list
(** Surviving entries, oldest first.  Valid any time; after [crash] it
    reflects the lost suffix. *)

val compact : 'entry t -> keep:('entry -> bool) -> unit
(** Drops entries for which [keep] is false; [keep] is applied in append
    order (oldest first), so it may carry state.  Models atomically
    switching to a freshly written log segment, so it should only be
    called when the retained entries' durability has been established
    (e.g. right after a checkpoint sync). *)

val length : 'entry t -> int
(** Entries currently in the log (durable or not). *)
