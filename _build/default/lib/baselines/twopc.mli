open Repro_sim
open Repro_net
open Repro_storage

(** Two-phase commit replication, the paper's first comparator (§7).

    Each action is a distributed transaction coordinated by the replica
    that received it: PREPARE to all peers (n-1 unicasts), each
    participant forces a prepare record to disk before voting YES, the
    coordinator forces the commit decision, then sends COMMIT (n-1
    unicasts).  Presumed-commit variant: per action, two forced disk
    writes on the critical path (participant prepare + coordinator
    commit decision) and 2n unicast messages — the costs the paper
    cites.  A missing vote aborts the transaction
    after a timeout (participant crash / partition); 2PC's blocking
    behaviour under coordinator failure is reported, not worked around.

    As in the paper's measurements, clients are answered when the action
    commits globally; no database is attached. *)

type cluster

val make_cluster :
  ?net_config:Network.config ->
  ?disk_config:Disk.config ->
  ?vote_timeout:Time.t ->
  ?attach_cpu:bool ->
  ?seed:int ->
  nodes:Node_id.t list ->
  unit ->
  cluster

val sim : cluster -> Engine.t
val topology : cluster -> Topology.t

type outcome = Committed | Aborted

val submit :
  cluster ->
  node:Node_id.t ->
  ?size:int ->
  on_response:(outcome -> unit) ->
  unit ->
  unit
(** A client action entering at [node] (its coordinator). *)

val committed : cluster -> int
val aborted : cluster -> int
val crash : cluster -> Node_id.t -> unit
val recover : cluster -> Node_id.t -> unit
