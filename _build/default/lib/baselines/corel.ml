open Repro_net
open Repro_gcs
open Repro_storage
module Sim = Repro_sim

type payload =
  | Act of { act_origin : Node_id.t; act_seq : int; act_size : int }
  | Ack of { ack_from : Node_id.t; ack_durable : int }
      (* cumulative: this replica has forced all deliveries up to index *)

type node_state = {
  ns_id : Node_id.t;
  ns_disk : Disk.t;
  mutable ns_endpoint : payload Endpoint.t option;
  mutable ns_delivered : int; (* deliveries in local total order *)
  mutable ns_durable : int; (* forced prefix *)
  mutable ns_committed : int; (* prefix acked by all members *)
  mutable ns_forcing : bool;
  ns_acks : (Node_id.t, int) Hashtbl.t;
  ns_log : (int, payload) Hashtbl.t; (* delivery index -> action *)
  ns_pending : (int, unit -> unit) Hashtbl.t; (* own seq -> client callback *)
  mutable ns_view : Endpoint.view option;
}

type cluster = {
  c_sim : Sim.Engine.t;
  c_topology : Topology.t;
  c_net : payload Endpoint.wire Network.t;
  c_states : (Node_id.t, node_state) Hashtbl.t;
  c_nodes : Node_id.t list;
  mutable c_committed : int;
  mutable c_seq : int;
}

let sim c = c.c_sim
let topology c = c.c_topology
let committed c = c.c_committed

let ack_size = 32

let multicast_ack c ns =
  match ns.ns_endpoint with
  | Some ep when Endpoint.is_installed ep ->
    Endpoint.send ep ~service:Endpoint.Agreed ~size:ack_size
      (Ack { ack_from = ns.ns_id; ack_durable = ns.ns_durable })
  | _ -> ignore c

(* Commit every delivery whose index is acknowledged-durable by all
   current members; answer clients for own actions. *)
let advance_commits c ns =
  match ns.ns_view with
  | None -> ()
  | Some view ->
    let covered =
      Node_id.Set.fold
        (fun m acc ->
          let a =
            if Node_id.equal m ns.ns_id then ns.ns_durable
            else match Hashtbl.find_opt ns.ns_acks m with Some a -> a | None -> 0
          in
          min acc a)
        view.Endpoint.members max_int
    in
    while ns.ns_committed < min covered ns.ns_delivered do
      ns.ns_committed <- ns.ns_committed + 1;
      match Hashtbl.find_opt ns.ns_log ns.ns_committed with
      | Some (Act { act_origin; act_seq; _ }) when Node_id.equal act_origin ns.ns_id
        -> (
        c.c_committed <- c.c_committed + 1;
        match Hashtbl.find_opt ns.ns_pending act_seq with
        | Some k ->
          Hashtbl.remove ns.ns_pending act_seq;
          k ()
        | None -> ())
      | _ -> ()
    done

(* Force the delivered prefix; when the force lands, one acknowledgement
   multicast is sent per newly durable action — COReL end-to-end
   acknowledges every transaction message (its per-action cost), even
   though the index carried is cumulative. *)
let rec force_loop c ns =
  if (not ns.ns_forcing) && ns.ns_durable < ns.ns_delivered then begin
    ns.ns_forcing <- true;
    let target = ns.ns_delivered in
    Disk.force ns.ns_disk (fun () ->
        ns.ns_forcing <- false;
        if target > ns.ns_durable then begin
          let previous = ns.ns_durable in
          ns.ns_durable <- target;
          for _ = previous + 1 to target do
            multicast_ack c ns
          done;
          advance_commits c ns
        end;
        force_loop c ns)
  end

let on_event c ns = function
  | Endpoint.Deliver d -> (
    match d.Endpoint.payload with
    | Act _ as act ->
      ns.ns_delivered <- ns.ns_delivered + 1;
      Hashtbl.replace ns.ns_log ns.ns_delivered act;
      force_loop c ns
    | Ack { ack_from; ack_durable } ->
      let prev =
        match Hashtbl.find_opt ns.ns_acks ack_from with Some a -> a | None -> 0
      in
      if ack_durable > prev then begin
        Hashtbl.replace ns.ns_acks ack_from ack_durable;
        advance_commits c ns
      end)
  | Endpoint.Reg_conf view ->
    ns.ns_view <- Some view;
    advance_commits c ns
  | Endpoint.Trans_conf _ -> ()

let make_cluster ?(net_config = Network.lan_100mbit)
    ?(disk_config = Disk.default_forced) ?(params = Params.default)
    ?(attach_cpu = true) ?(seed = 41) ~nodes () =
  let c_sim = Sim.Engine.create ~seed () in
  let c_topology = Topology.create ~nodes in
  let c_net = Network.create ~engine:c_sim ~topology:c_topology ~config:net_config () in
  let c =
    {
      c_sim;
      c_topology;
      c_net;
      c_states = Hashtbl.create (List.length nodes);
      c_nodes = nodes;
      c_committed = 0;
      c_seq = 0;
    }
  in
  List.iter
    (fun node ->
      let ns =
        {
          ns_id = node;
          ns_disk = Disk.create ~engine:c_sim ~config:disk_config ();
          ns_endpoint = None;
          ns_delivered = 0;
          ns_durable = 0;
          ns_committed = 0;
          ns_forcing = false;
          ns_acks = Hashtbl.create 8;
          ns_log = Hashtbl.create 256;
          ns_pending = Hashtbl.create 32;
          ns_view = None;
        }
      in
      Hashtbl.replace c.c_states node ns;
      if attach_cpu then begin
        let cpu = Sim.Resource.create c_sim in
        Network.attach_cpu c_net node cpu
      end;
      let ep =
        Endpoint.create ~network:c_net ~params ~node
          ~on_event:(fun e -> on_event c ns e)
          ()
      in
      ns.ns_endpoint <- Some ep)
    nodes;
  c

let start c =
  List.iter
    (fun node ->
      let ns = Hashtbl.find c.c_states node in
      match ns.ns_endpoint with Some ep -> Endpoint.join ep | None -> ())
    c.c_nodes

let submit c ~node ?(size = 200) ~on_response () =
  let ns = Hashtbl.find c.c_states node in
  match ns.ns_endpoint with
  | Some ep ->
    c.c_seq <- c.c_seq + 1;
    let s = c.c_seq in
    Hashtbl.replace ns.ns_pending s on_response;
    Endpoint.send ep ~service:Endpoint.Agreed ~size
      (Act { act_origin = node; act_seq = s; act_size = size })
  | None -> ()
