open Repro_net
open Repro_gcs
open Repro_storage

(** COReL-style consistent object replication (Keidar 1994), the paper's
    second comparator (§7).

    Actions are disseminated through the same group-communication
    total-order service the engine uses, but each action is end-to-end
    acknowledged: every replica forces the delivered action to stable
    storage and multicasts an acknowledgement; the action commits (joins
    the global persistent order) once acknowledgements from *all* current
    members cover it.  Per action: one forced disk write at every replica
    and n multicast messages — the costs the paper cites.  The
    acknowledgement is cumulative (a replica acknowledges its durable
    prefix), which is the strongest variant in COReL's favour.

    This reproduces the performance-relevant structure of COReL in the
    failure-free runs the paper measures; COReL's own
    partition-recovery machinery (which this paper's engine subsumes) is
    out of scope and view changes simply re-evaluate acknowledgement
    coverage against the new membership. *)

type cluster

val make_cluster :
  ?net_config:Network.config ->
  ?disk_config:Disk.config ->
  ?params:Params.t ->
  ?attach_cpu:bool ->
  ?seed:int ->
  nodes:Node_id.t list ->
  unit ->
  cluster

val sim : cluster -> Repro_sim.Engine.t
val topology : cluster -> Topology.t

val start : cluster -> unit
(** Joins all endpoints; run the simulation until views install. *)

val submit :
  cluster ->
  node:Node_id.t ->
  ?size:int ->
  on_response:(unit -> unit) ->
  unit ->
  unit

val committed : cluster -> int
(** Actions that reached the global persistent order (at their origin). *)
