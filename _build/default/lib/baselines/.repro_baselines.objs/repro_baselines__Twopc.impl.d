lib/baselines/twopc.ml: Disk Engine Hashtbl List Network Node_id Repro_net Repro_sim Repro_storage Resource Time Topology
