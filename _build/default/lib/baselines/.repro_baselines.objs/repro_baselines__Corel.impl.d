lib/baselines/corel.ml: Disk Endpoint Hashtbl List Network Node_id Params Repro_gcs Repro_net Repro_sim Repro_storage Topology
