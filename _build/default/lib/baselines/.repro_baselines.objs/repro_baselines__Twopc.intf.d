lib/baselines/twopc.mli: Disk Engine Network Node_id Repro_net Repro_sim Repro_storage Time Topology
