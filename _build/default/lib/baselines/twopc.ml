open Repro_sim
open Repro_net
open Repro_storage

type txn_id = { tx_coord : Node_id.t; tx_seq : int }

type wire =
  | Prepare of { p_tx : txn_id; p_size : int }
  | Vote_yes of { v_tx : txn_id }
  | Commit of { c_tx : txn_id }
  | Abort of { a_tx : txn_id }

type pending = {
  mutable votes : Node_id.Set.t;
  mutable decided : bool;
  on_response : outcome -> unit;
}

and outcome = Committed | Aborted

type node_state = {
  ns_id : Node_id.t;
  ns_disk : Disk.t;
  ns_pending : (txn_id, pending) Hashtbl.t; (* coordinator side *)
  mutable ns_up : bool;
}

type cluster = {
  c_sim : Engine.t;
  c_topology : Topology.t;
  c_net : wire Network.t;
  c_nodes : Node_id.t list;
  c_states : (Node_id.t, node_state) Hashtbl.t;
  c_vote_timeout : Time.t;
  mutable c_seq : int;
  mutable c_committed : int;
  mutable c_aborted : int;
}

let sim c = c.c_sim
let topology c = c.c_topology
let committed c = c.c_committed
let aborted c = c.c_aborted

let wire_size = function
  | Prepare { p_size; _ } -> p_size + 48
  | Vote_yes _ | Commit _ | Abort _ -> 48

let peers c node = List.filter (fun n -> not (Node_id.equal n node)) c.c_nodes

let send c ~src ~dst msg =
  Network.unicast c.c_net ~src ~dst ~size:(wire_size msg) msg

let state c node = Hashtbl.find c.c_states node

let decide c ns tx outcome =
  match Hashtbl.find_opt ns.ns_pending tx with
  | Some p when not p.decided ->
    p.decided <- true;
    Hashtbl.remove ns.ns_pending tx;
    (match outcome with
    | Committed ->
      c.c_committed <- c.c_committed + 1;
      List.iter (fun dst -> send c ~src:ns.ns_id ~dst (Commit { c_tx = tx })) (peers c ns.ns_id)
    | Aborted ->
      c.c_aborted <- c.c_aborted + 1;
      List.iter (fun dst -> send c ~src:ns.ns_id ~dst (Abort { a_tx = tx })) (peers c ns.ns_id));
    p.on_response outcome
  | _ -> ()

let handle c ns ~src msg =
  if ns.ns_up then
    match msg with
    | Prepare { p_tx; _ } ->
      (* Participant: force the prepare record, then vote. *)
      Disk.force ns.ns_disk (fun () ->
          if ns.ns_up then send c ~src:ns.ns_id ~dst:src (Vote_yes { v_tx = p_tx }))
    | Vote_yes { v_tx } -> (
      match Hashtbl.find_opt ns.ns_pending v_tx with
      | Some p when not p.decided ->
        p.votes <- Node_id.Set.add src p.votes;
        let all = Node_id.set_of_list (peers c ns.ns_id) in
        if Node_id.Set.subset all p.votes then
          (* Force the commit decision before answering anyone. *)
          Disk.force ns.ns_disk (fun () ->
              if ns.ns_up then decide c ns v_tx Committed)
      | _ -> ())
    | Commit _ -> () (* presumed commit: no participant commit record *)
    | Abort _ -> ()

let make_cluster ?(net_config = Network.lan_100mbit)
    ?(disk_config = Disk.default_forced) ?(vote_timeout = Time.of_sec 2.)
    ?(attach_cpu = true) ?(seed = 31) ~nodes () =
  let c_sim = Engine.create ~seed () in
  let c_topology = Topology.create ~nodes in
  let c_net = Network.create ~engine:c_sim ~topology:c_topology ~config:net_config () in
  let c =
    {
      c_sim;
      c_topology;
      c_net;
      c_nodes = nodes;
      c_states = Hashtbl.create (List.length nodes);
      c_vote_timeout = vote_timeout;
      c_seq = 0;
      c_committed = 0;
      c_aborted = 0;
    }
  in
  List.iter
    (fun node ->
      let ns =
        {
          ns_id = node;
          ns_disk = Disk.create ~engine:c_sim ~config:disk_config ();
          ns_pending = Hashtbl.create 32;
          ns_up = true;
        }
      in
      Hashtbl.replace c.c_states node ns;
      if attach_cpu then begin
        let cpu = Resource.create c_sim in
        Network.attach_cpu c_net node cpu
      end;
      Network.register c_net node ~handler:(fun ~src msg -> handle c ns ~src msg))
    nodes;
  c

let submit c ~node ?(size = 200) ~on_response () =
  let ns = state c node in
  if not ns.ns_up then on_response Aborted
  else begin
    c.c_seq <- c.c_seq + 1;
    let tx = { tx_coord = node; tx_seq = c.c_seq } in
    let p = { votes = Node_id.Set.empty; decided = false; on_response } in
    Hashtbl.replace ns.ns_pending tx p;
    (* Presumed-abort 2PC: the coordinator logs nothing before asking for
       votes, so the critical path carries exactly two forced writes —
       the participants' prepare and the coordinator's commit decision. *)
    (match peers c node with
    | [] -> Disk.force ns.ns_disk (fun () -> decide c ns tx Committed)
    | dsts ->
      List.iter
        (fun dst -> send c ~src:node ~dst (Prepare { p_tx = tx; p_size = size }))
        dsts);
    ignore
      (Engine.schedule c.c_sim ~delay:c.c_vote_timeout (fun () ->
           if ns.ns_up then decide c ns tx Aborted))
  end

let crash c node =
  let ns = state c node in
  ns.ns_up <- false;
  Network.set_up c.c_net node false;
  Disk.crash ns.ns_disk;
  Hashtbl.reset ns.ns_pending

let recover c node =
  let ns = state c node in
  ns.ns_up <- true;
  Network.set_up c.c_net node true
