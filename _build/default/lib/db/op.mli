(** Update operations — the write half of an action.

    [Add] is commutative and [Set_if_newer] is timestamp-guarded; these
    two support the relaxed update semantics of the paper's Section 6
    (inventory-style and location-tracking-style applications): applying
    them in different interleavings converges to the same state. *)

type t =
  | Set of string * Value.t
  | Add of string * int  (** numeric increment; missing key counts as 0 *)
  | Remove of string
  | Set_if_newer of string * Value.t * int
      (** write wins only if its timestamp exceeds the stored one *)

val is_commutative : t -> bool
(** Whether re-ordering this op against any other commutative op leaves
    the final state unchanged ([Add] and [Set_if_newer]). *)

val pp : Format.formatter -> t -> unit
