(** Deterministic stored procedures for active transactions (paper §6).

    A procedure computes its updates from the current database state and
    its arguments only, so every replica invoking it at the same point in
    the global order produces the same transition.  Procedures are looked
    up by name at execution (ordering) time, never at creation time. *)

type result = {
  updates : Op.t list;  (** applied atomically after the call *)
  output : Value.t;  (** returned to the client *)
}

type body = Database.t -> Value.t list -> result

val register : string -> body -> unit
(** Registers (or replaces) a procedure under a global name. *)

val find : string -> body option
val known : unit -> string list

val builtins_registered : unit -> unit
(** Ensures the built-in procedures exist:
    - ["transfer"] [\[Text from; Text to_; Int amount\]]: moves funds iff
      the source balance suffices; returns [Int 1] on success, [Int 0] on
      refusal.
    - ["restock"] [\[Text item; Int n\]]: commutative stock increment;
      returns the (locally visible) new level.
    - ["cas"] [\[Text key; expected; desired\]]: compare-and-set; returns
      [Int 1] iff the stored value equalled [expected]. *)
