type t =
  | Set of string * Value.t
  | Add of string * int
  | Remove of string
  | Set_if_newer of string * Value.t * int

let is_commutative = function
  | Add _ | Set_if_newer _ -> true
  | Set _ | Remove _ -> false

let pp ppf = function
  | Set (k, v) -> Format.fprintf ppf "set %s=%a" k Value.pp v
  | Add (k, n) -> Format.fprintf ppf "add %s+=%d" k n
  | Remove k -> Format.fprintf ppf "remove %s" k
  | Set_if_newer (k, v, ts) ->
    Format.fprintf ppf "set-if-newer %s=%a@@%d" k Value.pp v ts
