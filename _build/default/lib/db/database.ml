module Smap = Map.Make (String)

type cell = { value : Value.t; ts : int }
type snapshot = { s_map : cell Smap.t; s_version : int }
type t = { mutable map : cell Smap.t; mutable version : int }

let create () = { map = Smap.empty; version = 0 }

let get t k =
  match Smap.find_opt k t.map with Some c -> Some c.value | None -> None

let timestamp t k =
  match Smap.find_opt k t.map with Some c -> c.ts | None -> 0

let apply_op map = function
  | Op.Set (k, v) ->
    let ts = match Smap.find_opt k map with Some c -> c.ts | None -> 0 in
    Smap.add k { value = v; ts } map
  | Op.Add (k, n) ->
    let current, ts =
      match Smap.find_opt k map with
      | Some { value = Value.Int v; ts } -> (v, ts)
      | Some { value = Value.Text _; ts } -> (0, ts)
      | None -> (0, 0)
    in
    Smap.add k { value = Value.Int (current + n); ts } map
  | Op.Remove k -> Smap.remove k map
  | Op.Set_if_newer (k, v, ts) -> (
    match Smap.find_opt k map with
    | Some c when c.ts >= ts -> map
    | _ -> Smap.add k { value = v; ts } map)

let apply t ops =
  t.map <- List.fold_left apply_op t.map ops;
  t.version <- t.version + 1

let read t keys = List.map (fun k -> (k, get t k)) keys
let size t = Smap.cardinal t.map
let version t = t.version

let digest t =
  (* Commutative combination over an order-insensitive per-binding hash:
     equal maps give equal digests regardless of internal structure. *)
  Smap.fold
    (fun k c acc -> acc + Hashtbl.hash (k, c.value, c.ts))
    t.map 0

let snapshot t = { s_map = t.map; s_version = t.version }

let restore t s =
  t.map <- s.s_map;
  t.version <- s.s_version

let of_snapshot s = { map = s.s_map; version = s.s_version }
let copy t = { map = t.map; version = t.version }

let snapshot_size s =
  Smap.fold
    (fun k c acc ->
      let vsize =
        match c.value with Value.Int _ -> 8 | Value.Text txt -> String.length txt
      in
      acc + String.length k + vsize + 16)
    s.s_map 64

let bindings t = Smap.bindings t.map |> List.map (fun (k, c) -> (k, c.value))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Smap.iter
    (fun k c -> Format.fprintf ppf "%s = %a@," k Value.pp c.value)
    t.map;
  Format.fprintf ppf "@]"
