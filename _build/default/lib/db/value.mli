(** Database values. *)

type t = Int of int | Text of string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
