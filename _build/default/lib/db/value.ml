type t = Int of int | Text of string

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Text x, Text y -> String.compare x y
  | Int _, Text _ -> -1
  | Text _, Int _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Text s -> Format.fprintf ppf "%S" s

let to_string t = Format.asprintf "%a" pp t
