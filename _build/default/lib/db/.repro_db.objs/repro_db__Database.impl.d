lib/db/database.ml: Format Hashtbl List Map Op String Value
