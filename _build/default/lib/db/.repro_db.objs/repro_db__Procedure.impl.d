lib/db/procedure.ml: Database Hashtbl Op Value
