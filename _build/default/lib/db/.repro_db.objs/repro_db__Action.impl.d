lib/db/action.ml: Format Int List Node_id Op Repro_net String Value
