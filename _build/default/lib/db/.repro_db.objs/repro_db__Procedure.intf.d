lib/db/procedure.mli: Database Op Value
