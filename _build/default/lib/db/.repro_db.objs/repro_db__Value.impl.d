lib/db/value.ml: Format Int String
