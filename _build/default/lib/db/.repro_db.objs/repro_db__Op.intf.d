lib/db/op.mli: Format Value
