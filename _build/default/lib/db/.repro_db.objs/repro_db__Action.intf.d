lib/db/action.mli: Format Node_id Op Repro_net Value
