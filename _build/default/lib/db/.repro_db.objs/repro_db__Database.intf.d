lib/db/database.mli: Format Op Value
