lib/db/executor.ml: Action Database List Procedure Value
