lib/db/executor.mli: Action Database
