lib/db/op.ml: Format Value
