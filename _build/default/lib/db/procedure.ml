type result = { updates : Op.t list; output : Value.t }
type body = Database.t -> Value.t list -> result

let registry : (string, body) Hashtbl.t = Hashtbl.create 16

let register name body = Hashtbl.replace registry name body
let find name = Hashtbl.find_opt registry name
let known () = Hashtbl.fold (fun k _ acc -> k :: acc) registry []

let int_of = function Value.Int n -> n | Value.Text _ -> 0

let transfer db = function
  | [ Value.Text from_acct; Value.Text to_acct; Value.Int amount ] ->
    let balance =
      match Database.get db from_acct with Some (Value.Int b) -> b | _ -> 0
    in
    if balance >= amount && amount >= 0 then
      {
        updates = [ Op.Add (from_acct, -amount); Op.Add (to_acct, amount) ];
        output = Value.Int 1;
      }
    else { updates = []; output = Value.Int 0 }
  | _ -> { updates = []; output = Value.Int 0 }

let restock db = function
  | [ Value.Text item; Value.Int n ] ->
    let level =
      match Database.get db item with Some (Value.Int l) -> l | _ -> 0
    in
    { updates = [ Op.Add (item, n) ]; output = Value.Int (level + n) }
  | _ -> { updates = []; output = Value.Int 0 }

let cas db = function
  | [ Value.Text key; expected; desired ] ->
    let matches =
      match Database.get db key with
      | Some v -> Value.equal v expected
      | None -> int_of expected = 0 && Value.equal expected (Value.Int 0)
    in
    if matches then
      { updates = [ Op.Set (key, desired) ]; output = Value.Int 1 }
    else { updates = []; output = Value.Int 0 }
  | _ -> { updates = []; output = Value.Int 0 }

let builtins_registered () =
  if not (Hashtbl.mem registry "transfer") then begin
    register "transfer" transfer;
    register "restock" restock;
    register "cas" cas
  end
