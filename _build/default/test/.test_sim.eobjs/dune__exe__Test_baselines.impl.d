test/test_baselines.ml: Alcotest Corel Engine Fun List Network Printf Repro_baselines Repro_gcs Repro_net Repro_sim Repro_storage Time Topology Twopc
