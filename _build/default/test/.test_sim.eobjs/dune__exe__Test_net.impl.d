test/test_net.ml: Alcotest Engine Fun Gen List Network Printf QCheck QCheck_alcotest Repro_net Repro_sim Resource Time Topology
