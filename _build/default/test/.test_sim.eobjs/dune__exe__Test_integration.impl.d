test/test_integration.ml: Action Alcotest Consistency Engine Format List Node_id Op Printf Replica Repro_core Repro_db Repro_harness Repro_net String Topology Types Value World
