test/test_db.ml: Action Alcotest Database Executor List Op Printf Procedure QCheck QCheck_alcotest Repro_db String Value
