test/test_sim.ml: Alcotest Engine Float Fun Heap Int List QCheck QCheck_alcotest Repro_sim Resource Rng Stats Time Trace
