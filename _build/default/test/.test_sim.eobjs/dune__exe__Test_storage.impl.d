test/test_storage.ml: Alcotest Disk Engine Int List Printf Repro_sim Repro_storage Stable_cell Time Wlog
