test/test_gcs.ml: Alcotest Conf_id Endpoint Engine Gen Hashtbl List Network Node_id Params Printf QCheck QCheck_alcotest Repro_gcs Repro_net Repro_sim String Time Topology
