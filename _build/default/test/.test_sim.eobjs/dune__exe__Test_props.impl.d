test/test_props.ml: Alcotest Consistency Fun List Printf QCheck QCheck_alcotest Replica Repro_core Repro_harness Repro_net String Topology World
