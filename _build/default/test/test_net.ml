(* Tests of the network simulator: delivery, latency, partitions, crash
   semantics, CPU accounting. *)

open Repro_sim
open Repro_net

let quiet_lan =
  {
    Network.lan_100mbit with
    jitter = 0.;
    send_cpu_cost = Time.zero;
    recv_cpu_cost = Time.zero;
    recv_cpu_per_kb = Time.zero;
  }

let make ?(config = quiet_lan) n =
  let engine = Engine.create () in
  let topology = Topology.create ~nodes:(List.init n Fun.id) in
  let network = Network.create ~engine ~topology ~config () in
  (engine, topology, network)

let collect network node =
  let received = ref [] in
  Network.register network node ~handler:(fun ~src msg ->
      received := (src, msg) :: !received);
  received

let test_unicast_delivers () =
  let engine, _, network = make 2 in
  let rx = collect network 1 in
  Network.register network 0 ~handler:(fun ~src:_ _ -> ());
  Network.unicast network ~src:0 ~dst:1 ~size:100 "hello";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !rx

let test_latency_includes_serialisation () =
  let engine, _, network = make 2 in
  let at = ref Time.zero in
  Network.register network 1 ~handler:(fun ~src:_ _ -> at := Engine.now engine);
  (* 12500 bytes at 100 Mbit/s = 1 ms serialisation + 100 us propagation. *)
  Network.unicast network ~src:0 ~dst:1 ~size:12_500 "big";
  Engine.run engine;
  Alcotest.(check int) "latency" 1_100 (Time.to_us !at)

let test_multicast_fanout () =
  let engine, _, network = make 4 in
  let rxs = List.map (collect network) [ 1; 2; 3 ] in
  Network.multicast network ~src:0 ~dsts:[ 1; 2; 3 ] ~size:10 "m";
  Engine.run engine;
  List.iter
    (fun rx -> Alcotest.(check int) "one copy" 1 (List.length !rx))
    rxs

let test_partition_blocks () =
  let engine, topology, network = make 3 in
  let rx2 = collect network 2 in
  Topology.partition topology [ [ 0; 1 ]; [ 2 ] ];
  Network.unicast network ~src:0 ~dst:2 ~size:10 "x";
  Engine.run engine;
  Alcotest.(check int) "blocked" 0 (List.length !rx2);
  Alcotest.(check int) "counted dropped" 1 (Network.messages_dropped network)

let test_in_flight_cut_drops () =
  let engine, topology, network = make 2 in
  let rx = collect network 1 in
  Network.unicast network ~src:0 ~dst:1 ~size:10 "x";
  (* Cut the link before the message lands. *)
  ignore
    (Engine.schedule engine ~delay:(Time.of_us 10) (fun () ->
         Topology.partition topology [ [ 0 ]; [ 1 ] ]));
  Engine.run engine;
  Alcotest.(check int) "in-flight message lost" 0 (List.length !rx)

let test_crashed_node_silent () =
  let engine, _, network = make 2 in
  let rx = collect network 1 in
  Network.set_up network 1 false;
  Network.unicast network ~src:0 ~dst:1 ~size:10 "x";
  Engine.run engine;
  Alcotest.(check int) "down node receives nothing" 0 (List.length !rx);
  Network.set_up network 1 true;
  Network.unicast network ~src:0 ~dst:1 ~size:10 "y";
  Engine.run engine;
  Alcotest.(check int) "up again receives" 1 (List.length !rx)

let test_broadcast_component_scope () =
  let engine, topology, network = make 4 in
  let rx1 = collect network 1
  and rx2 = collect network 2
  and rx3 = collect network 3 in
  Network.register network 0 ~handler:(fun ~src:_ _ -> ());
  Topology.partition topology [ [ 0; 1; 2 ]; [ 3 ] ];
  Network.broadcast_component network ~src:0 ~size:10 "b";
  Engine.run engine;
  Alcotest.(check int) "member 1 got it" 1 (List.length !rx1);
  Alcotest.(check int) "member 2 got it" 1 (List.length !rx2);
  Alcotest.(check int) "detached 3 did not" 0 (List.length !rx3)

let test_loss_probability () =
  let config = { quiet_lan with loss_probability = 0.5 } in
  let engine, _, network = make ~config 2 in
  let rx = collect network 1 in
  for _ = 1 to 1000 do
    Network.unicast network ~src:0 ~dst:1 ~size:10 "l"
  done;
  Engine.run engine;
  let n = List.length !rx in
  Alcotest.(check bool)
    (Printf.sprintf "roughly half delivered (%d)" n)
    true
    (n > 350 && n < 650)

let test_cpu_serialises_receives () =
  let config =
    { quiet_lan with recv_cpu_cost = Time.of_us 100; send_cpu_cost = Time.zero; recv_cpu_per_kb = Time.zero }
  in
  let engine, _, network = make ~config 2 in
  let cpu = Resource.create engine in
  Network.attach_cpu network 1 cpu;
  let times = ref [] in
  Network.register network 1 ~handler:(fun ~src:_ _ ->
      times := Time.to_us (Engine.now engine) :: !times);
  Network.unicast network ~src:0 ~dst:1 ~size:0 "a";
  Network.unicast network ~src:0 ~dst:1 ~size:0 "b";
  Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check bool) "second waits for cpu" true (t2 - t1 >= 100)
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_topology_components () =
  let topology = Topology.create ~nodes:[ 0; 1; 2; 3; 4 ] in
  Alcotest.(check int) "one component" 1 (List.length (Topology.components topology));
  Topology.partition topology [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ];
  Alcotest.(check int) "three components" 3 (List.length (Topology.components topology));
  Alcotest.(check bool) "0-1 connected" true (Topology.connected topology 0 1);
  Alcotest.(check bool) "1-2 cut" false (Topology.connected topology 1 2);
  Topology.merge topology [ 0; 2 ];
  Alcotest.(check bool) "0-2 merged" true (Topology.connected topology 0 2);
  Alcotest.(check bool) "4 still alone" false (Topology.connected topology 0 4);
  Topology.merge_all topology;
  Alcotest.(check int) "healed" 1 (List.length (Topology.components topology))

let test_topology_add_isolate () =
  let topology = Topology.create ~nodes:[ 0; 1 ] in
  Topology.add_node topology 2;
  Alcotest.(check bool) "new node connected" true (Topology.connected topology 0 2);
  Topology.isolate topology 2;
  Alcotest.(check bool) "isolated" false (Topology.connected topology 0 2);
  Alcotest.(check bool) "self-connected" true (Topology.connected topology 2 2)

let test_topology_epoch () =
  let topology = Topology.create ~nodes:[ 0; 1 ] in
  let e0 = Topology.epoch topology in
  Topology.partition topology [ [ 0 ]; [ 1 ] ];
  Alcotest.(check bool) "epoch bumped" true (Topology.epoch topology > e0)

let prop_channel_fifo =
  QCheck.Test.make ~name:"per-channel delivery preserves send order" ~count:50
    QCheck.(list_of_size Gen.(int_range 2 30) (int_range 0 20_000))
    (fun sizes ->
      (* Heavy jitter would reorder without the FIFO horizon. *)
      let config = { Network.lan_100mbit with jitter = 2.0 } in
      let engine = Engine.create ~seed:7 () in
      let topology = Topology.create ~nodes:[ 0; 1 ] in
      let network = Network.create ~engine ~topology ~config () in
      let received = ref [] in
      Network.register network 1 ~handler:(fun ~src:_ msg ->
          received := msg :: !received);
      List.iteri
        (fun i size -> Network.unicast network ~src:0 ~dst:1 ~size i)
        sizes;
      Engine.run engine;
      List.rev !received = List.init (List.length sizes) Fun.id)

let prop_partition_is_equivalence =
  QCheck.Test.make ~name:"connectivity is symmetric and transitive" ~count:100
    QCheck.(pair (int_bound 4) (int_bound 4))
    (fun (a, b) ->
      let topology = Topology.create ~nodes:[ 0; 1; 2; 3; 4 ] in
      Topology.partition topology [ [ 0; 1; 2 ]; [ 3; 4 ] ];
      Topology.connected topology a b = Topology.connected topology b a)

let () =
  Alcotest.run "net"
    [
      ( "delivery",
        [
          Alcotest.test_case "unicast" `Quick test_unicast_delivers;
          Alcotest.test_case "latency model" `Quick test_latency_includes_serialisation;
          Alcotest.test_case "multicast fanout" `Quick test_multicast_fanout;
          Alcotest.test_case "loss probability" `Quick test_loss_probability;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "partition blocks" `Quick test_partition_blocks;
          Alcotest.test_case "in-flight cut drops" `Quick test_in_flight_cut_drops;
          Alcotest.test_case "broadcast component scope" `Quick
            test_broadcast_component_scope;
        ] );
      ( "crash",
        [ Alcotest.test_case "crashed node silent" `Quick test_crashed_node_silent ] );
      ( "cpu",
        [ Alcotest.test_case "cpu serialises receives" `Quick test_cpu_serialises_receives ] );
      ( "topology",
        [
          Alcotest.test_case "components" `Quick test_topology_components;
          Alcotest.test_case "add and isolate" `Quick test_topology_add_isolate;
          Alcotest.test_case "epoch" `Quick test_topology_epoch;
          QCheck_alcotest.to_alcotest prop_partition_is_equivalence;
        ] );
      ( "fifo",
        [ QCheck_alcotest.to_alcotest prop_channel_fifo ] );
    ]
