(* Tests of the EVS group-communication stack: view installation, total
   order, safe delivery, partitions, merges, crash and recovery. *)

open Repro_sim
open Repro_net
open Repro_gcs

type payload = string

type node_log = {
  mutable deliveries : (Node_id.t * payload * int * bool) list; (* newest first *)
  mutable reg_views : Endpoint.view list; (* newest first *)
  mutable trans_views : Endpoint.view list;
}

type cluster = {
  engine : Engine.t;
  topology : Topology.t;
  network : payload Endpoint.wire Network.t;
  endpoints : (Node_id.t, payload Endpoint.t) Hashtbl.t;
  logs : (Node_id.t, node_log) Hashtbl.t;
}

let no_cpu_lan =
  {
    Network.lan_100mbit with
    send_cpu_cost = Time.zero;
    recv_cpu_cost = Time.zero;
    recv_cpu_per_kb = Time.zero;
  }

let make_cluster ?(config = no_cpu_lan) ?(params = Params.fast) ?(seed = 7) n =
  let engine = Engine.create ~seed () in
  let nodes = List.init n (fun i -> i) in
  let topology = Topology.create ~nodes in
  let network = Network.create ~engine ~topology ~config () in
  let endpoints = Hashtbl.create n in
  let logs = Hashtbl.create n in
  List.iter
    (fun node ->
      let log = { deliveries = []; reg_views = []; trans_views = [] } in
      Hashtbl.replace logs node log;
      let on_event = function
        | Endpoint.Deliver d ->
          log.deliveries <-
            (d.Endpoint.sender, d.payload, d.seq, d.in_regular) :: log.deliveries
        | Endpoint.Reg_conf v -> log.reg_views <- v :: log.reg_views
        | Endpoint.Trans_conf v -> log.trans_views <- v :: log.trans_views
      in
      let ep = Endpoint.create ~network ~params ~node ~on_event () in
      Hashtbl.replace endpoints node ep)
    nodes;
  { engine; topology; network; endpoints; logs }

let ep c node = Hashtbl.find c.endpoints node
let log c node = Hashtbl.find c.logs node
let join_all c = Hashtbl.iter (fun _ e -> Endpoint.join e) c.endpoints
let run c ~ms = Engine.run ~until:(Time.add (Engine.now c.engine) ~span:(Time.of_ms ms)) c.engine

let view_exn c node =
  match Endpoint.current_view (ep c node) with
  | Some v -> v
  | None -> Alcotest.failf "node %d has no installed view" node

let delivered_payloads c node =
  List.rev_map (fun (_, p, _, _) -> p) (log c node).deliveries

let check_same_view c nodes =
  match nodes with
  | [] -> ()
  | first :: rest ->
    let v = view_exn c first in
    List.iter
      (fun n ->
        let v' = view_exn c n in
        Alcotest.(check bool)
          (Printf.sprintf "node %d same view as node %d" n first)
          true
          (Conf_id.equal v.Endpoint.id v'.Endpoint.id
          && Node_id.Set.equal v.members v'.members))
      rest;
    ()

(* ------------------------------------------------------------------ *)

let test_initial_install () =
  let c = make_cluster 3 in
  join_all c;
  run c ~ms:500.;
  check_same_view c [ 0; 1; 2 ];
  let v = view_exn c 0 in
  Alcotest.(check int) "3 members" 3 (Node_id.Set.cardinal v.members)

let test_singleton_install () =
  let c = make_cluster 1 in
  join_all c;
  run c ~ms:300.;
  let v = view_exn c 0 in
  Alcotest.(check int) "solo view" 1 (Node_id.Set.cardinal v.members)

let test_total_order () =
  let c = make_cluster 5 in
  join_all c;
  run c ~ms:500.;
  (* Interleave sends from all nodes. *)
  for i = 0 to 19 do
    let sender = i mod 5 in
    Endpoint.send (ep c sender) ~service:Safe ~size:200
      (Printf.sprintf "m%d-from%d" i sender)
  done;
  run c ~ms:500.;
  let reference = delivered_payloads c 0 in
  Alcotest.(check int) "all delivered" 20 (List.length reference);
  for n = 1 to 4 do
    Alcotest.(check (list string))
      (Printf.sprintf "node %d same order" n)
      reference (delivered_payloads c n)
  done;
  (* All delivered in the regular configuration (safe). *)
  List.iter
    (fun (_, _, _, in_regular) ->
      Alcotest.(check bool) "in regular" true in_regular)
    (log c 0).deliveries

let test_agreed_vs_safe_order () =
  let c = make_cluster 3 in
  join_all c;
  run c ~ms:500.;
  Endpoint.send (ep c 0) ~service:Agreed ~size:50 "a1";
  Endpoint.send (ep c 1) ~service:Safe ~size:50 "s1";
  Endpoint.send (ep c 2) ~service:Agreed ~size:50 "a2";
  run c ~ms:500.;
  let reference = delivered_payloads c 0 in
  Alcotest.(check int) "3 delivered" 3 (List.length reference);
  List.iter
    (fun n ->
      Alcotest.(check (list string)) "same order" reference (delivered_payloads c n))
    [ 1; 2 ]

let test_partition_two_views () =
  let c = make_cluster 5 in
  join_all c;
  run c ~ms:500.;
  Topology.partition c.topology [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run c ~ms:800.;
  check_same_view c [ 0; 1; 2 ];
  check_same_view c [ 3; 4 ];
  let v012 = view_exn c 0 and v34 = view_exn c 3 in
  Alcotest.(check int) "majority side 3" 3 (Node_id.Set.cardinal v012.members);
  Alcotest.(check int) "minority side 2" 2 (Node_id.Set.cardinal v34.members);
  (* Both sides keep working independently. *)
  Endpoint.send (ep c 0) ~service:Safe ~size:100 "left";
  Endpoint.send (ep c 4) ~service:Safe ~size:100 "right";
  run c ~ms:500.;
  Alcotest.(check bool)
    "left delivered on left" true
    (List.mem "left" (delivered_payloads c 1));
  Alcotest.(check bool)
    "left not delivered on right" false
    (List.mem "left" (delivered_payloads c 3));
  Alcotest.(check bool)
    "right delivered on right" true
    (List.mem "right" (delivered_payloads c 3))

let test_merge_single_view () =
  let c = make_cluster 5 in
  join_all c;
  run c ~ms:500.;
  Topology.partition c.topology [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  run c ~ms:800.;
  Topology.merge_all c.topology;
  run c ~ms:1000.;
  check_same_view c [ 0; 1; 2; 3; 4 ];
  let v = view_exn c 0 in
  Alcotest.(check int) "merged 5" 5 (Node_id.Set.cardinal v.members)

let test_crash_and_recover () =
  let c = make_cluster 4 in
  join_all c;
  run c ~ms:500.;
  Endpoint.crash (ep c 3);
  run c ~ms:800.;
  check_same_view c [ 0; 1; 2 ];
  let v = view_exn c 0 in
  Alcotest.(check int) "view without crashed" 3 (Node_id.Set.cardinal v.members);
  Endpoint.recover (ep c 3);
  run c ~ms:1000.;
  check_same_view c [ 0; 1; 2; 3 ];
  let v = view_exn c 0 in
  Alcotest.(check int) "recovered view" 4 (Node_id.Set.cardinal v.members)

(* Virtual synchrony: members continuing together into the new view must
   have delivered the same set of messages in the old one. *)
let test_virtual_synchrony_on_partition () =
  let c = make_cluster 4 in
  join_all c;
  run c ~ms:500.;
  (* Fire a burst and cut the network while messages are in flight. *)
  for i = 0 to 30 do
    Endpoint.send (ep c (i mod 4)) ~service:Safe ~size:200 (Printf.sprintf "b%d" i)
  done;
  Engine.run
    ~until:(Time.add (Engine.now c.engine) ~span:(Time.of_ms 1.))
    c.engine;
  Topology.partition c.topology [ [ 0; 1 ]; [ 2; 3 ] ];
  run c ~ms:1500.;
  let d0 = delivered_payloads c 0 and d1 = delivered_payloads c 1 in
  let d2 = delivered_payloads c 2 and d3 = delivered_payloads c 3 in
  Alcotest.(check (list string)) "0 and 1 agree" d0 d1;
  Alcotest.(check (list string)) "2 and 3 agree" d2 d3;
  (* Total order: the two sides' sequences must be prefix-compatible. *)
  let rec common_prefix a b =
    match (a, b) with
    | x :: a', y :: b' when String.equal x y -> common_prefix a' b'
    | _ -> (a, b)
  in
  let ra, rb = common_prefix d0 d2 in
  Alcotest.(check bool)
    "orders are prefix-compatible" true
    (ra = [] || rb = [])

let test_safe_delivery_requires_all_acks () =
  (* With one member isolated before joining acks, safe messages must not
     be regular-delivered by the rest until the view changes. *)
  let c = make_cluster 3 in
  join_all c;
  run c ~ms:500.;
  (* Cut node 2 off, then send: the message cannot become safe in the old
     3-member view; it must be delivered only after a view change. *)
  Topology.partition c.topology [ [ 0; 1 ]; [ 2 ] ];
  Endpoint.send (ep c 0) ~service:Safe ~size:100 "cut";
  run c ~ms:1200.;
  check_same_view c [ 0; 1 ];
  (match (log c 0).deliveries with
  | [ (_, "cut", _, in_regular) ] ->
    Alcotest.(check bool) "not regular-delivered in old view" false in_regular
  | l ->
    Alcotest.failf "expected exactly one delivery of \"cut\", got %d"
      (List.length l));
  Alcotest.(check bool)
    "node 2 never delivers" false
    (List.mem "cut" (delivered_payloads c 2))

let test_queued_sends_flushed_on_install () =
  let c = make_cluster 2 in
  (* Send before any view exists: must be queued, then delivered. *)
  Endpoint.send (ep c 0) ~service:Safe ~size:80 "early";
  join_all c;
  run c ~ms:500.;
  Alcotest.(check bool)
    "queued send delivered" true
    (List.mem "early" (delivered_payloads c 1))

let test_installed_count_grows () =
  let c = make_cluster 3 in
  join_all c;
  run c ~ms:500.;
  let before = Endpoint.installed_count (ep c 0) in
  Topology.partition c.topology [ [ 0 ]; [ 1; 2 ] ];
  run c ~ms:800.;
  Topology.merge_all c.topology;
  run c ~ms:1000.;
  Alcotest.(check bool)
    "installations happened" true
    (Endpoint.installed_count (ep c 0) > before)

let test_many_nodes_install () =
  let c = make_cluster 14 in
  join_all c;
  run c ~ms:1500.;
  check_same_view c (List.init 14 (fun i -> i));
  let v = view_exn c 0 in
  Alcotest.(check int) "14 members" 14 (Node_id.Set.cardinal v.members)

let test_lossy_network_total_order () =
  (* 5% message loss: NACK/repair recovery must still deliver everything,
     gap-free and in one order, to every member.  Default (not fast)
     params so the repair timers run at their real cadence. *)
  let config = { no_cpu_lan with loss_probability = 0.05 } in
  let c = make_cluster ~config ~params:Params.default 4 in
  join_all c;
  run c ~ms:3000.;
  check_same_view c [ 0; 1; 2; 3 ];
  for i = 0 to 99 do
    Endpoint.send (ep c (i mod 4)) ~service:Safe ~size:200 (string_of_int i)
  done;
  run c ~ms:8000.;
  let d0 = delivered_payloads c 0 in
  Alcotest.(check int) "all 100 delivered despite loss" 100 (List.length d0);
  for n = 1 to 3 do
    Alcotest.(check (list string)) "same order" d0 (delivered_payloads c n)
  done

(* EVS order compatibility: across ANY pair of nodes, two messages
   delivered at both must appear in the same relative order — checked
   under randomized partition schedules. *)
let prop_order_compatible =
  QCheck.Test.make ~name:"delivery orders are pairwise compatible" ~count:15
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 3) (int_bound 2)))
    (fun (seed, cuts) ->
      let c = make_cluster ~seed:(seed + 100) 4 in
      join_all c;
      run c ~ms:500.;
      let m = ref 0 in
      List.iter
        (fun cut ->
          for _ = 1 to 10 do
            incr m;
            Endpoint.send
              (ep c (!m mod 4))
              ~service:Safe ~size:100
              (Printf.sprintf "m%d" !m)
          done;
          (match cut with
          | 0 -> Topology.partition c.topology [ [ 0; 1 ]; [ 2; 3 ] ]
          | 1 -> Topology.partition c.topology [ [ 0; 1; 2 ]; [ 3 ] ]
          | _ -> Topology.merge_all c.topology);
          run c ~ms:600.)
        cuts;
      Topology.merge_all c.topology;
      run c ~ms:1500.;
      let orders = List.map (delivered_payloads c) [ 0; 1; 2; 3 ] in
      let pos_of order =
        let tbl = Hashtbl.create 64 in
        List.iteri (fun i p -> Hashtbl.replace tbl p i) order;
        tbl
      in
      let tables = List.map pos_of orders in
      let compatible ta tb =
        Hashtbl.fold
          (fun pa ia acc ->
            acc
            && Hashtbl.fold
                 (fun pb ib acc ->
                   acc
                   &&
                   match (Hashtbl.find_opt tb pa, Hashtbl.find_opt tb pb) with
                   | Some ja, Some jb -> compare ia ib = compare ja jb
                   | _ -> true)
                 ta true)
          ta true
      in
      List.for_all
        (fun ta -> List.for_all (fun tb -> compatible ta tb) tables)
        tables)

(* The paper's §2.1 lists FIFO/causal/total services; agreed delivery
   from a sequencer subsumes both: per-sender FIFO holds (channels and
   ordering preserve it) and causality holds because a message sent in
   reaction to a delivery is necessarily sequenced after it. *)
let test_causality_preserved () =
  let c = make_cluster 4 in
  (* Node 1 answers every delivered "ping-k" with "pong-k". *)
  let log1 = log c 1 in
  let answered = Hashtbl.create 8 in
  join_all c;
  run c ~ms:500.;
  let rec react () =
    List.iter
      (fun (_, p, _, _) ->
        if String.length p >= 5 && String.sub p 0 5 = "ping-" then
          if not (Hashtbl.mem answered p) then begin
            Hashtbl.add answered p ();
            let k = String.sub p 5 (String.length p - 5) in
            Endpoint.send (ep c 1) ~service:Safe ~size:60 ("pong-" ^ k)
          end)
      log1.deliveries;
    ignore
      (Engine.schedule c.engine ~delay:(Time.of_us 200) (fun () -> react ()))
  in
  react ();
  for k = 0 to 9 do
    Endpoint.send (ep c 0) ~service:Safe ~size:60 (Printf.sprintf "ping-%d" k);
    run c ~ms:30.
  done;
  run c ~ms:500.;
  (* At every node, each pong appears after its ping. *)
  List.iter
    (fun n ->
      let order = delivered_payloads c n in
      let index p =
        let rec go i = function
          | [] -> -1
          | x :: tl -> if String.equal x p then i else go (i + 1) tl
        in
        go 0 order
      in
      for k = 0 to 9 do
        let ping = index (Printf.sprintf "ping-%d" k)
        and pong = index (Printf.sprintf "pong-%d" k) in
        Alcotest.(check bool)
          (Printf.sprintf "node %d: ping-%d before pong-%d" n k k)
          true
          (ping >= 0 && pong > ping)
      done)
    [ 0; 1; 2; 3 ]

let test_store_eviction_bounds_memory () =
  (* Messages below the safe line are evicted in chunks: after a long
     safe-traffic run the store must stay far below the message count. *)
  let c = make_cluster 3 in
  join_all c;
  run c ~ms:500.;
  for batch = 0 to 19 do
    for i = 0 to 499 do
      Endpoint.send (ep c ((i + batch) mod 3)) ~service:Safe ~size:50
        (Printf.sprintf "m%d-%d" batch i)
    done;
    run c ~ms:400.
  done;
  Alcotest.(check int) "all delivered" 10_000
    (List.length (delivered_payloads c 0));
  (match Endpoint.store_stats (ep c 0) with
  | Some (retained, evicted) ->
    Alcotest.(check bool)
      (Printf.sprintf "store bounded (%d retained, %d evicted)" retained evicted)
      true
      (retained < 6_000 && evicted > 4_000)
  | None -> Alcotest.fail "no installed view");
  (* Membership still works after eviction: retransmission bases itself
     on the evicted line (everything below is held by every member). *)
  Topology.partition c.topology [ [ 0; 1 ]; [ 2 ] ];
  run c ~ms:800.;
  Topology.merge_all c.topology;
  run c ~ms:1200.;
  check_same_view c [ 0; 1; 2 ]

let test_conf_ids_unique_across_installs () =
  let c = make_cluster 3 in
  join_all c;
  run c ~ms:500.;
  let seen = ref [] in
  let note () =
    match Endpoint.current_view (ep c 0) with
    | Some v -> if not (List.exists (Conf_id.equal v.Endpoint.id) !seen) then
        seen := v.Endpoint.id :: !seen
    | None -> ()
  in
  note ();
  for _ = 1 to 3 do
    Topology.partition c.topology [ [ 0 ]; [ 1; 2 ] ];
    run c ~ms:600.;
    note ();
    Topology.merge_all c.topology;
    run c ~ms:800.;
    note ()
  done;
  (* Every noted id was distinct (the list only grew on fresh ids), and we
     went through at least 6 installs. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct configuration ids" (List.length !seen))
    true
    (List.length !seen >= 6)

let test_throughput_smoke () =
  (* The stack must sustain a multi-hundred-message burst and deliver all
     of it in order everywhere. *)
  let c = make_cluster 5 in
  join_all c;
  run c ~ms:500.;
  for i = 0 to 499 do
    Endpoint.send (ep c (i mod 5)) ~service:Safe ~size:200 (string_of_int i)
  done;
  run c ~ms:3000.;
  let d0 = delivered_payloads c 0 in
  Alcotest.(check int) "all 500 delivered" 500 (List.length d0);
  for n = 1 to 4 do
    Alcotest.(check (list string)) "same order" d0 (delivered_payloads c n)
  done

let () =
  Alcotest.run "gcs"
    [
      ( "membership",
        [
          Alcotest.test_case "initial install" `Quick test_initial_install;
          Alcotest.test_case "singleton install" `Quick test_singleton_install;
          Alcotest.test_case "partition produces two views" `Quick
            test_partition_two_views;
          Alcotest.test_case "merge back to one view" `Quick
            test_merge_single_view;
          Alcotest.test_case "crash and recover" `Quick test_crash_and_recover;
          Alcotest.test_case "installed count grows" `Quick
            test_installed_count_grows;
          Alcotest.test_case "conf ids unique" `Quick
            test_conf_ids_unique_across_installs;
          Alcotest.test_case "14 nodes install" `Quick test_many_nodes_install;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "total order across senders" `Quick
            test_total_order;
          Alcotest.test_case "agreed and safe interleave" `Quick
            test_agreed_vs_safe_order;
          Alcotest.test_case "throughput smoke" `Quick test_throughput_smoke;
          Alcotest.test_case "lossy network total order" `Quick
            test_lossy_network_total_order;
          Alcotest.test_case "store eviction bounds memory" `Quick
            test_store_eviction_bounds_memory;
          Alcotest.test_case "causality preserved" `Quick test_causality_preserved;
        ] );
      ( "evs",
        [
          Alcotest.test_case "virtual synchrony on partition" `Quick
            test_virtual_synchrony_on_partition;
          Alcotest.test_case "safe needs all acks" `Quick
            test_safe_delivery_requires_all_acks;
          Alcotest.test_case "queued sends flushed" `Quick
            test_queued_sends_flushed_on_install;
          QCheck_alcotest.to_alcotest prop_order_compatible;
        ] );
    ]
