(* Tests of the comparison baselines: two-phase commit and COReL. *)

open Repro_sim
open Repro_net
open Repro_baselines

let quiet_lan =
  {
    Network.lan_100mbit with
    send_cpu_cost = Time.zero;
    recv_cpu_cost = Time.zero;
    recv_cpu_per_kb = Time.zero;
  }

let fast_disk =
  { Repro_storage.Disk.default_forced with sync_latency = Time.of_ms 1. }

(* ------------------------------- 2PC ------------------------------- *)

let twopc ?(n = 4) () =
  Twopc.make_cluster ~net_config:quiet_lan ~disk_config:fast_disk
    ~attach_cpu:false
    ~nodes:(List.init n Fun.id)
    ()

let run_2pc c ~ms =
  Engine.run
    ~until:(Time.add (Engine.now (Twopc.sim c)) ~span:(Time.of_ms ms))
    (Twopc.sim c)

let test_2pc_commits () =
  let c = twopc () in
  let outcomes = ref [] in
  for _ = 1 to 5 do
    Twopc.submit c ~node:0 ~on_response:(fun o -> outcomes := o :: !outcomes) ()
  done;
  run_2pc c ~ms:500.;
  Alcotest.(check int) "all responded" 5 (List.length !outcomes);
  Alcotest.(check bool) "all committed" true
    (List.for_all (fun o -> o = Twopc.Committed) !outcomes);
  Alcotest.(check int) "committed counter" 5 (Twopc.committed c)

let test_2pc_different_coordinators () =
  let c = twopc () in
  let committed = ref 0 in
  for node = 0 to 3 do
    Twopc.submit c ~node
      ~on_response:(fun o -> if o = Twopc.Committed then incr committed)
      ()
  done;
  run_2pc c ~ms:500.;
  Alcotest.(check int) "each node can coordinate" 4 !committed

let test_2pc_aborts_on_partition () =
  let c = twopc () in
  Topology.partition (Twopc.topology c) [ [ 0; 1 ]; [ 2; 3 ] ];
  let outcome = ref None in
  Twopc.submit c ~node:0 ~on_response:(fun o -> outcome := Some o) ();
  run_2pc c ~ms:3000.;
  Alcotest.(check bool) "aborted without full connectivity" true
    (!outcome = Some Twopc.Aborted);
  Alcotest.(check int) "abort counted" 1 (Twopc.aborted c)

let test_2pc_aborts_on_participant_crash () =
  let c = twopc () in
  Twopc.crash c 3;
  let outcome = ref None in
  Twopc.submit c ~node:0 ~on_response:(fun o -> outcome := Some o) ();
  run_2pc c ~ms:3000.;
  Alcotest.(check bool) "aborted on crashed participant" true
    (!outcome = Some Twopc.Aborted);
  Twopc.recover c 3;
  let second = ref None in
  Twopc.submit c ~node:0 ~on_response:(fun o -> second := Some o) ();
  run_2pc c ~ms:3000.;
  Alcotest.(check bool) "commits again after recovery" true
    (!second = Some Twopc.Committed)

let test_2pc_two_forced_writes_latency () =
  (* With 10 ms writes and no jitter the critical path is two writes. *)
  let disk =
    { Repro_storage.Disk.default_forced with sync_jitter = 0. }
  in
  let c =
    Twopc.make_cluster ~net_config:quiet_lan ~disk_config:disk
      ~attach_cpu:false ~nodes:[ 0; 1; 2 ] ()
  in
  let at = ref Time.zero in
  Twopc.submit c ~node:0 ~on_response:(fun _ -> at := Engine.now (Twopc.sim c)) ();
  run_2pc c ~ms:500.;
  let ms = Time.to_ms !at in
  Alcotest.(check bool)
    (Printf.sprintf "latency ~20ms, got %.2f" ms)
    true
    (ms > 19.5 && ms < 23.)

(* ------------------------------ COReL ------------------------------ *)

let corel ?(n = 4) () =
  let c =
    Corel.make_cluster ~net_config:quiet_lan ~disk_config:fast_disk
      ~params:Repro_gcs.Params.fast ~attach_cpu:false
      ~nodes:(List.init n Fun.id)
      ()
  in
  Corel.start c;
  c

let run_corel c ~ms =
  Engine.run
    ~until:(Time.add (Engine.now (Corel.sim c)) ~span:(Time.of_ms ms))
    (Corel.sim c)

let test_corel_commits () =
  let c = corel () in
  run_corel c ~ms:500.;
  let responses = ref 0 in
  for i = 0 to 9 do
    Corel.submit c ~node:(i mod 4) ~on_response:(fun () -> incr responses) ()
  done;
  run_corel c ~ms:500.;
  Alcotest.(check int) "all committed" 10 !responses;
  Alcotest.(check int) "counter agrees" 10 (Corel.committed c)

let test_corel_commit_needs_all_acks () =
  let c = corel ~n:3 () in
  run_corel c ~ms:500.;
  (* Cut node 2 away, then submit: the action cannot gather 3 durable
     acknowledgements in the old view; it commits only after the view
     change excludes node 2. *)
  Topology.partition (Corel.topology c) [ [ 0; 1 ]; [ 2 ] ];
  let committed_at = ref Time.zero in
  Corel.submit c ~node:0
    ~on_response:(fun () -> committed_at := Engine.now (Corel.sim c))
    ();
  run_corel c ~ms:2000.;
  Alcotest.(check bool) "committed eventually" true
    Time.(!committed_at > Time.zero);
  (* Commit had to wait for the membership change (at least a failure
     detection timeout), not just a disk write (~1 ms). *)
  Alcotest.(check bool) "waited for the view change" true
    Time.(!committed_at > Time.of_ms 510.)

let test_corel_latency_one_forced_write () =
  let disk = { Repro_storage.Disk.default_forced with sync_jitter = 0. } in
  let c =
    Corel.make_cluster ~net_config:quiet_lan ~disk_config:disk
      ~params:Repro_gcs.Params.default ~attach_cpu:false ~nodes:[ 0; 1; 2 ] ()
  in
  Corel.start c;
  run_corel c ~ms:2000.;
  let t0 = Engine.now (Corel.sim c) in
  let at = ref Time.zero in
  Corel.submit c ~node:0 ~on_response:(fun () -> at := Engine.now (Corel.sim c)) ();
  run_corel c ~ms:500.;
  let ms = Time.to_ms (Time.diff !at t0) in
  Alcotest.(check bool)
    (Printf.sprintf "latency ~10-14ms, got %.2f" ms)
    true
    (ms > 9.5 && ms < 15.)

let () =
  Alcotest.run "baselines"
    [
      ( "twopc",
        [
          Alcotest.test_case "commits" `Quick test_2pc_commits;
          Alcotest.test_case "any coordinator" `Quick test_2pc_different_coordinators;
          Alcotest.test_case "aborts on partition" `Quick test_2pc_aborts_on_partition;
          Alcotest.test_case "aborts on crash, recovers" `Quick
            test_2pc_aborts_on_participant_crash;
          Alcotest.test_case "two forced writes on the critical path" `Quick
            test_2pc_two_forced_writes_latency;
        ] );
      ( "corel",
        [
          Alcotest.test_case "commits" `Quick test_corel_commits;
          Alcotest.test_case "commit needs all acks" `Quick
            test_corel_commit_needs_all_acks;
          Alcotest.test_case "one forced write on the critical path" `Quick
            test_corel_latency_one_forced_write;
        ] );
    ]
