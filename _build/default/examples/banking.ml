(* A small banking service on the replication engine, written against the
   Session API: sequential per-client transactions, stored-procedure
   transfers, read-your-writes balance checks — while the cluster loses a
   replica and a partition mid-run.

   Run with:  dune exec examples/banking.exe *)

module Sim = Repro_sim
open Repro_net
open Repro_db
open Repro_core
open Repro_harness

let () =
  let w = World.make ~seed:42 ~n:5 () in
  let sim = World.sim w in
  let say fmt =
    Format.printf
      ("[%7.0fms] " ^^ fmt ^^ "@.")
      (Sim.Time.to_ms (Sim.Engine.now sim))
  in
  World.run w ~ms:1000.;

  (* Each teller is a session pinned to a different replica. *)
  let teller n = Session.attach (World.replica w n) ~client:(100 + n) in
  let alice_teller = teller 0
  and bob_teller = teller 1
  and audit_teller = teller 2 in

  (* Open accounts. *)
  Session.exec alice_teller
    (Action.Update [ Op.Set ("acct:alice", Value.Int 1000) ])
    ~k:(fun _ -> say "alice's account opened with 1000");
  Session.exec bob_teller
    (Action.Update [ Op.Set ("acct:bob", Value.Int 200) ])
    ~k:(fun _ -> say "bob's account opened with 200");
  World.run w ~ms:300.;

  (* Transfers are active transactions: the debit check runs at ordering
     time at every replica, so an overdraft is refused identically
     everywhere. *)
  let transfer session ~from_acct ~to_acct ~amount =
    Session.exec session
      (Action.Active
         {
           proc = "transfer";
           args = [ Value.Text from_acct; Value.Text to_acct; Value.Int amount ];
         })
      ~k:(fun resp ->
        say "transfer %s -> %s of %d: %s" from_acct to_acct amount
          (match resp with
          | Action.Procedure_output (Value.Int 1) -> "ok"
          | Action.Procedure_output _ -> "REFUSED"
          | r -> Format.asprintf "%a" Action.pp_response r))
  in
  transfer alice_teller ~from_acct:"acct:alice" ~to_acct:"acct:bob" ~amount:300;
  transfer bob_teller ~from_acct:"acct:bob" ~to_acct:"acct:alice" ~amount:50;
  transfer bob_teller ~from_acct:"acct:bob" ~to_acct:"acct:alice" ~amount:9999;
  World.run w ~ms:500.;

  (* Read-your-writes: the audit session sees every committed transfer. *)
  Session.read audit_teller [ "acct:alice"; "acct:bob" ] ~k:(fun balances ->
      say "audit: %s"
        (String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "%s=%s" k
                  (match v with Some (Value.Int n) -> string_of_int n | _ -> "?"))
              balances)));
  World.run w ~ms:300.;

  (* The branch running replica 4 burns down; replica 3 gets cut off. *)
  Replica.crash (World.replica w 4);
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3 ] ];
  World.run w ~ms:1200.;
  say "replica 4 crashed, replica 3 partitioned; primary = {0,1,2}";
  transfer alice_teller ~from_acct:"acct:alice" ~to_acct:"acct:bob" ~amount:100;
  World.run w ~ms:500.;

  (* Business continues; then everything heals and converges. *)
  World.heal_and_settle w;
  Consistency.assert_ok ~converged:true (World.replicas w);
  say "healed: every replica agrees on the ledger";
  let total =
    match
      Replica.weak_query (World.replica w 4) [ "acct:alice"; "acct:bob" ]
    with
    | [ (_, Some (Value.Int a)); (_, Some (Value.Int b)) ] -> a + b
    | _ -> -1
  in
  say "conservation check: alice + bob = %d (expected 1200)" total;
  assert (total = 1200);
  Format.printf "banking OK@."
