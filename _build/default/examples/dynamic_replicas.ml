(* Online reconfiguration (paper §5.1): a brand-new replica joins the
   running system through a PERSISTENT_JOIN ordered in the global action
   stream and a snapshot transfer from its representative; later a
   replica leaves permanently through a PERSISTENT_LEAVE.

   Run with:  dune exec examples/dynamic_replicas.exe *)

module Sim = Repro_sim
open Repro_db
open Repro_core
open Repro_harness

let () =
  let w = World.make ~n:3 () in
  let sim = World.sim w in
  let say fmt =
    Format.printf
      ("[%7.0fms] " ^^ fmt ^^ "@.")
      (Sim.Time.to_ms (Sim.Engine.now sim))
  in
  World.run w ~ms:1000.;

  (* Populate some state the newcomer will have to inherit. *)
  for i = 1 to 50 do
    World.submit_update w ~node:(i mod 3) ~key:(Printf.sprintf "item%d" i) i
  done;
  World.run w ~ms:1000.;
  say "3 replicas, %d actions in the global order"
    (Engine.green_count (Replica.engine (World.replica w 0)));

  (* A new replica (node 7) appears, sponsored by replica 1.  The sponsor
     announces it with a PERSISTENT_JOIN; when that action turns green,
     the sponsor snapshots its database and transfers it; only then does
     the newcomer enter the replicated group. *)
  let joiner = World.add_joiner w ~node:7 ~sponsors:[ 1 ] in
  say "node 7 requested to join via sponsor 1";
  World.run w ~ms:4000.;
  say "joiner ready=%b, in primary=%b, database digest %d (cluster %d)"
    (Replica.is_ready joiner) (Replica.in_primary joiner)
    (Database.digest (Replica.database joiner))
    (Database.digest (Replica.database (World.replica w 0)));
  assert (Replica.is_ready joiner);

  (* The newcomer is a full citizen: it orders new actions... *)
  Replica.submit joiner
    (Action.Update [ Op.Set ("from-the-new-replica", Value.Int 7) ])
    ~on_response:(fun _ -> say "the joiner's own action committed");
  World.run w ~ms:500.;

  (* ...and counts for quorum.  Everyone's membership view includes it. *)
  List.iter
    (fun r ->
      say "replica %d knows servers: %s" (Replica.node r)
        (Format.asprintf "%a" Repro_net.Node_id.pp_set
           (Engine.known_servers (Replica.engine r))))
    (World.replicas w);

  (* Now replica 2 retires permanently. *)
  Replica.leave (World.replica w 2);
  World.run w ~ms:2000.;
  say "replica 2 left; survivors know: %s"
    (Format.asprintf "%a" Repro_net.Node_id.pp_set
       (Engine.known_servers (Replica.engine (World.replica w 0))));
  say "survivors still in primary: %b"
    (List.for_all
       (fun n -> Replica.in_primary (World.replica w n))
       [ 0; 1; 7 ]);
  (match
     Consistency.check_all
       (List.filter Replica.is_ready (World.replicas w))
   with
  | [] -> say "consistency checker: all properties hold"
  | violations ->
    List.iter
      (fun v -> Format.printf "VIOLATION %a@." Consistency.pp_violation v)
      violations;
    exit 1);
  Format.printf "dynamic_replicas OK@."
