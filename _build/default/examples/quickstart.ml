(* Quickstart: a three-replica cluster, a few transactions, and the
   consistency guarantees in action.

   Run with:  dune exec examples/quickstart.exe *)

module Sim = Repro_sim
open Repro_db
open Repro_core

let () =
  (* 1. Build a cluster: a simulated LAN, three replicas, one shared
        replicated database. *)
  let nodes = [ 0; 1; 2 ] in
  let cluster = Replica.make_cluster ~nodes () in
  let replicas =
    List.map
      (fun node ->
        let r = Replica.create ~cluster ~node ~servers:nodes () in
        Replica.start r;
        (node, r))
      nodes
  in
  let sim = Replica.cluster_sim cluster in
  let run_ms ms =
    Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now sim) ~span:(Sim.Time.of_ms ms)) sim
  in
  let r0 = List.assoc 0 replicas
  and r1 = List.assoc 1 replicas
  and r2 = List.assoc 2 replicas in

  (* 2. Wait for the primary component to install. *)
  run_ms 1000.;
  Format.printf "replica states: %a %a %a@." Types.pp_engine_state
    (Replica.state r0) Types.pp_engine_state (Replica.state r1)
    Types.pp_engine_state (Replica.state r2);

  (* 3. Submit transactions from different replicas.  Responses arrive
        when the action is globally ordered (one-copy serializable). *)
  Replica.submit r0
    (Action.Update [ Op.Set ("alice", Value.Int 100) ])
    ~on_response:(fun resp ->
      Format.printf "deposit committed: %a@." Action.pp_response resp);
  Replica.submit r1
    (Action.Active
       {
         proc = "transfer";
         args = [ Value.Text "alice"; Value.Text "bob"; Value.Int 40 ];
       })
    ~on_response:(fun resp ->
      Format.printf "transfer result: %a@." Action.pp_response resp);
  run_ms 200.;

  (* 4. Query through a third replica: every replica applied the same
        actions in the same order. *)
  Replica.submit r2
    (Action.Query [ "alice"; "bob" ])
    ~on_response:(fun resp ->
      Format.printf "balances at replica 2: %a@." Action.pp_response resp);
  run_ms 200.;
  List.iter
    (fun (node, r) ->
      Format.printf "replica %d database: %a | digest %d@." node
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k Value.pp v))
        (Database.bindings (Replica.database r))
        (Database.digest (Replica.database r)))
    replicas;

  (* 5. The engine survives a crash transparently. *)
  Replica.crash r2;
  Replica.submit r0
    (Action.Update [ Op.Add ("alice", -10) ])
    ~on_response:(fun _ -> Format.printf "update while replica 2 is down@.");
  run_ms 1000.;
  Replica.recover r2;
  run_ms 2000.;
  Format.printf "after recovery, replica 2 digest = %d (others %d)@."
    (Database.digest (Replica.database r2))
    (Database.digest (Replica.database r0));
  assert (Database.digest (Replica.database r2) = Database.digest (Replica.database r0));
  Format.printf "quickstart OK@."
