examples/banking.mli:
