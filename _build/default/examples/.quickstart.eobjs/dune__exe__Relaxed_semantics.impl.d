examples/relaxed_semantics.ml: Action Consistency Format List Op Replica Repro_core Repro_db Repro_harness Repro_net Repro_sim Topology Value World
