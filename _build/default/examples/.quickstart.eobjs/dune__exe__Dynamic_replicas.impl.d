examples/dynamic_replicas.ml: Action Consistency Database Engine Format List Op Printf Replica Repro_core Repro_db Repro_harness Repro_net Repro_sim Value World
