examples/partition_healing.ml: Action Consistency Engine Format List Op Replica Repro_core Repro_db Repro_harness Repro_net Repro_sim Topology Value World
