examples/relaxed_semantics.mli:
