examples/partition_healing.mli:
