examples/banking.ml: Action Consistency Format List Op Printf Replica Repro_core Repro_db Repro_harness Repro_net Repro_sim Session String Topology Value World
