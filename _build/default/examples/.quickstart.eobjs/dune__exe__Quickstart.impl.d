examples/quickstart.ml: Action Database Format List Op Replica Repro_core Repro_db Repro_sim Types Value
