examples/dynamic_replicas.mli:
