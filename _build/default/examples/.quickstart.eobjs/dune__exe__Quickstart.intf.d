examples/quickstart.mli:
