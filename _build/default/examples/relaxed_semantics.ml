(* Application semantics beyond strict one-copy serializability
   (paper §6): weak queries, dirty queries, commutative updates
   (an inventory), active transactions (stored procedures) and
   two-action interactive transactions (optimistic booking).

   Run with:  dune exec examples/relaxed_semantics.exe *)

module Sim = Repro_sim
open Repro_net
open Repro_db
open Repro_core
open Repro_harness

let () =
  let w = World.make ~n:5 () in
  let sim = World.sim w in
  let say fmt =
    Format.printf
      ("[%7.0fms] " ^^ fmt ^^ "@.")
      (Sim.Time.to_ms (Sim.Engine.now sim))
  in
  World.run w ~ms:1000.;

  (* Seed an inventory and a bookable seat. *)
  Replica.submit (World.replica w 0)
    (Action.Update
       [ Op.Set ("widgets", Value.Int 10); Op.Set ("seat-1A", Value.Text "free") ])
    ~on_response:(fun _ -> ());
  World.run w ~ms:300.;

  (* -------- Interactive transaction: read, think, conditionally write. *)
  let book replica ~name =
    (* First action: read the seat (a query, answerable immediately). *)
    let seen = Replica.weak_query replica [ "seat-1A" ] in
    match seen with
    | [ (_, Some (Value.Text "free")) ] ->
      (* Second action: an update valid only if the read still holds. *)
      Replica.submit replica
        (Action.Interactive
           {
             expected = [ ("seat-1A", Some (Value.Text "free")) ];
             updates = [ Op.Set ("seat-1A", Value.Text name) ];
           })
        ~on_response:(fun resp ->
          say "%s booking: %a" name Action.pp_response resp)
    | _ -> say "%s saw the seat already taken" name
  in
  book (World.replica w 1) ~name:"carol";
  book (World.replica w 2) ~name:"dave";
  World.run w ~ms:300.;
  say "seat ended as: %s"
    (match Replica.weak_query (World.replica w 0) [ "seat-1A" ] with
    | [ (_, Some (Value.Text who)) ] -> who
    | _ -> "?");

  (* -------- Partition: the minority keeps serving. *)
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  World.run w ~ms:1500.;
  say "partitioned; replica 4 is out of the primary component";

  (* Strict updates would block in the minority, but commutative
     inventory arithmetic can proceed: order is irrelevant, states
     converge on merge. *)
  Replica.submit (World.replica w 4) ~semantics:Action.Commutative
    (Action.Update [ Op.Add ("widgets", -3) ])
    ~on_response:(fun _ -> say "minority sale of 3 widgets acknowledged locally");
  Replica.submit (World.replica w 0) ~semantics:Action.Commutative
    (Action.Update [ Op.Add ("widgets", 5) ])
    ~on_response:(fun _ -> say "majority restock of 5 widgets committed");
  World.run w ~ms:500.;

  (* Weak vs dirty reads in the minority. *)
  let show q label =
    say "%s sees widgets = %s" label
      (match q with
      | [ (_, Some (Value.Int v)) ] -> string_of_int v
      | _ -> "?")
  in
  show (Replica.weak_query (World.replica w 4) [ "widgets" ]) "weak query (green state)";
  show (Replica.dirty_query (World.replica w 4) [ "widgets" ]) "dirty query (green+red)";

  (* Timestamped last-writer-wins updates (location tracking). *)
  Replica.submit (World.replica w 4) ~semantics:Action.Commutative
    (Action.Update [ Op.Set_if_newer ("truck-7", Value.Text "depot", 200) ])
    ~on_response:(fun _ -> ());
  Replica.submit (World.replica w 1) ~semantics:Action.Commutative
    (Action.Update [ Op.Set_if_newer ("truck-7", Value.Text "highway", 100) ])
    ~on_response:(fun _ -> ());
  World.run w ~ms:500.;

  (* Heal: everything converges regardless of interleaving. *)
  Topology.merge_all (World.topology w);
  World.run w ~ms:3000.;
  show (Replica.weak_query (World.replica w 0) [ "widgets" ]) "after merge, everyone";
  say "truck-7 position (timestamp semantics): %s"
    (match Replica.weak_query (World.replica w 2) [ "truck-7" ] with
    | [ (_, Some (Value.Text loc)) ] -> loc
    | _ -> "?");
  (match Consistency.check_all ~converged:true (World.replicas w) with
  | [] -> say "consistency checker: all properties hold"
  | violations ->
    List.iter
      (fun v -> Format.printf "VIOLATION %a@." Consistency.pp_violation v)
      violations;
    exit 1);
  Format.printf "relaxed_semantics OK@."
