(* Partition and healing: the heart of the paper.

   Five replicas split into a majority {0,1,2} and a minority {3,4}.
   The majority forms the next primary component (dynamic linear voting)
   and keeps committing; the minority keeps *accepting* actions but only
   as red (tentatively ordered) knowledge.  When the network heals, one
   exchange round propagates everything and the red actions take their
   place in the global order — no per-action acknowledgements anywhere.

   Run with:  dune exec examples/partition_healing.exe *)

module Sim = Repro_sim
open Repro_net
open Repro_db
open Repro_core
open Repro_harness

let () =
  let w = World.make ~n:5 () in
  let sim = World.sim w in
  let now () = Sim.Time.to_ms (Sim.Engine.now sim) in
  let say fmt = Format.printf ("[%7.0fms] " ^^ fmt ^^ "@.") (now ()) in
  World.run w ~ms:1000.;
  say "primary component installed: %d of 5 replicas in Prim"
    (List.length (List.filter Replica.in_primary (World.replicas w)));

  (* Baseline commits. *)
  let committed = ref [] in
  let submit node key v =
    Replica.submit (World.replica w node)
      (Action.Update [ Op.Set (key, Value.Int v) ])
      ~on_response:(fun _ -> committed := key :: !committed)
  in
  submit 0 "pre-partition" 1;
  World.run w ~ms:300.;
  say "committed before the partition: %d action(s)" (List.length !committed);

  (* The network splits. *)
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  World.run w ~ms:1500.;
  say "after partition: majority in Prim? %b %b %b | minority in Prim? %b %b"
    (Replica.in_primary (World.replica w 0))
    (Replica.in_primary (World.replica w 1))
    (Replica.in_primary (World.replica w 2))
    (Replica.in_primary (World.replica w 3))
    (Replica.in_primary (World.replica w 4));

  (* Both sides accept actions; only the majority commits. *)
  submit 1 "majority-write" 2;
  submit 4 "minority-write" 3;
  World.run w ~ms:800.;
  say "majority committed %d total; minority holds %d red action(s)"
    (List.length !committed)
    (List.length (Engine.red_actions (Replica.engine (World.replica w 4))));
  say "minority can still answer weak queries (stale but consistent): %s"
    (match Replica.weak_query (World.replica w 4) [ "pre-partition" ] with
    | [ (_, Some (Value.Int v)) ] -> string_of_int v
    | _ -> "?");
  say "...and dirty queries that see its red actions: %s"
    (match Replica.dirty_query (World.replica w 4) [ "minority-write" ] with
    | [ (_, Some (Value.Int v)) ] -> string_of_int v
    | _ -> "?");

  (* Heal.  One exchange round synchronises everyone. *)
  Topology.merge_all (World.topology w);
  World.run w ~ms:3000.;
  say "healed: all 5 in Prim? %b"
    (List.for_all Replica.in_primary (World.replicas w));
  say "minority's write now committed everywhere: %s"
    (match Replica.weak_query (World.replica w 0) [ "minority-write" ] with
    | [ (_, Some (Value.Int v)) ] -> string_of_int v
    | _ -> "?");
  (match Consistency.check_all ~converged:true (World.replicas w) with
  | [] -> say "consistency checker: all properties hold"
  | violations ->
    List.iter
      (fun v -> Format.printf "VIOLATION %a@." Consistency.pp_violation v)
      violations;
    exit 1);
  Format.printf "partition_healing OK@."
