open Repro_sim

(** A typed write-ahead log on top of a simulated {!Disk}, with record
    framing: every appended entry carries a per-record checksum and a
    monotonic sequence number.

    Entries are appended to the device buffer immediately; [sync]
    confirms durability of everything appended so far.  On [crash],
    entries whose stamp is newer than the disk's last durable epoch are
    lost (in [Delayed] mode this can include acknowledged entries —
    the Figure 5(b) trade-off), and the disk's fault model may leave a
    *torn* in-flight record behind or corrupt durable ones.

    [recover] verifies the framing record by record and returns a typed
    verdict instead of silently trusting the bytes:
    - {!Clean}: every record checks out;
    - [Torn_tail i]: the records from position [i] on are damaged and
      the damage starts at the in-flight (never-synced) suffix — the
      log is intact up to [i] and truncation is safe, because an
      unsynced suffix is indistinguishable from a crash just before
      the write;
    - [Corrupt_interior i]: record [i] is damaged but was durable (or
      readable records follow it) — the caller must decide between
      salvaging the trusted prefix and discarding the log. *)

type verdict =
  | Clean
  | Torn_tail of int  (** first damaged position (0-based, append order) *)
  | Corrupt_interior of int  (** first damaged position *)

val pp_verdict : Format.formatter -> verdict -> unit

type 'entry recovery = {
  rv_verdict : verdict;
  rv_trusted : 'entry list;
      (** the verified prefix before the first damage, oldest first *)
  rv_readable : 'entry list;
      (** every record whose checksum verifies, including those beyond
          the first damage, oldest first — salvage material only: the
          sequence chain through them is broken *)
  rv_read_retries : int;
      (** transient read errors retried during this recovery *)
  rv_backoff : Time.t;
      (** total backoff delay charged by those retries (exponential,
          bounded by the disk's [read_retries]) *)
}

type 'entry t

val create : engine:Engine.t -> disk:Disk.t -> unit -> 'entry t
val disk : 'entry t -> Disk.t

val append : 'entry t -> 'entry -> unit
(** Buffer an entry; not yet durable.  Frames it with the next sequence
    number and a checksum. *)

val sync : 'entry t -> (unit -> unit) -> unit
(** Make all appended entries durable; callback on completion
    (group-committed with concurrent syncs on the same disk).  In
    [Delayed] disk mode, the callback fires quickly and durability is
    *not* guaranteed. *)

val append_sync : 'entry t -> 'entry -> (unit -> unit) -> unit
(** [append] then [sync]. *)

val crash : 'entry t -> unit
(** Applies crash semantics: the non-durable suffix is discarded —
    except that, under the disk's fault model, the oldest in-flight
    record may survive torn (damaged) and durable records may be
    corrupted. *)

val recover : 'entry t -> 'entry recovery
(** Verify and read the log, oldest first.  Valid any time; after
    [crash] it reflects the lost suffix.  Transient read errors are
    retried with exponential backoff (bounded by the disk's fault
    config); a record still unreadable after the retry budget counts as
    damaged.  Call through [Repro_core.Persist.recover] — the lint rule
    [no-wlog-recover-outside-persist] keeps every recovery on the
    verdict-aware path. *)

val truncate_damaged : 'entry t -> from:int -> unit
(** Physically truncate the log at position [from] (0-based, append
    order): records [from..] are dropped.  Used after a [Torn_tail]
    (safe) or when salvaging a [Corrupt_interior] prefix. *)

val reset : 'entry t -> unit
(** Discard the whole log (amnesiac recovery: the replica abandons its
    local state and will rejoin by state transfer). *)

val corrupt : 'entry t -> nth:int -> bool
(** Damage the checksum of the [nth] record (0-based, append order);
    [false] when out of range.  Deterministic fault injection for tests
    and the nemesis driver. *)

val compact : 'entry t -> keep:('entry -> bool) -> unit
(** Drops entries for which [keep] is false; [keep] is applied in append
    order (oldest first), so it may carry state.  Models atomically
    switching to a freshly written log segment, so it should only be
    called when the retained entries' durability has been established
    (e.g. right after a checkpoint sync). *)

val length : 'entry t -> int
(** Entries currently in the log (durable or not). *)
