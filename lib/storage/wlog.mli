open Repro_sim

(** A typed write-ahead log on top of a simulated {!Disk}, with frame
    framing: entries are grouped into *frames*, each carrying one
    per-frame checksum and one monotonic sequence number covering all
    of its records.  [append] writes a one-record frame; [append_batch]
    amortizes the header, the device write and (downstream) the force
    over a whole batch.

    Entries are appended to the device buffer immediately; [sync]
    confirms durability of everything appended so far.  On [crash],
    frames whose stamp is newer than the disk's last durable epoch are
    lost (in [Delayed] mode this can include acknowledged entries —
    the Figure 5(b) trade-off), and the disk's fault model may leave a
    *torn* in-flight frame behind or corrupt durable ones.

    [recover] verifies the framing frame by frame and returns a typed
    verdict instead of silently trusting the bytes.  Verdict positions
    are {e frame} indices — a frame's checksum is all-or-nothing, so
    damage cannot be localized below frame granularity:
    - {!Clean}: every frame checks out;
    - [Torn_tail i]: the frames from position [i] on are damaged and
      the damage starts at the in-flight (never-synced) suffix — the
      log is intact up to frame [i] and truncation is safe, because an
      unsynced suffix is indistinguishable from a crash just before
      the write;
    - [Corrupt_interior i]: frame [i] is damaged but was durable (or
      readable frames follow it) — the caller must decide between
      salvaging the trusted prefix and discarding the log. *)

type verdict =
  | Clean
  | Torn_tail of int
      (** first damaged frame position (0-based, append order) *)
  | Corrupt_interior of int  (** first damaged frame position *)

val pp_verdict : Format.formatter -> verdict -> unit

type 'entry recovery = {
  rv_verdict : verdict;
  rv_trusted : 'entry list;
      (** the records of the verified frames before the first damage,
          oldest first *)
  rv_readable : 'entry list;
      (** every record of a frame whose checksum verifies, including
          frames beyond the first damage, oldest first — salvage
          material only: the sequence chain through them is broken *)
  rv_read_retries : int;
      (** transient read errors retried during this recovery *)
  rv_backoff : Time.t;
      (** total backoff delay charged by those retries (exponential,
          bounded by the disk's [read_retries]) *)
}

type 'entry t

val create : engine:Engine.t -> disk:Disk.t -> unit -> 'entry t
val disk : 'entry t -> Disk.t

val append : 'entry t -> 'entry -> unit
(** Buffer a one-record frame; not yet durable.  Frames it with the
    next sequence number and a checksum. *)

val append_batch : 'entry t -> 'entry list -> unit
(** Buffer all entries as {e one} frame: one sequence number, one
    checksum, one device write — so one covering [sync] makes the whole
    batch durable together, and a crash loses or keeps it as a unit.
    The empty batch is a no-op (no frame is written). *)

val sync : 'entry t -> (unit -> unit) -> unit
(** Make all appended frames durable; callback on completion
    (group-committed with concurrent syncs on the same disk).  In
    [Delayed] disk mode, the callback fires quickly and durability is
    *not* guaranteed. *)

val append_sync : 'entry t -> 'entry -> (unit -> unit) -> unit
(** [append] then [sync]. *)

val crash : 'entry t -> unit
(** Applies crash semantics: the non-durable suffix is discarded —
    except that, under the disk's fault model, the oldest in-flight
    frame may survive torn (damaged as a unit) and durable frames may
    be corrupted. *)

val recover : 'entry t -> 'entry recovery
(** Verify and read the log, oldest first.  Valid any time; after
    [crash] it reflects the lost suffix.  Transient read errors are
    retried with exponential backoff (bounded by the disk's fault
    config); a frame still unreadable after the retry budget counts as
    damaged.  Call through [Repro_core.Persist.recover] — the lint rule
    [no-wlog-recover-outside-persist] keeps every recovery on the
    verdict-aware path. *)

val truncate_damaged : 'entry t -> from:int -> unit
(** Physically truncate the log at frame position [from] (0-based,
    append order): frames [from..] are dropped.  Used after a
    [Torn_tail] (safe) or when salvaging a [Corrupt_interior] prefix. *)

val reset : 'entry t -> unit
(** Discard the whole log (amnesiac recovery: the replica abandons its
    local state and will rejoin by state transfer). *)

val corrupt : 'entry t -> nth:int -> bool
(** Damage the checksum of the frame containing the [nth] {e record}
    (0-based, append order); [false] when out of range.  Record-
    addressed so fault-injection sites need not know the frame
    layout; a per-frame checksum cannot fail for one record alone.
    Deterministic fault injection for tests and the nemesis driver. *)

val compact : 'entry t -> keep:('entry -> bool) -> unit
(** Drops records for which [keep] is false; [keep] is applied in
    append order (oldest first), so it may carry state.  Frames are
    kept as units (their headers survive so the recovery sequence
    chain stays intact); fully-emptied frames are dropped.  Models
    atomically switching to a freshly written log segment, so it
    should only be called when the retained entries' durability has
    been established (e.g. right after a checkpoint sync). *)

val length : 'entry t -> int
(** Records currently in the log (durable or not), across all frames.
    O(1): the count is maintained through appends, [compact],
    [truncate_damaged], [crash] and [reset]. *)

val frame_count : 'entry t -> int
(** Frames currently in the log.  [frame_count t <= length t], with
    equality when every frame holds a single record. *)
