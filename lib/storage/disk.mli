open Repro_sim

(** A simulated stable-storage device.

    A *forced* (synchronous) write charges the device's sync latency and
    confirms durability via callback.  Concurrent force requests are
    group-committed: all requests that arrive while a flush is in flight
    are satisfied together by the next single flush — this is what lets
    the replication engine's throughput scale with the number of
    concurrent clients in Figure 5(a).

    In [Delayed] mode a write is acknowledged after a fixed small buffer
    delay without waiting for the platter; durability is only guaranteed
    once a background flush (every [delayed_flush_interval]) completes, so
    a crash may lose recently acknowledged writes — exactly the trade-off
    of Figure 5(b). *)

type mode = Forced | Delayed

(** The injectable storage fault model.  All probabilities are drawn
    from the disk's own split of the simulation RNG, so a seeded run
    yields one reproducible fault schedule; with {!no_faults} (the
    default) no draw is made at all and behaviour is bit-identical to a
    fault-free device. *)
type fault_config = {
  torn_tail_on_crash : float;
      (** probability that the record in flight at crash time survives
          *partially*: it is still present in the recovered log but its
          checksum no longer verifies (a torn write) *)
  corrupt_on_crash : float;
      (** per durable record, probability that a crash flips bits in it
          (latent sector corruption surfacing at the worst moment) *)
  read_error : float;
      (** per read attempt during recovery, probability of a transient
          I/O error; the reader retries with bounded backoff *)
  read_retries : int;  (** attempts before a record is declared unreadable *)
  read_backoff : Time.t;  (** first retry delay; doubles per attempt *)
}

val no_faults : fault_config

type config = {
  mode : mode;
  sync_latency : Time.t;  (** mean duration of one physical flush *)
  sync_jitter : float;
      (** flush-to-flush service variability: each flush takes
          [sync_latency * (1 ± jitter/2)], uniform.  Real disks are not
          metronomes; without this, closed-loop clients phase-lock to the
          flush train and always pay the worst-case wait. *)
  delayed_ack_latency : Time.t;  (** ack delay in [Delayed] mode *)
  delayed_flush_interval : Time.t;  (** background flush period *)
  faults : fault_config;
}

val default_forced : config
(** 10 ms forced-write latency — calibrated so that the latency experiment
    lands near the paper's 11.4 ms engine / 19.3 ms 2PC numbers.
    Fault-free. *)

val default_delayed : config

type t

val create : engine:Engine.t -> config:config -> unit -> t
val mode : t -> mode
val faults : t -> fault_config

val force : t -> (unit -> unit) -> unit
(** Request durability for everything written so far; the callback fires
    when it is durable (group-committed).  In [Delayed] mode the callback
    fires after [delayed_ack_latency] without real durability. *)

val flushes : t -> int
(** Number of physical flushes performed (measures group-commit batching). *)

val crash : t -> unit
(** Pending callbacks are dropped. *)

val last_durable_epoch : t -> int

val write_epoch : t -> int
(** Epochs let the write-ahead log decide which entries survived a crash:
    an entry stamped with epoch [e] survives iff [e <= last_durable_epoch].
    Every write bumps the epoch; every completed flush advances the
    durable epoch to the epoch at flush start. *)

val note_write : t -> int
(** Record that an entry was written to the device buffer; returns the
    epoch stamp for the entry. *)

(* --- fault draws (consumed by the write-ahead log) ------------------ *)

val draw_torn_tail : t -> bool
(** One draw per crash: does the in-flight record survive torn? *)

val draw_corrupt : t -> bool
(** One draw per durable record at crash time: is it corrupted? *)

val draw_read_error : t -> bool
(** One draw per read attempt during recovery. *)
