open Repro_sim

type mode = Forced | Delayed

type fault_config = {
  torn_tail_on_crash : float;
  corrupt_on_crash : float;
  read_error : float;
  read_retries : int;
  read_backoff : Time.t;
}

let no_faults =
  {
    torn_tail_on_crash = 0.;
    corrupt_on_crash = 0.;
    read_error = 0.;
    read_retries = 4;
    read_backoff = Time.of_us 500;
  }

type config = {
  mode : mode;
  sync_latency : Time.t;
  sync_jitter : float;
  delayed_ack_latency : Time.t;
  delayed_flush_interval : Time.t;
  faults : fault_config;
}

let default_forced =
  {
    mode = Forced;
    sync_latency = Time.of_ms 10.;
    sync_jitter = 0.4;
    delayed_ack_latency = Time.of_us 50;
    delayed_flush_interval = Time.of_ms 100.;
    faults = no_faults;
  }

let default_delayed = { default_forced with mode = Delayed }

type t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  mutable write_epoch : int;
  mutable durable_epoch : int;
  mutable flushing : bool;
  mutable waiters : (unit -> unit) list; (* waiting for the *next* flush *)
  mutable flushes : int;
  mutable generation : int; (* bumped on crash *)
  mutable bg_flush_started : bool;
}

let create ~engine ~config () =
  {
    engine;
    config;
    rng = Rng.split (Engine.rng engine);
    write_epoch = 0;
    durable_epoch = 0;
    flushing = false;
    waiters = [];
    flushes = 0;
    generation = 0;
    bg_flush_started = false;
  }

let mode t = t.config.mode
let faults t = t.config.faults

(* A probability of zero makes no draw at all, so a fault-free disk
   consumes exactly the same RNG stream as before the fault model
   existed (the jitter sequence of seeded runs is unchanged). *)
let draw t p = p > 0. && Rng.float t.rng 1.0 < p
let draw_torn_tail t = draw t t.config.faults.torn_tail_on_crash
let draw_corrupt t = draw t t.config.faults.corrupt_on_crash
let draw_read_error t = draw t t.config.faults.read_error
let flushes t = t.flushes
let last_durable_epoch t = t.durable_epoch
let write_epoch t = t.write_epoch

let note_write t =
  t.write_epoch <- t.write_epoch + 1;
  t.write_epoch

(* A flush gathers requests for a short head-of-line window before the
   platter write begins, so requests issued at the same instant share one
   physical flush (group commit). *)
let gather_window = Time.of_us 10

let flush_duration t =
  let j = t.config.sync_jitter in
  if j <= 0. then t.config.sync_latency
  else begin
    let lo = 1. -. (j /. 2.) in
    let f = lo +. Rng.float t.rng j in
    Time.scale t.config.sync_latency f
  end

let rec start_flush t =
  t.flushing <- true;
  let generation = t.generation in
  ignore
    (Engine.schedule t.engine ~delay:gather_window (fun () ->
         if generation = t.generation then begin
           t.flushes <- t.flushes + 1;
           let batch = List.rev t.waiters in
           t.waiters <- [];
           let epoch_at_start = t.write_epoch in
           ignore
             (Engine.schedule t.engine ~delay:(flush_duration t) (fun () ->
                  if generation = t.generation then begin
                    t.durable_epoch <- max t.durable_epoch epoch_at_start;
                    List.iter (fun k -> k ()) batch;
                    if t.waiters <> [] then start_flush t else t.flushing <- false
                  end))
         end))

let rec background_flush t =
  let generation = t.generation in
  ignore
    (Engine.schedule t.engine ~delay:t.config.delayed_flush_interval (fun () ->
         if generation = t.generation then begin
           if not t.flushing then begin
             t.flushing <- true;
             t.flushes <- t.flushes + 1;
             let epoch_at_start = t.write_epoch in
             ignore
               (Engine.schedule t.engine ~delay:(flush_duration t) (fun () ->
                    if generation = t.generation then begin
                      t.durable_epoch <- max t.durable_epoch epoch_at_start;
                      t.flushing <- false
                    end))
           end;
           background_flush t
         end))

let force t k =
  match t.config.mode with
  | Forced ->
    t.waiters <- k :: t.waiters;
    if not t.flushing then start_flush t
  | Delayed ->
    if not t.bg_flush_started then begin
      t.bg_flush_started <- true;
      background_flush t
    end;
    let generation = t.generation in
    ignore
      (Engine.schedule t.engine ~delay:t.config.delayed_ack_latency (fun () ->
           if generation = t.generation then k ()))
  (* Parks the continuation and arms at most one flush timer; the
     waiter list is drained once per physical flush, one entry per
     force call that joined the group commit. *)
  [@@analysis.cost "O(queue); alloc O(queue)"]

let crash t =
  t.generation <- t.generation + 1;
  t.waiters <- [];
  t.flushing <- false;
  t.bg_flush_started <- false
