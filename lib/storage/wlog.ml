open Repro_sim

(* Frame framing: entries are grouped into *frames* — the unit of
   logging, checksumming and crash damage.  A frame carries one
   monotonic sequence number and one checksum covering all of its
   records; a frame of one record is exactly the old per-record
   framing.  The simulation does not store real bytes, so the checksum
   is modelled by [sum_ok] — whether the stored checksum would still
   verify against the frame body — flipped by the disk's fault model
   (torn in-flight writes, crash-time corruption) or by explicit
   injection.  Damage is all-or-nothing at frame granularity: a failing
   frame checksum says nothing about which record inside went bad. *)
type 'entry frame = {
  records : 'entry array; (* append order within the frame *)
  epoch : int;
  seq : int;
  mutable sum_ok : bool;
  mutable torn : bool; (* damaged as the in-flight frame of a crash *)
}

type verdict =
  | Clean
  | Torn_tail of int
  | Corrupt_interior of int

let pp_verdict ppf = function
  | Clean -> Format.pp_print_string ppf "clean"
  | Torn_tail i -> Format.fprintf ppf "torn-tail@%d" i
  | Corrupt_interior i -> Format.fprintf ppf "corrupt-interior@%d" i

type 'entry recovery = {
  rv_verdict : verdict;
  rv_trusted : 'entry list;
  rv_readable : 'entry list;
  rv_read_retries : int;
  rv_backoff : Time.t;
}

type 'entry t = {
  disk : Disk.t;
  mutable frames : 'entry frame list; (* newest first *)
  mutable next_seq : int; (* never reset: survives compaction and reset *)
  mutable record_count : int; (* sum of frame sizes: O(1) [length] *)
}

let create ~engine:_ ~disk () =
  { disk; frames = []; next_seq = 0; record_count = 0 }

let disk t = t.disk

(* One frame, one device write, one sequence number — however many
   records ride inside.  The empty batch is a no-op (no frame, no
   write): it must not burn a sequence number that recovery would then
   see as a silent gap. *)
let append_batch t entries =
  match entries with
  | [] -> ()
  | _ ->
    let epoch = Disk.note_write t.disk in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let records = Array.of_list entries in
    t.record_count <- t.record_count + Array.length records;
    t.frames <- { records; epoch; seq; sum_ok = true; torn = false } :: t.frames
  [@@analysis.hotpath "O(batch)"]

let append t entry = append_batch t [ entry ]
let sync t k = Disk.force t.disk k

let append_sync t entry k =
  append t entry;
  sync t k

let crash t =
  Disk.crash t.disk;
  let durable = Disk.last_durable_epoch t.disk in
  let survivors, lost =
    List.partition (fun f -> f.epoch <= durable) t.frames
  in
  (* The oldest unsynced frame is the one the platter was writing when
     the crash hit: it may survive torn (present but failing its
     checksum, all of its records suspect at once).  Everything younger
     never reached the device. *)
  let torn_survivor =
    match List.rev lost with
    | oldest :: _ when Disk.draw_torn_tail t.disk ->
      oldest.sum_ok <- false;
      oldest.torn <- true;
      [ oldest ]
    | _ -> []
  in
  (* Crash-time corruption of durable frames, oldest first so the
     seeded draw order is stable. *)
  List.iter
    (fun f -> if Disk.draw_corrupt t.disk then f.sum_ok <- false)
    (List.rev survivors);
  t.frames <- torn_survivor @ survivors;
  t.record_count <-
    List.fold_left (fun n f -> n + Array.length f.records) 0 t.frames

(* One framed read: transient errors are retried with exponential
   backoff up to the disk's budget; a frame still unreadable after that
   counts as damaged (we cannot tell a dying sector from a corrupt one). *)
let read_record t ~retries ~backoff =
  let f = Disk.faults t.disk in
  let rec attempt n delay =
    if Disk.draw_read_error t.disk then
      if n + 1 >= f.Disk.read_retries then false
      else begin
        incr retries;
        backoff := Time.add !backoff ~span:delay;
        attempt (n + 1) (Time.scale delay 2.)
      end
    else true
  in
  attempt 0 f.Disk.read_backoff

let recover t =
  let retries = ref 0 in
  let backoff = ref Time.zero in
  let frames =
    List.rev_map
      (fun f ->
        let readable = f.sum_ok && read_record t ~retries ~backoff in
        (f, readable))
      t.frames
  in
  (* Verify the chain oldest-first: a frame is damaged when its checksum
     fails, it is unreadable, or its sequence number does not advance
     the chain (reordered or duplicated frame).  All verdict positions
     are frame indices — damage is only detectable per frame. *)
  let damaged = ref [] in
  let prev_seq = ref min_int in
  List.iteri
    (fun i (f, readable) ->
      if (not readable) || f.seq <= !prev_seq then damaged := i :: !damaged
      else prev_seq := f.seq)
    frames;
  let readable_entries =
    List.concat_map
      (fun (f, readable) -> if readable then Array.to_list f.records else [])
      frames
  in
  let verdict =
    match List.rev !damaged with
    | [] -> Clean
    | first :: _ ->
      let all_after_damaged =
        List.for_all (fun (i, _) -> i < first || List.mem i !damaged)
          (List.mapi (fun i r -> (i, r)) frames)
      in
      let first_is_torn =
        match List.nth_opt frames first with
        | Some (f, _) -> f.torn
        | None -> false
      in
      if first_is_torn && all_after_damaged then Torn_tail first
      else Corrupt_interior first
  in
  let trusted =
    match verdict with
    | Clean -> List.concat_map (fun (f, _) -> Array.to_list f.records) frames
    | Torn_tail first | Corrupt_interior first ->
      List.filteri (fun i _ -> i < first) frames
      |> List.concat_map (fun (f, _) -> Array.to_list f.records)
  in
  {
    rv_verdict = verdict;
    rv_trusted = trusted;
    rv_readable = readable_entries;
    rv_read_retries = !retries;
    rv_backoff = !backoff;
  }

let length t = t.record_count
let frame_count t = List.length t.frames

let truncate_damaged t ~from =
  t.frames <-
    List.rev (List.filteri (fun i _ -> i < from) (List.rev t.frames));
  t.record_count <-
    List.fold_left (fun n f -> n + Array.length f.records) 0 t.frames

let reset t =
  t.frames <- [];
  t.record_count <- 0

let corrupt t ~nth =
  (* Record-addressed: damaging record [nth] fails the checksum of the
     frame containing it — per-frame checksums cannot localize further. *)
  let rec find base = function
    | [] -> false
    | f :: rest ->
      let n = Array.length f.records in
      if nth < base + n then begin
        f.sum_ok <- false;
        true
      end
      else find (base + n) rest
  in
  if nth < 0 then false else find 0 (List.rev t.frames)

let compact t ~keep =
  (* [keep] may be stateful and expects append order (oldest first).
     Frames are preserved as units — dropping individual records keeps
     the frame's header (seq, epoch) so the sequence chain that
     recovery verifies stays intact; only fully-emptied frames are
     dropped. *)
  let kept =
    List.filter_map
      (fun f ->
        let records =
          Array.of_list (List.filter keep (Array.to_list f.records))
        in
        if Array.length records = 0 then None else Some { f with records })
      (List.rev t.frames)
  in
  t.frames <- List.rev kept;
  t.record_count <-
    List.fold_left (fun n f -> n + Array.length f.records) 0 t.frames
