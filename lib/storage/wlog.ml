open Repro_sim

(* Record framing: each entry carries a monotonic sequence number and a
   checksum.  The simulation does not store real bytes, so the checksum
   is modelled by [sum_ok] — whether the stored checksum would still
   verify against the record body — flipped by the disk's fault model
   (torn in-flight writes, crash-time corruption) or by explicit
   injection. *)
type 'entry stamped = {
  entry : 'entry;
  epoch : int;
  seq : int;
  mutable sum_ok : bool;
  mutable torn : bool; (* damaged as the in-flight record of a crash *)
}

type verdict =
  | Clean
  | Torn_tail of int
  | Corrupt_interior of int

let pp_verdict ppf = function
  | Clean -> Format.pp_print_string ppf "clean"
  | Torn_tail i -> Format.fprintf ppf "torn-tail@%d" i
  | Corrupt_interior i -> Format.fprintf ppf "corrupt-interior@%d" i

type 'entry recovery = {
  rv_verdict : verdict;
  rv_trusted : 'entry list;
  rv_readable : 'entry list;
  rv_read_retries : int;
  rv_backoff : Time.t;
}

type 'entry t = {
  disk : Disk.t;
  mutable entries : 'entry stamped list; (* newest first *)
  mutable next_seq : int; (* never reset: survives compaction and reset *)
}

let create ~engine:_ ~disk () = { disk; entries = []; next_seq = 0 }
let disk t = t.disk

let append t entry =
  let epoch = Disk.note_write t.disk in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.entries <- { entry; epoch; seq; sum_ok = true; torn = false } :: t.entries

let sync t k = Disk.force t.disk k

let append_sync t entry k =
  append t entry;
  sync t k

let crash t =
  Disk.crash t.disk;
  let durable = Disk.last_durable_epoch t.disk in
  let survivors, lost =
    List.partition (fun s -> s.epoch <= durable) t.entries
  in
  (* The oldest unsynced record is the one the platter was writing when
     the crash hit: it may survive torn (present but failing its
     checksum).  Everything younger never reached the device. *)
  let torn_survivor =
    match List.rev lost with
    | oldest :: _ when Disk.draw_torn_tail t.disk ->
      oldest.sum_ok <- false;
      oldest.torn <- true;
      [ oldest ]
    | _ -> []
  in
  (* Crash-time corruption of durable records, oldest first so the
     seeded draw order is stable. *)
  List.iter
    (fun s -> if Disk.draw_corrupt t.disk then s.sum_ok <- false)
    (List.rev survivors);
  t.entries <- torn_survivor @ survivors

(* One framed read: transient errors are retried with exponential
   backoff up to the disk's budget; a record still unreadable after that
   counts as damaged (we cannot tell a dying sector from a corrupt one). *)
let read_record t ~retries ~backoff =
  let f = Disk.faults t.disk in
  let rec attempt n delay =
    if Disk.draw_read_error t.disk then
      if n + 1 >= f.Disk.read_retries then false
      else begin
        incr retries;
        backoff := Time.add !backoff ~span:delay;
        attempt (n + 1) (Time.scale delay 2.)
      end
    else true
  in
  attempt 0 f.Disk.read_backoff

let recover t =
  let retries = ref 0 in
  let backoff = ref Time.zero in
  let records =
    List.rev_map
      (fun s ->
        let readable =
          s.sum_ok && read_record t ~retries ~backoff
        in
        (s, readable))
      t.entries
  in
  (* Verify the chain oldest-first: a record is damaged when its
     checksum fails, it is unreadable, or its sequence number does not
     advance the chain (reordered or duplicated frame). *)
  let damaged = ref [] in
  let prev_seq = ref min_int in
  List.iteri
    (fun i (s, readable) ->
      if (not readable) || s.seq <= !prev_seq then damaged := i :: !damaged
      else prev_seq := s.seq)
    records;
  let readable_entries =
    List.filter_map (fun (s, readable) -> if readable then Some s.entry else None)
      records
  in
  let verdict =
    match List.rev !damaged with
    | [] -> Clean
    | first :: _ ->
      let all_after_damaged =
        List.for_all (fun (i, _) -> i < first || List.mem i !damaged)
          (List.mapi (fun i r -> (i, r)) records)
      in
      let first_is_torn =
        match List.nth_opt records first with
        | Some (s, _) -> s.torn
        | None -> false
      in
      if first_is_torn && all_after_damaged then Torn_tail first
      else Corrupt_interior first
  in
  let trusted =
    match verdict with
    | Clean -> List.map (fun (s, _) -> s.entry) records
    | Torn_tail first | Corrupt_interior first ->
      List.filteri (fun i _ -> i < first) records
      |> List.map (fun (s, _) -> s.entry)
  in
  {
    rv_verdict = verdict;
    rv_trusted = trusted;
    rv_readable = readable_entries;
    rv_read_retries = !retries;
    rv_backoff = !backoff;
  }

let length t = List.length t.entries

let truncate_damaged t ~from =
  t.entries <-
    List.rev (List.filteri (fun i _ -> i < from) (List.rev t.entries))

let reset t = t.entries <- []

let corrupt t ~nth =
  match List.nth_opt (List.rev t.entries) nth with
  | Some s ->
    s.sum_ok <- false;
    true
  | None -> false

let compact t ~keep =
  (* [keep] may be stateful and expects append order (oldest first). *)
  t.entries <-
    List.rev (List.filter (fun s -> keep s.entry) (List.rev t.entries))
