open Repro_sim

type config = {
  propagation : Time.t;
  bandwidth_bytes_per_sec : float;
  jitter : float;
  loss_probability : float;
  send_cpu_cost : Time.t;
  recv_cpu_cost : Time.t;
  recv_cpu_per_kb : Time.t;
}

let lan_100mbit =
  {
    propagation = Time.of_us 100;
    bandwidth_bytes_per_sec = 12_500_000.; (* 100 Mbit/s *)
    jitter = 0.05;
    loss_probability = 0.;
    send_cpu_cost = Time.of_us 50;
    recv_cpu_cost = Time.of_us 30;
    recv_cpu_per_kb = Time.of_us 500;
  }

let lan_gigabit =
  {
    propagation = Time.of_us 30;
    bandwidth_bytes_per_sec = 125_000_000.; (* 1 Gbit/s *)
    jitter = 0.05;
    loss_probability = 0.;
    send_cpu_cost = Time.of_us 5;
    recv_cpu_cost = Time.of_us 3;
    recv_cpu_per_kb = Time.of_us 20;
  }

let wan_default =
  {
    propagation = Time.of_ms 30.;
    bandwidth_bytes_per_sec = 1_250_000.; (* 10 Mbit/s *)
    jitter = 0.2;
    loss_probability = 0.01;
    send_cpu_cost = Time.of_us 30;
    recv_cpu_cost = Time.of_us 30;
    recv_cpu_per_kb = Time.of_us 500;
  }

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  config : config;
  rng : Rng.t;
  handlers : (Node_id.t, src:Node_id.t -> 'msg -> unit) Hashtbl.t;
  up : (Node_id.t, bool) Hashtbl.t;
  cpus : (Node_id.t, Resource.t) Hashtbl.t;
  fifo_horizon : (Node_id.t * Node_id.t, Time.t) Hashtbl.t;
      (* per-channel FIFO: a message never lands before its predecessor *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

let create ~engine ~topology ~config () =
  {
    engine;
    topology;
    config;
    rng = Rng.split (Engine.rng engine);
    handlers = Hashtbl.create 32;
    up = Hashtbl.create 32;
    cpus = Hashtbl.create 32;
    fifo_horizon = Hashtbl.create 64;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
  }

let topology t = t.topology
let engine t = t.engine
let register t node ~handler = Hashtbl.replace t.handlers node handler
let attach_cpu t node cpu = Hashtbl.replace t.cpus node cpu

let on_cpu t node ~cost k =
  match Hashtbl.find_opt t.cpus node with
  | Some cpu when Time.(cost > Time.zero) -> Resource.submit cpu ~duration:cost k
  | _ -> k ()
let set_up t node b = Hashtbl.replace t.up node b
let is_up t node = match Hashtbl.find_opt t.up node with Some b -> b | None -> true

let latency t ~size =
  let serialisation =
    Time.of_sec (float_of_int size /. t.config.bandwidth_bytes_per_sec)
  in
  let base = Time.add t.config.propagation ~span:serialisation in
  let jitter = Rng.uniform_span t.rng (Time.scale base t.config.jitter) in
  Time.add base ~span:jitter

let recv_cost t ~size =
  Time.add t.config.recv_cpu_cost
    ~span:(Time.scale t.config.recv_cpu_per_kb (float_of_int size /. 1024.))

let deliver t ~src ~dst ~size msg =
  (* Re-checked at delivery time: partition cuts or crashes that happened
     while the message was in flight drop it. *)
  if is_up t dst && Topology.connected t.topology src dst then
    match Hashtbl.find_opt t.handlers dst with
    | Some handler ->
      on_cpu t dst ~cost:(recv_cost t ~size) (fun () ->
          if is_up t dst then handler ~src msg)
    | None -> t.messages_dropped <- t.messages_dropped + 1
  else t.messages_dropped <- t.messages_dropped + 1

let unicast_now t ~src ~dst ~size msg =
  if not (is_up t src) then t.messages_dropped <- t.messages_dropped + 1
  else if not (Topology.connected t.topology src dst) then
    t.messages_dropped <- t.messages_dropped + 1
  else if Rng.float t.rng 1.0 < t.config.loss_probability then begin
    t.messages_sent <- t.messages_sent + 1;
    t.messages_dropped <- t.messages_dropped + 1
  end
  else begin
    t.messages_sent <- t.messages_sent + 1;
    t.bytes_sent <- t.bytes_sent + size;
    let delay =
      if Node_id.equal src dst then Time.of_us 1 else latency t ~size
    in
    (* Channels are FIFO (as a TCP link or an in-order NIC queue): a
       message is never delivered before one sent earlier on the same
       (src, dst) channel. *)
    let now = Engine.now t.engine in
    let arrival = Time.add now ~span:delay in
    let arrival =
      match Hashtbl.find_opt t.fifo_horizon (src, dst) with
      | Some horizon when Time.(arrival <= horizon) ->
        Time.add horizon ~span:(Time.of_us 1)
      | _ -> arrival
    in
    Hashtbl.replace t.fifo_horizon (src, dst) arrival;
    ignore
      (Engine.schedule_at t.engine ~at:arrival (fun () ->
           deliver t ~src ~dst ~size msg))
  end
  (* One channel-horizon update and one scheduled delivery per call —
     constant work and allocation per message sent. *)
  [@@analysis.cost "O(1); alloc O(1)"]

let unicast t ~src ~dst ~size msg =
  on_cpu t src ~cost:t.config.send_cpu_cost (fun () ->
      unicast_now t ~src ~dst ~size msg)

let multicast t ~src ~dsts ~size msg =
  (* One NIC operation: the send-side CPU cost is charged once. *)
  on_cpu t src ~cost:t.config.send_cpu_cost (fun () ->
      List.iter (fun dst -> unicast_now t ~src ~dst ~size msg) dsts)

let broadcast_component t ~src ~size msg =
  let component = Topology.component_of t.topology src in
  let dsts =
    Node_id.Set.elements component
    |> List.filter (fun n -> (not (Node_id.equal n src)) && Hashtbl.mem t.handlers n)
  in
  multicast t ~src ~dsts ~size msg

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped