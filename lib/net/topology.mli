(** The partition oracle.

    Tracks which network component each node currently belongs to.  The
    simulation scripts partitions and merges by mutating this structure;
    the {!Network} consults it at *delivery* time, so a message in flight
    when a partition occurs is dropped if its endpoints are no longer
    connected (mirroring a real network where queued frames on a cut link
    are lost). *)

type t

val create : nodes:Node_id.t list -> t
(** All [nodes] start in a single component. *)

val nodes : t -> Node_id.t list

val connected : t -> Node_id.t -> Node_id.t -> bool
(** Whether two nodes are currently in the same component.  A node is
    always connected to itself. *)

val component_of : t -> Node_id.t -> Node_id.Set.t
(** The set of nodes in the same component as the argument. *)

val components : t -> Node_id.Set.t list
(** All current components, each non-empty, pairwise disjoint. *)

val partition : t -> Node_id.t list list -> unit
(** [partition t groups] installs the given components.  Nodes not listed
    keep their current grouping but are split from all listed nodes into
    their own residual component per existing component.  Raises
    [Invalid_argument] if a node appears twice. *)

val merge_all : t -> unit
(** Heals the network: every node back in one component. *)

val merge : t -> Node_id.t list -> unit
(** Merges the components containing the given nodes into one. *)

val add_node : t -> Node_id.t -> unit
(** Adds a brand-new node, initially in the same component as everyone
    (joins the largest component if partitioned). *)

val isolate : t -> Node_id.t -> unit
(** Puts one node alone in its own component. *)

val epoch : t -> int
(** Increments on every connectivity change; lets pollers detect change
    cheaply. *)

val fingerprint : t -> string
(** Canonical digest of the current grouping: components as sorted member
    lists joined with [|].  Independent of internal label history — equal
    groupings fingerprint equally. *)
