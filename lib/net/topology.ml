type t = {
  mutable group_of : int Node_id.Map.t; (* node -> component label *)
  mutable next_label : int;
  mutable epoch : int;
}

let create ~nodes =
  let group_of =
    List.fold_left (fun m n -> Node_id.Map.add n 0 m) Node_id.Map.empty nodes
  in
  { group_of; next_label = 1; epoch = 0 }

let nodes t = List.map fst (Node_id.Map.bindings t.group_of)

let label t n =
  match Node_id.Map.find_opt n t.group_of with
  | Some g -> g
  | None -> invalid_arg (Format.asprintf "Topology: unknown node %a" Node_id.pp n)

let connected t a b = Node_id.equal a b || label t a = label t b

let component_of t n =
  let g = label t n in
  Node_id.Map.fold
    (fun node g' acc -> if g' = g then Node_id.Set.add node acc else acc)
    t.group_of Node_id.Set.empty

let components t =
  let by_label = Hashtbl.create 8 in
  Node_id.Map.iter
    (fun node g ->
      let cur =
        match Hashtbl.find_opt by_label g with
        | Some s -> s
        | None -> Node_id.Set.empty
      in
      Hashtbl.replace by_label g (Node_id.Set.add node cur))
    t.group_of;
  Hashtbl.fold (fun _ s acc -> s :: acc) by_label []
  |> List.sort (fun a b -> Node_id.compare (Node_id.Set.min_elt a) (Node_id.Set.min_elt b))

let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let partition t groups =
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter (fun n ->
         if Hashtbl.mem seen n then
           invalid_arg "Topology.partition: node listed twice";
         Hashtbl.add seen n ()))
    groups;
  (* Split any unlisted node away from listed ones: unlisted nodes keep
     their current label only relative to other unlisted nodes; relabel
     listed groups with fresh labels. *)
  List.iter
    (fun group ->
      let l = fresh_label t in
      List.iter
        (fun n ->
          ignore (label t n);
          t.group_of <- Node_id.Map.add n l t.group_of)
        group)
    groups;
  t.epoch <- t.epoch + 1

let merge_all t =
  let l = fresh_label t in
  t.group_of <- Node_id.Map.map (fun _ -> l) t.group_of;
  t.epoch <- t.epoch + 1

let merge t witnesses =
  match witnesses with
  | [] -> ()
  | first :: _ ->
    let labels = List.map (label t) witnesses in
    let target = label t first in
    t.group_of <-
      Node_id.Map.map (fun g -> if List.mem g labels then target else g) t.group_of;
    t.epoch <- t.epoch + 1

let add_node t n =
  if Node_id.Map.mem n t.group_of then invalid_arg "Topology.add_node: exists";
  let target =
    match components t with
    | [] -> fresh_label t
    | comps ->
      let largest =
        List.fold_left
          (fun best c ->
            if Node_id.Set.cardinal c > Node_id.Set.cardinal best then c else best)
          (List.hd comps) comps
      in
      label t (Node_id.Set.min_elt largest)
  in
  t.group_of <- Node_id.Map.add n target t.group_of;
  t.epoch <- t.epoch + 1

let isolate t n =
  ignore (label t n);
  t.group_of <- Node_id.Map.add n (fresh_label t) t.group_of;
  t.epoch <- t.epoch + 1

let epoch t = t.epoch

(* Canonical digest of the connectivity: components as sorted member
   lists, sorted by minimum element.  Labels themselves are arbitrary
   (fresh_label churns them), so two topologies with the same grouping
   fingerprint identically regardless of mutation history. *)
let fingerprint t =
  components t
  |> List.map (fun c ->
         Node_id.Set.elements c
         |> List.map (Format.asprintf "%a" Node_id.pp)
         |> String.concat ",")
  |> String.concat "|"
