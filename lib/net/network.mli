open Repro_sim

(** The message-passing network simulator.

    Polymorphic in the payload type: each protocol stack instantiates its
    own ['msg Network.t].  Delivery latency models a switched LAN or WAN:
    propagation delay + serialisation (size / bandwidth) + random jitter.
    Messages may be lost (probabilistically, and always across partition
    boundaries — checked both at send and at delivery time, so a message
    in flight across a cut is dropped).  Each (src, dst) channel is FIFO,
    like a TCP link: jitter never reorders two messages of one channel.
    Crashed nodes neither send nor receive. *)

type config = {
  propagation : Time.t;  (** one-way propagation delay *)
  bandwidth_bytes_per_sec : float;  (** serialisation rate *)
  jitter : float;  (** uniform extra delay as a fraction of base latency *)
  loss_probability : float;  (** per-message independent loss, in [0,1) *)
  send_cpu_cost : Time.t;
      (** CPU occupancy charged to the sender per [unicast]/[multicast]
          call (a multicast is one NIC operation on a LAN) when a CPU is
          attached via {!attach_cpu} *)
  recv_cpu_cost : Time.t;
      (** CPU occupancy charged to the receiver per delivered message *)
  recv_cpu_per_kb : Time.t;
      (** additional receive cost per KiB of payload (parsing, copying) *)
}

val lan_100mbit : config
(** The paper's environment: 100 Mbit/s switched LAN, ~100 µs propagation,
    5% jitter, no background loss. *)

val lan_gigabit : config
(** A modern datacentre profile: 1 Gbit/s, ~30 µs propagation, and an
    order of magnitude less CPU per message — the environment the
    hot-path throughput figures are quoted on (the 100 Mbit profile
    stays available for the paper's historical comparison points). *)

val wan_default : config
(** A 30 ms / 10 Mbit/s lossy wide-area profile for extension scenarios. *)

type 'msg t

val create :
  engine:Engine.t -> topology:Topology.t -> config:config -> unit -> 'msg t

val topology : 'msg t -> Topology.t
val engine : 'msg t -> Engine.t

val register :
  'msg t -> Node_id.t -> handler:(src:Node_id.t -> 'msg -> unit) -> unit
(** Attaches the receive handler for a node.  Re-registering replaces the
    handler (used on recovery). *)

val set_up : 'msg t -> Node_id.t -> bool -> unit
(** Marks a node up or down (crashed).  Down nodes drop all traffic. *)

val attach_cpu : 'msg t -> Node_id.t -> Resource.t -> unit
(** Routes this node's message processing through a serial CPU resource:
    sends occupy it for [send_cpu_cost], deliveries for [recv_cpu_cost].
    Without an attached CPU, processing is free (pure-latency model). *)

val is_up : 'msg t -> Node_id.t -> bool

val unicast : 'msg t -> src:Node_id.t -> dst:Node_id.t -> size:int -> 'msg -> unit
(** Sends one message of [size] bytes.  Silently dropped when the source
    is down, the destination is down or unregistered at delivery, the
    endpoints are (or become) partitioned, or the loss model fires. *)

val multicast :
  'msg t -> src:Node_id.t -> dsts:Node_id.t list -> size:int -> 'msg -> unit
(** One send per destination (excluding loopback unless listed; loopback
    delivery is immediate-but-asynchronous, i.e. scheduled at +1 µs). *)

val broadcast_component : 'msg t -> src:Node_id.t -> size:int -> 'msg -> unit
(** Multicast to every registered node currently in [src]'s component,
    excluding [src] itself. *)

val messages_sent : 'msg t -> int
val bytes_sent : 'msg t -> int
val messages_dropped : 'msg t -> int