(* Runtime validation of declared procedure footprints (paper §6; see
   lib/analysis/procfoot.ml for the static side).

   The static pass certifies, per procedure, a symbolic key-space
   footprint; [Procedure.register ?footprint] lets the author declare
   one; the drift lint diffs the two.  This module closes the loop at
   run time: attached to a replica, it observes every executed
   procedure's *actual* key accesses (the [Executor.procedure_trace]
   hook) and asserts they stay inside the declaration —

     actual reads  ⊆ declared reads ∪ declared writes
     actual writes ⊆ declared writes

   (a write pattern licenses the read-back of the same key: every
   read-modify-write procedure reads what it writes).  Procedures with
   no declared footprint are skipped — the guard checks declarations,
   it does not invent them.

   A violation means the declaration (and hence the §6 commutativity /
   validation-skipping reasoning built on it) is wrong for a reachable
   execution: the guard records it and the harness fails the run. *)

open Repro_db

type kind = Read | Write

type violation = {
  v_proc : string;  (** procedure name *)
  v_kind : kind;
  v_key : string;  (** the key outside the declared footprint *)
  v_args : Value.t list;  (** arguments of the offending invocation *)
}

type t = {
  mutable violations : violation list;  (* newest first *)
  mutable observed : int;
  mutable checked : int;
}

let create () = { violations = []; observed = 0; checked = 0 }

let observe g (procs : Procedure.registry) (tr : Executor.procedure_trace) =
  g.observed <- g.observed + 1;
  match Procedure.declared_footprint procs tr.Executor.t_proc with
  | None -> ()
  | Some fp ->
    g.checked <- g.checked + 1;
    let flag kind key =
      g.violations <-
        { v_proc = tr.Executor.t_proc; v_kind = kind; v_key = key;
          v_args = tr.Executor.t_args }
        :: g.violations
    in
    let readable = fp.Procedure.reads @ fp.Procedure.writes in
    List.iter
      (fun key ->
        if not (Procedure.covers tr.Executor.t_args readable key) then
          flag Read key)
      tr.Executor.t_reads;
    List.iter
      (fun key ->
        if not (Procedure.covers tr.Executor.t_args fp.Procedure.writes key)
        then flag Write key)
      tr.Executor.t_writes

let attach g replica =
  Repro_core.Replica.set_procedure_hook replica (fun tr ->
      observe g (Repro_core.Replica.procedures replica) tr)

let violations g = List.rev g.violations
let observed g = g.observed
let checked g = g.checked
let ok g = g.violations = []

let pp_violation ppf v =
  Format.fprintf ppf "procedure %S %s key %S outside its declared footprint (args: %s)"
    v.v_proc
    (match v.v_kind with Read -> "read" | Write -> "wrote")
    v.v_key
    (String.concat ", " (List.map Value.to_string v.v_args))

let assert_ok g =
  match violations g with
  | [] -> ()
  | vs ->
    let msgs = List.map (Format.asprintf "%a" pp_violation) vs in
    failwith
      (Printf.sprintf "procguard: %d footprint violation(s):\n%s"
         (List.length vs)
         (String.concat "\n" msgs))
