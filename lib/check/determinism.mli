open Repro_core

(** Determinism checking.

    The simulation is virtual-time, integer-clocked and seeded, so a
    scenario run twice with the same seed must produce bit-identical
    outcomes.  [check ~run ()] executes the closure twice and diffs the
    canonical fingerprints it returns; a non-empty diff is a determinism
    bug (unseeded randomness, wall-clock leakage, hash-order dependence)
    and names the first diverging fact. *)

val fingerprint :
  ?sim:Repro_sim.Engine.t ->
  ?trace:Repro_sim.Trace.t ->
  Replica.t list ->
  string list
(** A canonical line-per-fact encoding of the replicas' protocol state
    (engine state, green order and floor, red set and cut, white line,
    primary component, database digest), sorted by node id.  [sim]
    prepends the virtual clock; [trace] appends every trace entry, so
    the whole event history participates in the comparison. *)

val diff : string list -> string list -> string list
(** Line-by-line comparison of two fingerprints; empty means equal. *)

val check : run:(unit -> string list) -> unit -> string list
(** [check ~run ()] runs the scenario twice (the closure must build a
    fresh simulation each time and return its fingerprint) and returns
    the diff — [[]] iff the runs were identical. *)
