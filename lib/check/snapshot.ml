open Repro_net
open Repro_db
open Repro_core

type violation = {
  v_invariant : string;
  v_node : Node_id.t option;
  v_detail : string;
}

let pp_violation ppf v =
  match v.v_node with
  | Some n ->
    Format.fprintf ppf "[%s] %a: %s" v.v_invariant Node_id.pp n v.v_detail
  | None -> Format.fprintf ppf "[%s] %s" v.v_invariant v.v_detail

let violation ?node invariant fmt =
  Format.kasprintf
    (fun v_detail -> { v_invariant = invariant; v_node = node; v_detail })
    fmt

type node_snap = {
  ns_node : Node_id.t;
  ns_incarnation : int;
  ns_state : Types.engine_state;
  ns_green_floor : int;  (** positions below it hold no bodies here *)
  ns_green_ids : Action.Id.t list;  (** green order, above the floor *)
  ns_green_count : int;
  ns_green_line : Action.Id.t option;
  ns_red_ids : Action.Id.t list;
  ns_yellow : Types.yellow;
  ns_red_cut : int Node_id.Map.t;
  ns_white_line : int;
  ns_prim : Types.prim_component;
  ns_vulnerable : Types.vulnerable;
  ns_in_primary : bool;
}

let of_engine ~incarnation e =
  let greens = Engine.green_actions e in
  let green_count = Engine.green_count e in
  {
    ns_node = Engine.node e;
    ns_incarnation = incarnation;
    ns_state = Engine.state e;
    ns_green_floor = green_count - List.length greens;
    ns_green_ids = List.map (fun a -> a.Action.id) greens;
    ns_green_count = green_count;
    ns_green_line = Engine.green_line e;
    ns_red_ids = List.map (fun a -> a.Action.id) (Engine.red_actions e);
    ns_yellow = Engine.yellow e;
    ns_red_cut = Engine.red_cut_map e;
    ns_white_line = Engine.white_line e;
    ns_prim = Engine.prim_component e;
    ns_vulnerable = Engine.vulnerable e;
    ns_in_primary = Engine.in_primary e;
  }

let of_replica r =
  if not (Replica.is_ready r) then None
  else
    Some
      (of_engine ~incarnation:(Replica.incarnation r) (Replica.engine r))

(* ------------------------------------------------------------------ *)
(* Instantaneous invariants over one observation (a set of snapshots)  *)

let drop n l =
  let rec go n l =
    if n <= 0 then l else match l with [] -> [] | _ :: tl -> go (n - 1) tl
  in
  go n l

(* Compare the overlap of two green sequences, position by position. *)
let prefix_disagreement a b =
  let base = max a.ns_green_floor b.ns_green_floor in
  let ga = drop (base - a.ns_green_floor) a.ns_green_ids
  and gb = drop (base - b.ns_green_floor) b.ns_green_ids in
  let rec go pos ga gb =
    match (ga, gb) with
    | [], _ | _, [] -> None
    | x :: ga', y :: gb' ->
      if Action.Id.equal x y then go (pos + 1) ga' gb' else Some (pos, x, y)
  in
  go (base + 1) ga gb

(* Global total order (paper §5.2, Global Total Order): the green
   prefixes of any two replicas agree on their overlap.  One reference
   comparison per node: agreement with a common reference that covers
   the overlap region is transitive, so pairwise checks are redundant —
   except below the reference's own floor, where we fall back to
   pairwise over the (rare) nodes that still hold such early bodies. *)
let check_total_order snaps =
  match snaps with
  | [] | [ _ ] -> []
  | _ ->
    let reference =
      List.fold_left
        (fun best s ->
          match best with
          | None -> Some s
          | Some b ->
            if
              s.ns_green_count > b.ns_green_count
              || (s.ns_green_count = b.ns_green_count
                 && s.ns_green_floor < b.ns_green_floor)
            then Some s
            else best)
        None snaps
    in
    let reference = Option.get reference in
    let against_ref =
      List.concat_map
        (fun s ->
          if Node_id.equal s.ns_node reference.ns_node then []
          else
            match prefix_disagreement reference s with
            | None -> []
            | Some (pos, x, y) ->
              [
                violation ~node:s.ns_node "global-total-order"
                  "green position %d disagrees with %a: %a vs %a" pos
                  Node_id.pp reference.ns_node Action.Id.pp y Action.Id.pp x;
              ])
        snaps
    in
    (* Positions below the reference's floor are not covered by it:
       compare the nodes still holding them pairwise on that region. *)
    let below = List.filter (fun s -> s.ns_green_floor < reference.ns_green_floor) snaps in
    let rec pairs = function
      | [] | [ _ ] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    let below_ref =
      List.concat_map
        (fun (a, b) ->
          let cut s =
            {
              s with
              ns_green_ids =
                (* keep only the segment below the reference's floor *)
                (let keep = reference.ns_green_floor - s.ns_green_floor in
                 List.filteri (fun i _ -> i < keep) s.ns_green_ids);
            }
          in
          match prefix_disagreement (cut a) (cut b) with
          | None -> []
          | Some (pos, x, y) ->
            [
              violation ~node:a.ns_node "global-total-order"
                "green position %d disagrees with %a: %a vs %a" pos
                Node_id.pp b.ns_node Action.Id.pp x Action.Id.pp y;
            ])
        (pairs below)
    in
    against_ref @ below_ref

(* Global FIFO order (paper §5.2): inside every green sequence the
   indices of one creator are gap-free and increasing. *)
let check_fifo snaps =
  List.concat_map
    (fun s ->
      let seen : (Node_id.t, int) Hashtbl.t = Hashtbl.create 16 in
      List.filter_map
        (fun (id : Action.Id.t) ->
          let prev =
            match Hashtbl.find_opt seen id.server with
            | Some i -> i
            | None -> id.index - 1
            (* a snapshot-inherited prefix may hide earlier indices:
               the first occurrence is the baseline *)
          in
          Hashtbl.replace seen id.server id.index;
          if id.index <> prev + 1 then
            Some
              (violation ~node:s.ns_node "global-fifo"
                 "green %a follows index %d of the same creator" Action.Id.pp
                 id prev)
          else None)
        s.ns_green_ids)
    snaps

(* Quorum exclusivity of primary components: among replicas currently
   operating in a primary component, all agree on the last installed
   component — a second live component with the same index (split
   brain) or a live member outside its own component's membership is a
   violation of the paper's §4 exclusivity argument. *)
let check_primary_exclusivity snaps =
  let live = List.filter (fun s -> s.ns_in_primary) snaps in
  let membership =
    List.filter_map
      (fun s ->
        if Node_id.Set.mem s.ns_node s.ns_prim.Types.prim_servers then None
        else
          Some
            (violation ~node:s.ns_node "primary-exclusivity"
               "operates in primary %d without being a member"
               s.ns_prim.Types.prim_index))
      live
  in
  let split =
    match live with
    | [] | [ _ ] -> []
    | first :: rest ->
      List.concat_map
        (fun s ->
          if
            s.ns_prim.Types.prim_index = first.ns_prim.Types.prim_index
            && (s.ns_prim.Types.prim_attempt <> first.ns_prim.Types.prim_attempt
               || not
                    (Node_id.Set.equal s.ns_prim.Types.prim_servers
                       first.ns_prim.Types.prim_servers))
          then
            [
              violation ~node:s.ns_node "primary-exclusivity"
                "live primary %d differs from %a's (attempt %d vs %d)"
                s.ns_prim.Types.prim_index Node_id.pp first.ns_node
                s.ns_prim.Types.prim_attempt first.ns_prim.Types.prim_attempt;
            ]
          else [])
        rest
  in
  membership @ split

(* Internal coherence of one snapshot: the green line is the last green
   id; white never runs ahead of green; a valid yellow set never
   contains an id at or below the white line (white means green at
   every server, so it cannot still be provisional anywhere). *)
let check_coherence snaps =
  List.concat_map
    (fun s ->
      let issues = ref [] in
      (match (s.ns_green_line, List.rev s.ns_green_ids) with
      | Some line, last :: _ when not (Action.Id.equal line last) ->
        issues :=
          violation ~node:s.ns_node "green-line"
            "green line %a does not match last green %a" Action.Id.pp line
            Action.Id.pp last
          :: !issues
      | _ -> ());
      if s.ns_white_line > s.ns_green_count then
        issues :=
          violation ~node:s.ns_node "white-line"
            "white line %d beyond green count %d" s.ns_white_line
            s.ns_green_count
          :: !issues;
      List.iteri
        (fun i id ->
          let pos = s.ns_green_floor + i + 1 in
          if
            s.ns_yellow.Types.y_valid
            && List.exists (Action.Id.equal id) s.ns_yellow.Types.y_set
            && pos <= s.ns_white_line
          then
            issues :=
              violation ~node:s.ns_node "color-order"
                "white action %a still in the valid yellow set" Action.Id.pp id
              :: !issues)
        s.ns_green_ids;
      !issues)
    snaps

(* ------------------------------------------------------------------ *)
(* Step invariants: one node observed twice (same incarnation)         *)

(* Per-action color monotonicity, red -> yellow -> green -> white
   (paper Figure 1/3).  Green and white knowledge is irrevocable while
   the process lives: the green prefix is append-only, counts and cuts
   only grow.  (Yellow is provisional by design — a transitional-
   configuration delivery may be invalidated by the next exchange's
   intersection, OR-1 — so yellow->red is legitimate and not flagged.) *)
let check_step ~prev ~cur =
  if cur.ns_incarnation <> prev.ns_incarnation then []
  else begin
    let issues = ref [] in
    let flag inv fmt = Format.kasprintf
        (fun d -> issues := { v_invariant = inv; v_node = Some cur.ns_node; v_detail = d } :: !issues)
        fmt
    in
    if cur.ns_green_count < prev.ns_green_count then
      flag "green-monotone" "green count regressed %d -> %d"
        prev.ns_green_count cur.ns_green_count;
    if cur.ns_white_line < prev.ns_white_line then
      flag "white-monotone" "white line regressed %d -> %d" prev.ns_white_line
        cur.ns_white_line;
    if cur.ns_green_floor < prev.ns_green_floor then
      flag "green-floor" "green floor regressed %d -> %d" prev.ns_green_floor
        cur.ns_green_floor;
    Node_id.Map.iter
      (fun creator c ->
        match Node_id.Map.find_opt creator cur.ns_red_cut with
        | Some c' when c' < c ->
          flag "red-cut-monotone" "red cut of creator %a regressed %d -> %d"
            Node_id.pp creator c c'
        | Some _ -> ()
        | None ->
          flag "red-cut-monotone" "red cut of creator %a disappeared (was %d)"
            Node_id.pp creator c)
      prev.ns_red_cut;
    (* Append-only green prefix: whatever was green stays green, at the
       same position, until it falls below the floor (white GC). *)
    let skip = cur.ns_green_floor - prev.ns_green_floor in
    let rec align pos prev_ids cur_ids =
      match (prev_ids, cur_ids) with
      | [], _ -> ()
      | _ :: _, [] ->
        flag "green-append-only" "green position %d disappeared" pos
      | x :: p', y :: c' ->
        if not (Action.Id.equal x y) then
          flag "green-append-only" "green position %d changed %a -> %a" pos
            Action.Id.pp x Action.Id.pp y
        else align (pos + 1) p' c'
    in
    align
      (cur.ns_green_floor + 1)
      (drop skip prev.ns_green_ids)
      cur.ns_green_ids;
    List.rev !issues
  end

(* The instantaneous catalogue in one call. *)
let check_observation snaps =
  check_total_order snaps @ check_fifo snaps @ check_primary_exclusivity snaps
  @ check_coherence snaps
