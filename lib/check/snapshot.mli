open Repro_net
open Repro_db
open Repro_core

(** Per-replica protocol snapshots and the pure invariant catalogue over
    them.

    Each invariant is derived from a safety lemma of the paper (see
    DESIGN.md, "Invariant catalogue"): global total order and global
    FIFO order (§5.2), quorum exclusivity of primary components (§4),
    and the color monotonicity of Figure 1/3 (red → yellow → green →
    white).  [Monitor] evaluates them online; they are also directly
    usable over hand-built snapshots in unit tests. *)

type violation = {
  v_invariant : string;  (** short invariant name, e.g. "global-fifo" *)
  v_node : Node_id.t option;
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val violation :
  ?node:Node_id.t -> string -> ('a, Format.formatter, unit, violation) format4 -> 'a
(** [violation ?node invariant fmt ...] builds a violation record. *)

type node_snap = {
  ns_node : Node_id.t;
  ns_incarnation : int;
  ns_state : Types.engine_state;
  ns_green_floor : int;  (** positions below it hold no bodies here *)
  ns_green_ids : Action.Id.t list;  (** green order, above the floor *)
  ns_green_count : int;
  ns_green_line : Action.Id.t option;
  ns_red_ids : Action.Id.t list;
  ns_yellow : Types.yellow;
  ns_red_cut : int Node_id.Map.t;
  ns_white_line : int;
  ns_prim : Types.prim_component;
  ns_vulnerable : Types.vulnerable;
  ns_in_primary : bool;
}

val of_engine : incarnation:int -> Engine.t -> node_snap
(** Snapshot a bare engine — the entry point for harnesses (the model
    checker) that drive engines without a full {!Replica} around them.
    [incarnation] scopes step checks: bump it at every crash. *)

val of_replica : Replica.t -> node_snap option
(** [None] while the replica is down, has left, or is a joiner whose
    state transfer has not completed. *)

(** {2 Instantaneous invariants over one observation} *)

val check_total_order : node_snap list -> violation list
(** Green prefixes of any two replicas agree on their overlap.  O(n)
    comparisons against the longest-prefix reference (pairwise only on
    the rare segment below the reference's own floor). *)

val check_fifo : node_snap list -> violation list
(** Per-creator indices inside every green sequence are gap-free. *)

val check_primary_exclusivity : node_snap list -> violation list
(** At most one live primary component per index; every live member
    belongs to its own component. *)

val check_coherence : node_snap list -> violation list
(** Per-snapshot internal coherence: green line matches the last green
    action, the white line never passes the green count, no white
    action lingers in a valid yellow set. *)

val check_observation : node_snap list -> violation list
(** The whole instantaneous catalogue. *)

(** {2 Step invariants} *)

val check_step : prev:node_snap -> cur:node_snap -> violation list
(** Color monotonicity between two observations of the same node within
    one incarnation: the green prefix is append-only (green/white
    knowledge is irrevocable), green count / white line / per-creator
    red cuts never regress.  Returns [] when the incarnations differ —
    a crash legitimately loses volatile state. *)
