open Repro_core

(** The online protocol invariant monitor ("repcheck").

    Attach one monitor to a scenario's replicas and it evaluates the
    invariant catalogue of {!Snapshot} for the whole run:

    - {b event-driven}: every engine emits an audit feed
      ({!Engine.audit_event}); quorum decisions are re-checked against
      the declared policy and the vulnerable-exclusion rule the moment
      they are made, and primary installs are checked against a global
      registry (at most one component per [prim_index] — the paper's §4
      exclusivity argument);
    - {b sweeps}: after every state transition the monitor schedules a
      zero-delay simulation event and, once the triggering event has
      settled, snapshots all ready replicas and runs the instantaneous
      catalogue (total order, FIFO, primary exclusivity, coherence)
      plus the per-node step catalogue (color monotonicity) against the
      previous sweep.

    The monitor is purely observational: it sends no messages and
    mutates no replica, and its zero-delay events do not reorder the
    scenario's own same-time events (the simulator is FIFO within a
    time point), so a monitored run behaves identically to an
    unmonitored one. *)

type t

type record = {
  r_at : Repro_sim.Time.t;
  r_violation : Snapshot.violation;
  r_window : Repro_sim.Trace.entry list;
      (** the most recent trace entries at the time of the violation,
          oldest first — the context a report pretty-prints *)
}

val create :
  ?window:int ->
  ?policy:Quorum.policy option ->
  ?weights:Quorum.weights ->
  ?trace_capacity:int ->
  sim:Repro_sim.Engine.t ->
  replicas:(unit -> Replica.t list) ->
  unit ->
  t
(** [create ~sim ~replicas ()] attaches to every replica currently
    returned by [replicas] and re-scans for newcomers (joiners) at each
    sweep.  [window] (default 40) is how many trace entries each
    violation record captures.  [policy] (default
    [Some Quorum.Dynamic_linear]) enables the quorum-decision and
    primary-lineage cross-checks; pass [None] when the scenario runs a
    different policy.  [weights] must match the scenario's voting
    weights. *)

val check_now : t -> unit
(** Forces a sweep immediately (use at quiescence, after [Sim.Engine.run]
    returns — there is no further event for the monitor to piggyback
    on). *)

val ok : t -> bool
val violations : t -> Snapshot.violation list
val records : t -> record list
(** Oldest first. *)

val observations : t -> int
(** Number of sweeps performed (for "the monitor actually ran"
    assertions). *)

val trace : t -> Repro_sim.Trace.t
(** The monitor's own trace: audit events ([state], [quorum],
    [install]) and [violation] entries. *)

val report : t -> Format.formatter -> unit
(** Pretty-prints every violation with its trace window, or a one-line
    all-clear. *)

val assert_ok : t -> unit
(** Raises [Failure] with the rendered {!report} if any violation was
    recorded. *)
