module Sim = Repro_sim
open Repro_net
open Repro_core

(* The online invariant monitor: subscribes to every replica's engine
   audit feed, re-checks event-level invariants (quorum decisions,
   installs) as they happen, and sweeps the instantaneous + step
   catalogue of [Snapshot] after every state transition (i.e. at every
   view change) — each sweep runs as a zero-delay simulation event, so
   it observes quiescent post-event state and never perturbs the run. *)

type record = {
  r_at : Sim.Time.t;
  r_violation : Snapshot.violation;
  r_window : Sim.Trace.entry list;  (** trace window around the failure *)
}

type t = {
  sim : Sim.Engine.t;
  replicas : unit -> Replica.t list;
  trace : Sim.Trace.t;
  window : int;
  policy : Quorum.policy option;
  weights : Quorum.weights;
  history : (Node_id.t, Snapshot.node_snap) Hashtbl.t;
  installs : (int, Types.prim_component) Hashtbl.t;
      (* prim_index -> the one component ever installed with it *)
  mutable attached : Node_id.Set.t;
  mutable records : record list; (* newest first *)
  mutable scheduled : bool;
  mutable observations : int;
}

let violations t = List.rev_map (fun r -> r.r_violation) t.records
let records t = List.rev t.records
let ok t = t.records = []
let observations t = t.observations
let trace t = t.trace

let add t v =
  Sim.Trace.record t.trace ~at:(Sim.Engine.now t.sim)
    ~node:(match v.Snapshot.v_node with Some n -> n | None -> -1)
    ~tag:"violation"
    (Format.asprintf "%a" Snapshot.pp_violation v);
  t.records <-
    {
      r_at = Sim.Engine.now t.sim;
      r_violation = v;
      r_window = Sim.Trace.last t.trace t.window;
    }
    :: t.records

let note t ~node ~tag detail =
  Sim.Trace.record t.trace ~at:(Sim.Engine.now t.sim) ~node ~tag detail

(* ------------------------------------------------------------------ *)
(* Event-driven checks (audit feed)                                    *)

let on_quorum t ~node ~members ~vulnerable ~prev_prim ~granted =
  note t ~node ~tag:"quorum"
    (Format.asprintf "granted=%b members=%a vulnerable=%a prev-prim=%d"
       granted Node_id.pp_set members Node_id.pp_set vulnerable
       prev_prim.Types.prim_index);
  (* IsQuorum (paper §5): no quorum may contain a vulnerable server. *)
  if granted && not (Node_id.Set.is_empty vulnerable) then
    add t
      (Snapshot.violation ~node "quorum-vulnerable"
         "quorum granted over %a despite vulnerable %a" Node_id.pp_set members
         Node_id.pp_set vulnerable);
  (* Cross-check the decision itself against the declared policy. *)
  match t.policy with
  | Some Quorum.Dynamic_linear ->
    let expected =
      Node_id.Set.is_empty vulnerable
      && Quorum.has_majority ~weights:t.weights
           ~prev:prev_prim.Types.prim_servers members
    in
    if granted <> expected then
      add t
        (Snapshot.violation ~node "quorum-decision"
           "engine %s a quorum the declared policy would %s"
           (if granted then "granted" else "denied")
           (if expected then "grant" else "deny"))
  | Some (Quorum.Static_majority | Quorum.Mutated_weak_majority) | None -> ()

let on_install t ~node (prim : Types.prim_component) =
  note t ~node ~tag:"install"
    (Format.asprintf "primary %d attempt %d members %a" prim.Types.prim_index
       prim.Types.prim_attempt Node_id.pp_set prim.Types.prim_servers);
  (match Hashtbl.find_opt t.installs prim.Types.prim_index with
  | Some first
    when first.Types.prim_attempt <> prim.Types.prim_attempt
         || not
              (Node_id.Set.equal first.Types.prim_servers
                 prim.Types.prim_servers) ->
    (* Two different components installed under one index: the split
       brain the vulnerable record exists to prevent (paper §4). *)
    add t
      (Snapshot.violation ~node "primary-exclusivity"
         "primary %d installed twice: attempt %d %a vs attempt %d %a"
         prim.Types.prim_index first.Types.prim_attempt Node_id.pp_set
         first.Types.prim_servers prim.Types.prim_attempt Node_id.pp_set
         prim.Types.prim_servers)
  | Some _ | None -> Hashtbl.replace t.installs prim.Types.prim_index prim);
  (* Dynamic linear voting: each component is a (weighted) majority of
     the previously installed one. *)
  match (t.policy, Hashtbl.find_opt t.installs (prim.Types.prim_index - 1)) with
  | Some Quorum.Dynamic_linear, Some prev ->
    if
      not
        (Quorum.has_majority ~weights:t.weights ~prev:prev.Types.prim_servers
           prim.Types.prim_servers)
    then
      add t
        (Snapshot.violation ~node "primary-quorum"
           "primary %d (%a) is not a majority of primary %d (%a)"
           prim.Types.prim_index Node_id.pp_set prim.Types.prim_servers
           (prim.Types.prim_index - 1) Node_id.pp_set prev.Types.prim_servers)
  | (Some _ | None), _ -> ()

(* ------------------------------------------------------------------ *)
(* Snapshot sweeps                                                     *)

let observe t =
  t.observations <- t.observations + 1;
  let snaps = List.filter_map Snapshot.of_replica (t.replicas ()) in
  List.iter (add t) (Snapshot.check_observation snaps);
  List.iter
    (fun cur ->
      (match Hashtbl.find_opt t.history cur.Snapshot.ns_node with
      | Some prev -> List.iter (add t) (Snapshot.check_step ~prev ~cur)
      | None -> ());
      Hashtbl.replace t.history cur.Snapshot.ns_node cur)
    snaps

(* Sweep after the current simulation event completes: engine state is
   transient inside an event; a zero-delay event observes the settled
   state.  Coalesced: many transitions in one instant cost one sweep. *)
let schedule_observe t =
  if not t.scheduled then begin
    t.scheduled <- true;
    ignore
      (Sim.Engine.schedule t.sim ~delay:Sim.Time.zero (fun () ->
           t.scheduled <- false;
           observe t))
  end

let on_audit t ~node ev =
  match ev with
  | Engine.Audit_state s ->
    note t ~node ~tag:"state" (Format.asprintf "%a" Types.pp_engine_state s);
    schedule_observe t
  | Engine.Audit_quorum { aq_members; aq_vulnerable; aq_prev_prim; aq_granted }
    ->
    on_quorum t ~node ~members:aq_members ~vulnerable:aq_vulnerable
      ~prev_prim:aq_prev_prim ~granted:aq_granted;
    schedule_observe t
  | Engine.Audit_install prim ->
    on_install t ~node prim;
    schedule_observe t

(* Replicas can appear after creation (joiners): re-scan on every
   sweep and hook anything new. *)
let attach_new t =
  List.iter
    (fun r ->
      let node = Replica.node r in
      if not (Node_id.Set.mem node t.attached) then begin
        t.attached <- Node_id.Set.add node t.attached;
        Replica.set_audit r (fun ev -> on_audit t ~node ev)
      end)
    (t.replicas ())

let check_now t =
  attach_new t;
  observe t

let create ?(window = 40) ?(policy = Some Quorum.Dynamic_linear)
    ?(weights = Quorum.no_weights) ?(trace_capacity = 20_000) ~sim ~replicas ()
    =
  let t =
    {
      sim;
      replicas;
      trace = Sim.Trace.create ~capacity:trace_capacity ();
      window;
      policy;
      weights;
      history = Hashtbl.create 16;
      installs = Hashtbl.create 16;
      attached = Node_id.Set.empty;
      records = [];
      scheduled = false;
      observations = 0;
    }
  in
  attach_new t;
  t

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let pp_record ppf r =
  Format.fprintf ppf "@[<v 2>at %a: %a" Sim.Time.pp r.r_at
    Snapshot.pp_violation r.r_violation;
  if r.r_window <> [] then begin
    Format.fprintf ppf "@,trace window (last %d events):"
      (List.length r.r_window);
    List.iter
      (fun e -> Format.fprintf ppf "@,  %a" Sim.Trace.pp_entry e)
      r.r_window
  end;
  Format.fprintf ppf "@]"

let report t ppf =
  match t.records with
  | [] ->
    Format.fprintf ppf "repcheck: %d observations, no violations@."
      t.observations
  | _ ->
    Format.fprintf ppf
      "@[<v>repcheck: %d violation(s) in %d observations:@,%a@]@."
      (List.length t.records) t.observations
      (Format.pp_print_list pp_record)
      (List.rev t.records)

let assert_ok t =
  if not (ok t) then
    failwith (Format.asprintf "%t" (report t)) (* repcheck: allow *)
