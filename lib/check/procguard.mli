open Repro_db

(** Runtime validation of declared procedure footprints (paper §6).

    The static key-space analysis (lib/analysis/procfoot.ml) infers each
    procedure's symbolic read/write sets and the drift lint diffs them
    against the [Procedure.register ?footprint] declarations.  This
    guard closes the loop dynamically: attached to a replica, it checks
    every executed procedure's actual key accesses against the declared
    patterns — actual reads must be covered by declared reads ∪ writes
    (a write licenses the read-back of the same key), actual writes by
    declared writes.  Procedures without a declaration are counted but
    not checked. *)

type kind = Read | Write

type violation = {
  v_proc : string;  (** procedure name *)
  v_kind : kind;
  v_key : string;  (** the key outside the declared footprint *)
  v_args : Value.t list;  (** arguments of the offending invocation *)
}

type t

val create : unit -> t

val observe : t -> Procedure.registry -> Executor.procedure_trace -> unit
(** Check one executed procedure's trace against its declaration in the
    given registry (typically the executing replica's own). *)

val attach : t -> Repro_core.Replica.t -> unit
(** Install this guard as the replica's procedure hook
    ({!Repro_core.Replica.set_procedure_hook}): every procedure the
    replica executes — green apply, commutative red answer, dirty-read
    materialisation, recovery replay — is observed. *)

val violations : t -> violation list
(** Violations in observation order. *)

val observed : t -> int
(** Procedures executed under this guard. *)

val checked : t -> int
(** The subset of {!observed} that had a declared footprint. *)

val ok : t -> bool

val pp_violation : Format.formatter -> violation -> unit

val assert_ok : t -> unit
(** Raises [Failure] listing every violation, if any. *)
