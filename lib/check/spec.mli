open Repro_net
open Repro_core

(** The abstract-specification conformance oracle: an executable model
    of the paper's Figure 4 / Appendix A automaton that every concrete
    {!Engine} step must refine.

    Feed it, per node and in order, the group-communication events the
    engine consumes ({!on_view}, {!on_deliver} — call {e before} handing
    the event to the engine) and the audit feed the engine emits
    ({!on_audit}).  It verifies that

    - each state transition is a Figure 4 edge taken under its abstract
      trigger,
    - each quorum decision equals the specification's IsQuorum (dynamic
      linear voting over the last installed primary, vulnerable members
      excluded),
    - each install is justified by a granted quorum, advances the
      primary index by one, and never disagrees with another server's
      installation of the same index.

    Violations carry the invariant name ["spec-refinement"] and are
    drained with {!take}. *)

val all_states : Types.engine_state list
(** Every Figure 4 state, in the declaration order of
    {!Types.engine_state}. *)

val state_name : Types.engine_state -> string
(** The constructor name — the vocabulary shared with the static
    spec-drift analysis ([lib/analysis]), which reads state names off
    the typed AST. *)

val edges : (Types.engine_state option * Types.engine_state) list
(** The guard-erased Figure 4 edge set, [(source, target)]; a [None]
    source is a wildcard (the edge leaves every state).  The static
    spec-drift analysis diffs the transitions compiled into
    [lib/core/engine.ml] against this table. *)

type t

val create : ?weights:Quorum.weights -> unit -> t
(** The specification's quorum system is the paper's dynamic linear
    voting; [weights] must match the scenario (default: unweighted). *)

val on_view : t -> node:Node_id.t -> [ `Trans | `Reg ] -> unit
(** A transitional/regular configuration event is about to reach the
    node's engine. *)

val on_deliver :
  t -> node:Node_id.t -> Types.payload -> in_regular:bool -> unit
(** A payload delivery is about to reach the node's engine. *)

val on_audit : t -> node:Node_id.t -> Engine.audit_event -> unit
(** Wire as the engine's audit sink (or tee into it). *)

val on_recover : t -> node:Node_id.t -> unit
(** The node's engine was rebuilt from stable storage: its abstract
    state restarts at NonPrim.  The global install registry survives —
    exclusivity spans crashes. *)

val state : t -> Node_id.t -> Types.engine_state
(** The node's current abstract state (for reports and tests). *)

val ok : t -> bool
(** No undrained violations. *)

val take : t -> Snapshot.violation list
(** Drains accumulated violations, oldest first. *)
