module Sim = Repro_sim
open Repro_net
open Repro_db
open Repro_core

(* Determinism checking: the simulation is virtual-time and seeded, so
   two runs of the same scenario with the same seed must be bit-for-bit
   identical.  A run builds its replicas, we reduce them to a canonical
   line-per-fact fingerprint, and two fingerprints diff textually —
   mismatching lines point straight at the first diverging replica. *)

let fingerprint_replica r =
  let node = Replica.node r in
  let line fmt = Format.asprintf ("n%a " ^^ fmt) Node_id.pp node in
  if not (Replica.is_up r) then [ line "down" ]
  else if not (Replica.is_ready r) then [ line "not-ready" ]
  else begin
    let e = Replica.engine r in
    let ids l =
      String.concat ","
        (List.map (fun id -> Format.asprintf "%a" Action.Id.pp id) l)
    in
    let action_ids l = ids (List.map (fun a -> a.Action.id) l) in
    let greens = Engine.green_actions e in
    [
      line "state %a" Types.pp_engine_state (Engine.state e);
      line "green count=%d floor=%d [%s]" (Engine.green_count e)
        (Engine.green_count e - List.length greens)
        (action_ids greens);
      line "red [%s]" (action_ids (Engine.red_actions e));
      line "red-cut %s"
        (String.concat ","
           (List.map
              (fun (n, c) -> Format.asprintf "%a:%d" Node_id.pp n c)
              (Node_id.Map.bindings (Engine.red_cut_map e))));
      line "white %d" (Engine.white_line e);
      line "prim %d/%d %a" (Engine.prim_component e).Types.prim_index
        (Engine.prim_component e).Types.prim_attempt Node_id.pp_set
        (Engine.prim_component e).Types.prim_servers;
      line "db digest=%d version=%d"
        (Database.digest (Replica.database r))
        (Database.version (Replica.database r));
      line "applied %d" (Replica.greens_applied r);
    ]
  end

let fingerprint ?sim ?trace replicas =
  let sorted =
    List.sort
      (fun a b -> Node_id.compare (Replica.node a) (Replica.node b))
      replicas
  in
  let head =
    match sim with
    | Some s -> [ Format.asprintf "time %a" Sim.Time.pp (Sim.Engine.now s) ]
    | None -> []
  in
  let tail =
    match trace with
    | Some tr ->
      List.map
        (fun e -> Format.asprintf "trace %a" Sim.Trace.pp_entry e)
        (Sim.Trace.entries tr)
    | None -> []
  in
  head @ List.concat_map fingerprint_replica sorted @ tail

let diff a b =
  let rec go i a b acc =
    match (a, b) with
    | [], [] -> List.rev acc
    | x :: a', y :: b' ->
      let acc =
        if String.equal x y then acc
        else Printf.sprintf "line %d: run1 %S / run2 %S" i x y :: acc
      in
      go (i + 1) a' b' acc
    | x :: a', [] -> go (i + 1) a' [] (Printf.sprintf "line %d: only run1 %S" i x :: acc)
    | [], y :: b' -> go (i + 1) [] b' (Printf.sprintf "line %d: only run2 %S" i y :: acc)
  in
  go 1 a b []

let check ~run () =
  let first = run () in
  let second = run () in
  diff first second
