open Repro_net
open Repro_core

(* An executable model of the paper's Figure 4 / Appendix A automaton.

   The model checker feeds it the observable behaviour of each concrete
   engine — the group-communication events it consumes (before the
   engine processes them) and the audit feed it emits — and the oracle
   verifies that every concrete step refines an abstract one:

   - every [Audit_state] transition must be an edge of Figure 4, taken
     under the trigger that the abstract automaton takes it under
     (view change, state-message delivery, CPC delivery, ...);
   - every [Audit_quorum] decision must equal the specification's
     IsQuorum: dynamic linear voting over the last installed primary,
     with vulnerable members excluded — this is the check that catches
     a seeded quorum mutation;
   - every [Audit_install] must be justified by a granted quorum in the
     current configuration, advance the primary index by exactly one,
     and agree with every other server's installation of that index
     (a global registry, the §4 exclusivity argument).

   The refinement mapping is direct: the engine's state names are the
   abstract states, so the oracle only tracks, per node, the previous
   audited state, the last consumed trigger, and the last quorum
   outcome of the current configuration. *)

type trigger =
  | Tr_none
  | Tr_trans_conf
  | Tr_reg_conf
  | Tr_action of bool (* in_regular *)
  | Tr_retrans
  | Tr_state_msg
  | Tr_cpc

let pp_trigger ppf t =
  Format.pp_print_string ppf
    (match t with
    | Tr_none -> "none"
    | Tr_trans_conf -> "trans-conf"
    | Tr_reg_conf -> "reg-conf"
    | Tr_action true -> "action"
    | Tr_action false -> "action~"
    | Tr_retrans -> "retrans"
    | Tr_state_msg -> "state-msg"
    | Tr_cpc -> "cpc")

type quorum_outcome =
  | Q_pending
  | Q_granted of Types.prim_component * Node_id.Set.t (* prev prim, members *)
  | Q_denied

type shadow = {
  mutable sh_state : Types.engine_state;
  mutable sh_trigger : trigger;
  mutable sh_quorum : quorum_outcome;
}

type t = {
  weights : Quorum.weights;
  shadows : (Node_id.t, shadow) Hashtbl.t;
  installs : (int, Types.prim_component) Hashtbl.t;
  mutable violations : Snapshot.violation list; (* newest first *)
}

let create ?(weights = Quorum.no_weights) () =
  { weights; shadows = Hashtbl.create 8; installs = Hashtbl.create 8; violations = [] }

let fresh_shadow () =
  { sh_state = Types.Non_prim; sh_trigger = Tr_none; sh_quorum = Q_pending }

let shadow t node =
  match Hashtbl.find_opt t.shadows node with
  | Some s -> s
  | None ->
    let s = fresh_shadow () in
    Hashtbl.replace t.shadows node s;
    s

let flag t ?node fmt = Format.kasprintf
    (fun d ->
      t.violations <-
        { Snapshot.v_invariant = "spec-refinement"; v_node = node; v_detail = d }
        :: t.violations)
    fmt

let take t =
  let v = List.rev t.violations in
  t.violations <- [];
  v

let ok t = t.violations = []

(* ------------------------------------------------------------------ *)
(* Observed inputs                                                     *)

let on_view t ~node kind =
  let sh = shadow t node in
  match kind with
  | `Trans -> sh.sh_trigger <- Tr_trans_conf
  | `Reg ->
    sh.sh_trigger <- Tr_reg_conf;
    sh.sh_quorum <- Q_pending

let on_deliver t ~node (payload : Types.payload) ~in_regular =
  let sh = shadow t node in
  sh.sh_trigger <-
    (match payload with
    | Types.Action_msg _ | Types.Action_batch _ -> Tr_action in_regular
    | Types.Retrans_green _ | Types.Retrans_red _ -> Tr_retrans
    | Types.State_msg _ -> Tr_state_msg
    | Types.Cpc _ -> Tr_cpc)

let on_recover t ~node = Hashtbl.replace t.shadows node (fresh_shadow ())

(* ------------------------------------------------------------------ *)
(* Figure 4 edges                                                      *)

(* The automaton as data: (source, target, guard).  A [None] source is
   a wildcard (the edge leaves every state).  The guard says under
   which trigger / quorum outcome the abstract automaton takes the
   edge.  Exposing the graph declaratively lets the static spec-drift
   analysis (lib/analysis, bin/lint.exe) diff the transitions compiled
   into lib/core/engine.ml against this table without re-encoding
   Figure 4 a third time. *)

let all_states =
  Types.
    [
      Reg_prim;
      Trans_prim;
      Exchange_states;
      Exchange_actions;
      Construct;
      No_state;
      Un_state;
      Non_prim;
    ]

(* Constructor names, the shared vocabulary with the static analysis
   (which reads them off the typed AST). *)
let state_name : Types.engine_state -> string = function
  | Types.Reg_prim -> "Reg_prim"
  | Types.Trans_prim -> "Trans_prim"
  | Types.Exchange_states -> "Exchange_states"
  | Types.Exchange_actions -> "Exchange_actions"
  | Types.Construct -> "Construct"
  | Types.No_state -> "No_state"
  | Types.Un_state -> "Un_state"
  | Types.Non_prim -> "Non_prim"

type edge_guard = trigger -> quorum_outcome -> bool

let fig4 :
    (Types.engine_state option * Types.engine_state * edge_guard) list =
  let open Types in
  [
    (* A view change always restarts the exchange. *)
    (None, Exchange_states, fun tr _ -> tr = Tr_reg_conf);
    (* All state messages of the configuration arrived. *)
    (Some Exchange_states, Exchange_actions, fun tr _ -> tr = Tr_state_msg);
    (* End of retransmission, quorum granted / denied. *)
    ( Some Exchange_actions,
      Construct,
      fun _ q -> match q with Q_granted _ -> true | Q_pending | Q_denied -> false
    );
    ( Some Exchange_actions,
      Non_prim,
      fun tr q -> q = Q_denied || tr = Tr_trans_conf );
    (* Transitional configuration interrupts. *)
    (Some Reg_prim, Trans_prim, fun tr _ -> tr = Tr_trans_conf);
    (Some Construct, No_state, fun tr _ -> tr = Tr_trans_conf);
    (Some Exchange_states, Non_prim, fun tr _ -> tr = Tr_trans_conf);
    (* All CPCs in. *)
    (Some Construct, Reg_prim, fun tr _ -> tr = Tr_cpc);
    (Some No_state, Un_state, fun tr _ -> tr = Tr_cpc);
    (* 1b: an ordered action reveals that the attempt succeeded. *)
    ( Some Un_state,
      Trans_prim,
      fun tr _ -> match tr with Tr_action _ -> true | _ -> false );
  ]

(* The guard-erased edge set: a concrete transition refines Figure 4
   when some guarded edge matches it under some trigger. *)
let edges : (Types.engine_state option * Types.engine_state) list =
  List.map (fun (f, t, _) -> (f, t)) fig4

let legal_edge sh (to_ : Types.engine_state) =
  List.exists
    (fun (from_, target, guard) ->
      (match from_ with None -> true | Some s -> s = sh.sh_state)
      && target = to_
      && guard sh.sh_trigger sh.sh_quorum)
    fig4

let on_state t ~node to_ =
  let sh = shadow t node in
  if not (legal_edge sh to_) then
    flag t ~node "illegal Figure 4 edge %a -> %a under trigger %a"
      Types.pp_engine_state sh.sh_state Types.pp_engine_state to_ pp_trigger
      sh.sh_trigger;
  sh.sh_state <- to_

(* ------------------------------------------------------------------ *)
(* IsQuorum refinement (paper §5)                                      *)

let on_quorum t ~node ~members ~vulnerable ~prev_prim ~granted =
  let sh = shadow t node in
  if sh.sh_state <> Types.Exchange_actions then
    flag t ~node "quorum evaluated in %a (spec: ExchangeActions only)"
      Types.pp_engine_state sh.sh_state;
  let expected =
    Node_id.Set.is_empty vulnerable
    && Quorum.has_majority ~weights:t.weights
         ~prev:prev_prim.Types.prim_servers members
  in
  if granted <> expected then
    flag t ~node
      "engine %s a quorum the specification would %s (members %a, prev \
       primary %d %a, vulnerable %a)"
      (if granted then "granted" else "denied")
      (if expected then "grant" else "deny")
      Node_id.pp_set members prev_prim.Types.prim_index Node_id.pp_set
      prev_prim.Types.prim_servers Node_id.pp_set vulnerable;
  sh.sh_quorum <- (if granted then Q_granted (prev_prim, members) else Q_denied)

(* ------------------------------------------------------------------ *)
(* Install refinement (paper §4, A.10)                                 *)

let on_install t ~node (prim : Types.prim_component) =
  let sh = shadow t node in
  (match sh.sh_state with
  | Types.Construct | Types.Un_state -> ()
  | s ->
    flag t ~node "install in %a (spec: Construct or Un only)"
      Types.pp_engine_state s);
  (match sh.sh_quorum with
  | Q_granted (prev, members) ->
    if prim.Types.prim_index <> prev.Types.prim_index + 1 then
      flag t ~node "installed primary %d does not follow quorum's primary %d"
        prim.Types.prim_index prev.Types.prim_index;
    if not (Node_id.Set.equal prim.Types.prim_servers members) then
      flag t ~node "installed membership %a differs from quorate view %a"
        Node_id.pp_set prim.Types.prim_servers Node_id.pp_set members
  | Q_pending | Q_denied ->
    flag t ~node "install of primary %d without a granted quorum"
      prim.Types.prim_index);
  (* Global exclusivity: one component per index, each a dynamic-linear
     majority of its predecessor. *)
  (match Hashtbl.find_opt t.installs prim.Types.prim_index with
  | Some first
    when first.Types.prim_attempt <> prim.Types.prim_attempt
         || not
              (Node_id.Set.equal first.Types.prim_servers
                 prim.Types.prim_servers) ->
    flag t ~node "primary %d installed twice: attempt %d %a vs attempt %d %a"
      prim.Types.prim_index first.Types.prim_attempt Node_id.pp_set
      first.Types.prim_servers prim.Types.prim_attempt Node_id.pp_set
      prim.Types.prim_servers
  | Some _ | None -> Hashtbl.replace t.installs prim.Types.prim_index prim);
  match Hashtbl.find_opt t.installs (prim.Types.prim_index - 1) with
  | Some prev
    when not
           (Quorum.has_majority ~weights:t.weights
              ~prev:prev.Types.prim_servers prim.Types.prim_servers) ->
    flag t ~node "primary %d (%a) is not a majority of primary %d (%a)"
      prim.Types.prim_index Node_id.pp_set prim.Types.prim_servers
      (prim.Types.prim_index - 1)
      Node_id.pp_set prev.Types.prim_servers
  | Some _ | None -> ()

let on_audit t ~node = function
  | Engine.Audit_state s -> on_state t ~node s
  | Engine.Audit_quorum { aq_members; aq_vulnerable; aq_prev_prim; aq_granted }
    ->
    on_quorum t ~node ~members:aq_members ~vulnerable:aq_vulnerable
      ~prev_prim:aq_prev_prim ~granted:aq_granted
  | Engine.Audit_install prim -> on_install t ~node prim

let state t node = (shadow t node).sh_state
