open Repro_net
open Repro_core

(* An executable model of the paper's Figure 4 / Appendix A automaton.

   The model checker feeds it the observable behaviour of each concrete
   engine — the group-communication events it consumes (before the
   engine processes them) and the audit feed it emits — and the oracle
   verifies that every concrete step refines an abstract one:

   - every [Audit_state] transition must be an edge of Figure 4, taken
     under the trigger that the abstract automaton takes it under
     (view change, state-message delivery, CPC delivery, ...);
   - every [Audit_quorum] decision must equal the specification's
     IsQuorum: dynamic linear voting over the last installed primary,
     with vulnerable members excluded — this is the check that catches
     a seeded quorum mutation;
   - every [Audit_install] must be justified by a granted quorum in the
     current configuration, advance the primary index by exactly one,
     and agree with every other server's installation of that index
     (a global registry, the §4 exclusivity argument).

   The refinement mapping is direct: the engine's state names are the
   abstract states, so the oracle only tracks, per node, the previous
   audited state, the last consumed trigger, and the last quorum
   outcome of the current configuration. *)

type trigger =
  | Tr_none
  | Tr_trans_conf
  | Tr_reg_conf
  | Tr_action of bool (* in_regular *)
  | Tr_retrans
  | Tr_state_msg
  | Tr_cpc

let pp_trigger ppf t =
  Format.pp_print_string ppf
    (match t with
    | Tr_none -> "none"
    | Tr_trans_conf -> "trans-conf"
    | Tr_reg_conf -> "reg-conf"
    | Tr_action true -> "action"
    | Tr_action false -> "action~"
    | Tr_retrans -> "retrans"
    | Tr_state_msg -> "state-msg"
    | Tr_cpc -> "cpc")

type quorum_outcome =
  | Q_pending
  | Q_granted of Types.prim_component * Node_id.Set.t (* prev prim, members *)
  | Q_denied

type shadow = {
  mutable sh_state : Types.engine_state;
  mutable sh_trigger : trigger;
  mutable sh_quorum : quorum_outcome;
}

type t = {
  weights : Quorum.weights;
  shadows : (Node_id.t, shadow) Hashtbl.t;
  installs : (int, Types.prim_component) Hashtbl.t;
  mutable violations : Snapshot.violation list; (* newest first *)
}

let create ?(weights = Quorum.no_weights) () =
  { weights; shadows = Hashtbl.create 8; installs = Hashtbl.create 8; violations = [] }

let fresh_shadow () =
  { sh_state = Types.Non_prim; sh_trigger = Tr_none; sh_quorum = Q_pending }

let shadow t node =
  match Hashtbl.find_opt t.shadows node with
  | Some s -> s
  | None ->
    let s = fresh_shadow () in
    Hashtbl.replace t.shadows node s;
    s

let flag t ?node fmt = Format.kasprintf
    (fun d ->
      t.violations <-
        { Snapshot.v_invariant = "spec-refinement"; v_node = node; v_detail = d }
        :: t.violations)
    fmt

let take t =
  let v = List.rev t.violations in
  t.violations <- [];
  v

let ok t = t.violations = []

(* ------------------------------------------------------------------ *)
(* Observed inputs                                                     *)

let on_view t ~node kind =
  let sh = shadow t node in
  match kind with
  | `Trans -> sh.sh_trigger <- Tr_trans_conf
  | `Reg ->
    sh.sh_trigger <- Tr_reg_conf;
    sh.sh_quorum <- Q_pending

let on_deliver t ~node (payload : Types.payload) ~in_regular =
  let sh = shadow t node in
  sh.sh_trigger <-
    (match payload with
    | Types.Action_msg _ -> Tr_action in_regular
    | Types.Retrans_green _ | Types.Retrans_red _ -> Tr_retrans
    | Types.State_msg _ -> Tr_state_msg
    | Types.Cpc _ -> Tr_cpc)

let on_recover t ~node = Hashtbl.replace t.shadows node (fresh_shadow ())

(* ------------------------------------------------------------------ *)
(* Figure 4 edges                                                      *)

let legal_edge sh (to_ : Types.engine_state) =
  let open Types in
  match (sh.sh_state, to_) with
  (* A view change always restarts the exchange. *)
  | _, Exchange_states -> sh.sh_trigger = Tr_reg_conf
  (* All state messages of the configuration arrived. *)
  | Exchange_states, Exchange_actions -> sh.sh_trigger = Tr_state_msg
  (* End of retransmission, quorum granted / denied. *)
  | Exchange_actions, Construct -> (
    match sh.sh_quorum with Q_granted _ -> true | Q_pending | Q_denied -> false)
  | Exchange_actions, Non_prim ->
    sh.sh_quorum = Q_denied || sh.sh_trigger = Tr_trans_conf
  (* Transitional configuration interrupts. *)
  | Reg_prim, Trans_prim -> sh.sh_trigger = Tr_trans_conf
  | Construct, No_state -> sh.sh_trigger = Tr_trans_conf
  | Exchange_states, Non_prim -> sh.sh_trigger = Tr_trans_conf
  (* All CPCs in. *)
  | Construct, Reg_prim -> sh.sh_trigger = Tr_cpc
  | No_state, Un_state -> sh.sh_trigger = Tr_cpc
  (* 1b: an ordered action reveals that the attempt succeeded. *)
  | Un_state, Trans_prim -> (
    match sh.sh_trigger with Tr_action _ -> true | _ -> false)
  | _, _ -> false

let on_state t ~node to_ =
  let sh = shadow t node in
  if not (legal_edge sh to_) then
    flag t ~node "illegal Figure 4 edge %a -> %a under trigger %a"
      Types.pp_engine_state sh.sh_state Types.pp_engine_state to_ pp_trigger
      sh.sh_trigger;
  sh.sh_state <- to_

(* ------------------------------------------------------------------ *)
(* IsQuorum refinement (paper §5)                                      *)

let on_quorum t ~node ~members ~vulnerable ~prev_prim ~granted =
  let sh = shadow t node in
  if sh.sh_state <> Types.Exchange_actions then
    flag t ~node "quorum evaluated in %a (spec: ExchangeActions only)"
      Types.pp_engine_state sh.sh_state;
  let expected =
    Node_id.Set.is_empty vulnerable
    && Quorum.has_majority ~weights:t.weights
         ~prev:prev_prim.Types.prim_servers members
  in
  if granted <> expected then
    flag t ~node
      "engine %s a quorum the specification would %s (members %a, prev \
       primary %d %a, vulnerable %a)"
      (if granted then "granted" else "denied")
      (if expected then "grant" else "deny")
      Node_id.pp_set members prev_prim.Types.prim_index Node_id.pp_set
      prev_prim.Types.prim_servers Node_id.pp_set vulnerable;
  sh.sh_quorum <- (if granted then Q_granted (prev_prim, members) else Q_denied)

(* ------------------------------------------------------------------ *)
(* Install refinement (paper §4, A.10)                                 *)

let on_install t ~node (prim : Types.prim_component) =
  let sh = shadow t node in
  (match sh.sh_state with
  | Types.Construct | Types.Un_state -> ()
  | s ->
    flag t ~node "install in %a (spec: Construct or Un only)"
      Types.pp_engine_state s);
  (match sh.sh_quorum with
  | Q_granted (prev, members) ->
    if prim.Types.prim_index <> prev.Types.prim_index + 1 then
      flag t ~node "installed primary %d does not follow quorum's primary %d"
        prim.Types.prim_index prev.Types.prim_index;
    if not (Node_id.Set.equal prim.Types.prim_servers members) then
      flag t ~node "installed membership %a differs from quorate view %a"
        Node_id.pp_set prim.Types.prim_servers Node_id.pp_set members
  | Q_pending | Q_denied ->
    flag t ~node "install of primary %d without a granted quorum"
      prim.Types.prim_index);
  (* Global exclusivity: one component per index, each a dynamic-linear
     majority of its predecessor. *)
  (match Hashtbl.find_opt t.installs prim.Types.prim_index with
  | Some first
    when first.Types.prim_attempt <> prim.Types.prim_attempt
         || not
              (Node_id.Set.equal first.Types.prim_servers
                 prim.Types.prim_servers) ->
    flag t ~node "primary %d installed twice: attempt %d %a vs attempt %d %a"
      prim.Types.prim_index first.Types.prim_attempt Node_id.pp_set
      first.Types.prim_servers prim.Types.prim_attempt Node_id.pp_set
      prim.Types.prim_servers
  | Some _ | None -> Hashtbl.replace t.installs prim.Types.prim_index prim);
  match Hashtbl.find_opt t.installs (prim.Types.prim_index - 1) with
  | Some prev
    when not
           (Quorum.has_majority ~weights:t.weights
              ~prev:prev.Types.prim_servers prim.Types.prim_servers) ->
    flag t ~node "primary %d (%a) is not a majority of primary %d (%a)"
      prim.Types.prim_index Node_id.pp_set prim.Types.prim_servers
      (prim.Types.prim_index - 1)
      Node_id.pp_set prev.Types.prim_servers
  | Some _ | None -> ()

let on_audit t ~node = function
  | Engine.Audit_state s -> on_state t ~node s
  | Engine.Audit_quorum { aq_members; aq_vulnerable; aq_prev_prim; aq_granted }
    ->
    on_quorum t ~node ~members:aq_members ~vulnerable:aq_vulnerable
      ~prev_prim:aq_prev_prim ~granted:aq_granted
  | Engine.Audit_install prim -> on_install t ~node prim

let state t node = (shadow t node).sh_state
