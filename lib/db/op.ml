type t =
  | Set of string * Value.t
  | Add of string * int
  | Remove of string
  | Set_if_newer of string * Value.t * int

let is_commutative = function
  | Add _ | Set_if_newer _ -> true
  | Set _ | Remove _ -> false

let key = function
  | Set (k, _) | Add (k, _) | Remove k | Set_if_newer (k, _, _) -> k

let commutes a b =
  key a <> key b || (is_commutative a && is_commutative b)

let pp ppf = function
  | Set (k, v) -> Format.fprintf ppf "set %s=%a" k Value.pp v
  | Add (k, n) -> Format.fprintf ppf "add %s+=%d" k n
  | Remove k -> Format.fprintf ppf "remove %s" k
  | Set_if_newer (k, v, ts) ->
    Format.fprintf ppf "set-if-newer %s=%a@@%d" k Value.pp v ts
