(** Applies an action to a database at its place in the global order.

    Execution is deterministic: the outcome depends only on the database
    state and the action, so replicas applying the same actions in the
    same order produce the same states and the same responses (the state
    machine approach; paper §1).  [Join]/[Leave] system actions do not
    touch the data. *)

type procedure_trace = {
  t_proc : string;  (** procedure name *)
  t_args : Value.t list;
  t_reads : string list;  (** keys looked up by the body, sorted *)
  t_writes : string list;  (** keys written by the emitted ops, sorted *)
}

val execute :
  ?on_procedure:(procedure_trace -> unit) ->
  procs:Procedure.registry ->
  Database.t ->
  Action.t ->
  Action.response
(** Mutates the database per the action's update part and returns the
    client-visible response.  Active transactions resolve their
    procedure in [procs] — the executing engine's own registry — and
    return [Aborted] when the name is unknown; when [?on_procedure] is
    given, each executed procedure's actual key accesses are observed
    (via [Database.set_trace] for reads, the emitted ops for writes) and
    reported to the hook before the updates apply.  Interactive actions
    validate their [expected] reads first and return [Aborted]
    (applying nothing) on mismatch — every replica aborts or none
    does. *)

val read_only : Action.t -> bool
(** Actions with no update part: these can be answered without being
    ordered (paper §6, query optimisation). *)
