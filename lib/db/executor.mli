(** Applies an action to a database at its place in the global order.

    Execution is deterministic: the outcome depends only on the database
    state and the action, so replicas applying the same actions in the
    same order produce the same states and the same responses (the state
    machine approach; paper §1).  [Join]/[Leave] system actions do not
    touch the data. *)

val execute : procs:Procedure.registry -> Database.t -> Action.t -> Action.response
(** Mutates the database per the action's update part and returns the
    client-visible response.  Active transactions resolve their
    procedure in [procs] — the executing engine's own registry — and
    return [Aborted] when the name is unknown.  Interactive actions
    validate their [expected] reads first and return [Aborted]
    (applying nothing) on mismatch — every replica aborts or none
    does. *)

val read_only : Action.t -> bool
(** Actions with no update part: these can be answered without being
    ordered (paper §6, query optimisation). *)
