(** Deterministic stored procedures for active transactions (paper §6).

    A procedure computes its updates from the current database state and
    its arguments only, so every replica invoking it at the same point in
    the global order produces the same transition.  Procedures are looked
    up by name at execution (ordering) time, never at creation time.

    The registry is instance-scoped: each engine owns one, created with
    it and threaded through execution.  Nothing here is process-wide —
    two replicas (or two whole engines) in one process cannot observe
    each other's registrations.  Determinism across replicas therefore
    rests on configuring every replica with the same procedures, which
    is the same contract as configuring them with the same code. *)

type result = {
  updates : Op.t list;  (** applied atomically after the call *)
  output : Value.t;  (** returned to the client *)
}

type body = Database.t -> Value.t list -> result

type key_pattern =
  | Kconst of string  (** a literal key *)
  | Kparam of int  (** the i-th argument, rendered as a key *)
  | Kconcat of key_pattern list  (** concatenation of parts *)
  | Kany  (** matches every key (no static bound) *)

type footprint = { reads : key_pattern list; writes : key_pattern list }
(** A declared key-space footprint: every key the body may look up is
    matched by some [reads] or [writes] pattern, and every key its
    updates write by some [writes] pattern.  Declarations are checked
    two ways: statically, the footprint lint diffs them against the
    inferred sets (a disagreement is a spec-drift finding); at run time,
    [Check.Procguard] asserts the actual touched keys are covered. *)

type registry
(** A mutable name → entry table owned by one engine instance. *)

val create : unit -> registry
(** An empty registry. *)

val builtins : unit -> registry
(** A fresh registry preloaded with the built-in procedures:
    - ["transfer"] [\[Text from; Text to_; Int amount\]]: moves funds iff
      the source balance suffices; returns [Int 1] on success, [Int 0] on
      refusal.
    - ["restock"] [\[Text item; Int n\]]: commutative stock increment;
      returns the (locally visible) new level.
    - ["cas"] [\[Text key; expected; desired\]]: compare-and-set; returns
      [Int 1] iff the stored value equalled [expected]. *)

val register : ?footprint:footprint -> registry -> string -> body -> unit
(** Registers (or replaces) a procedure under a name, in this registry
    only.  [?footprint] optionally declares the key-space footprint; the
    builtins all declare theirs. *)

val find : registry -> string -> body option

val declared_footprint : registry -> string -> footprint option
(** The footprint declared at registration, if any. *)

val known : registry -> string list
(** Registered names, sorted. *)

val concretize : Value.t list -> key_pattern -> string option
(** The concrete key a pattern denotes under the given arguments;
    [None] for [Kany] or an out-of-range parameter. *)

val pattern_matches : Value.t list -> key_pattern -> string -> bool
(** Whether a key matches a pattern under the given arguments ([Kany]
    matches everything). *)

val covers : Value.t list -> key_pattern list -> string -> bool
(** Whether any pattern in the list matches the key. *)

val pp_pattern : Format.formatter -> key_pattern -> unit
