(** Deterministic stored procedures for active transactions (paper §6).

    A procedure computes its updates from the current database state and
    its arguments only, so every replica invoking it at the same point in
    the global order produces the same transition.  Procedures are looked
    up by name at execution (ordering) time, never at creation time.

    The registry is instance-scoped: each engine owns one, created with
    it and threaded through execution.  Nothing here is process-wide —
    two replicas (or two whole engines) in one process cannot observe
    each other's registrations.  Determinism across replicas therefore
    rests on configuring every replica with the same procedures, which
    is the same contract as configuring them with the same code. *)

type result = {
  updates : Op.t list;  (** applied atomically after the call *)
  output : Value.t;  (** returned to the client *)
}

type body = Database.t -> Value.t list -> result

type registry
(** A mutable name → body table owned by one engine instance. *)

val create : unit -> registry
(** An empty registry. *)

val builtins : unit -> registry
(** A fresh registry preloaded with the built-in procedures:
    - ["transfer"] [\[Text from; Text to_; Int amount\]]: moves funds iff
      the source balance suffices; returns [Int 1] on success, [Int 0] on
      refusal.
    - ["restock"] [\[Text item; Int n\]]: commutative stock increment;
      returns the (locally visible) new level.
    - ["cas"] [\[Text key; expected; desired\]]: compare-and-set; returns
      [Int 1] iff the stored value equalled [expected]. *)

val register : registry -> string -> body -> unit
(** Registers (or replaces) a procedure under a name, in this registry
    only. *)

val find : registry -> string -> body option
val known : registry -> string list
(** Registered names, sorted. *)
