type result = { updates : Op.t list; output : Value.t }
type body = Database.t -> Value.t list -> result

type key_pattern =
  | Kconst of string
  | Kparam of int
  | Kconcat of key_pattern list
  | Kany

type footprint = { reads : key_pattern list; writes : key_pattern list }
type entry = { body : body; declared : footprint option }

(* One registry per engine instance: procedures are part of a replica's
   configuration, not of the process.  (The process-wide table that
   used to live here was the ambient-state analysis's first real
   finding — two engines in one process observed each other's
   [register] calls; a fixture pins that pre-fix finding.) *)
type registry = (string, entry) Hashtbl.t

let create () : registry = Hashtbl.create 16

let register ?footprint (reg : registry) name body =
  Hashtbl.replace reg name { body; declared = footprint }

let find (reg : registry) name =
  match Hashtbl.find_opt reg name with
  | Some e -> Some e.body
  | None -> None

let declared_footprint (reg : registry) name =
  match Hashtbl.find_opt reg name with
  | Some e -> e.declared
  | None -> None

let known (reg : registry) =
  (* repcheck: allow — result is sorted, iteration order irrelevant *)
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) reg [])

let value_to_key = function
  | Value.Text s -> s
  | Value.Int n -> string_of_int n

let rec concretize args = function
  | Kconst s -> Some s
  | Kparam i -> (
    match List.nth_opt args i with
    | Some v -> Some (value_to_key v)
    | None -> None)
  | Kconcat parts ->
    List.fold_left
      (fun acc p ->
        match (acc, concretize args p) with
        | Some a, Some b -> Some (a ^ b)
        | _ -> None)
      (Some "") parts
  | Kany -> None

let pattern_matches args pat key =
  match pat with Kany -> true | _ -> concretize args pat = Some key

let covers args pats key = List.exists (fun p -> pattern_matches args p key) pats

let rec pp_pattern ppf = function
  | Kconst s -> Format.fprintf ppf "%S" s
  | Kparam i -> Format.fprintf ppf "param %d" i
  | Kconcat parts ->
    Format.fprintf ppf "concat(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_pattern)
      parts
  | Kany -> Format.fprintf ppf "*"

let int_of = function Value.Int n -> n | Value.Text _ -> 0

let transfer db = function
  | [ Value.Text from_acct; Value.Text to_acct; Value.Int amount ] ->
    let balance =
      match Database.get db from_acct with Some (Value.Int b) -> b | _ -> 0
    in
    if balance >= amount && amount >= 0 then
      {
        updates = [ Op.Add (from_acct, -amount); Op.Add (to_acct, amount) ];
        output = Value.Int 1;
      }
    else { updates = []; output = Value.Int 0 }
  | _ -> { updates = []; output = Value.Int 0 }

let restock db = function
  | [ Value.Text item; Value.Int n ] ->
    let level =
      match Database.get db item with Some (Value.Int l) -> l | _ -> 0
    in
    { updates = [ Op.Add (item, n) ]; output = Value.Int (level + n) }
  | _ -> { updates = []; output = Value.Int 0 }

let cas db = function
  | [ Value.Text key; expected; desired ] ->
    let matches =
      match Database.get db key with
      | Some v -> Value.equal v expected
      | None -> int_of expected = 0 && Value.equal expected (Value.Int 0)
    in
    if matches then
      { updates = [ Op.Set (key, desired) ]; output = Value.Int 1 }
    else { updates = []; output = Value.Int 0 }
  | _ -> { updates = []; output = Value.Int 0 }

let builtins () =
  let reg = create () in
  register reg "transfer" transfer
    ~footprint:{ reads = [ Kparam 0 ]; writes = [ Kparam 0; Kparam 1 ] };
  register reg "restock" restock
    ~footprint:{ reads = [ Kparam 0 ]; writes = [ Kparam 0 ] };
  register reg "cas" cas
    ~footprint:{ reads = [ Kparam 0 ]; writes = [ Kparam 0 ] };
  reg
