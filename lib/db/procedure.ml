type result = { updates : Op.t list; output : Value.t }
type body = Database.t -> Value.t list -> result

(* One registry per engine instance: procedures are part of a replica's
   configuration, not of the process.  (The process-wide table that
   used to live here was the ambient-state analysis's first real
   finding — two engines in one process observed each other's
   [register] calls; a fixture pins that pre-fix finding.) *)
type registry = (string, body) Hashtbl.t

let create () : registry = Hashtbl.create 16
let register (reg : registry) name body = Hashtbl.replace reg name body
let find (reg : registry) name = Hashtbl.find_opt reg name

let known (reg : registry) =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) reg [])

let int_of = function Value.Int n -> n | Value.Text _ -> 0

let transfer db = function
  | [ Value.Text from_acct; Value.Text to_acct; Value.Int amount ] ->
    let balance =
      match Database.get db from_acct with Some (Value.Int b) -> b | _ -> 0
    in
    if balance >= amount && amount >= 0 then
      {
        updates = [ Op.Add (from_acct, -amount); Op.Add (to_acct, amount) ];
        output = Value.Int 1;
      }
    else { updates = []; output = Value.Int 0 }
  | _ -> { updates = []; output = Value.Int 0 }

let restock db = function
  | [ Value.Text item; Value.Int n ] ->
    let level =
      match Database.get db item with Some (Value.Int l) -> l | _ -> 0
    in
    { updates = [ Op.Add (item, n) ]; output = Value.Int (level + n) }
  | _ -> { updates = []; output = Value.Int 0 }

let cas db = function
  | [ Value.Text key; expected; desired ] ->
    let matches =
      match Database.get db key with
      | Some v -> Value.equal v expected
      | None -> int_of expected = 0 && Value.equal expected (Value.Int 0)
    in
    if matches then
      { updates = [ Op.Set (key, desired) ]; output = Value.Int 1 }
    else { updates = []; output = Value.Int 0 }
  | _ -> { updates = []; output = Value.Int 0 }

let builtins () =
  let reg = create () in
  register reg "transfer" transfer;
  register reg "restock" restock;
  register reg "cas" cas;
  reg
