open Repro_net

module Id = struct
  type t = { server : Node_id.t; index : int }

  let compare a b =
    let c = Node_id.compare a.server b.server in
    if c <> 0 then c else Int.compare a.index b.index

  let equal a b = compare a b = 0
  let pp ppf t = Format.fprintf ppf "%a#%d" Node_id.pp t.server t.index
end

type kind =
  | Query of string list
  | Update of Op.t list
  | Read_write of string list * Op.t list
  | Active of { proc : string; args : Value.t list }
  | Interactive of {
      expected : (string * Value.t option) list;
      updates : Op.t list;
    }
  | Join of Node_id.t
  | Leave of Node_id.t

type semantics = Strict | Commutative

type t = {
  id : Id.t;
  client : int;
  kind : kind;
  semantics : semantics;
  green_line : Id.t option;
  size : int;
  req_seq : int;
  req_ack : int;
}

let make ?(client = 0) ?(semantics = Strict) ?(green_line = None) ?(size = 200)
    ?(req_seq = 0) ?(req_ack = 0) ~server ~index kind =
  {
    id = { Id.server; index };
    client;
    kind;
    semantics;
    green_line;
    size;
    req_seq;
    req_ack;
  }

type response =
  | Committed of (string * Value.t option) list
  | Procedure_output of Value.t
  | Aborted
  | Busy

let pp_kind ppf = function
  | Query keys -> Format.fprintf ppf "query[%s]" (String.concat "," keys)
  | Update ops -> Format.fprintf ppf "update[%d ops]" (List.length ops)
  | Read_write (keys, ops) ->
    Format.fprintf ppf "rw[%d keys,%d ops]" (List.length keys) (List.length ops)
  | Active { proc; _ } -> Format.fprintf ppf "active[%s]" proc
  | Interactive _ -> Format.fprintf ppf "interactive"
  | Join n -> Format.fprintf ppf "join[%a]" Node_id.pp n
  | Leave n -> Format.fprintf ppf "leave[%a]" Node_id.pp n

let pp ppf t = Format.fprintf ppf "%a:%a" Id.pp t.id pp_kind t.kind

let pp_response ppf = function
  | Committed results ->
    Format.fprintf ppf "committed[%d]" (List.length results)
  | Procedure_output v -> Format.fprintf ppf "output[%a]" Value.pp v
  | Aborted -> Format.fprintf ppf "aborted"
  | Busy -> Format.fprintf ppf "busy"
