module Smap = Map.Make (String)

type cell = { value : Value.t; ts : int }
type snapshot = { s_map : cell Smap.t; s_version : int }

type t = {
  mutable map : cell Smap.t;
  mutable version : int;
  mutable trace : (string -> unit) option;
      (* key-read observer, installed by the executor around a stored
         procedure so the runtime footprint validator sees the actual
         read set; [None] on the hot path *)
}

let create () = { map = Smap.empty; version = 0; trace = None }
let set_trace t f = t.trace <- f

let get t k =
  (match t.trace with Some f -> f k | None -> ());
  match Smap.find_opt k t.map with Some c -> Some c.value | None -> None

let timestamp t k =
  (match t.trace with Some f -> f k | None -> ());
  match Smap.find_opt k t.map with Some c -> c.ts | None -> 0

(* Key-class separation (paper §6, and the pairwise law Op.commutes
   promises): a key written through [Set_if_newer] carries ts > 0 and is
   a last-writer-wins register; a key written through [Add] is a counter
   and keeps ts = 0.  An [Add] against a register key is dropped, a
   [Set_if_newer] never beats the ts-0 sentinel, and equal-timestamp
   register writes resolve by value order — so any interleaving of
   commutative ops converges to the same state. *)
let apply_op map = function
  | Op.Set (k, v) ->
    let ts = match Smap.find_opt k map with Some c -> c.ts | None -> 0 in
    Smap.add k { value = v; ts } map
  | Op.Add (k, n) -> (
    match Smap.find_opt k map with
    | Some { ts; _ } when ts > 0 -> map (* register key: counter op dropped *)
    | Some { value = Value.Int v; ts } ->
      Smap.add k { value = Value.Int (v + n); ts } map
    | Some { value = Value.Text _; ts } ->
      Smap.add k { value = Value.Int n; ts } map
    | None -> Smap.add k { value = Value.Int n; ts = 0 } map)
  | Op.Remove k -> Smap.remove k map
  | Op.Set_if_newer (k, v, ts) ->
    let stored = Smap.find_opt k map in
    let stored_ts = match stored with Some c -> c.ts | None -> 0 in
    if ts > stored_ts then Smap.add k { value = v; ts } map
    else if ts = stored_ts && ts > 0 then
      match stored with
      | Some c when Value.compare v c.value > 0 ->
        Smap.add k { value = v; ts } map
      | _ -> map
    else map

let apply t ops =
  t.map <- List.fold_left apply_op t.map ops;
  t.version <- t.version + 1

let read t keys = List.map (fun k -> (k, get t k)) keys
let size t = Smap.cardinal t.map
let version t = t.version

let digest t =
  (* Commutative combination over an order-insensitive per-binding hash:
     equal maps give equal digests regardless of internal structure. *)
  Smap.fold
    (fun k c acc -> acc + Hashtbl.hash (k, c.value, c.ts))
    t.map 0

let snapshot t = { s_map = t.map; s_version = t.version }

let restore t s =
  t.map <- s.s_map;
  t.version <- s.s_version

let of_snapshot s = { map = s.s_map; version = s.s_version; trace = None }
let copy t = { map = t.map; version = t.version; trace = None }

let snapshot_size s =
  Smap.fold
    (fun k c acc ->
      let vsize =
        match c.value with Value.Int _ -> 8 | Value.Text txt -> String.length txt
      in
      acc + String.length k + vsize + 16)
    s.s_map 64

let bindings t = Smap.bindings t.map |> List.map (fun (k, c) -> (k, c.value))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Smap.iter
    (fun k c -> Format.fprintf ppf "%s = %a@," k Value.pp c.value)
    t.map;
  Format.fprintf ppf "@]"
