(** The deterministic in-memory database each replica maintains.

    A string-keyed value store backed by a persistent map, so snapshots
    are O(1) and support cheap dirty copies and state transfer.
    Timestamps for [Set_if_newer] are stored alongside values. *)

type t

type snapshot
(** An immutable copy of the full database state. *)

val create : unit -> t
val get : t -> string -> Value.t option
val timestamp : t -> string -> int
(** Stored timestamp for a key (0 if never written with a timestamp). *)

val set_trace : t -> (string -> unit) option -> unit
(** Installs (or clears) a key-read observer called by [get]/
    [timestamp]/[read] with each looked-up key.  Used by the runtime
    footprint validator to capture a procedure's actual read set; not
    copied by [copy]/[of_snapshot]. *)

val apply : t -> Op.t list -> unit
(** Applies updates in order. *)

val read : t -> string list -> (string * Value.t option) list
val size : t -> int
val version : t -> int
(** Number of [apply] calls so far. *)

val digest : t -> int
(** Order-insensitive content hash; equal digests on equal states.  Used
    by consistency checkers to compare replicas cheaply. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val of_snapshot : snapshot -> t
val copy : t -> t
val snapshot_size : snapshot -> int
(** Approximate serialized size in bytes, for transfer-time modelling. *)

val bindings : t -> (string * Value.t) list
(** All key/value pairs in key order. *)

val pp : Format.formatter -> t -> unit
