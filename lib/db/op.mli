(** Update operations — the write half of an action.

    [Add] is commutative and [Set_if_newer] is timestamp-guarded; these
    two support the relaxed update semantics of the paper's Section 6
    (inventory-style and location-tracking-style applications): applying
    them in different interleavings converges to the same state. *)

type t =
  | Set of string * Value.t
  | Add of string * int  (** numeric increment; missing key counts as 0 *)
  | Remove of string
  | Set_if_newer of string * Value.t * int
      (** write wins only if its timestamp exceeds the stored one *)

val is_commutative : t -> bool
(** Whether re-ordering this op against any other commutative op leaves
    the final state unchanged ([Add] and [Set_if_newer]).  The pairwise
    law this promises — checked by a property test in [test_db] — rests
    on the key-class separation [Database.apply] enforces: a key is
    either a counter key (written by [Add], timestamp 0) or a
    timestamped register key (written by [Set_if_newer]); an [Add] to a
    register key is dropped, and equal-timestamp [Set_if_newer] races
    resolve by value order, so any interleaving of commutative ops
    converges (paper §6). *)

val key : t -> string
(** The database key the op writes. *)

val commutes : t -> t -> bool
(** The pairwise law: ops on distinct keys always commute; ops on the
    same key commute iff both are [is_commutative]. *)

val pp : Format.formatter -> t -> unit
