let execute ~procs db (action : Action.t) : Action.response =
  match action.kind with
  | Action.Query keys -> Action.Committed (Database.read db keys)
  | Action.Update ops ->
    Database.apply db ops;
    Action.Committed []
  | Action.Read_write (keys, ops) ->
    let results = Database.read db keys in
    Database.apply db ops;
    Action.Committed results
  | Action.Active { proc; args } -> (
    match Procedure.find procs proc with
    | Some body ->
      let { Procedure.updates; output } = body db args in
      Database.apply db updates;
      Action.Procedure_output output
    | None -> Action.Aborted)
  | Action.Interactive { expected; updates } ->
    let still_valid =
      List.for_all
        (fun (k, expected_v) ->
          match (Database.get db k, expected_v) with
          | None, None -> true
          | Some v, Some e -> Value.equal v e
          | _ -> false)
        expected
    in
    if still_valid then begin
      Database.apply db updates;
      Action.Committed []
    end
    else Action.Aborted
  | Action.Join _ | Action.Leave _ -> Action.Committed []

let read_only (action : Action.t) =
  match action.kind with
  | Action.Query _ -> true
  | Action.Update _ | Action.Read_write _ | Action.Active _
  | Action.Interactive _ | Action.Join _ | Action.Leave _ -> false
