type procedure_trace = {
  t_proc : string;
  t_args : Value.t list;
  t_reads : string list;
  t_writes : string list;
}

(* Work and allocation are bounded by the action's own payload (its key
   list / op list / procedure body), independent of group size, queue
   depth or log length — constant per action for the cost lattice. *)
let execute ?on_procedure ~procs db (action : Action.t) : Action.response =
  match action.kind with
  | Action.Query keys -> Action.Committed (Database.read db keys)
  | Action.Update ops ->
    Database.apply db ops;
    Action.Committed []
  | Action.Read_write (keys, ops) ->
    let results = Database.read db keys in
    Database.apply db ops;
    Action.Committed results
  | Action.Active { proc; args } -> (
    match Procedure.find procs proc with
    | Some body ->
      let { Procedure.updates; output } =
        match on_procedure with
        | None -> body db args
        | Some hook ->
          (* Observe the body's actual key accesses for the footprint
             validator: reads via the database trace, writes from the
             emitted ops. *)
          let reads = ref [] in
          Database.set_trace db (Some (fun k -> reads := k :: !reads));
          let result =
            Fun.protect
              ~finally:(fun () -> Database.set_trace db None)
              (fun () -> body db args)
          in
          hook
            {
              t_proc = proc;
              t_args = args;
              t_reads = List.sort_uniq compare !reads;
              t_writes =
                List.sort_uniq compare (List.map Op.key result.Procedure.updates);
            };
          result
      in
      Database.apply db updates;
      Action.Procedure_output output
    | None -> Action.Aborted)
  | Action.Interactive { expected; updates } ->
    let still_valid =
      List.for_all
        (fun (k, expected_v) ->
          match (Database.get db k, expected_v) with
          | None, None -> true
          | Some v, Some e -> Value.equal v e
          | _ -> false)
        expected
    in
    if still_valid then begin
      Database.apply db updates;
      Action.Committed []
    end
    else Action.Aborted
  | Action.Join _ | Action.Leave _ -> Action.Committed []
  [@@analysis.cost "O(1); alloc O(1)"]

let read_only (action : Action.t) =
  match action.kind with
  | Action.Query _ -> true
  | Action.Update _ | Action.Read_write _ | Action.Active _
  | Action.Interactive _ | Action.Join _ | Action.Leave _ -> false
