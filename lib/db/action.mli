open Repro_net

(** Actions: the unit of replication (paper §2.2).

    An action is a deterministic state transition with a query part and
    an update part, either possibly missing.  Client transactions are
    translated into actions; the replication engine builds one global
    persistent total order of actions and applies them in it. *)

module Id : sig
  type t = { server : Node_id.t; index : int }
  (** Stamped by the creating server: its id and a per-server
      monotonically increasing index (FIFO per creator). *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** What happens when the action reaches its place in the global order. *)
type kind =
  | Query of string list  (** read-only; returns the values *)
  | Update of Op.t list  (** write-only *)
  | Read_write of string list * Op.t list  (** both parts *)
  | Active of { proc : string; args : Value.t list }
      (** invoke a deterministic stored procedure at ordering time *)
  | Interactive of {
      expected : (string * Value.t option) list;
          (** values the client read in its first action *)
      updates : Op.t list;
    }
      (** the second half of an interactive transaction: applied only if
          the previously read values still hold, otherwise "aborted" *)
  | Join of Node_id.t  (** PERSISTENT_JOIN of a new replica (§5.1) *)
  | Leave of Node_id.t  (** PERSISTENT_LEAVE of a replica (§5.1) *)

(** How eagerly the client is answered (paper §6). *)
type semantics =
  | Strict  (** answered when the action turns green (1-copy serializable) *)
  | Commutative
      (** updates commute: answered on local (red) application; states
          converge on merge *)

type t = {
  id : Id.t;
  client : int;  (** issuing client (0 for system actions) *)
  kind : kind;
  semantics : semantics;
  green_line : Id.t option;
      (** last action the creator knew green at creation time *)
  size : int;  (** wire size in bytes (the paper uses 200-byte actions) *)
  req_seq : int;
      (** durable per-client request sequence number, [> 0] when the
          client wants exactly-once semantics across retries; 0 opts
          out of deduplication.  The pair [(client, req_seq)] is the
          request id: a retry carries the same pair, and the green
          apply path suppresses re-execution of an already-applied
          sequence number, answering from the dedup cache instead. *)
  req_ack : int;
      (** the client-acked low-water mark: the highest [req_seq] for
          which this client has already received a response.  Bounds
          the replicated dedup cache — responses at or below it can
          never be re-requested and are evicted. *)
}

val make :
  ?client:int ->
  ?semantics:semantics ->
  ?green_line:Id.t option ->
  ?size:int ->
  ?req_seq:int ->
  ?req_ack:int ->
  server:Node_id.t ->
  index:int ->
  kind ->
  t
(** [size] defaults to 200 bytes; [req_seq]/[req_ack] default to 0
    (no exactly-once tracking). *)

(** The outcome reported to the client. *)
type response =
  | Committed of (string * Value.t option) list
      (** query results (empty for pure updates) *)
  | Procedure_output of Value.t
  | Aborted  (** interactive validation failed *)
  | Busy
      (** admission control shed the request before it entered the
          global order: nothing was executed or logged.  The client
          should back off and retry. *)

val pp : Format.formatter -> t -> unit
val pp_response : Format.formatter -> response -> unit
