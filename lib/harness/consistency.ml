open Repro_db
open Repro_core

type violation = { v_property : string; v_detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s: %s" v.v_property v.v_detail

let violation property fmt =
  Format.kasprintf (fun detail -> { v_property = property; v_detail = detail }) fmt

let ready_engines replicas =
  List.filter_map
    (fun r -> if Replica.is_ready r then Some (r, Replica.engine r) else None)
    replicas

(* The comparable green suffix of an engine: positions above its floor
   (snapshot-instantiated replicas hold no early bodies). *)
let green_ids e =
  List.map (fun a -> a.Action.id) (Engine.green_actions e)

let floor_of e = Engine.green_count e - List.length (Engine.green_actions e)

let drop n l =
  let rec go n l =
    if n <= 0 then l else match l with [] -> [] | _ :: tl -> go (n - 1) tl
  in
  go n l

(* Compare the overlap of two green sequences, position by position;
   the first disagreeing position, if any. *)
let prefix_disagreement (fa, ga) (fb, gb) =
  let base = max fa fb in
  let ga = drop (base - fa) ga and gb = drop (base - fb) gb in
  let rec go i a b =
    match (a, b) with
    | [], _ | _, [] -> None
    | x :: a', y :: b' ->
      if Action.Id.equal x y then go (i + 1) a' b' else Some (i, x, y)
  in
  go (base + 1) ga gb

(* Agreement on overlapping prefixes is transitive through a common
   reference, so instead of O(n^2) pairwise comparisons it suffices to
   compare every replica against the one with the longest green
   sequence (ties broken towards the lowest floor, i.e. the widest
   coverage).  Positions below the reference's own floor are not
   covered by it; only the (rare) replicas still holding such early
   bodies are compared pairwise, and only on that segment. *)
let check_global_total_order replicas =
  let engines =
    List.map
      (fun (r, e) -> (r, floor_of e, green_ids e, Engine.green_count e))
      (ready_engines replicas)
  in
  match engines with
  | [] | [ _ ] -> []
  | first :: rest ->
    let reference =
      List.fold_left
        (fun ((_, bf, _, bc) as best) ((_, f, _, c) as cand) ->
          if c > bc || (c = bc && f < bf) then cand else best)
        first rest
    in
    let ref_r, ref_floor, ref_ids, _ = reference in
    let disagree (ra, fa, ga) (rb, fb, gb) =
      match prefix_disagreement (fa, ga) (fb, gb) with
      | None -> []
      | Some (i, x, y) ->
        [
          violation "global-total-order"
            "replicas %d and %d disagree at green position %d: %a vs %a"
            (Replica.node ra) (Replica.node rb) i Action.Id.pp x Action.Id.pp
            y;
        ]
    in
    let against_ref =
      List.concat_map
        (fun (r, f, g, _) ->
          if r == ref_r then []
          else disagree (r, f, g) (ref_r, ref_floor, ref_ids))
        engines
    in
    let below =
      List.filter_map
        (fun (r, f, g, _) ->
          if f < ref_floor then
            (* keep only the segment the reference does not cover *)
            Some (r, f, List.filteri (fun i _ -> i < ref_floor - f) g)
          else None)
        engines
    in
    let rec pairs = function
      | [] | [ _ ] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    let below_ref =
      List.concat_map (fun (a, b) -> disagree a b) (pairs below)
    in
    against_ref @ below_ref

let check_global_fifo replicas =
  let engines = ready_engines replicas in
  List.concat_map
    (fun (r, e) ->
      let seen : (Repro_net.Node_id.t, int) Hashtbl.t = Hashtbl.create 16 in
      List.filter_map
        (fun (id : Action.Id.t) ->
          let prev =
            match Hashtbl.find_opt seen id.server with
            | Some i -> i
            | None ->
              (* A snapshot-inherited prefix may hide earlier indices:
                 accept the first occurrence as the baseline. *)
              id.index - 1
          in
          Hashtbl.replace seen id.server id.index;
          if id.index <> prev + 1 then
            Some
              (violation "global-fifo"
                 "replica %d greens %a after index %d of the same creator"
                 (Replica.node r) Action.Id.pp id prev)
          else None)
        (green_ids e))
    engines

let check_single_primary replicas =
  let engines = ready_engines replicas in
  let in_prim = List.filter (fun (r, _) -> Replica.in_primary r) engines in
  let indices =
    List.sort_uniq Int.compare
      (List.map (fun (_, e) -> (Engine.prim_component e).Types.prim_index) in_prim)
  in
  match indices with
  | [] | [ _ ] -> []
  | _ ->
    [
      violation "single-primary" "replicas operate in %d distinct primaries"
        (List.length indices);
    ]

let check_convergence replicas =
  let engines = ready_engines replicas in
  match engines with
  | [] -> []
  | (r0, e0) :: rest ->
    let count0 = Engine.green_count e0 in
    let digest0 = Database.digest (Replica.database r0) in
    let dedup0 = Replica.dedup_summary r0 in
    let summaries_equal =
      List.equal (fun (c, h, a) (c', h', a') -> c = c' && h = h' && a = a')
    in
    List.concat_map
      (fun (r, e) ->
        let issues = ref [] in
        if Engine.green_count e <> count0 then
          issues :=
            violation "convergence" "replica %d green count %d vs replica %d's %d"
              (Replica.node r) (Engine.green_count e) (Replica.node r0) count0
            :: !issues;
        if Database.digest (Replica.database r) <> digest0 then
          issues :=
            violation "convergence" "replica %d database differs from replica %d"
              (Replica.node r) (Replica.node r0)
            :: !issues;
        (* The exactly-once window is replicated state too: replicas at
           the same green position must agree on every client's highest
           applied and acked sequence numbers. *)
        if not (summaries_equal (Replica.dedup_summary r) dedup0) then
          issues :=
            violation "convergence"
              "replica %d exactly-once window differs from replica %d"
              (Replica.node r) (Replica.node r0)
            :: !issues;
        !issues)
      rest

(* ------------------------------------------------------------------ *)
(* The client-visible exactly-once oracle                              *)

(* One client's view of its own counter-increment stream: [l_key] is a
   key only this client writes, each acknowledged request added exactly
   1 to it, so on every converged replica
   [l_acked <= value(l_key) <= l_issued] — a value below the acks means
   an acknowledged increment was lost; above the issues means some
   retry was applied twice. *)
type ledger = { l_client : int; l_key : string; l_issued : int; l_acked : int }

let check_exactly_once ~ledgers replicas =
  let ready = List.filter Replica.is_ready replicas in
  List.concat_map
    (fun r ->
      List.filter_map
        (fun l ->
          let v =
            match Database.get (Replica.database r) l.l_key with
            | Some (Value.Int n) -> n
            | Some _ -> min_int (* wrong type: flag as lost *)
            | None -> 0
          in
          if v < l.l_acked then
            Some
              (violation "exactly-once"
                 "lost ack: client %d acked %d increments of %s but replica \
                  %d holds %d"
                 l.l_client l.l_acked l.l_key (Replica.node r) v)
          else if v > l.l_issued then
            Some
              (violation "exactly-once"
                 "double-apply: client %d issued %d increments of %s but \
                  replica %d holds %d"
                 l.l_client l.l_issued l.l_key (Replica.node r) v)
          else None)
        ledgers)
    ready

let check_all ?(converged = false) replicas =
  check_global_total_order replicas
  @ check_global_fifo replicas
  @ check_single_primary replicas
  @ if converged then check_convergence replicas else []

let assert_ok ?converged replicas =
  match check_all ?converged replicas with
  | [] -> ()
  | violations ->
    failwith
      (Format.asprintf "@[<v>consistency violations:@,%a@]"
         (Format.pp_print_list pp_violation)
         violations)
