module Sim = Repro_sim
module Monitor = Repro_check.Monitor
module Procguard = Repro_check.Procguard
module Value = Repro_db.Value
module Op = Repro_db.Op
module Action = Repro_db.Action
open Repro_net
open Repro_storage
open Repro_core

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  seed : int;
  nodes : int;
  clients : int;
  active_ms : float;
  settle_ms : float;
  faults : Disk.fault_config;
  checkpoint_every : int option;
}

let default_config =
  {
    seed = 1;
    nodes = 5;
    clients = 4;
    active_ms = 4_000.;
    settle_ms = 30_000.;
    faults =
      {
        Disk.no_faults with
        torn_tail_on_crash = 0.6;
        corrupt_on_crash = 0.02;
        read_error = 0.01;
      };
    checkpoint_every = Some 40;
  }

(* Admission thresholds for the campaign's replicas: tight enough that
   retry storms into a struggling replica shed, loose enough that the
   steady state never sheds. *)
let campaign_admission = { Replica.adm_max_inflight = 32; adm_max_red = 128 }

type outcome = {
  o_steps : int;
  o_submitted : int;
  o_crashes : int;
  o_recoveries : int;
  o_corruptions : int;
  o_partitions : int;
  o_heals : int;
  o_clean : int;
  o_torn : int;
  o_salvaged : int;
  o_amnesia : int;
  o_ready : int;
  o_greens : int;
  o_sweeps : int;
  o_procs : int;
  o_client_acked : int;
  o_retries : int;
  o_failovers : int;
  o_dupes_suppressed : int;
  o_shed : int;
  o_violations : string list;
}

let converged o = o.o_ready > 0 && o.o_violations = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>steps        %6d@,\
     submitted    %6d@,\
     crashes      %6d@,\
     recoveries   %6d  (clean %d, torn %d, salvaged %d, amnesia %d)@,\
     corruptions  %6d@,\
     partitions   %6d  (heals %d)@,\
     ready        %6d@,\
     greens       %6d@,\
     sweeps       %6d@,\
     procedures   %6d  (footprint-checked)@,\
     client acks  %6d  (retries %d, failovers %d)@,\
     dedup hits   %6d  (duplicate attempts answered from the window)@,\
     shed         %6d  (admission-control Busy)@,\
     verdict      %s@]" o.o_steps o.o_submitted o.o_crashes o.o_recoveries
    o.o_clean o.o_torn o.o_salvaged o.o_amnesia o.o_corruptions o.o_partitions
    o.o_heals o.o_ready o.o_greens o.o_sweeps o.o_procs o.o_client_acked
    o.o_retries o.o_failovers o.o_dupes_suppressed o.o_shed
    (if converged o then "CONVERGED"
     else
       Printf.sprintf "FAILED (%d violations)" (List.length o.o_violations));
  if o.o_violations <> [] then
    List.iter (fun v -> Format.fprintf ppf "@.  %s" v) o.o_violations

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)

type tally = {
  mutable t_steps : int;
  mutable t_submitted : int;
  mutable t_crashes : int;
  mutable t_recoveries : int;
  mutable t_corruptions : int;
  mutable t_partitions : int;
  mutable t_heals : int;
  mutable t_clean : int;
  mutable t_torn : int;
  mutable t_salvaged : int;
  mutable t_amnesia : int;
  mutable t_value : int;
}

let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

(* Recover one replica and book the storage verdict it reports. *)
let recover_and_tally tally r =
  Replica.recover r;
  tally.t_recoveries <- tally.t_recoveries + 1;
  match Replica.last_recovery r with
  | Some Persist.V_clean -> tally.t_clean <- tally.t_clean + 1
  | Some (Persist.V_torn_tail _) -> tally.t_torn <- tally.t_torn + 1
  | Some (Persist.V_salvaged _) -> tally.t_salvaged <- tally.t_salvaged + 1
  | Some Persist.V_amnesia -> tally.t_amnesia <- tally.t_amnesia + 1
  | None -> ()

let run ?(config = default_config) () =
  let cfg = config in
  if cfg.nodes < 3 then invalid_arg "Nemesis.run: need at least 3 nodes";
  let rng = Sim.Rng.of_int cfg.seed in
  let disk_config =
    {
      Disk.default_forced with
      sync_latency = Sim.Time.of_ms 1.;
      faults = cfg.faults;
    }
  in
  let w =
    World.make ~disk_config ~checkpoint_every:cfg.checkpoint_every
      ~admission:campaign_admission ~seed:cfg.seed ~n:cfg.nodes ()
  in
  let monitor = World.attach_monitor w in
  (* The client-visible oracle: [clients] failover sessions, each
     incrementing a private counter key "cc<id>" once per acknowledged
     request.  At the end, every converged replica must hold
     acked <= cc<id> <= issued — an acknowledged increment below the
     range was lost, one above it was applied twice (a retry that beat
     the dedup window).  Sessions retry and fail over on their own;
     the campaign only pumps the next request after each ack. *)
  let sessions =
    List.init cfg.clients (fun i ->
        Client.create ~sim:(World.sim w) ~id:(i + 1)
          ~replicas:(fun () -> World.replicas w)
          ())
  in
  let issuing = ref true in
  let rec pump c =
    if !issuing then
      Client.exec c
        (Action.Update [ Op.Add (Printf.sprintf "cc%d" (Client.id c), 1) ])
        ~k:(fun _ -> pump c)
  in
  List.iter pump sessions;
  (* Runtime footprint validation (paper §6): every executed stored
     procedure — on every replica, recovery replay included — has its
     actual key accesses checked against the declared footprint. *)
  let guard = World.attach_procedure_guard w in
  (* Traffic-composition draws come from their own stream so the fault
     schedule (drawn from [rng]) keeps the same shape per seed. *)
  let traffic_rng = Sim.Rng.of_int (cfg.seed + 7919) in
  let tally =
    {
      t_steps = 0;
      t_submitted = 0;
      t_crashes = 0;
      t_recoveries = 0;
      t_corruptions = 0;
      t_partitions = 0;
      t_heals = 0;
      t_clean = 0;
      t_torn = 0;
      t_salvaged = 0;
      t_amnesia = 0;
      t_value = 0;
    }
  in
  (* Never take down more replicas than leave a majority of the static
     set up: the campaign asserts convergence, which needs a quorum to
     exist once healed. *)
  let min_up = (cfg.nodes / 2) + 1 in
  let up () = List.filter Replica.is_up (World.replicas w) in
  let down () =
    List.filter (fun r -> not (Replica.is_up r)) (World.replicas w)
  in
  let submit_burst n =
    let targets =
      List.filter (fun r -> Replica.is_up r && Replica.is_ready r)
        (World.replicas w)
    in
    if targets <> [] then
      for _ = 1 to n do
        let r = Sim.Rng.pick rng targets in
        tally.t_value <- tally.t_value + 1;
        tally.t_submitted <- tally.t_submitted + 1;
        let node = Replica.node r in
        let key = Printf.sprintf "k%d" (Sim.Rng.int rng 8) in
        (* Mostly plain updates; a slice of §6 stored-procedure calls
           against the declared-footprint builtins keeps the runtime
           guard exercised under the same fault schedule.  The plain
           updates double as account funding, so transfers succeed. *)
        match Sim.Rng.int traffic_rng 5 with
        | 0 ->
          World.submit_procedure w ~node ~proc:"restock"
            [
              Value.Text (Printf.sprintf "stock%d" (Sim.Rng.int traffic_rng 4));
              Value.Int (1 + Sim.Rng.int traffic_rng 5);
            ]
        | 1 ->
          World.submit_procedure w ~node ~proc:"transfer"
            [
              Value.Text key;
              Value.Text (Printf.sprintf "k%d" (Sim.Rng.int traffic_rng 8));
              Value.Int (1 + Sim.Rng.int traffic_rng 3);
            ]
        | 2 ->
          World.submit_procedure w ~node ~proc:"cas"
            [
              Value.Text key;
              Value.Int (Sim.Rng.int traffic_rng 50);
              Value.Int tally.t_value;
            ]
        | _ -> World.submit_update w ~node ~key tally.t_value
      done
  in
  let crash_one () =
    match up () with
    | ups when List.length ups > min_up ->
      Replica.crash (Sim.Rng.pick rng ups);
      tally.t_crashes <- tally.t_crashes + 1
    | _ -> submit_burst 1
  in
  let recover_one () =
    match down () with
    | [] -> submit_burst 1
    | downs -> recover_and_tally tally (Sim.Rng.pick rng downs)
  in
  let corrupt_one () =
    (* Only replicas already down are damaged (bit rot surfacing while
       the machine is off), and only while the rest of the cluster
       retains a majority — the victim may come back amnesiac and spend
       a while re-joining. *)
    let candidates =
      List.filter (fun r -> Replica.log_entries r > 0) (down ())
    in
    match candidates with
    | [] -> submit_burst 1
    | _ when List.length (up ()) < min_up -> submit_burst 1
    | candidates ->
      let r = Sim.Rng.pick rng candidates in
      let nth = Sim.Rng.int rng (Replica.log_entries r) in
      if Replica.corrupt_log r ~nth then
        tally.t_corruptions <- tally.t_corruptions + 1
  in
  let partition () =
    let nodes = Sim.Rng.shuffle rng (World.nodes w) in
    let k = 1 + Sim.Rng.int rng (List.length nodes - 1) in
    let left = List.filteri (fun i _ -> i < k) nodes in
    let right = List.filteri (fun i _ -> i >= k) nodes in
    Topology.partition (World.topology w) [ left; right ];
    tally.t_partitions <- tally.t_partitions + 1
  in
  let heal () =
    Topology.merge_all (World.topology w);
    tally.t_heals <- tally.t_heals + 1
  in
  (* --- active phase ---------------------------------------------- *)
  let sim = World.sim w in
  let deadline =
    Sim.Time.add (Sim.Engine.now sim) ~span:(Sim.Time.of_ms cfg.active_ms)
  in
  while Sim.Engine.now sim < deadline do
    tally.t_steps <- tally.t_steps + 1;
    let roll = Sim.Rng.int rng 100 in
    if roll < 35 then submit_burst (1 + Sim.Rng.int rng 3)
    else if roll < 55 then crash_one ()
    else if roll < 72 then recover_one ()
    else if roll < 82 then corrupt_one ()
    else if roll < 91 then partition ()
    else heal ();
    World.run w ~ms:(float_of_int (20 + Sim.Rng.int rng 180))
  done;
  (* --- heal, recover everyone, settle ----------------------------- *)
  (* Stop issuing new client requests; each session still drives its
     outstanding one (retries included) to completion during settle. *)
  issuing := false;
  Topology.merge_all (World.topology w);
  List.iter (recover_and_tally tally) (down ());
  let all_ready () = List.for_all Replica.is_ready (World.replicas w) in
  let settle_deadline =
    Sim.Time.add (Sim.Engine.now sim) ~span:(Sim.Time.of_ms cfg.settle_ms)
  in
  (* Amnesiac rejoins go through sponsor retries and state transfer:
     poll in slices rather than burning the whole budget blindly. *)
  while Sim.Engine.now sim < settle_deadline && not (all_ready ()) do
    World.run w ~ms:1_000.
  done;
  World.run w ~ms:2_000.;
  (* --- verdicts ---------------------------------------------------- *)
  Monitor.check_now monitor;
  let monitor_violations =
    List.map
      (fun v -> Format.asprintf "%a" Repro_check.Snapshot.pp_violation v)
      (Monitor.violations monitor)
  in
  let ledgers =
    List.map
      (fun c ->
        {
          Consistency.l_client = Client.id c;
          l_key = Printf.sprintf "cc%d" (Client.id c);
          l_issued = Client.issued c;
          l_acked = Client.acked c;
        })
      sessions
  in
  let consistency_violations =
    List.map
      (fun v -> Format.asprintf "%a" Consistency.pp_violation v)
      (Consistency.check_all ~converged:true (World.replicas w)
      @ Consistency.check_exactly_once ~ledgers (World.replicas w))
  in
  let guard_violations =
    List.map
      (fun v -> Format.asprintf "%a" Procguard.pp_violation v)
      (Procguard.violations guard)
  in
  let ready = List.filter Replica.is_ready (World.replicas w) in
  let stragglers =
    if all_ready () then []
    else
      List.filter_map
        (fun r ->
          if Replica.is_ready r then None
          else
            Some
              (Printf.sprintf "liveness: n%d never became ready again"
                 (Replica.node r)))
        (World.replicas w)
  in
  let greens =
    List.fold_left
      (fun acc r -> max acc (Repro_core.Engine.green_count (Replica.engine r)))
      0 ready
  in
  {
    o_steps = tally.t_steps;
    o_submitted = tally.t_submitted;
    o_crashes = tally.t_crashes;
    o_recoveries = tally.t_recoveries;
    o_corruptions = tally.t_corruptions;
    o_partitions = tally.t_partitions;
    o_heals = tally.t_heals;
    o_clean = tally.t_clean;
    o_torn = tally.t_torn;
    o_salvaged = tally.t_salvaged;
    o_amnesia = tally.t_amnesia;
    o_ready = List.length ready;
    o_greens = greens;
    o_sweeps = Monitor.observations monitor;
    o_procs = Procguard.checked guard;
    o_client_acked = sum (fun c -> Client.acked c) sessions;
    o_retries = sum Client.retries sessions;
    o_failovers = sum Client.failovers sessions;
    o_dupes_suppressed = sum Replica.dupes_suppressed (World.replicas w);
    o_shed = sum Replica.shed (World.replicas w);
    o_violations =
      monitor_violations @ consistency_violations @ guard_violations
      @ stragglers;
  }
