open Repro_db
open Repro_core

(** A cluster-aware, failure-aware client session.

    Unlike {!Repro_core.Session} (wired to one replica forever, the
    paper's §2 client model), this session holds the whole cluster:
    it detects a dead, partitioned or lagging target by a per-attempt
    deadline, fails over to the next live ready replica (round-robin),
    and retries with capped exponential backoff + full jitter drawn
    from the sim RNG — deterministic per seed.

    Exactly-once across all of that comes from durable request ids:
    every attempt of the session's [seq] carries the same
    [(client id, seq)] pair, the replica-side dedup window
    ({!Repro_core.Dedup}) lets at most one attempt execute, and every
    attempt returns the same replicated response — so the first
    response to arrive completes the seq, whichever attempt produced
    it.  [Busy] (admission-control shedding) is honored by backing off
    on the same target without rotating.

    FIFO with one outstanding request, like [Session] — which is also
    what makes the dedup window's [seq <= highest] duplicate test
    sound. *)

type t

type config = {
  request_timeout : Repro_sim.Time.t;
      (** per-attempt deadline before failover (default 400 ms) *)
  backoff_base : Repro_sim.Time.t;  (** default 20 ms *)
  backoff_cap : Repro_sim.Time.t;  (** default 2 s *)
}

val default_config : config

val create :
  ?config:config ->
  sim:Repro_sim.Engine.t ->
  id:int ->
  replicas:(unit -> Replica.t list) ->
  unit ->
  t
(** [id] must be positive and unique per client (it keys the replicated
    dedup state).  [replicas] is consulted at every attempt, so worlds
    that add joiners are picked up live. *)

val exec :
  t ->
  ?semantics:Action.semantics ->
  ?size:int ->
  Action.kind ->
  k:(Action.response -> unit) ->
  unit
(** Enqueue one operation; [k] fires exactly once, with the replicated
    response, after however many retries and failovers it took. *)

val read :
  t -> string list -> k:((string * Value.t option) list -> unit) -> unit
(** An ordered read carrying its own request id (NOT the §6 local-query
    optimisation: after failover, only ordering the read guarantees
    read-your-writes on the new target). *)

val stop : t -> unit
(** Cease issuing and retrying; pending timers become no-ops. *)

(* --- Observation ---------------------------------------------------- *)

val id : t -> int

val issued : t -> int
(** Sequence numbers issued so far ([= seq] of the newest request). *)

val acked : t -> int
(** Highest sequence number with a received response.  The exactly-once
    ledger invariant: [acked <= applied count <= issued] on every
    replica, where at most [issued - acked <= 1]. *)

val outstanding : t -> int
val completed : t -> int
val aborted : t -> int

val retries : t -> int
(** Re-attempts (timeout- or Busy-triggered) beyond each seq's first. *)

val failovers : t -> int
(** Deadline expiries that rotated the session to another replica. *)

val busy_responses : t -> int
(** [Busy] sheds received (each also counts as a retry). *)

val timeouts : t -> int
