module SimE = Repro_sim.Engine
open Repro_sim
open Repro_db
open Repro_core

type mix = {
  read_fraction : float;
  commutative_fraction : float;
  optimized_reads : bool;
  keys : int;
  action_size : int;
}

let default_mix =
  {
    read_fraction = 0.;
    commutative_fraction = 0.;
    optimized_reads = false;
    keys = 64;
    action_size = 200;
  }

type t = {
  sim : SimE.t;
  mix : mix;
  rng : Rng.t;
  deadline : Time.t option;
  busy_retries : int;
  retry_backoff : Time.t;
  mutable measuring : bool;
  mutable stopped : bool;
  mutable completed : int;
  mutable good : int;  (* completed within the deadline *)
  mutable shed : int;  (* dropped after exhausting Busy retries *)
  mutable busy_retried : int;  (* re-submissions after a Busy *)
  latencies : Stats.Summary.t;
}

let key_of t n = Printf.sprintf "k%d" (n mod t.mix.keys)

let record t t0 =
  if t.measuring then begin
    t.completed <- t.completed + 1;
    let lat = Time.diff (SimE.now t.sim) t0 in
    (match t.deadline with
    | Some d when Time.compare lat d > 0 -> ()
    | Some _ | None -> t.good <- t.good + 1);
    Stats.Summary.add t.latencies (Time.to_ms lat)
  end

(* Issue one operation per the mix; [k] fires on completion (or on
   giving up after the Busy-retry budget — an open-loop client can't
   block forever on a shedding replica). *)
let issue t replica ~k =
  let t0 = SimE.now t.sim in
  let done_ () =
    record t t0;
    k ()
  in
  let key = key_of t (Rng.int t.rng t.mix.keys) in
  let submit_with submit =
    (* Admission control answers [Busy] synchronously; honor it with a
       couple of jittered, exponentially spaced retries, then drop the
       request as shed.  Sheds never count as completions. *)
    let rec go attempt =
      submit ~on_response:(fun resp ->
          match resp with
          | Action.Busy ->
            if attempt < t.busy_retries then begin
              t.busy_retried <- t.busy_retried + 1;
              let cap =
                Time.to_ms t.retry_backoff *. (2. ** float_of_int attempt)
              in
              let delay = Time.of_ms (Float.max 0.001 (Rng.float t.rng cap)) in
              ignore
                (SimE.schedule t.sim ~delay (fun () ->
                     if not t.stopped then go (attempt + 1) else k ()))
            end
            else begin
              if t.measuring then t.shed <- t.shed + 1;
              k ()
            end
          | Action.Committed _ | Action.Procedure_output _ | Action.Aborted ->
            done_ ())
    in
    go 0
  in
  if Rng.float t.rng 1.0 < t.mix.read_fraction then
    if t.mix.optimized_reads then
      Replica.local_query replica [ key ] ~on_response:(fun _ -> done_ ())
    else
      submit_with (fun ~on_response ->
          Replica.submit replica ~size:t.mix.action_size (Action.Query [ key ])
            ~on_response)
  else if Rng.float t.rng 1.0 < t.mix.commutative_fraction then
    submit_with (fun ~on_response ->
        Replica.submit replica ~semantics:Action.Commutative
          ~size:t.mix.action_size
          (Action.Update [ Op.Add (key, 1) ])
          ~on_response)
  else
    let v = Rng.int t.rng 1000 in
    submit_with (fun ~on_response ->
        Replica.submit replica ~size:t.mix.action_size
          (Action.Update [ Op.Set (key, Value.Int v) ])
          ~on_response)

let make ?deadline ?(busy_retries = 3) ?(retry_backoff = Time.of_ms 10.) ~sim
    ~mix () =
  {
    sim;
    mix;
    rng = Rng.split (SimE.rng sim);
    deadline;
    busy_retries;
    retry_backoff;
    measuring = false;
    stopped = false;
    completed = 0;
    good = 0;
    shed = 0;
    busy_retried = 0;
    latencies = Stats.Summary.create ();
  }

let closed_loop ?deadline ?busy_retries ?retry_backoff ~sim ~mix ~clients
    ~replicas () =
  let t = make ?deadline ?busy_retries ?retry_backoff ~sim ~mix () in
  let n = List.length replicas in
  let rec client replica =
    if not t.stopped then issue t replica ~k:(fun () -> client replica)
  in
  List.iteri
    (fun i _ -> client (List.nth replicas (i mod n)))
    (List.init clients Fun.id);
  t

let open_loop ?deadline ?busy_retries ?retry_backoff ~sim ~mix ~rate_per_sec
    ~replicas () =
  let t = make ?deadline ?busy_retries ?retry_backoff ~sim ~mix () in
  let n = List.length replicas in
  let counter = ref 0 in
  let rec arrival () =
    if not t.stopped then begin
      let gap = Rng.exponential t.rng ~mean:(1. /. rate_per_sec) in
      ignore
        (SimE.schedule sim ~delay:(Time.of_sec gap) (fun () ->
             if not t.stopped then begin
               incr counter;
               let replica = List.nth replicas (!counter mod n) in
               issue t replica ~k:(fun () -> ());
               arrival ()
             end))
    end
  in
  arrival ();
  t

let start_measuring t =
  t.measuring <- true;
  t.completed <- 0;
  t.good <- 0;
  t.shed <- 0;
  t.busy_retried <- 0

let stop t = t.stopped <- true
let completed t = t.completed
let completed_in_deadline t = t.good
let shed t = t.shed
let busy_retried t = t.busy_retried
let latencies_ms t = t.latencies

let throughput t ~over =
  let secs = Time.to_sec over in
  if secs <= 0. then 0. else float_of_int t.completed /. secs

let goodput t ~over =
  let secs = Time.to_sec over in
  if secs <= 0. then 0. else float_of_int t.good /. secs
