module Sim = Repro_sim
open Repro_net
open Repro_storage
open Repro_db
open Repro_core

type protocol =
  | Engine_protocol of Disk.mode
  | Corel_protocol
  | Twopc_protocol

let protocol_name = function
  | Engine_protocol Disk.Forced -> "engine (forced writes)"
  | Engine_protocol Disk.Delayed -> "engine (delayed writes)"
  | Corel_protocol -> "COReL"
  | Twopc_protocol -> "2PC"

type result = {
  r_protocol : protocol;
  r_servers : int;
  r_clients : int;
  r_throughput : float;
  r_mean_latency_ms : float;
  r_p99_latency_ms : float;
  r_completed : int;
}

let pp_result ppf r =
  Format.fprintf ppf "%-24s servers=%2d clients=%2d tput=%8.1f/s lat=%6.2fms p99=%6.2fms"
    (protocol_name r.r_protocol) r.r_servers r.r_clients r.r_throughput
    r.r_mean_latency_ms r.r_p99_latency_ms

(* A generic closed-loop run over an abstract system. *)
type system = {
  sys_sim : Sim.Engine.t;
  sys_submit : node:Node_id.t -> k:(unit -> unit) -> unit;
  sys_nodes : Node_id.t list;
}

let closed_loop ~system ~clients ~warmup ~duration =
  let sim = system.sys_sim in
  (* Let membership / views settle before attaching clients. *)
  Sim.Engine.run ~until:warmup sim;
  let measure_start = ref Sim.Time.zero in
  let measuring = ref false in
  let completed = ref 0 in
  let latencies = Sim.Stats.Summary.create () in
  let n = List.length system.sys_nodes in
  let rec client_loop node =
    let t0 = Sim.Engine.now sim in
    system.sys_submit ~node ~k:(fun () ->
        let t1 = Sim.Engine.now sim in
        if !measuring then begin
          incr completed;
          Sim.Stats.Summary.add latencies (Sim.Time.to_ms (Sim.Time.diff t1 t0))
        end;
        client_loop node)
  in
  List.iteri
    (fun i _ -> client_loop (List.nth system.sys_nodes (i mod n)))
    (List.init clients Fun.id);
  (* One extra second of ramp before the measurement window opens. *)
  let ramp = Sim.Time.add warmup ~span:(Sim.Time.of_sec 1.) in
  Sim.Engine.run ~until:ramp sim;
  measuring := true;
  measure_start := Sim.Engine.now sim;
  let window_end = Sim.Time.add ramp ~span:duration in
  Sim.Engine.run ~until:window_end sim;
  measuring := false;
  let elapsed = Sim.Time.diff (Sim.Engine.now sim) !measure_start in
  let throughput =
    if Sim.Time.to_sec elapsed > 0. then
      float_of_int !completed /. Sim.Time.to_sec elapsed
    else 0.
  in
  (throughput, latencies, !completed)

let engine_system ~net_config ~params ~mode ~servers ~action_size ~seed
    ~submit_delay =
  let nodes = List.init servers Fun.id in
  let cluster = Replica.make_cluster ~net_config ~params ~seed ~nodes () in
  let disk_config =
    match mode with
    | Disk.Forced -> Disk.default_forced
    | Disk.Delayed -> Disk.default_delayed
  in
  let replicas =
    List.map
      (fun node ->
        let r =
          Replica.create ~disk_config ?submit_delay ~cluster ~node
            ~servers:nodes ()
        in
        Replica.start r;
        (node, r))
      nodes
  in
  let submit ~node ~k =
    let r = List.assoc node replicas in
    (* The paper measures the replication engines themselves: clients get
       their response when the action is globally ordered, without
       touching a database — a no-op update keeps the executor trivial. *)
    Replica.submit r ~size:action_size
      (Action.Update [])
      ~on_response:(fun _ -> k ())
  in
  let stats () =
    List.map (fun (_, r) -> Engine.stats (Replica.engine r)) replicas
  in
  ( { sys_sim = Replica.cluster_sim cluster;
      sys_submit = submit;
      sys_nodes = nodes },
    stats )

let corel_system ~net_config ~params ~servers ~action_size ~seed =
  let nodes = List.init servers Fun.id in
  let cluster =
    Repro_baselines.Corel.make_cluster ~net_config ~params ~seed ~nodes ()
  in
  Repro_baselines.Corel.start cluster;
  let submit ~node ~k =
    Repro_baselines.Corel.submit cluster ~node ~size:action_size
      ~on_response:k ()
  in
  {
    sys_sim = Repro_baselines.Corel.sim cluster;
    sys_submit = submit;
    sys_nodes = nodes;
  }

let twopc_system ~net_config ~servers ~action_size ~seed =
  let nodes = List.init servers Fun.id in
  let cluster = Repro_baselines.Twopc.make_cluster ~net_config ~seed ~nodes () in
  let submit ~node ~k =
    Repro_baselines.Twopc.submit cluster ~node ~size:action_size
      ~on_response:(fun _ -> k ())
      ()
  in
  {
    sys_sim = Repro_baselines.Twopc.sim cluster;
    sys_submit = submit;
    sys_nodes = nodes;
  }

let measure ~system ~clients ~warmup ~duration ~servers ~protocol =
  let throughput, latencies, completed =
    closed_loop ~system ~clients ~warmup ~duration
  in
  {
    r_protocol = protocol;
    r_servers = servers;
    r_clients = clients;
    r_throughput = throughput;
    r_mean_latency_ms = Sim.Stats.Summary.mean latencies;
    r_p99_latency_ms = Sim.Stats.Summary.percentile latencies 99.;
    r_completed = completed;
  }

let run ?(net_config = Network.lan_gigabit)
    ?(params = Repro_gcs.Params.default) ?(servers = 14) ?(action_size = 200)
    ?(warmup = Sim.Time.of_sec 2.) ?(duration = Sim.Time.of_sec 8.)
    ?(seed = 97) ?submit_delay ~clients protocol =
  let system =
    match protocol with
    | Engine_protocol mode ->
      fst
        (engine_system ~net_config ~params ~mode ~servers ~action_size ~seed
           ~submit_delay)
    | Corel_protocol ->
      corel_system ~net_config ~params ~servers ~action_size ~seed
    | Twopc_protocol -> twopc_system ~net_config ~servers ~action_size ~seed
  in
  measure ~system ~clients ~warmup ~duration ~servers ~protocol

let run_engine ?(net_config = Network.lan_gigabit)
    ?(params = Repro_gcs.Params.default) ?(servers = 14) ?(action_size = 200)
    ?(warmup = Sim.Time.of_sec 2.) ?(duration = Sim.Time.of_sec 8.)
    ?(seed = 97) ?submit_delay ~clients mode =
  let system, stats =
    engine_system ~net_config ~params ~mode ~servers ~action_size ~seed
      ~submit_delay
  in
  let r =
    measure ~system ~clients ~warmup ~duration ~servers
      ~protocol:(Engine_protocol mode)
  in
  (r, stats ())
