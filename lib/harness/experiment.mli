open Repro_sim
open Repro_storage

(** The closed-loop measurement driver used by every figure.

    Mirrors the paper's §7 methodology: [clients] closed-loop clients
    spread round-robin over the replicas, each injecting its next
    200-byte action as soon as the previous one completes (is globally
    ordered); no database is attached to the measured path.  Throughput
    counts completions inside the measurement window; latency is
    per-action, submit-to-global-order at the submitting client. *)

type protocol =
  | Engine_protocol of Disk.mode  (** the paper's replication engine *)
  | Corel_protocol
  | Twopc_protocol

val protocol_name : protocol -> string

type result = {
  r_protocol : protocol;
  r_servers : int;
  r_clients : int;
  r_throughput : float;  (** actions per (virtual) second *)
  r_mean_latency_ms : float;
  r_p99_latency_ms : float;
  r_completed : int;
}

val run :
  ?net_config:Repro_net.Network.config ->
  ?params:Repro_gcs.Params.t ->
  ?servers:int ->
  ?action_size:int ->
  ?warmup:Time.t ->
  ?duration:Time.t ->
  ?seed:int ->
  ?submit_delay:Time.t ->
  clients:int ->
  protocol ->
  result
(** Defaults: 14 servers (the paper's testbed), 200-byte actions, 2 s
    warm-up, 8 s measurement, on the gigabit LAN profile (pass
    [~net_config:Network.lan_100mbit] for the paper's 2001 testbed).
    [submit_delay] (engine protocols only) enables end-to-end submission
    batching at the replicas. *)

val run_engine :
  ?net_config:Repro_net.Network.config ->
  ?params:Repro_gcs.Params.t ->
  ?servers:int ->
  ?action_size:int ->
  ?warmup:Time.t ->
  ?duration:Time.t ->
  ?seed:int ->
  ?submit_delay:Time.t ->
  clients:int ->
  Disk.mode ->
  result * Repro_core.Engine.stats list
(** [run] specialised to the engine protocol, additionally returning
    each replica's cumulative {!Repro_core.Engine.stats} at the end of
    the window — the submission-batching counters are how the bench's
    batch-size sweep measures the achieved mean frame size. *)

val pp_result : Format.formatter -> result -> unit
