open Repro_core

(** The global correctness checker: evaluates the paper's safety and
    liveness properties (§5.2) over a set of replicas.

    All checks are observational — they read engine state, never mutate
    it — so scenarios and property tests can call them at any point. *)

type violation = {
  v_property : string;
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_global_total_order : Replica.t list -> violation list
(** Theorem 1: if two replicas both performed their i-th action, the
    actions are identical — green prefixes must be pairwise consistent.
    Checked in O(n) sequence comparisons against the longest green
    sequence as the common reference (prefix agreement is transitive);
    pairwise comparison only remains for the segment below the
    reference's floor, among the replicas still holding it. *)

val check_global_fifo : Replica.t list -> violation list
(** Theorem 2: a replica that performed action [a] of server [s] already
    performed every earlier action of [s] (modulo a snapshot-inherited
    prefix) — per-creator indices inside each green sequence must be
    increasing and gap-free. *)

val check_single_primary : Replica.t list -> violation list
(** At most one group of live replicas believes it is the primary
    component, identified by the installed primary index. *)

val check_convergence : Replica.t list -> violation list
(** After healing and quiescence (liveness, Theorem 3): all ready
    replicas have equal green counts, equal database digests and equal
    exactly-once windows ({!Replica.dedup_summary}). *)

type ledger = {
  l_client : int;
  l_key : string;
  l_issued : int;  (** sequence numbers the client issued *)
  l_acked : int;  (** sequence numbers the client saw responses for *)
}
(** One client's exactly-once ledger over a private counter key that
    each of its requests incremented by exactly 1. *)

val check_exactly_once : ledgers:ledger list -> Replica.t list -> violation list
(** The client-visible end-to-end guarantee: on every ready replica and
    for every ledger, [l_acked <= value(l_key) <= l_issued].  Below the
    acks means an acknowledged request was lost; above the issues means
    a retry was applied more than once. *)

val check_all : ?converged:bool -> Replica.t list -> violation list
(** Every safety check; [converged] (default false) adds the liveness
    check. *)

val assert_ok : ?converged:bool -> Replica.t list -> unit
(** Raises [Failure] with a description if any check fails. *)
