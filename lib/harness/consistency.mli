open Repro_core

(** The global correctness checker: evaluates the paper's safety and
    liveness properties (§5.2) over a set of replicas.

    All checks are observational — they read engine state, never mutate
    it — so scenarios and property tests can call them at any point. *)

type violation = {
  v_property : string;
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_global_total_order : Replica.t list -> violation list
(** Theorem 1: if two replicas both performed their i-th action, the
    actions are identical — green prefixes must be pairwise consistent.
    Checked in O(n) sequence comparisons against the longest green
    sequence as the common reference (prefix agreement is transitive);
    pairwise comparison only remains for the segment below the
    reference's floor, among the replicas still holding it. *)

val check_global_fifo : Replica.t list -> violation list
(** Theorem 2: a replica that performed action [a] of server [s] already
    performed every earlier action of [s] (modulo a snapshot-inherited
    prefix) — per-creator indices inside each green sequence must be
    increasing and gap-free. *)

val check_single_primary : Replica.t list -> violation list
(** At most one group of live replicas believes it is the primary
    component, identified by the installed primary index. *)

val check_convergence : Replica.t list -> violation list
(** After healing and quiescence (liveness, Theorem 3): all ready
    replicas have equal green counts and equal database digests. *)

val check_all : ?converged:bool -> Replica.t list -> violation list
(** Every safety check; [converged] (default false) adds the liveness
    check. *)

val assert_ok : ?converged:bool -> Replica.t list -> unit
(** Raises [Failure] with a description if any check fails. *)
