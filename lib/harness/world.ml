module Sim = Repro_sim
open Repro_net
open Repro_storage
open Repro_db
open Repro_core

type t = {
  w_cluster : Replica.cluster;
  w_replicas : (Node_id.t, Replica.t) Hashtbl.t;
  mutable w_nodes : Node_id.t list;
  w_disk_config : Disk.config;
  w_attach_cpu : bool;
  w_checkpoint_every : int option option;
      (* [None] = Replica's default; [Some c] = explicit setting *)
  w_quorum_policy : Quorum.policy;
  w_submit_delay : Sim.Time.t option;
  w_dedup_window : int option;
  w_admission : Replica.admission option;
  mutable w_proc_guard : Repro_check.Procguard.t option;
      (* attached to every replica, joiners included, once requested *)
}

let default_net =
  {
    Network.lan_100mbit with
    send_cpu_cost = Sim.Time.zero;
    recv_cpu_cost = Sim.Time.zero;
    recv_cpu_per_kb = Sim.Time.zero;
  }

let default_disk =
  { Disk.default_forced with sync_latency = Sim.Time.of_ms 1. }

let make ?(net_config = default_net) ?(params = Repro_gcs.Params.fast)
    ?(disk_config = default_disk) ?(attach_cpu = false) ?checkpoint_every
    ?quorum_policy ?(seed = 17) ?submit_delay ?dedup_window ?admission ~n () =
  let nodes = List.init n Fun.id in
  let cluster = Replica.make_cluster ~net_config ~params ~seed ~nodes () in
  let replicas = Hashtbl.create n in
  List.iter
    (fun node ->
      let r =
        Replica.create ~disk_config ~attach_cpu ?checkpoint_every
          ?quorum_policy ?submit_delay ?dedup_window ?admission ~cluster ~node
          ~servers:nodes ()
      in
      Hashtbl.replace replicas node r;
      Replica.start r)
    nodes;
  {
    w_cluster = cluster;
    w_replicas = replicas;
    w_nodes = nodes;
    w_disk_config = disk_config;
    w_attach_cpu = attach_cpu;
    w_checkpoint_every = checkpoint_every;
    w_quorum_policy =
      Option.value quorum_policy ~default:Quorum.Dynamic_linear;
    w_submit_delay = submit_delay;
    w_dedup_window = dedup_window;
    w_admission = admission;
    w_proc_guard = None;
  }

let sim t = Replica.cluster_sim t.w_cluster
let topology t = Replica.cluster_topology t.w_cluster
let cluster t = t.w_cluster

let replicas t =
  List.filter_map (fun n -> Hashtbl.find_opt t.w_replicas n) t.w_nodes

let replica t node = Hashtbl.find t.w_replicas node
let nodes t = t.w_nodes

let add_joiner t ~node ~sponsors =
  Topology.add_node (topology t) node;
  let r =
    Replica.create_joiner ~disk_config:t.w_disk_config
      ~attach_cpu:t.w_attach_cpu ?checkpoint_every:t.w_checkpoint_every
      ?submit_delay:t.w_submit_delay ?dedup_window:t.w_dedup_window
      ?admission:t.w_admission ~cluster:t.w_cluster ~node ~sponsors ()
  in
  Hashtbl.replace t.w_replicas node r;
  t.w_nodes <- t.w_nodes @ [ node ];
  (match t.w_proc_guard with
  | Some g -> Repro_check.Procguard.attach g r
  | None -> ());
  Replica.start r;
  r

let run t ~ms =
  let s = sim t in
  Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now s) ~span:(Sim.Time.of_ms ms)) s

let run_until_quiescent ?(max_ms = 30_000.) t = run t ~ms:max_ms

let submit_update t ~node ~key v =
  let r = replica t node in
  if Replica.is_ready r then
    Replica.submit r
      (Action.Update [ Op.Set (key, Value.Int v) ])
      ~on_response:(fun _ -> ())

let submit_procedure t ~node ~proc args =
  let r = replica t node in
  if Replica.is_ready r then
    Replica.submit r (Action.Active { proc; args }) ~on_response:(fun _ -> ())

let attach_procedure_guard t =
  let g = Repro_check.Procguard.create () in
  t.w_proc_guard <- Some g;
  List.iter (Repro_check.Procguard.attach g) (replicas t);
  g

let attach_monitor ?window t =
  Repro_check.Monitor.create ?window ~policy:(Some t.w_quorum_policy)
    ~sim:(sim t)
    ~replicas:(fun () -> replicas t)
    ()

let heal_and_settle ?(ms = 5_000.) t =
  Topology.merge_all (topology t);
  List.iter (fun r -> if not (Replica.is_up r) then Replica.recover r) (replicas t);
  run t ~ms
