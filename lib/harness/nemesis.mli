open Repro_storage

(** A seeded, randomized fault-schedule driver ("nemesis").

    One run builds a {!World.t} whose disks carry an injectable fault
    model, keeps a sustained update workload going, and interleaves it
    with a pseudo-random schedule of crash/restart (with storage
    faults), network partition/heal, and deterministic disk corruption
    of down replicas.  The schedule is drawn from its own [SplitMix64]
    stream, so a seed identifies one reproducible campaign.

    The driver is quorum-aware: it never takes down (or corrupts the
    log under) more replicas than the cluster can lose while still
    fielding a majority, so the final heal phase always has a primary
    component to converge in — what the run asserts is {e safety and
    convergence under faults}, not behaviour without a quorum.

    Alongside the fire-and-forget traffic, the campaign drives a set of
    {!Client} failover sessions, each incrementing a private counter
    key once per acknowledged request — the client-visible exactly-once
    oracle.  Replicas run with admission control enabled, so retry
    storms can be answered [Busy] and the shedding path is exercised
    under the same fault schedule.

    After the active phase it heals every partition, recovers every
    crashed replica (tallying each recovery's {!Repro_core.Persist}
    verdict), lets the cluster settle, and evaluates the checkers:
    the global {!Consistency} catalogue with the convergence (liveness)
    check enabled, the {!Consistency.check_exactly_once} ledger over
    the client counters (no lost acks, no double-applies), and a final
    sweep of the online repcheck {!Repro_check.Monitor} that observed
    the whole run. *)

type config = {
  seed : int;
  nodes : int;  (** replicas on nodes [0..nodes-1] *)
  clients : int;
      (** failover {!Client} sessions driving the exactly-once oracle *)
  active_ms : float;  (** duration of the fault-injection phase *)
  settle_ms : float;  (** budget for the final heal-and-settle phase *)
  faults : Disk.fault_config;  (** fault model of every replica's disk *)
  checkpoint_every : int option;  (** see {!Repro_core.Replica.create} *)
}

val default_config : config
(** 5 nodes, 4 client sessions, 4 s active phase, 30 s settle budget,
    moderate fault probabilities (torn tails likely, occasional
    crash-time corruption and transient read errors), checkpoint every
    40 applied actions so salvage-vs-amnesia decisions meet real
    checkpoints. *)

type outcome = {
  o_steps : int;  (** schedule steps executed *)
  o_submitted : int;  (** update transactions submitted *)
  o_crashes : int;
  o_recoveries : int;
  o_corruptions : int;  (** log records damaged by explicit injection *)
  o_partitions : int;
  o_heals : int;
  o_clean : int;  (** recoveries per {!Repro_core.Persist.verdict}... *)
  o_torn : int;
  o_salvaged : int;
  o_amnesia : int;
  o_ready : int;  (** replicas ready after the settle phase *)
  o_greens : int;  (** the converged green count (max across replicas) *)
  o_sweeps : int;  (** monitor sweeps performed during the run *)
  o_procs : int;
      (** stored-procedure executions whose actual key accesses were
          validated against a declared footprint ({!Repro_check.Procguard}) *)
  o_client_acked : int;
      (** acknowledged oracle requests, summed over client sessions *)
  o_retries : int;  (** client re-attempts (timeout- or Busy-triggered) *)
  o_failovers : int;  (** client deadline expiries that rotated targets *)
  o_dupes_suppressed : int;
      (** retried attempts answered from a replica's exactly-once window
          instead of re-executing *)
  o_shed : int;  (** requests refused [Busy] by admission control *)
  o_violations : string list;
      (** rendered monitor + consistency + exactly-once ledger +
          footprint-guard violations; empty on a pass *)
}

val converged : outcome -> bool
(** All replicas came back ready and no checker complained. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** A small human-readable table (the CLI's output). *)

val run : ?config:config -> unit -> outcome
(** Executes one campaign.  Same config (seed included) ⇒ same
    outcome, bit for bit. *)
