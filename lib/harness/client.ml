module Sim = Repro_sim
open Repro_db
open Repro_core

(* A cluster-aware client session: FIFO, one request in flight, durable
   request ids, deadline-driven failover with capped exponential
   backoff + full jitter.  All timing and randomness come from the sim,
   so a campaign is deterministic per seed.

   The reliability argument, end to end: sequence numbers are issued
   1, 2, 3, ... with one outstanding; every attempt of seq [s] carries
   the same [(client, s)] request id; the replica-side dedup window
   guarantees at most one attempt executes, and any attempt's response
   is the replicated response for [s] — so the first response to
   arrive completes [s] regardless of which attempt produced it, and
   the session may retry as aggressively as it likes without risking a
   double-apply. *)

type config = {
  request_timeout : Sim.Time.t;
      (* per-attempt deadline before the target is presumed dead,
         partitioned or hopelessly lagging *)
  backoff_base : Sim.Time.t;
  backoff_cap : Sim.Time.t;
}

let default_config =
  {
    request_timeout = Sim.Time.of_ms 400.;
    backoff_base = Sim.Time.of_ms 20.;
    backoff_cap = Sim.Time.of_ms 2_000.;
  }

type op = {
  op_semantics : Action.semantics;
  op_size : int;
  op_kind : Action.kind;
  op_k : Action.response -> unit;
}

type t = {
  sim : Sim.Engine.t;
  rng : Sim.Rng.t;
  id : int;
  replicas : unit -> Replica.t list;
  cfg : config;
  queue : op Queue.t;
  mutable current : op option;
  mutable seq : int;  (* last issued sequence number *)
  mutable acked : int;  (* last completed sequence number *)
  mutable target : int;  (* index into [replicas ()] *)
  mutable attempt : int;  (* attempts made for the current seq *)
  mutable epoch : int;  (* invalidates stale deadlines/Busy handlers *)
  mutable stopped : bool;
  (* counters *)
  mutable completed : int;
  mutable aborted : int;
  mutable retries : int;
  mutable failovers : int;
  mutable busy : int;
  mutable timeouts : int;
}

let create ?(config = default_config) ~sim ~id ~replicas () =
  if id <= 0 then invalid_arg "Client.create: id must be positive";
  {
    sim;
    rng = Sim.Rng.split (Sim.Engine.rng sim);
    id;
    replicas;
    cfg = config;
    queue = Queue.create ();
    current = None;
    seq = 0;
    acked = 0;
    target = (id - 1) mod 64;  (* spread clients across replicas *)
    attempt = 0;
    epoch = 0;
    stopped = false;
    completed = 0;
    aborted = 0;
    retries = 0;
    failovers = 0;
    busy = 0;
    timeouts = 0;
  }

let id t = t.id
let issued t = t.seq
let acked t = t.acked
let completed t = t.completed
let aborted t = t.aborted
let retries t = t.retries
let failovers t = t.failovers
let busy_responses t = t.busy
let timeouts t = t.timeouts
let outstanding t = Queue.length t.queue + if t.current = None then 0 else 1
let stop t = t.stopped <- true

(* Capped exponential backoff with full jitter: uniformly random in
   (0, min cap (base * 2^(attempt-1))], drawn from the session's own
   split of the sim RNG stream. *)
let backoff_delay t =
  let base = Sim.Time.to_ms t.cfg.backoff_base in
  let cap = Sim.Time.to_ms t.cfg.backoff_cap in
  let exp =
    Float.min cap (base *. (2. ** float_of_int (min 16 (t.attempt - 1))))
  in
  Sim.Time.of_ms (Float.max 0.001 (Sim.Rng.float t.rng exp))

(* Rotate to the next live, ready replica (round-robin); stay put when
   none qualifies — the next deadline will rotate again, and by then a
   recovery or heal may have changed the picture. *)
let rotate_target t =
  let rs = t.replicas () in
  let n = List.length rs in
  if n > 0 then begin
    let usable i =
      match List.nth_opt rs ((t.target + i) mod n) with
      | Some r -> Replica.is_up r && Replica.is_ready r
      | None -> false
    in
    let rec find i = if i > n then 1 else if usable i then i else find (i + 1) in
    t.target <- (t.target + find 1) mod n
  end

let rec dispatch t =
  if (not t.stopped) && t.current = None then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some op ->
      t.current <- Some op;
      t.seq <- t.seq + 1;
      t.attempt <- 0;
      attempt t

and attempt t =
  match t.current with
  | None -> ()
  | Some op ->
    t.attempt <- t.attempt + 1;
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch and seq = t.seq in
    (match List.nth_opt (t.replicas ()) t.target with
    | Some r when Replica.is_up r && Replica.is_ready r ->
      Replica.submit r ~client:t.id ~semantics:op.op_semantics
        ~size:op.op_size ~req_seq:seq ~req_ack:t.acked op.op_kind
        ~on_response:(fun resp -> on_response t ~seq ~epoch resp)
    | Some _ | None ->
      (* No usable target right now: burn the attempt, let the deadline
         below fire and rotate. *)
      ());
    ignore
      (Sim.Engine.schedule t.sim ~delay:t.cfg.request_timeout (fun () ->
           if (not t.stopped) && t.epoch = epoch && t.acked < seq then begin
             t.timeouts <- t.timeouts + 1;
             t.failovers <- t.failovers + 1;
             rotate_target t;
             retry t
           end))

and on_response t ~seq ~epoch resp =
  if (not t.stopped) && t.acked < seq then
    match resp with
    | Action.Busy ->
      (* Admission shed the request before it entered the order: back
         off on the same target (the shed is load, not death).  Only
         the live attempt may react — a stale Busy is impossible today
         (it fires synchronously) but the guard keeps the single-driver
         invariant obvious. *)
      if t.epoch = epoch then begin
        t.busy <- t.busy + 1;
        retry t
      end
    | Action.Committed _ | Action.Procedure_output _ | Action.Aborted ->
      (* Any attempt's response completes the seq — replica-side dedup
         makes every attempt return the same replicated response. *)
      t.acked <- seq;
      t.completed <- t.completed + 1;
      (match resp with
      | Action.Aborted -> t.aborted <- t.aborted + 1
      | _ -> ());
      t.epoch <- t.epoch + 1 (* kill the outstanding deadline *);
      let op = t.current in
      t.current <- None;
      (match op with Some op -> op.op_k resp | None -> ());
      dispatch t

and retry t =
  t.retries <- t.retries + 1;
  t.epoch <- t.epoch + 1 (* invalidate the pending deadline *);
  ignore
    (Sim.Engine.schedule t.sim ~delay:(backoff_delay t) (fun () ->
         if not t.stopped then attempt t))

let exec t ?(semantics = Action.Strict) ?(size = 200) kind ~k =
  Queue.add { op_semantics = semantics; op_size = size; op_kind = kind; op_k = k }
    t.queue;
  dispatch t

(* Reads go through the ordered path with a request id of their own —
   NOT [Replica.local_query]: after a failover the new target has no
   session history for this client, and only ordering the read after
   the client's last write guarantees read-your-writes. *)
let read t keys ~k =
  exec t (Action.Query keys) ~k:(fun resp ->
      match resp with
      | Action.Committed rows -> k rows
      | Action.Procedure_output _ | Action.Aborted | Action.Busy -> k [])
