module Sim = Repro_sim
open Repro_sim
open Repro_net
open Repro_storage
open Repro_db
open Repro_core

type series = (int * float) list

let default_clients = [ 1; 2; 4; 6; 8; 10; 12; 14 ]

let print_table ppf ~title ~x_label ~columns rows =
  Format.fprintf ppf "@.== %s ==@." title;
  Format.fprintf ppf "%-10s" x_label;
  List.iter (fun c -> Format.fprintf ppf " %18s" c) columns;
  Format.fprintf ppf "@.";
  List.iter
    (fun (x, values) ->
      Format.fprintf ppf "%-10d" x;
      List.iter (fun v -> Format.fprintf ppf " %18.1f" v) values;
      Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf "@."

let sweep ~protocols ~clients ~servers ~duration =
  List.map
    (fun protocol ->
      let points =
        List.map
          (fun c ->
            let r = Experiment.run ~servers ~duration ~clients:c protocol in
            (c, r.Experiment.r_throughput))
          clients
      in
      (Experiment.protocol_name protocol, points))
    protocols

let tabulate ppf ~title ~x_label named_series =
  let xs =
    match named_series with [] -> [] | (_, points) :: _ -> List.map fst points
  in
  let rows =
    List.map
      (fun x ->
        (x, List.map (fun (_, points) -> List.assoc x points) named_series))
      xs
  in
  print_table ppf ~title ~x_label ~columns:(List.map fst named_series) rows

let figure_5a ?(clients = default_clients) ?(servers = 14)
    ?(duration = Time.of_sec 8.) ppf () =
  let named =
    sweep
      ~protocols:
        [
          Experiment.Engine_protocol Disk.Forced;
          Experiment.Corel_protocol;
          Experiment.Twopc_protocol;
        ]
      ~clients ~servers ~duration
  in
  tabulate ppf
    ~title:
      (Printf.sprintf
         "Figure 5(a): throughput, %d replicas, closed-loop clients (actions/s)"
         servers)
    ~x_label:"clients" named;
  Format.fprintf ppf
    "paper shape: engine > COReL > 2PC at every client count; the engine@.\
     does not saturate in range (paper peaks: engine ~800, COReL ~450,@.\
     2PC ~250 actions/s on their 2001 testbed).@.";
  named

let figure_5b ?(clients = default_clients) ?(servers = 14)
    ?(duration = Time.of_sec 8.) ppf () =
  let named =
    sweep
      ~protocols:
        [
          Experiment.Engine_protocol Disk.Delayed;
          Experiment.Engine_protocol Disk.Forced;
        ]
      ~clients ~servers ~duration
  in
  tabulate ppf
    ~title:
      (Printf.sprintf
         "Figure 5(b): engine throughput, forced vs delayed writes, %d replicas"
         servers)
    ~x_label:"clients" named;
  Format.fprintf ppf
    "paper shape: delayed writes lift the disk off the critical path and@.\
     the engine tops out at its processing limit (~2500 actions/s in the@.\
     paper); forced writes track Figure 5(a)'s engine curve.@.";
  named

let latency_table ?(servers = [ 2; 4; 6; 8; 10; 12; 14 ]) ?(actions = 2000)
    ppf () =
  (* One client, sequential actions: the measurement window is sized so
     the client completes ~[actions] actions at the slowest protocol. *)
  ignore actions;
  let protocols =
    [
      Experiment.Twopc_protocol;
      Experiment.Corel_protocol;
      Experiment.Engine_protocol Disk.Forced;
    ]
  in
  let named =
    List.map
      (fun protocol ->
        let points =
          List.map
            (fun n ->
              let r =
                Experiment.run ~servers:n ~duration:(Time.of_sec 20.) ~clients:1
                  protocol
              in
              (n, r.Experiment.r_mean_latency_ms))
            servers
        in
        (Experiment.protocol_name protocol, points))
      protocols
  in
  tabulate ppf
    ~title:"Latency (§7): one client, sequential actions, mean latency (ms)"
    ~x_label:"servers" named;
  Format.fprintf ppf
    "paper shape: ~19.3 ms for 2PC (two forced writes on the critical@.\
     path), ~11.4 ms for COReL and the engine (one forced write), all@.\
     quasi-flat in the number of servers (disk-write dominated LAN).@.";
  named

(* §7's wide-area prediction: "on wide area network, where network
   latency becomes a more important factor, COReL will further outperform
   two-phase commit". *)
let wan_prediction ?(servers = 5) ppf () =
  let run protocol net_config params =
    (Experiment.run ~net_config ~params ~servers ~warmup:(Time.of_sec 5.)
       ~duration:(Time.of_sec 30.) ~clients:1 protocol)
      .Experiment.r_mean_latency_ms
  in
  let rows =
    List.map
      (fun protocol ->
        ( Experiment.protocol_name protocol,
          run protocol Network.lan_100mbit Repro_gcs.Params.default,
          run protocol Network.wan_default Repro_gcs.Params.wan ))
      [
        Experiment.Twopc_protocol;
        Experiment.Corel_protocol;
        Experiment.Engine_protocol Disk.Forced;
      ]
  in
  Format.fprintf ppf
    "@.== WAN prediction (§7): mean latency, %d replicas, 1 client (ms) ==@."
    servers;
  Format.fprintf ppf "%-26s %12s %12s@." "protocol" "LAN" "WAN(30ms)";
  List.iter
    (fun (name, lan, wan) -> Format.fprintf ppf "%-26s %12.1f %12.1f@." name lan wan)
    rows;
  (match rows with
  | [ (_, twopc_lan, twopc_wan); (_, corel_lan, corel_wan); (_, eng_lan, eng_wan) ]
    ->
    Format.fprintf ppf
      "paper's prediction: extra communication rounds dominate on WAN —@.       added latency: 2PC +%.0f ms, COReL +%.0f ms, engine +%.0f ms@."
      (twopc_wan -. twopc_lan) (corel_wan -. corel_lan) (eng_wan -. eng_lan)
  | _ -> ());
  rows

let ablation_ack_batching ?(delays_us = [ 100; 250; 500; 1000; 2000; 5000 ])
    ?(clients = 14) ?(duration = Time.of_sec 6.) ppf () =
  let nodes = List.init 14 Fun.id in
  let points =
    List.map
      (fun delay_us ->
        let params =
          { Repro_gcs.Params.default with ack_delay = Time.of_us delay_us }
        in
        (* Pinned to the paper's 100 Mbit profile: the ablation's point
           is the per-message CPU cost that ack batching amortises, and
           the gigabit profile's cheap messages would flatten it. *)
        let cluster =
          Replica.make_cluster ~net_config:Network.lan_100mbit ~params
            ~seed:131 ~nodes ()
        in
        let replicas =
          List.map
            (fun node ->
              let r =
                Replica.create ~disk_config:Disk.default_forced ~cluster ~node
                  ~servers:nodes ()
              in
              Replica.start r;
              (node, r))
            nodes
        in
        let sim = Replica.cluster_sim cluster in
        Sim.Engine.run ~until:(Time.of_sec 2.) sim;
        let completed = ref 0 in
        let measuring = ref false in
        let rec client node =
          Replica.submit (List.assoc node replicas) (Action.Update [])
            ~on_response:(fun _ ->
              if !measuring then incr completed;
              client node)
        in
        List.iteri (fun i _ -> client (i mod 14)) (List.init clients Fun.id);
        Sim.Engine.run ~until:(Time.of_sec 3.) sim;
        measuring := true;
        Sim.Engine.run ~until:(Time.add (Time.of_sec 3.) ~span:duration) sim;
        (delay_us, float_of_int !completed /. Time.to_sec duration))
      delays_us
  in
  Format.fprintf ppf
    "@.== Ablation A1: GCS acknowledgement batching (14 replicas, %d clients) ==@."
    clients;
  Format.fprintf ppf "%-14s %18s@." "ack-delay(us)" "throughput(/s)";
  List.iter (fun (d, t) -> Format.fprintf ppf "%-14d %18.1f@." d t) points;
  Format.fprintf ppf
    "shape: tiny delays approximate per-action acknowledgement traffic and@.\
     depress throughput; batching amortises the safe-delivery cost — the@.\
     mechanism behind the engine's win in Figure 5(a).@.";
  points

(* Ablation A5: quorum-policy availability under partition churn — the
   design choice §3.1 makes ("we opted to use dynamic linear voting")
   quantified: fraction of time some primary component exists. *)
let ablation_quorum_availability ?(n = 5) ?(rounds = 12) ppf () =
  let run policy ~cascading =
    let w = World.make ~quorum_policy:policy ~seed:509 ~n () in
    World.run w ~ms:1000.;
    let rng = Rng.of_int 4242 in
    let sim = World.sim w in
    let samples = ref 0 and live = ref 0 in
    let sample () =
      incr samples;
      if List.exists Repro_core.Replica.in_primary (World.replicas w) then
        incr live
    in
    for _ = 1 to rounds do
      (if Rng.int rng 4 = 0 then Topology.merge_all (World.topology w)
       else if cascading then begin
         (* Refinement cascade: split the largest current component —
            sequential degradation, the scenario dynamic voting targets. *)
         let components = Topology.components (World.topology w) in
         let largest =
           List.fold_left
             (fun best c ->
               if Node_id.Set.cardinal c > Node_id.Set.cardinal best then c
               else best)
             (List.hd components) components
         in
         let members = Node_id.Set.elements largest in
         match members with
         | _ :: _ :: _ ->
           let shuffled = Rng.shuffle rng members in
           let keep = (List.length shuffled + 1) / 2 in
           let a = List.filteri (fun i _ -> i < keep) shuffled
           and b = List.filteri (fun i _ -> i >= keep) shuffled in
           Topology.partition (World.topology w) [ a; b ]
         | _ -> ()
       end
       else begin
         (* Chaotic three-way re-partition: scatters the last primary. *)
         let labels = List.init n (fun _ -> Rng.int rng 3) in
         let group l =
           List.filteri (fun i _ -> List.nth labels i = l) (List.init n Fun.id)
         in
         let groups =
           List.filter (fun g -> g <> []) [ group 0; group 1; group 2 ]
         in
         Topology.partition (World.topology w) groups
       end);
      for _ = 1 to 20 do
        Sim.Engine.run
          ~until:(Time.add (Sim.Engine.now sim) ~span:(Time.of_ms 100.))
          sim;
        sample ()
      done
    done;
    float_of_int !live /. float_of_int !samples
  in
  let dlv_casc = run Repro_core.Quorum.Dynamic_linear ~cascading:true in
  let sta_casc = run Repro_core.Quorum.Static_majority ~cascading:true in
  let dlv_chaos = run Repro_core.Quorum.Dynamic_linear ~cascading:false in
  let sta_chaos = run Repro_core.Quorum.Static_majority ~cascading:false in
  Format.fprintf ppf
    "@.== Ablation A5: quorum policy availability (%d replicas, %d churn rounds) ==@."
    n rounds;
  Format.fprintf ppf "%-26s %18s %18s@." "policy" "cascading splits"
    "chaotic splits";
  Format.fprintf ppf "%-26s %17.1f%% %17.1f%%@." "dynamic linear voting"
    (100. *. dlv_casc) (100. *. dlv_chaos);
  Format.fprintf ppf "%-26s %17.1f%% %17.1f%%@." "static majority"
    (100. *. sta_casc) (100. *. sta_chaos);
  Format.fprintf ppf
    "shape: under sequential (cascading) degradation — the regime the@.     paper targets — dynamic linear voting keeps a primary where a static@.     majority cannot; chaotic re-partitions that scatter the last primary@.     show its known downside (Jajodia & Mutchler's trade-off).@.";
  ((dlv_casc, sta_casc), (dlv_chaos, sta_chaos))

(* Ablation A4: replica-count scalability at a fixed offered load. *)
let ablation_scale ?(servers = [ 2; 4; 8; 14; 20 ]) ?(clients = 8)
    ?(duration = Time.of_sec 6.) ppf () =
  let points =
    List.map
      (fun n ->
        let r =
          Experiment.run ~servers:n ~duration ~clients
            (Experiment.Engine_protocol Disk.Forced)
        in
        (n, (r.Experiment.r_throughput, r.Experiment.r_mean_latency_ms)))
      servers
  in
  Format.fprintf ppf
    "@.== Ablation A4: engine scalability in replicas (%d clients) ==@." clients;
  Format.fprintf ppf "%-10s %16s %14s@." "servers" "throughput(/s)" "mean(ms)";
  List.iter
    (fun (n, (tput, lat)) -> Format.fprintf ppf "%-10d %16.1f %14.2f@." n tput lat)
    points;
  Format.fprintf ppf
    "shape: the engine pays no per-action end-to-end round, so adding@.     replicas costs only sequencer fan-out and ack aggregation — latency@.     creeps, throughput stays near-flat.@.";
  points

(* Ablation A3: the §6 read-only optimisation — a read-heavy workload
   with reads served through the ordered path vs the local session path. *)
let ablation_query_path ?(clients = 8) ?(read_fraction = 0.8)
    ?(duration = Time.of_sec 6.) ppf () =
  let run optimized =
    let nodes = List.init 5 Fun.id in
    let cluster = Replica.make_cluster ~seed:307 ~nodes () in
    let replicas =
      List.map
        (fun node ->
          let r =
            Replica.create ~disk_config:Disk.default_forced ~cluster ~node
              ~servers:nodes ()
          in
          Replica.start r;
          r)
        nodes
    in
    let sim = Replica.cluster_sim cluster in
    Sim.Engine.run ~until:(Time.of_sec 2.) sim;
    let mix =
      {
        Workload.default_mix with
        read_fraction;
        optimized_reads = optimized;
      }
    in
    let w = Workload.closed_loop ~sim ~mix ~clients ~replicas () in
    Sim.Engine.run ~until:(Time.of_sec 3.) sim;
    Workload.start_measuring w;
    Sim.Engine.run ~until:(Time.add (Time.of_sec 3.) ~span:duration) sim;
    ( Workload.throughput w ~over:duration,
      Stats.Summary.mean (Workload.latencies_ms w) )
  in
  let ordered_tput, ordered_lat = run false in
  let local_tput, local_lat = run true in
  Format.fprintf ppf
    "@.== Ablation A3: read path (5 replicas, %d clients, %.0f%% reads) ==@."
    clients (100. *. read_fraction);
  Format.fprintf ppf "%-28s %16s %14s@." "read path" "throughput(/s)" "mean(ms)";
  Format.fprintf ppf "%-28s %16.1f %14.2f@." "ordered (query actions)"
    ordered_tput ordered_lat;
  Format.fprintf ppf "%-28s %16.1f %14.2f@." "local (session reads, §6)"
    local_tput local_lat;
  Format.fprintf ppf
    "shape: read-only actions need no global order — answering them after@.     the session's writes drain removes the ordering round and the forced@.     write from every read.@.";
  ((ordered_tput, ordered_lat), (local_tput, local_lat))

let partition_timeline ?(servers = 7) ?(clients = 7) ppf () =
  let nodes = List.init servers Fun.id in
  let cluster = Replica.make_cluster ~seed:211 ~nodes () in
  let disk_config = { Disk.default_forced with sync_latency = Time.of_ms 5. } in
  let replicas =
    List.map
      (fun node ->
        let r = Replica.create ~disk_config ~cluster ~node ~servers:nodes () in
        Replica.start r;
        (node, r))
      nodes
  in
  let sim = Replica.cluster_sim cluster in
  let topology = Replica.cluster_topology cluster in
  let timeline = Stats.Timeline.create ~bucket:(Time.of_ms 500.) in
  let rec client node =
    Replica.submit (List.assoc node replicas) (Action.Update [])
      ~on_response:(fun _ ->
        Stats.Timeline.record timeline ~at:(Sim.Engine.now sim);
        client node)
  in
  Sim.Engine.run ~until:(Time.of_sec 2.) sim;
  List.iteri (fun i _ -> client (i mod servers)) (List.init clients Fun.id);
  (* t=6s: partition into majority {0..3} / minority {4..6};
     t=12s: heal. *)
  let majority = [ 0; 1; 2; 3 ] and minority = [ 4; 5; 6 ] in
  ignore
    (Sim.Engine.schedule_at sim ~at:(Time.of_sec 6.) (fun () ->
         Topology.partition topology [ majority; minority ]));
  ignore
    (Sim.Engine.schedule_at sim ~at:(Time.of_sec 12.) (fun () ->
         Topology.merge_all topology));
  Sim.Engine.run ~until:(Time.of_sec 18.) sim;
  let rates = Stats.Timeline.rates timeline in
  Format.fprintf ppf
    "@.== Ablation A2: throughput across a partition (%d replicas, %d clients) ==@."
    servers clients;
  Format.fprintf ppf "%-10s %16s   (partition at 6s, merge at 12s)@." "second"
    "actions/s";
  List.iter (fun (s, r) -> Format.fprintf ppf "%-10.1f %16.1f@." s r) rates;
  Format.fprintf ppf
    "shape: one end-to-end exchange round at each membership change; the@.\
     majority side keeps committing between the two events, and the@.\
     minority's clients resume after the merge.@.";
  rates
