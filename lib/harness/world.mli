open Repro_net
open Repro_storage
open Repro_core

(** A test/experiment world: a cluster of engine replicas plus fault
    injection and convergence helpers.  Used by scenarios, examples and
    the property-based fault-schedule tests. *)

type t

val make :
  ?net_config:Network.config ->
  ?params:Repro_gcs.Params.t ->
  ?disk_config:Disk.config ->
  ?attach_cpu:bool ->
  ?checkpoint_every:int option ->
  ?quorum_policy:Quorum.policy ->
  ?seed:int ->
  ?submit_delay:Repro_sim.Time.t ->
  ?dedup_window:int ->
  ?admission:Replica.admission ->
  n:int ->
  unit ->
  t
(** [n] replicas on nodes [0..n-1], started.  [disk_config] (and its
    fault model), [checkpoint_every], [submit_delay] (end-to-end
    submission batching), [dedup_window] (exactly-once response cache
    bound) and [admission] (overload shedding) — see {!Replica.create} —
    apply to every replica, joiners included. *)

val sim : t -> Repro_sim.Engine.t
val topology : t -> Topology.t
val cluster : t -> Replica.cluster
val replicas : t -> Replica.t list
val replica : t -> Node_id.t -> Replica.t
val nodes : t -> Node_id.t list

val add_joiner : t -> node:Node_id.t -> sponsors:Node_id.t list -> Replica.t
(** Adds the node to the topology, creates and starts a joining replica. *)

val attach_monitor : ?window:int -> t -> Repro_check.Monitor.t
(** Attaches a repcheck invariant monitor (see [Repro_check]) to every
    replica of the world, configured with the world's quorum policy.
    Call before running the scenario; at the end, [Monitor.check_now]
    for a final quiescent sweep and [Monitor.assert_ok]. *)

val run : t -> ms:float -> unit
(** Advance virtual time. *)

val run_until_quiescent : ?max_ms:float -> t -> unit
(** Run until the event queue drains or [max_ms] (default 30_000) pass. *)

val submit_update : t -> node:Node_id.t -> key:string -> int -> unit
(** Fire-and-forget strict update. *)

val submit_procedure :
  t -> node:Node_id.t -> proc:string -> Repro_db.Value.t list -> unit
(** Fire-and-forget active transaction (stored-procedure call). *)

val attach_procedure_guard : t -> Repro_check.Procguard.t
(** Attaches a runtime footprint validator (see [Repro_check.Procguard])
    to every replica of the world, future joiners included: each
    executed procedure's actual key accesses are checked against its
    declared footprint.  [Procguard.assert_ok] at the end of the
    scenario. *)

val heal_and_settle : ?ms:float -> t -> unit
(** Merge all partitions, recover all crashed replicas, run [ms]
    (default 5000) to let exchanges finish. *)
