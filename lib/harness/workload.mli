open Repro_sim
open Repro_core

(** Workload generators over a set of replicas.

    Two arrival models:
    - {b closed-loop}: each client keeps exactly one transaction in
      flight (the paper's §7 setup);
    - {b open-loop}: Poisson arrivals at a target rate, regardless of
      completions — exposes saturation behaviour the closed loop hides.

    The operation mix is configurable: a fraction of reads (served
    through the §6 local-query path when [optimized_reads], or as
    globally ordered query actions when not — the A3 ablation), strict
    writes, and commutative writes. *)

type mix = {
  read_fraction : float;  (** in [0,1] *)
  commutative_fraction : float;
      (** fraction of the *writes* that are commutative increments *)
  optimized_reads : bool;
      (** serve reads via [local_query] instead of ordering them *)
  keys : int;  (** key-space size *)
  action_size : int;
}

val default_mix : mix
(** Write-only strict updates, 200-byte actions (the paper's workload). *)

type t

val closed_loop :
  ?deadline:Time.t ->
  ?busy_retries:int ->
  ?retry_backoff:Time.t ->
  sim:Repro_sim.Engine.t ->
  mix:mix ->
  clients:int ->
  replicas:Replica.t list ->
  unit ->
  t
(** Starts [clients] closed-loop clients round-robin over the replicas.

    [deadline] marks a completion as {i good} only when its latency is
    within it (goodput accounting; default: every completion is good).
    [busy_retries] (default 3) bounds re-submissions after an admission
    [Busy], spaced by jittered exponential backoff from [retry_backoff]
    (default 10 ms); past the budget the request is dropped and counted
    as {!shed}. *)

val open_loop :
  ?deadline:Time.t ->
  ?busy_retries:int ->
  ?retry_backoff:Time.t ->
  sim:Repro_sim.Engine.t ->
  mix:mix ->
  rate_per_sec:float ->
  replicas:Replica.t list ->
  unit ->
  t
(** Starts a Poisson arrival process at [rate_per_sec], submissions
    spread round-robin over the replicas.  Runs until [stop].  Optional
    arguments as in {!closed_loop}. *)

val start_measuring : t -> unit
(** Resets counters; subsequent completions are recorded. *)

val stop : t -> unit
(** Stops issuing new operations (outstanding ones still complete). *)

val completed : t -> int

val completed_in_deadline : t -> int
(** Completions within [deadline] ([= completed] when no deadline). *)

val shed : t -> int
(** Requests dropped after exhausting the Busy-retry budget. *)

val busy_retried : t -> int
(** Re-submissions performed after receiving [Busy]. *)

val latencies_ms : t -> Stats.Summary.t
val throughput : t -> over:Time.t -> float

val goodput : t -> over:Time.t -> float
(** In-deadline completions per second over the window. *)
