open Repro_net

(* An abstract Extended Virtual Synchrony service, used in place of the
   full timing-driven endpoint stack when model checking the replication
   engine.

   Instead of heartbeats, sequencers and flush rounds, each installed
   configuration is a shared append-only log.  A send appends to the
   sender's current configuration; every member then delivers the log in
   order, each at its own pace — the model checker picks which member
   delivers next, which is exactly the interleaving freedom EVS grants.
   A reconfiguration closes every configuration whose membership no
   longer matches a connectivity component and schedules, per surviving
   member, the EVS view-change sequence: the remaining regular-delivery
   prefix, the transitional configuration, leftover deliveries without
   the safe guarantee, and the next regular configuration.

   The regular/transitional split at a close respects the safe-delivery
   rule: a message any member already delivered in the regular
   configuration was received by all members (trivially true here — the
   log is shared), so it stays [in_regular]; messages beyond every
   member's delivery point are demoted to transitional delivery, the
   pessimistic-but-legal EVS outcome that exercises the engine's yellow
   knowledge.  Messages sent while the sender's configuration is already
   closed are lost, like unordered messages at a real view change. *)

type 'p conf = {
  cf_id : Conf_id.t;
  cf_members : Node_id.Set.t;
  mutable cf_rev_log : (Node_id.t * 'p) list; (* newest first *)
  mutable cf_len : int;
  mutable cf_open : bool;
  cf_cursors : (Node_id.t, int) Hashtbl.t;
      (* delivered count per member; survives the member's crash so a
         close can still honour what the dead member saw in_regular *)
}

(* A member's delivery plan, as a queue of segments. *)
type 'p seg =
  | Sread of {
      sr_conf : 'p conf;
      mutable sr_next : int; (* 1-based seq of the next delivery *)
      sr_upto : int option; (* None: open conf, read to the live tail *)
      sr_reg : bool;
    }
  | Strans of Endpoint.view
  | Sreg of 'p conf

type 'p member = {
  mutable m_live : bool;
  mutable m_script : 'p seg list; (* front = next *)
  mutable m_view : 'p conf option; (* last Sreg delivered *)
}

type 'p t = {
  order : Node_id.t list;
  members : (Node_id.t, 'p member) Hashtbl.t;
  mutable confs : 'p conf list; (* creation order *)
  mutable counter : int;
  mutable appended : Conf_id.t list; (* since last [take_appended] *)
  mutable lost : int;
  pp_payload : 'p -> string;
}

let create ~nodes ~pp_payload () =
  let members = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace members n { m_live = true; m_script = []; m_view = None })
    nodes;
  {
    order = nodes;
    members;
    confs = [];
    counter = 0;
    appended = [];
    lost = 0;
    pp_payload;
  }

let member t n =
  match Hashtbl.find_opt t.members n with
  | Some m -> m
  | None -> invalid_arg (Format.asprintf "Model: unknown node %a" Node_id.pp n)

let is_live t n = (member t n).m_live
let lost_sends t = t.lost
let take_appended t =
  let l = List.rev t.appended in
  t.appended <- [];
  l

let cursor c n =
  match Hashtbl.find_opt c.cf_cursors n with Some k -> k | None -> 0

let log_nth c seq = List.nth c.cf_rev_log (c.cf_len - seq)

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)

let send t ~from payload =
  let m = member t from in
  match m.m_view with
  | Some c when c.cf_open ->
    c.cf_rev_log <- (from, payload) :: c.cf_rev_log;
    c.cf_len <- c.cf_len + 1;
    t.appended <- c.cf_id :: t.appended
  | Some _ | None -> t.lost <- t.lost + 1

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)

(* Drop exhausted bounded segments at the head of a script. *)
let rec normalize m =
  match m.m_script with
  | Sread { sr_upto = Some u; sr_next; _ } :: rest when sr_next > u ->
    m.m_script <- rest;
    normalize m
  | _ -> ()

let view_of c = { Endpoint.id = c.cf_id; members = c.cf_members }

type 'p next =
  | N_none
  | N_deliver of 'p conf * int * bool (* conf, seq, in_regular *)
  | N_trans of Endpoint.view
  | N_reg of 'p conf

let peek_next t n =
  let m = member t n in
  if not m.m_live then N_none
  else begin
    normalize m;
    match m.m_script with
    | [] -> N_none
    | Strans v :: _ -> N_trans v
    | Sreg c :: _ -> N_reg c
    | Sread r :: _ ->
      let limit =
        match r.sr_upto with Some u -> u | None -> r.sr_conf.cf_len
      in
      if r.sr_next <= limit then N_deliver (r.sr_conf, r.sr_next, r.sr_reg)
      else N_none (* open conf, caught up *)
  end

let has_pending t n = peek_next t n <> N_none

(* Whether the next delivery at [n] is a fresh regular-configuration
   message (as opposed to view-change fallout: leftovers and conf
   notifications) — the granularity boundary the checker uses. *)
let next_is_fresh t n =
  match peek_next t n with
  | N_deliver (c, _, _) -> c.cf_open
  | N_trans _ | N_reg _ | N_none -> false

let peek_label t n =
  match peek_next t n with
  | N_none -> None
  | N_trans v ->
    Some (Format.asprintf "trans_conf(%a)" Node_id.pp_set v.Endpoint.members)
  | N_reg c -> Some (Format.asprintf "reg_conf(%s)" (Conf_id.to_string c.cf_id))
  | N_deliver (c, seq, in_regular) ->
    let sender, payload = log_nth c seq in
    Some
      (Format.asprintf "%s#%d%s %a:%s" (Conf_id.to_string c.cf_id) seq
         (if in_regular then "" else "~")
         Node_id.pp sender (t.pp_payload payload))

let deliver t n =
  let m = member t n in
  normalize m;
  match peek_next t n with
  | N_none -> None
  | N_trans v ->
    m.m_script <- List.tl m.m_script;
    Some (Endpoint.Trans_conf v)
  | N_reg c ->
    m.m_script <- List.tl m.m_script;
    m.m_view <- Some c;
    Some (Endpoint.Reg_conf (view_of c))
  | N_deliver (c, seq, in_regular) ->
    (match m.m_script with
    | Sread r :: _ -> r.sr_next <- seq + 1
    | _ -> assert false);
    Hashtbl.replace c.cf_cursors n (max (cursor c n) seq);
    let sender, payload = log_nth c seq in
    Some
      (Endpoint.Deliver
         { Endpoint.sender; payload; conf = c.cf_id; seq; in_regular })

(* ------------------------------------------------------------------ *)
(* Faults and reconfiguration                                          *)

let crash t n =
  let m = member t n in
  m.m_live <- false;
  m.m_script <- [];
  m.m_view <- None

let recover t n = (member t n).m_live <- true

(* The open configuration a live member is reading (the tail of its
   script), if any. *)
let open_conf_of m =
  let rec last = function
    | [] -> None
    | [ Sread { sr_conf; sr_upto = None; _ } ] -> Some sr_conf
    | _ :: rest -> last rest
  in
  last m.m_script

let reconfigure t ~components =
  let live = List.filter (fun n -> (member t n).m_live) t.order in
  let live_set = Node_id.Set.of_list live in
  let targets =
    List.filter_map
      (fun comp ->
        let target = Node_id.Set.inter comp live_set in
        if Node_id.Set.is_empty target then None else Some target)
      components
  in
  let keeps c =
    c.cf_open && List.exists (Node_id.Set.equal c.cf_members) targets
  in
  let closing = List.filter (fun c -> c.cf_open && not (keeps c)) t.confs in
  (* Close: fix the regular/transitional split point of each dying
     configuration before any member's script is rewritten. *)
  let reg_cut c =
    Node_id.Set.fold (fun n acc -> max acc (cursor c n)) c.cf_members 0
  in
  let cuts = List.map (fun c -> (c, reg_cut c)) closing in
  List.iter (fun c -> c.cf_open <- false) closing;
  (* Install: one fresh configuration per target not already served. *)
  List.iter
    (fun target ->
      if
        not
          (List.exists
             (fun c -> c.cf_open && Node_id.Set.equal c.cf_members target)
             t.confs)
      then begin
        t.counter <- t.counter + 1;
        let c' =
          {
            cf_id =
              { Conf_id.coord = Node_id.Set.min_elt target; counter = t.counter };
            cf_members = target;
            cf_rev_log = [];
            cf_len = 0;
            cf_open = true;
            cf_cursors = Hashtbl.create 8;
          }
        in
        t.confs <- t.confs @ [ c' ];
        Node_id.Set.iter
          (fun n ->
            let m = member t n in
            let tail =
              match open_conf_of m with
              | Some c when not c.cf_open -> (
                (* c just closed under this member: regular prefix up to
                   the cut, transitional notice, demoted leftovers. *)
                let cut = List.assq c cuts in
                let next = cursor c n + 1 in
                (* drop the now-stale unbounded read *)
                m.m_script <-
                  List.filter
                    (function
                      | Sread { sr_conf; sr_upto = None; _ } -> sr_conf != c
                      | _ -> true)
                    m.m_script;
                let trans_view =
                  {
                    Endpoint.id = c.cf_id;
                    members = Node_id.Set.inter c.cf_members target;
                  }
                in
                (if next <= cut then
                   [
                     Sread
                       { sr_conf = c; sr_next = next; sr_upto = Some cut; sr_reg = true };
                   ]
                 else [])
                @ [ Strans trans_view ]
                @
                if cut < c.cf_len then
                  [
                    Sread
                      {
                        sr_conf = c;
                        sr_next = cut + 1;
                        sr_upto = Some c.cf_len;
                        sr_reg = false;
                      };
                  ]
                else [])
              | Some _ | None -> [] (* fresh or recovered member: no history *)
            in
            m.m_script <-
              m.m_script @ tail
              @ [
                  Sreg c';
                  Sread { sr_conf = c'; sr_next = 1; sr_upto = None; sr_reg = true };
                ])
          target
      end)
    targets

(* ------------------------------------------------------------------ *)
(* Fingerprinting                                                      *)

let fingerprint t =
  let b = Buffer.create 256 in
  List.iter
    (fun c ->
      Buffer.add_string b
        (Format.asprintf "[%s %a %s len=%d log="
           (Conf_id.to_string c.cf_id)
           Node_id.pp_set c.cf_members
           (if c.cf_open then "open" else "closed")
           c.cf_len);
      List.iter
        (fun (sender, p) ->
          Buffer.add_string b
            (Format.asprintf "%a:%s;" Node_id.pp sender (t.pp_payload p)))
        (List.rev c.cf_rev_log);
      Buffer.add_string b " cur=";
      List.iter
        (fun n ->
          if Node_id.Set.mem n c.cf_members then
            Buffer.add_string b (Format.asprintf "%a:%d," Node_id.pp n (cursor c n)))
        t.order;
      Buffer.add_string b "]")
    t.confs;
  List.iter
    (fun n ->
      let m = member t n in
      Buffer.add_string b
        (Format.asprintf "{%a %s view=%s script=" Node_id.pp n
           (if m.m_live then "live" else "down")
           (match m.m_view with
           | Some c -> Conf_id.to_string c.cf_id
           | None -> "-"));
      List.iter
        (fun seg ->
          Buffer.add_string b
            (match seg with
            | Sread r ->
              Format.asprintf "r(%s,%d,%s,%b)"
                (Conf_id.to_string r.sr_conf.cf_id)
                r.sr_next
                (match r.sr_upto with Some u -> string_of_int u | None -> "*")
                r.sr_reg
            | Strans v ->
              Format.asprintf "t(%a)" Node_id.pp_set v.Endpoint.members
            | Sreg c -> Format.asprintf "g(%s)" (Conf_id.to_string c.cf_id)))
        m.m_script;
      Buffer.add_string b "}")
    t.order;
  Buffer.contents b
