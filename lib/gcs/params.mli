open Repro_sim

(** Protocol timing parameters of the group communication stack. *)

type t = {
  heartbeat_interval : Time.t;
      (** a member multicasts a heartbeat if it has been silent this long *)
  fd_timeout : Time.t;
      (** a member silent this long is suspected, triggering membership *)
  fd_check_interval : Time.t;  (** how often suspicion is evaluated *)
  probe_interval : Time.t;
      (** the coordinator broadcasts a component-wide probe this often to
          discover merge opportunities *)
  gather_window : Time.t;
      (** membership set considered stable after this long without growth *)
  propose_timeout : Time.t;
      (** a non-coordinator gatherer re-gathers if no proposal arrives *)
  flush_timeout : Time.t;
      (** the flush phase is abandoned and gathering restarts *)
  order_delay : Time.t;
      (** batching delay before the coordinator multicasts order
          assignments *)
  ack_delay : Time.t;
      (** batching delay before a member multicasts a cumulative ack *)
  header_bytes : int;  (** per-message wire overhead *)
}

val default : t
(** LAN-scale defaults: partitions detected within ~100 ms, merges within
    ~250 ms, and an ordering/ack cadence (50/150 µs) sized so the safe-
    delivery pipeline, not the batching timers, bounds hot-path latency
    on a gigabit network. *)

val wan : t
(** Wide-area defaults: every window sized for tens-of-milliseconds
    propagation delays and background loss. *)

val fast : t
(** Aggressive timeouts for compact unit tests. *)
