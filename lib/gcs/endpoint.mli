open Repro_net

(** An Extended Virtual Synchrony group-communication endpoint.

    One endpoint runs at each node.  Within an installed (regular)
    configuration the minimal member acts as sequencer: senders multicast
    payloads, the sequencer multicasts batched order assignments, and
    members multicast batched cumulative acknowledgements.  A message is
    *safe* once every view member's acknowledgement covers its sequence
    number.

    Delivery guarantees (per EVS, Moser et al. 1994):
    - {b agreed}: messages are delivered in a single total order per
      configuration, gap-free at each member;
    - {b safe}: a safe-service message delivered in a regular
      configuration ([in_regular = true]) has been received by every
      member of that configuration — each of them delivers it (in the
      regular or the following transitional configuration) unless it
      crashes;
    - a view change is announced by a {e transitional configuration}
      (the members of the old regular configuration continuing directly
      into the new one), followed by leftover message delivery, followed
      by the new {e regular configuration}.  Members transitioning
      together deliver the same set of messages (virtual synchrony).

    Membership runs a gather / propose / flush / install protocol:
    suspicion (heartbeat timeout) or discovery (component probe) starts
    an epidemic gather of reachable endpoints; the minimal gathered node
    proposes; members exchange flush inventories and retransmit one
    another's missing ordered messages; when everyone holds the common
    prefix the coordinator installs.  Any timeout or interfering event
    restarts the gather, so cascading network events are tolerated. *)

type service =
  | Agreed  (** total order only *)
  | Safe  (** total order + all-member receipt before regular delivery *)

type view = { id : Conf_id.t; members : Node_id.Set.t }

val pp_view : Format.formatter -> view -> unit

type 'p delivery = {
  sender : Node_id.t;
  payload : 'p;
  conf : Conf_id.t;  (** regular configuration the message was ordered in *)
  seq : int;  (** global sequence number within [conf] *)
  in_regular : bool;
      (** [true]: delivered in the regular configuration with all
          guarantees met; [false]: delivered in a transitional
          configuration *)
}

type 'p event =
  | Deliver of 'p delivery
  | Trans_conf of view
      (** reduced membership: old-configuration members continuing
          directly into the next regular configuration *)
  | Reg_conf of view

type 'p t

type 'p wire
(** The GCS wire protocol message type (opaque); the caller provides the
    ['p wire Network.t] the endpoints of one group share. *)

val create :
  ?on_burst_start:(unit -> unit) ->
  ?on_burst_end:(unit -> unit) ->
  network:'p wire Network.t ->
  params:Params.t ->
  node:Node_id.t ->
  on_event:('p event -> unit) ->
  unit ->
  'p t
(** Creates and registers the endpoint; it stays passive until {!join}.

    [on_burst_start]/[on_burst_end] (default: no-ops) bracket every run
    of consecutive [on_event] calls released together — the messages a
    single ack or order batch makes deliverable, or a view change's
    transitional/leftover/regular sequence — so the layer above can
    group-commit its per-delivery work once per burst. *)

val node : 'p t -> Node_id.t
val params : 'p t -> Params.t

val join : 'p t -> unit
(** Starts participating: gathers whoever is reachable and installs a
    configuration (a singleton one when alone). *)

val send : 'p t -> service:service -> size:int -> 'p -> unit
(** Multicasts a payload of [size] bytes to the current configuration.
    While no configuration is installed the message is queued and sent
    upon the next installation.  Messages still unordered when a view
    change hits may be lost (never delivered anywhere); higher layers
    retransmit from their own stable queues. *)

val current_view : 'p t -> view option
(** The installed regular configuration, if any. *)

val is_installed : 'p t -> bool

val crash : 'p t -> unit
(** Volatile state is lost; the endpoint goes silent. *)

val recover : 'p t -> unit
(** Rejoins with the same identity after a crash. *)

val installed_count : 'p t -> int
(** Number of regular configurations installed (statistics). *)

val store_stats : 'p t -> (int * int) option
(** [(messages retained, highest evicted sequence)] of the current
    configuration's message store — observability for memory-bound
    checks.  [None] when no configuration is installed. *)
