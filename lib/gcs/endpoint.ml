open Repro_sim
open Repro_net

type service = Agreed | Safe

type view = { id : Conf_id.t; members : Node_id.Set.t }

let pp_view ppf v =
  Format.fprintf ppf "%a%a" Conf_id.pp v.id Node_id.pp_set v.members

type 'p delivery = {
  sender : Node_id.t;
  payload : 'p;
  conf : Conf_id.t;
  seq : int;
  in_regular : bool;
}

type 'p event = Deliver of 'p delivery | Trans_conf of view | Reg_conf of view

type 'p data = {
  d_conf : Conf_id.t;
  d_sender : Node_id.t;
  d_lseq : int;
  d_service : service;
  d_payload : 'p;
  d_size : int;
}

type flush_record = {
  fr_old_conf : Conf_id.t option;
  fr_evicted : int; (* all seqs <= this were evicted (provably at everyone) *)
  fr_inventory : int list; (* seqs held above fr_evicted, ascending *)
  fr_delivered : int; (* app-delivered prefix *)
}

type 'p wire =
  | Data of 'p data
  | Order of { o_conf : Conf_id.t; o_entries : (int * Node_id.t * int) list }
    (* (seq, sender, lseq), ascending *)
  | Ack of { a_conf : Conf_id.t; a_upto : int }
  | Heartbeat of { h_conf : Conf_id.t }
  | Probe of { p_conf : Conf_id.t }
  | MGather of { g_round : int; g_set : Node_id.Set.t }
  | MPropose of { m_vid : Conf_id.t; m_members : Node_id.Set.t }
  | MFlush of { f_vid : Conf_id.t; f_from : Node_id.t; f_record : flush_record }
  | MRetrans of { r_vid : Conf_id.t; r_entries : (int * 'p data) list }
  | MReady of { y_vid : Conf_id.t; y_from : Node_id.t }
  | MInstall of { i_vid : Conf_id.t; i_members : Node_id.Set.t }
  | Nack of { k_conf : Conf_id.t; k_from : int; k_to : int }
    (* please retransmit ordered messages [k_from..k_to] *)
  | Repair of { q_conf : Conf_id.t; q_entries : (int * 'p data) list }

(* Data-plane state of one installed regular configuration. *)
type 'p conf_state = {
  cview : view;
  coord : Node_id.t;
  mutable next_lseq : int;
  own_pending : (int, 'p data * Time.t) Hashtbl.t;
    (* own messages not yet ordered: resent if the coordinator stays
       silent about them (loss recovery) *)
  data_buf : (Node_id.t * int, 'p data) Hashtbl.t; (* received, not yet ordered *)
  pending_assignment : (Node_id.t * int, int) Hashtbl.t; (* order before payload *)
  store : (int, 'p data) Hashtbl.t; (* seq -> ordered message *)
  mutable evicted_below : int;
  mutable have_upto : int; (* contiguous prefix present in [store] *)
  mutable delivered_upto : int; (* contiguous prefix delivered to the app *)
  mutable safe_upto : int; (* prefix acked by every member *)
  mutable last_acked : int; (* have_upto as of the last ack we multicast *)
  acks : (Node_id.t, int) Hashtbl.t;
  mutable max_safe_seq : int; (* highest stored safe-service sequence *)
  (* sequencer-only: *)
  mutable next_seq : int;
  mutable pending_order : (Node_id.t * int) list; (* reversed *)
  mutable order_armed : bool;
  mutable ack_armed : bool;
}

type gather_state = {
  mutable g_members : Node_id.Set.t;
  mutable g_token : int; (* bumped on growth; guards stability timers *)
  mutable g_waiting_proposal : bool;
}

type flush_state = {
  fl_vid : Conf_id.t;
  fl_members : Node_id.Set.t;
  fl_coord : Node_id.t;
  fl_records : (Node_id.t, flush_record) Hashtbl.t;
  mutable fl_retrans_sent : bool;
  mutable fl_ready_sent : bool;
  mutable fl_group : Node_id.Set.t; (* members sharing my old conf *)
  mutable fl_union_max : int; (* deliverable prefix of my old conf *)
  fl_ready : (Node_id.t, unit) Hashtbl.t; (* coordinator: MReady received *)
}

type status =
  | Down
  | Idle (* created or recovered, not yet joined *)
  | Gathering of gather_state
  | Flushing of flush_state
  | Installed

type 'p t = {
  net : 'p wire Network.t;
  engine : Engine.t;
  prm : Params.t;
  node : Node_id.t;
  on_event : 'p event -> unit;
  on_burst_start : unit -> unit;
  on_burst_end : unit -> unit;
    (* bracket every run of consecutive [on_event] calls (a delivery
       burst): the layer above group-commits its work per burst *)
  mutable status : status;
  mutable conf : 'p conf_state option;
    (* last installed configuration; retained during membership changes
       for flush inventory, retransmission and leftover delivery *)
  mutable outbox : (service * int * 'p) list; (* reversed; queued sends *)
  mutable early_flushes : (Conf_id.t * Node_id.t * flush_record) list;
    (* MFlush can overtake its MPropose under latency jitter *)
  mutable counter : int; (* conf-id counter source *)
  mutable my_round : int; (* gather round stamp; stale rounds never
                             interrupt a flush or an installed view *)
  gather_rounds : (Node_id.t, int) Hashtbl.t; (* highest round seen *)
  mutable era : int; (* bumped on every status change; guards timers *)
  last_heard : (Node_id.t, Time.t) Hashtbl.t;
  mutable last_sent : Time.t;
  mutable last_probe : Time.t;
  mutable installed_count : int;
  mutable periodic_started : bool;
}

let node t = t.node
let params t = t.prm
let installed_count t = t.installed_count

let current_view t =
  match (t.status, t.conf) with
  | Installed, Some cs -> Some cs.cview
  | _ -> None

let is_installed t = match t.status with Installed -> true | _ -> false

let store_stats t =
  match t.conf with
  | Some cs -> Some (Hashtbl.length cs.store, cs.evicted_below)
  | None -> None

let next_counter t =
  let c = max (t.counter + 1) (Time.to_us (Engine.now t.engine)) in
  t.counter <- c;
  c

let log_src = Logs.Src.create "repro.gcs" ~doc:"group communication"

module Log = (val Logs.src_log log_src)

let dbg t detail =
  Log.debug (fun m -> m "[%a n%d] %s" Time.pp (Engine.now t.engine) t.node detail)

let set_status t status =
  t.era <- t.era + 1;
  t.status <- status

(* ------------------------------------------------------------------ *)
(* Wire sizes (bytes): a rough but monotone model used for bandwidth.  *)

let size_of_wire prm = function
  | Data d -> prm.Params.header_bytes + d.d_size
  | Order { o_entries; _ } -> 24 + (12 * List.length o_entries)
  | Ack _ -> 24
  | Heartbeat _ -> 16
  | Probe _ -> 24
  | MGather { g_set; _ } -> 32 + (8 * Node_id.Set.cardinal g_set)
  | MPropose { m_members; _ } -> 32 + (8 * Node_id.Set.cardinal m_members)
  | MFlush { f_record; _ } -> 48 + (8 * List.length f_record.fr_inventory)
  | MRetrans { r_entries; _ } ->
    List.fold_left
      (fun acc (_, d) -> acc + prm.Params.header_bytes + d.d_size + 8)
      24 r_entries
  | MReady _ -> 24
  | MInstall { i_members; _ } -> 32 + (8 * Node_id.Set.cardinal i_members)
  | Nack _ -> 32
  | Repair { q_entries; _ } ->
    List.fold_left
      (fun acc (_, d) -> acc + prm.Params.header_bytes + d.d_size + 8)
      24 q_entries
  (* Folds over the one message's own entry list — batch-sized. *)
  [@@analysis.cost "O(batch); alloc O(1)"]

let multicast_set t ~dsts msg =
  let dsts =
    Node_id.Set.elements dsts
    |> List.filter (fun n -> not (Node_id.equal n t.node))
  in
  t.last_sent <- Engine.now t.engine;
  Network.multicast t.net ~src:t.node ~dsts ~size:(size_of_wire t.prm msg) msg

let unicast t ~dst msg =
  t.last_sent <- Engine.now t.engine;
  Network.unicast t.net ~src:t.node ~dst ~size:(size_of_wire t.prm msg) msg

let broadcast_component t msg =
  t.last_sent <- Engine.now t.engine;
  Network.broadcast_component t.net ~src:t.node ~size:(size_of_wire t.prm msg) msg

(* ------------------------------------------------------------------ *)
(* Data plane within an installed configuration.                       *)

let new_conf_state view =
  {
    cview = view;
    coord = Node_id.Set.min_elt view.members;
    next_lseq = 0;
    own_pending = Hashtbl.create 16;
    data_buf = Hashtbl.create 64;
    pending_assignment = Hashtbl.create 64;
    store = Hashtbl.create 256;
    evicted_below = 0;
    have_upto = 0;
    delivered_upto = 0;
    safe_upto = 0;
    last_acked = 0;
    acks = Hashtbl.create 8;
    max_safe_seq = 0;
    next_seq = 0;
    pending_order = [];
    order_armed = false;
    ack_armed = false;
  }

let i_am_coord t cs = Node_id.equal t.node cs.coord

let recompute_safe cs =
  let min_ack =
    Node_id.Set.fold
      (fun m acc ->
        let a = match Hashtbl.find_opt cs.acks m with Some a -> a | None -> 0 in
        min acc a)
      cs.cview.members max_int
  in
  if min_ack > cs.safe_upto then cs.safe_upto <- min_ack

(* Deliver every ready message: next in sequence, present, and either
   agreed service or within the safe prefix.  The whole run is one
   delivery burst: an ack or order batch typically releases several
   messages at once, and the application applies them as one group. *)
let try_deliver t cs =
  let rec loop () =
    let next = cs.delivered_upto + 1 in
    match Hashtbl.find_opt cs.store next with
    | None -> ()
    | Some d ->
      let deliverable =
        match d.d_service with Agreed -> true | Safe -> next <= cs.safe_upto
      in
      if deliverable then begin
        cs.delivered_upto <- next;
        t.on_event
          (Deliver
             {
               sender = d.d_sender;
               payload = d.d_payload;
               conf = d.d_conf;
               seq = next;
               in_regular = true;
             });
        loop ()
      end
  in
  t.on_burst_start ();
  loop ();
  t.on_burst_end ()
  (* The local [loop] delivers the contiguous run above [delivered_upto]
     — each iteration consumes one stored message, so the sweep is
     bounded by the store (the in-flight queue). *)
  [@@analysis.cost "O(queue); alloc O(queue)"]

(* Messages below the safe line are held by every member (safe = everyone
   acked contiguous receipt), so they can never be needed for
   retransmission: evict them in chunks to bound memory. *)
let evict t cs =
  ignore t;
  let limit = min cs.safe_upto cs.delivered_upto in
  if limit - cs.evicted_below > 4096 then begin
    for s = cs.evicted_below + 1 to limit do
      Hashtbl.remove cs.store s
    done;
    cs.evicted_below <- limit
  end
  (* The for-loop bound is dynamic but every evicted sequence number was
     a stored message: amortized one removal per message ever stored. *)
  [@@analysis.cost "O(queue); alloc O(1)"]

let rec note_have_advanced t cs =
  let rec advance () =
    if Hashtbl.mem cs.store (cs.have_upto + 1) then begin
      cs.have_upto <- cs.have_upto + 1;
      advance ()
    end
  in
  advance ();
  (* Our own cumulative ack is visible locally at once. *)
  Hashtbl.replace cs.acks t.node cs.have_upto;
  recompute_safe cs;
  try_deliver t cs;
  evict t cs;
  if not cs.ack_armed then begin
    cs.ack_armed <- true;
    (* Acknowledge promptly when our cumulative ack carries NEWS —
       receipt progress peers have not been told about while
       safe-service messages wait for stability.  When we are merely
       waiting on other members' acks, re-announcing the same
       [have_upto] advances nobody: fall back to a slow housekeeping
       cadence (loss recovery and eviction).  A fast timer here is a
       multicast busy-wait — under a CPU model it congests every
       receive queue and the stability it polls for recedes, a
       self-sustaining collapse no admission control above can stop. *)
    let delay =
      if cs.max_safe_seq > cs.safe_upto && cs.have_upto > cs.last_acked then
        t.prm.ack_delay
      else Time.scale t.prm.ack_delay 25.
    in
    let era = t.era in
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           if era = t.era then begin
             cs.ack_armed <- false;
             cs.last_acked <- cs.have_upto;
             multicast_set t ~dsts:cs.cview.members
               (Ack { a_conf = cs.cview.id; a_upto = cs.have_upto });
             (* Re-arm if safety progress is still pending. *)
             if cs.max_safe_seq > cs.safe_upto then note_have_advanced t cs
           end))
  end
  (* Self-recursive only through the re-armed ack timer (a later event,
     not this activation); the inline [advance] walks the contiguous
     receipt run, one store lookup per received message. *)
  [@@analysis.cost "O(members+queue); alloc O(members+queue)"]

let store_message t cs ~seq (d : 'p data) =
  Hashtbl.replace cs.store seq d;
  (* An order assignment for one of our own messages confirms the
     sequencer received it: stop the resend clock. *)
  if Node_id.equal d.d_sender t.node then Hashtbl.remove cs.own_pending d.d_lseq;
  (match d.d_service with
  | Safe -> if seq > cs.max_safe_seq then cs.max_safe_seq <- seq
  | Agreed -> ());
  Hashtbl.remove cs.data_buf (d.d_sender, d.d_lseq);
  Hashtbl.remove cs.pending_assignment (d.d_sender, d.d_lseq)

let flush_order_batch t cs =
  let entries = List.rev cs.pending_order in
  cs.pending_order <- [];
  if entries <> [] then begin
    let numbered =
      List.map
        (fun (sender, lseq) ->
          cs.next_seq <- cs.next_seq + 1;
          (cs.next_seq, sender, lseq))
        entries
    in
    List.iter
      (fun (seq, sender, lseq) ->
        match Hashtbl.find_opt cs.data_buf (sender, lseq) with
        | Some d -> store_message t cs ~seq d
        | None -> Hashtbl.replace cs.pending_assignment (sender, lseq) seq)
      numbered;
    multicast_set t ~dsts:cs.cview.members
      (Order { o_conf = cs.cview.id; o_entries = numbered });
    note_have_advanced t cs
  end

let coord_enqueue_order t cs ~sender ~lseq =
  cs.pending_order <- (sender, lseq) :: cs.pending_order;
  if not cs.order_armed then begin
    cs.order_armed <- true;
    let era = t.era in
    ignore
      (Engine.schedule t.engine ~delay:t.prm.order_delay (fun () ->
           if era = t.era then begin
             cs.order_armed <- false;
             flush_order_batch t cs
           end))
  end

(* A data message for the current (or retained old) configuration. When
   installed, the coordinator assigns it a place in the total order; any
   member may instead be completing an assignment it already knows. *)
let handle_data t cs ~installed (d : 'p data) =
  match Hashtbl.find_opt cs.pending_assignment (d.d_sender, d.d_lseq) with
  | Some seq ->
    store_message t cs ~seq d;
    if installed then note_have_advanced t cs
  | None ->
    if not (Hashtbl.mem cs.data_buf (d.d_sender, d.d_lseq)) then begin
      Hashtbl.replace cs.data_buf (d.d_sender, d.d_lseq) d;
      if installed && i_am_coord t cs then
        coord_enqueue_order t cs ~sender:d.d_sender ~lseq:d.d_lseq
    end
  [@@analysis.hotpath "O(batch+members+queue)"]

let handle_order t cs ~installed o_entries =
  List.iter
    (fun (seq, sender, lseq) ->
      if seq > cs.next_seq then cs.next_seq <- seq;
      if not (Hashtbl.mem cs.store seq) then
        match Hashtbl.find_opt cs.data_buf (sender, lseq) with
        | Some d -> store_message t cs ~seq d
        | None -> Hashtbl.replace cs.pending_assignment (sender, lseq) seq)
    o_entries;
  if installed then note_have_advanced t cs
  [@@analysis.hotpath "O(batch+members+queue)"]

let handle_ack t cs ~from ~upto =
  let prev = match Hashtbl.find_opt cs.acks from with Some a -> a | None -> 0 in
  if upto > prev then begin
    Hashtbl.replace cs.acks from upto;
    recompute_safe cs;
    try_deliver t cs;
    evict t cs
  end
  [@@analysis.hotpath "O(members+queue)"]

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)

let send_in_conf t cs ~service ~size payload =
  cs.next_lseq <- cs.next_lseq + 1;
  let d =
    {
      d_conf = cs.cview.id;
      d_sender = t.node;
      d_lseq = cs.next_lseq;
      d_service = service;
      d_payload = payload;
      d_size = size;
    }
  in
  Hashtbl.replace cs.own_pending d.d_lseq (d, Engine.now t.engine);
  (* Local handling first (self-receipt), then the wire. *)
  handle_data t cs ~installed:true d;
  multicast_set t ~dsts:cs.cview.members (Data d)

let send t ~service ~size payload =
  match (t.status, t.conf) with
  | Installed, Some cs -> send_in_conf t cs ~service ~size payload
  | Down, _ -> ()
  | _ -> t.outbox <- (service, size, payload) :: t.outbox

let drain_outbox t cs =
  let queued = List.rev t.outbox in
  t.outbox <- [];
  List.iter (fun (service, size, payload) -> send_in_conf t cs ~service ~size payload) queued

(* ------------------------------------------------------------------ *)
(* Membership: gather / propose / flush / install.                     *)

let rec start_gather t =
  match t.status with
  | Down | Gathering _ -> ()
  | Idle | Installed | Flushing _ ->
    let gs = { g_members = Node_id.Set.singleton t.node; g_token = 0; g_waiting_proposal = false } in
    dbg t "start_gather";
    set_status t (Gathering gs);
    t.early_flushes <- [];
    t.my_round <- t.my_round + 1;
    broadcast_component t (MGather { g_round = t.my_round; g_set = gs.g_members });
    arm_stability t gs

and arm_stability t gs =
  let era = t.era and token = gs.g_token in
  ignore
    (Engine.schedule t.engine ~delay:t.prm.gather_window (fun () ->
         if era = t.era && token = gs.g_token then gather_stable t gs))

and gather_stable t gs =
  match t.status with
  | Gathering gs' when gs' == gs ->
    if Node_id.equal (Node_id.Set.min_elt gs.g_members) t.node then begin
      (* I coordinate the new configuration. *)
      dbg t
        (Printf.sprintf "propose with %d members"
           (Node_id.Set.cardinal gs.g_members));
      let vid = Conf_id.{ coord = t.node; counter = next_counter t } in
      multicast_set t ~dsts:gs.g_members
        (MPropose { m_vid = vid; m_members = gs.g_members });
      enter_flushing t ~vid ~members:gs.g_members
    end
    else begin
      gs.g_waiting_proposal <- true;
      let era = t.era in
      ignore
        (Engine.schedule t.engine ~delay:t.prm.propose_timeout (fun () ->
             if era = t.era then
               match t.status with
               | Gathering gs' when gs' == gs && gs.g_waiting_proposal ->
                 restart_gather t
               | _ -> ()))
    end
  | _ -> ()

and restart_gather t =
  (* Force a fresh epidemic round (status must leave Gathering first). *)
  (match t.status with Gathering _ -> set_status t Idle | _ -> ());
  start_gather t

and merge_gather t ?(fresh = true) set' =
  match t.status with
  | Gathering gs ->
    let merged = Node_id.Set.union gs.g_members set' in
    if not (Node_id.Set.equal merged gs.g_members) then begin
      gs.g_members <- merged;
      gs.g_token <- gs.g_token + 1;
      gs.g_waiting_proposal <- false;
      broadcast_component t (MGather { g_round = t.my_round; g_set = merged });
      arm_stability t gs
    end
    else if fresh && not (Node_id.Set.equal merged set') then
      (* A newly started gatherer is missing members we know about:
         inform it (stale duplicates stay silent to avoid storms). *)
      broadcast_component t (MGather { g_round = t.my_round; g_set = merged })
  | _ ->
    start_gather t;
    merge_gather t ~fresh set'

and my_flush_record t =
  match t.conf with
  | None ->
    { fr_old_conf = None; fr_evicted = 0; fr_inventory = []; fr_delivered = 0 }
  | Some cs ->
    let inv =
      Hashtbl.fold (fun seq _ acc -> seq :: acc) cs.store []
      |> List.sort Int.compare
    in
    {
      fr_old_conf = Some cs.cview.id;
      fr_evicted = cs.evicted_below;
      fr_inventory = inv;
      fr_delivered = cs.delivered_upto;
    }

and enter_flushing t ~vid ~members =
  let fs =
    {
      fl_vid = vid;
      fl_members = members;
      fl_coord = vid.Conf_id.coord;
      fl_records = Hashtbl.create 8;
      fl_retrans_sent = false;
      fl_ready_sent = false;
      fl_group = Node_id.Set.empty;
      fl_union_max = 0;
      fl_ready = Hashtbl.create 8;
    }
  in
  dbg t
    (Printf.sprintf "enter_flushing vid=%s members=%d" (Conf_id.to_string vid)
       (Node_id.Set.cardinal members));
  set_status t (Flushing fs);
  let record = my_flush_record t in
  Hashtbl.replace fs.fl_records t.node record;
  multicast_set t ~dsts:members
    (MFlush { f_vid = vid; f_from = t.node; f_record = record });
  (* Replay flush records that overtook the proposal. *)
  let stashed = t.early_flushes in
  t.early_flushes <- [];
  List.iter
    (fun (v, from, r) ->
      if Conf_id.equal v vid then Hashtbl.replace fs.fl_records from r)
    stashed;
  (* Abandon on timeout: cascaded failures restart the gather. *)
  let era = t.era in
  ignore
    (Engine.schedule t.engine ~delay:t.prm.flush_timeout (fun () ->
         if era = t.era then
           match t.status with
           | Flushing fs' when fs' == fs ->
             dbg t
               (Printf.sprintf "flush timeout vid=%s (records %d/%d)"
                  (Conf_id.to_string fs.fl_vid)
                  (Hashtbl.length fs.fl_records)
                  (Node_id.Set.cardinal fs.fl_members));
             restart_gather t
           | _ -> ()));
  check_flush t fs

and flush_records_complete fs =
  Node_id.Set.for_all (fun m -> Hashtbl.mem fs.fl_records m) fs.fl_members

(* Once all flush records are in: compute my old-configuration group, the
   deliverable union prefix, retransmit what peers miss and I am the
   lowest-id holder of, and report readiness once I hold everything I
   must deliver. *)
and check_flush t fs =
  if flush_records_complete fs then begin
    let my_old =
      match t.conf with Some cs -> Some cs.cview.id | None -> None
    in
    (match my_old with
    | None ->
      fs.fl_group <- Node_id.Set.singleton t.node;
      fs.fl_union_max <- 0
    | Some old_id ->
      let group =
        Node_id.Set.filter
          (fun m ->
            match Hashtbl.find_opt fs.fl_records m with
            | Some { fr_old_conf = Some c; _ } -> Conf_id.equal c old_id
            | _ -> false)
          fs.fl_members
      in
      fs.fl_group <- group;
      let records =
        Node_id.Set.elements group
        |> List.filter_map (fun m -> Hashtbl.find_opt fs.fl_records m)
      in
      let base =
        List.fold_left (fun acc r -> max acc r.fr_evicted) 0 records
      in
      let union = Hashtbl.create 256 in
      List.iter
        (fun r -> List.iter (fun s -> Hashtbl.replace union s ()) r.fr_inventory)
        records;
      let rec contiguous m =
        if Hashtbl.mem union (m + 1) || m + 1 <= base then contiguous (m + 1)
        else m
      in
      (* Guard: avoid counting below base. *)
      let max_deliverable = contiguous base in
      fs.fl_union_max <- max_deliverable;
      if not fs.fl_retrans_sent then begin
        fs.fl_retrans_sent <- true;
        match t.conf with
        | None -> ()
        | Some cs ->
          let needed_by_someone s =
            Node_id.Set.exists
              (fun m ->
                if Node_id.equal m t.node then false
                else
                  match Hashtbl.find_opt fs.fl_records m with
                  | Some r ->
                    s > r.fr_delivered && s > r.fr_evicted
                    && not (List.mem s r.fr_inventory)
                  | None -> false)
              group
          in
          let i_am_min_holder s =
            let holders =
              Node_id.Set.filter
                (fun m ->
                  match Hashtbl.find_opt fs.fl_records m with
                  | Some r -> List.mem s r.fr_inventory
                  | None -> false)
                group
            in
            (not (Node_id.Set.is_empty holders))
            && Node_id.equal (Node_id.Set.min_elt holders) t.node
          in
          let duties =
            Hashtbl.fold
              (fun s d acc ->
                if
                  s <= max_deliverable && needed_by_someone s
                  && i_am_min_holder s
                then (s, d) :: acc
                else acc)
              cs.store []
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          in
          if duties <> [] then
            multicast_set t ~dsts:group
              (MRetrans { r_vid = fs.fl_vid; r_entries = duties })
      end);
    (* Readiness: I hold every message I still have to deliver. *)
    let ready =
      match t.conf with
      | None -> true
      | Some cs ->
        let rec holds s =
          s > fs.fl_union_max
          || (Hashtbl.mem cs.store s && holds (s + 1))
        in
        holds (cs.delivered_upto + 1)
    in
    if ready && not fs.fl_ready_sent then begin
      fs.fl_ready_sent <- true;
      if Node_id.equal t.node fs.fl_coord then begin
        Hashtbl.replace fs.fl_ready t.node ();
        coord_check_install t fs
      end
      else unicast t ~dst:fs.fl_coord (MReady { y_vid = fs.fl_vid; y_from = t.node })
    end
  end

and coord_check_install t fs =
  let all_ready =
    Node_id.Set.for_all (fun m -> Hashtbl.mem fs.fl_ready m) fs.fl_members
  in
  if all_ready then begin
    multicast_set t ~dsts:fs.fl_members
      (MInstall { i_vid = fs.fl_vid; i_members = fs.fl_members });
    install t fs
  end

(* Install the new regular configuration: transitional configuration
   first (old-configuration members continuing together), then the
   leftover messages that could not be safe-delivered, then the new
   regular configuration. *)
and install t fs =
  t.on_burst_start ();
  (match t.conf with
  | Some cs ->
    let trans_members = Node_id.Set.inter fs.fl_group fs.fl_members in
    t.on_event (Trans_conf { id = cs.cview.id; members = trans_members });
    let rec deliver_leftovers s =
      if s <= fs.fl_union_max then
        match Hashtbl.find_opt cs.store s with
        | Some d ->
          cs.delivered_upto <- s;
          t.on_event
            (Deliver
               {
                 sender = d.d_sender;
                 payload = d.d_payload;
                 conf = d.d_conf;
                 seq = s;
                 in_regular = false;
               });
          deliver_leftovers (s + 1)
        | None -> () (* hole: nothing beyond is deliverable *)
    in
    deliver_leftovers (cs.delivered_upto + 1)
  | None -> ());
  dbg t
    (Printf.sprintf "install %s (%d members)" (Conf_id.to_string fs.fl_vid)
       (Node_id.Set.cardinal fs.fl_members));
  let new_view = { id = fs.fl_vid; members = fs.fl_members } in
  let cs = new_conf_state new_view in
  t.conf <- Some cs;
  set_status t Installed;
  t.installed_count <- t.installed_count + 1;
  let now = Engine.now t.engine in
  Node_id.Set.iter (fun m -> Hashtbl.replace t.last_heard m now) new_view.members;
  t.on_event (Reg_conf new_view);
  t.on_burst_end ();
  drain_outbox t cs

(* ------------------------------------------------------------------ *)
(* Wire dispatch                                                       *)

let conf_matches cs conf_id = Conf_id.equal cs.cview.id conf_id

let handle_wire t ~src msg =
  match t.status with
  | Down -> ()
  | status -> (
    Hashtbl.replace t.last_heard src (Engine.now t.engine);
    match msg with
    | Data d -> (
      match t.conf with
      | Some cs when conf_matches cs d.d_conf ->
        handle_data t cs ~installed:(status = Installed) d
      | _ -> ())
    | Order { o_conf; o_entries } -> (
      match t.conf with
      | Some cs when conf_matches cs o_conf ->
        handle_order t cs ~installed:(status = Installed) o_entries
      | _ -> ())
    | Ack { a_conf; a_upto } -> (
      match (status, t.conf) with
      | Installed, Some cs when conf_matches cs a_conf ->
        handle_ack t cs ~from:src ~upto:a_upto
      | _ -> ())
    | Heartbeat _ -> ()
    | Probe { p_conf } -> (
      match (status, t.conf) with
      | Installed, Some cs
        when (not (Conf_id.equal cs.cview.id p_conf))
             || not (Node_id.Set.mem src cs.cview.members) ->
        (* A reachable node in a different configuration: merge. *)
        start_gather t
      | _ -> ())
    | MGather { g_round; g_set } -> (
      let seen =
        match Hashtbl.find_opt t.gather_rounds src with Some r -> r | None -> 0
      in
      let fresh = g_round > seen in
      if fresh then Hashtbl.replace t.gather_rounds src g_round;
      match status with
      | Idle -> () (* not participating yet *)
      | Gathering _ -> merge_gather t ~fresh g_set
      | Installed | Flushing _ ->
        (* Only a genuinely new gather attempt interrupts; messages left
           over from the storm that produced this configuration are
           stale. *)
        if fresh then merge_gather t ~fresh g_set
      | Down -> ())
    | MPropose { m_vid; m_members } -> (
      match status with
      | Gathering gs ->
        (* Accept any proposal covering everything we gathered: a member
           whose proposal-wait timed out re-gathers from {self} and must
           still be able to board the proposal that then arrives late. *)
        if
          Node_id.Set.mem t.node m_members
          && Node_id.Set.subset gs.g_members m_members
        then enter_flushing t ~vid:m_vid ~members:m_members
        else merge_gather t m_members
      | Installed | Flushing _ -> merge_gather t m_members
      | Idle | Down -> ())
    | MFlush { f_vid; f_from; f_record } -> (
      match status with
      | Flushing fs when Conf_id.equal fs.fl_vid f_vid ->
        Hashtbl.replace fs.fl_records f_from f_record;
        check_flush t fs
      | Gathering _ ->
        if List.length t.early_flushes < 64 then
          t.early_flushes <- (f_vid, f_from, f_record) :: t.early_flushes
      | _ -> ())
    | MRetrans { r_vid; r_entries } -> (
      match (status, t.conf) with
      | Flushing fs, Some cs when Conf_id.equal fs.fl_vid r_vid ->
        List.iter
          (fun (seq, d) ->
            if not (Hashtbl.mem cs.store seq) then Hashtbl.replace cs.store seq d)
          r_entries;
        check_flush t fs
      | _ -> ())
    | MReady { y_vid; y_from } -> (
      match status with
      | Flushing fs
        when Conf_id.equal fs.fl_vid y_vid && Node_id.equal t.node fs.fl_coord ->
        Hashtbl.replace fs.fl_ready y_from ();
        coord_check_install t fs
      | _ -> ())
    | MInstall { i_vid; i_members = _ } -> (
      match status with
      | Flushing fs when Conf_id.equal fs.fl_vid i_vid -> install t fs
      | _ -> ())
    | Nack { k_conf; k_from; k_to } -> (
      match (status, t.conf) with
      | Installed, Some cs when conf_matches cs k_conf ->
        let entries =
          List.filter_map
            (fun seq ->
              match Hashtbl.find_opt cs.store seq with
              | Some d -> Some (seq, d)
              | None -> None)
            (List.init (max 0 (k_to - k_from + 1)) (fun i -> k_from + i))
        in
        if entries <> [] then
          unicast t ~dst:src (Repair { q_conf = k_conf; q_entries = entries })
      | _ -> ())
    | Repair { q_conf; q_entries } -> (
      match (status, t.conf) with
      | Installed, Some cs when conf_matches cs q_conf ->
        List.iter
          (fun (seq, d) ->
            if not (Hashtbl.mem cs.store seq) then store_message t cs ~seq d)
          q_entries;
        note_have_advanced t cs
      | _ -> ()))

(* ------------------------------------------------------------------ *)
(* Periodic duties: heartbeats, failure detection, merge probing.      *)

let rec periodic t =
  ignore
    (Engine.schedule t.engine ~delay:t.prm.fd_check_interval (fun () ->
         (match (t.status, t.conf) with
         | Installed, Some cs ->
           let now = Engine.now t.engine in
           (* Heartbeat if we have been silent. *)
           if
             Time.(Time.diff now (Time.min now t.last_sent)
                   >= t.prm.heartbeat_interval)
           then multicast_set t ~dsts:cs.cview.members
               (Heartbeat { h_conf = cs.cview.id });
           (* Suspect silent members. *)
           let suspect =
             Node_id.Set.exists
               (fun m ->
                 (not (Node_id.equal m t.node))
                 &&
                 match Hashtbl.find_opt t.last_heard m with
                 | Some heard -> Time.(Time.diff now heard > t.prm.fd_timeout)
                 | None -> true)
               cs.cview.members
           in
           if suspect then start_gather t
           else begin
             (* Loss recovery: ask for ordered messages we lack, and
                resend own messages the sequencer never ordered. *)
             if cs.have_upto < cs.next_seq then begin
               let upper = min cs.next_seq (cs.have_upto + 64) in
               unicast t ~dst:cs.coord
                 (Nack
                    { k_conf = cs.cview.id; k_from = cs.have_upto + 1; k_to = upper })
             end;
             Hashtbl.iter
               (fun lseq (d, sent_at) ->
                 if Time.(Time.diff now (Time.min now sent_at) > t.prm.fd_timeout)
                 then begin
                   Hashtbl.replace cs.own_pending lseq (d, now);
                   multicast_set t ~dsts:cs.cview.members (Data d)
                 end)
               cs.own_pending
           end;
           if (not suspect) &&
             i_am_coord t cs
             && Time.(Time.diff now (Time.min now t.last_probe)
                      >= t.prm.probe_interval)
           then begin
             t.last_probe <- now;
             broadcast_component t (Probe { p_conf = cs.cview.id })
           end
         | _ -> ());
         periodic t))

let create ?(on_burst_start = fun () -> ()) ?(on_burst_end = fun () -> ())
    ~network ~params ~node ~on_event () =
  let t =
    {
      net = network;
      engine = Network.engine network;
      prm = params;
      node;
      on_event;
      on_burst_start;
      on_burst_end;
      status = Idle;
      conf = None;
      outbox = [];
      early_flushes = [];
      counter = 0;
      my_round = 0;
      gather_rounds = Hashtbl.create 16;
      era = 0;
      last_heard = Hashtbl.create 16;
      last_sent = Time.zero;
      last_probe = Time.zero;
      installed_count = 0;
      periodic_started = false;
    }
  in
  Network.register network node ~handler:(fun ~src msg -> handle_wire t ~src msg);
  t

let join t =
  match t.status with
  | Idle ->
    if not t.periodic_started then begin
      t.periodic_started <- true;
      periodic t
    end;
    start_gather t
  | _ -> ()

let crash t =
  set_status t Down;
  t.conf <- None;
  t.outbox <- [];
  t.early_flushes <- [];
  Hashtbl.reset t.last_heard;
  Network.set_up t.net t.node false

let recover t =
  match t.status with
  | Down ->
    Network.set_up t.net t.node true;
    set_status t Idle;
    join t
  | _ -> ()
