open Repro_net

(** An abstract Extended Virtual Synchrony service for model checking.

    Replaces the timing-driven {!Endpoint} stack with its protocol-level
    contract: each installed configuration is a shared append-only log;
    {!send} appends to the sender's current configuration; each member
    delivers the log in order at its own pace, so {b which member
    delivers next} is the interleaving freedom a controlled scheduler
    explores.  {!reconfigure} closes configurations whose membership no
    longer matches a connectivity component and queues, per surviving
    member, the EVS view-change sequence: remaining regular deliveries up
    to the farthest point any member reached ([in_regular = true] — the
    safe-delivery guarantee), the transitional configuration, the
    leftover deliveries demoted to [in_regular = false], then the next
    regular configuration.

    Deterministic by construction: the only nondeterminism is which
    node the caller asks to {!deliver} next, and which faults the caller
    injects.  The caller must call {!reconfigure} after every
    {!crash}, {!recover} or connectivity change, passing the current
    components — an open configuration must keep exactly its live
    members. *)

type 'p t

val create :
  nodes:Node_id.t list -> pp_payload:('p -> string) -> unit -> 'p t
(** No configuration yet: call {!reconfigure} to install the first.
    [pp_payload] must be a stable rendering — it enters fingerprints and
    choice labels. *)

val send : 'p t -> from:Node_id.t -> 'p -> unit
(** Appends to the sender's current configuration.  If the sender has no
    installed configuration, or its configuration has been closed by a
    reconfiguration it has not yet seen, the message is lost (counted in
    {!lost_sends}) — like an unordered message at a real view change. *)

val deliver : 'p t -> Node_id.t -> 'p Endpoint.event option
(** Delivers the next queued event at a node, advancing its cursor.
    [None] when the node is crashed or fully caught up. *)

val has_pending : 'p t -> Node_id.t -> bool

val next_is_fresh : 'p t -> Node_id.t -> bool
(** Whether the node's next event is a regular delivery in an open
    configuration, as opposed to view-change fallout (leftovers,
    transitional/regular configuration notices).  The model checker
    coalesces fallout into the transition that consumes it. *)

val peek_label : 'p t -> Node_id.t -> string option
(** A stable human-readable description of the node's next event. *)

val crash : 'p t -> Node_id.t -> unit
(** The node loses its queued events and goes silent; its delivery
    cursors remain, so closes still honour what it saw in_regular. *)

val recover : 'p t -> Node_id.t -> unit
(** The node rejoins, with no configuration until {!reconfigure}. *)

val is_live : 'p t -> Node_id.t -> bool

val reconfigure : 'p t -> components:Node_id.Set.t list -> unit
(** Aligns configurations with the given connectivity components
    (crashed nodes are excluded automatically).  Configurations whose
    live membership matches a component stay open, undisturbed. *)

val take_appended : 'p t -> Conf_id.t list
(** Configurations appended to since the last call — the footprint the
    partial-order reduction uses to detect racing transitions. *)

val lost_sends : 'p t -> int

val fingerprint : 'p t -> string
(** Canonical digest of logs, cursors, scripts and liveness. *)
