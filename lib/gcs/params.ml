open Repro_sim

type t = {
  heartbeat_interval : Time.t;
  fd_timeout : Time.t;
  fd_check_interval : Time.t;
  probe_interval : Time.t;
  gather_window : Time.t;
  propose_timeout : Time.t;
  flush_timeout : Time.t;
  order_delay : Time.t;
  ack_delay : Time.t;
  header_bytes : int;
}

let default =
  {
    heartbeat_interval = Time.of_ms 25.;
    fd_timeout = Time.of_ms 150.;
    fd_check_interval = Time.of_ms 20.;
    probe_interval = Time.of_ms 120.;
    gather_window = Time.of_ms 30.;
    propose_timeout = Time.of_ms 250.;
    flush_timeout = Time.of_ms 500.;
    (* Ordering and safety cadence sized for the gigabit hot path: the
       coordinator's order batch and the members' cumulative acks are
       the two pipeline stages between a delivered Data message and its
       safe (green) delivery, so their delays bound end-to-end latency
       — and, for closed-loop clients, throughput.  50/150 µs still
       batches a burst's worth of messages per multicast at high load
       (the amortisation the paper's daemon gets from its packing)
       without making the cadence itself the bottleneck at low load. *)
    order_delay = Time.of_us 50;
    ack_delay = Time.of_us 150;
    header_bytes = 48;
  }

let wan =
  {
    heartbeat_interval = Time.of_ms 100.;
    fd_timeout = Time.of_ms 500.;
    fd_check_interval = Time.of_ms 100.;
    probe_interval = Time.of_ms 500.;
    gather_window = Time.of_ms 150.;
    propose_timeout = Time.of_ms 800.;
    flush_timeout = Time.of_sec 3.;
    order_delay = Time.of_ms 1.;
    ack_delay = Time.of_ms 5.;
    header_bytes = 48;
  }

let fast =
  {
    heartbeat_interval = Time.of_ms 5.;
    fd_timeout = Time.of_ms 16.;
    fd_check_interval = Time.of_ms 4.;
    probe_interval = Time.of_ms 24.;
    gather_window = Time.of_ms 6.;
    propose_timeout = Time.of_ms 24.;
    flush_timeout = Time.of_ms 100.;
    order_delay = Time.of_us 100;
    ack_delay = Time.of_us 200;
    header_bytes = 48;
  }
