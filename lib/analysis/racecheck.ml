(* Parallel-root race checking over the footprint summaries.

   A *root* is a computation assumed to run concurrently with the other
   roots (and, when marked multi, with further instances of itself):

   - a name passed on the command line ([--race-root apply_green]) —
     the convention for the future parallel-apply entry points, seeded
     before the parallel code exists so the refactor lands against an
     already-watching checker;
   - a binding annotated [@@analysis.parallel_root];
   - the argument of a literal [Domain.spawn] / [Thread.create]
     callsite: a named function becomes a root under its own key
     (multi when spawned from two or more sites), a literal closure
     becomes the footprint pass's pseudo root for that site.

   Declared and annotated roots are multi — the whole point of
   declaring one is that many domains will run it.

   Two roots conflict on a cell when both footprints contain it, at
   least one side writes, and the token sets of the two accesses have
   an empty intersection — no synchronization point common to every
   path to both sites.  A multi root is additionally paired with
   itself: its unguarded writes race between its own instances.  One
   finding per (root pair, cell), write/write preferred over
   read/write when both occur.

   Witnesses name files only, never lines: the baseline fingerprint is
   (rule, file, message), and a message that embedded line numbers
   would churn the fingerprint on every unrelated edit above it.

   [conflict_cells] is pure — summaries in, conflicts out — so the
   tests can drive the pairing logic (self pairing, token-intersection
   guards, write/write preference) without building cmts. *)

let rule = "parallel-race"
let root_attr = "analysis.parallel_root"

type root = {
  r_key : string;
  r_label : string;
  r_multi : bool;  (** may run concurrently with itself *)
  r_loc : Location.t option;
}

let intersect a b = List.filter (fun x -> List.mem x b) a

(* Conflicting cells between two summaries (as produced by
   [Footprint.summary]): [(cell, write_write)] per conflict, deduped to
   one entry per cell with write/write winning.  [self] means [a] and
   [b] are the same root: pair entry i with entries j >= i only, so
   each unordered pair of its accesses is considered once — including
   (i, i), an access racing with itself on another instance. *)
let conflict_cells ~self a b =
  let raw = ref [] in
  List.iteri
    (fun i ((ca, wa), ta) ->
      List.iteri
        (fun j ((cb, wb), tb) ->
          if
            (not (self && j < i))
            && Footprint.compare_cell ca cb = 0
            && (wa || wb)
            && intersect ta tb = []
          then raw := (ca, wa && wb) :: !raw)
        b)
    a;
  let best = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (c, ww) ->
      match Hashtbl.find_opt best c with
      | None ->
        Hashtbl.replace best c ww;
        order := c :: !order
      | Some true -> ()
      | Some false -> if ww then Hashtbl.replace best c true)
    (List.rev !raw);
  List.rev_map (fun c -> (c, Hashtbl.find best c)) !order
  |> List.sort (fun (a, _) (b, _) -> Footprint.compare_cell a b)

(* --- root discovery --------------------------------------------------- *)

let discover (fp : Footprint.t) ~declared =
  let graph = fp.Footprint.graph in
  let roots = ref [] in
  let add r =
    match List.find_opt (fun x -> x.r_key = r.r_key) !roots with
    | None -> roots := r :: !roots
    | Some _ ->
      roots :=
        List.map
          (fun x ->
            if x.r_key = r.r_key then
              { x with r_multi = x.r_multi || r.r_multi }
            else x)
          !roots
  in
  List.iter
    (fun name ->
      List.iter
        (fun key ->
          let d = Cmt_load.demangle key in
          if d = name || Filename.check_suffix d ("." ^ name) then
            add
              {
                r_key = key;
                r_label = d;
                r_multi = true;
                r_loc =
                  Option.map
                    (fun (fn : Callgraph.fn) -> fn.Callgraph.f_loc)
                    (Callgraph.find graph key);
              })
        graph.Callgraph.keys)
    declared;
  List.iter
    (fun key ->
      match Callgraph.find graph key with
      | Some fn when Callgraph.attr fn root_attr <> None ->
        add
          {
            r_key = key;
            r_label = Cmt_load.demangle key;
            r_multi = true;
            r_loc = Some fn.Callgraph.f_loc;
          }
      | Some _ | None -> ())
    graph.Callgraph.keys;
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (s : Footprint.spawn) ->
      let n =
        match Hashtbl.find_opt counts s.Footprint.s_root with
        | Some n -> n
        | None -> 0
      in
      Hashtbl.replace counts s.Footprint.s_root (n + 1))
    fp.Footprint.spawns;
  List.iter
    (fun (s : Footprint.spawn) ->
      add
        {
          r_key = s.Footprint.s_root;
          r_label = s.Footprint.s_label;
          r_multi =
            (not s.Footprint.s_literal)
            && Hashtbl.find counts s.Footprint.s_root >= 2;
          r_loc = Some s.Footprint.s_loc;
        })
    fp.Footprint.spawns;
  List.sort
    (fun a b ->
      let c = compare a.r_label b.r_label in
      if c <> 0 then c else compare a.r_key b.r_key)
    !roots

(* --- reporting -------------------------------------------------------- *)

let pp_cell (c : Footprint.cell) =
  c.Footprint.c_type ^ "." ^ c.Footprint.c_field

let witness_file fp root cell =
  match Footprint.witness fp ~root cell with
  | Some (_, a) ->
    Some a.Footprint.a_loc.Location.loc_start.Lexing.pos_fname
  | None -> None

let witness_loc fp root cell =
  match Footprint.witness fp ~root cell with
  | Some (_, a) -> Some a.Footprint.a_loc
  | None -> None

let run (fp : Footprint.t) ~declared (sink : Diag.sink) =
  let roots = discover fp ~declared in
  let n = List.length roots in
  let arr = Array.of_list roots in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if i <> j || a.r_multi then begin
        let sa = Footprint.summary fp a.r_key
        and sb = Footprint.summary fp b.r_key in
        List.iter
          (fun (cell, ww) ->
            let kind = if ww then "write/write" else "read/write" in
            let file root =
              match witness_file fp root.r_key cell with
              | Some f -> f
              | None -> root.r_label
            in
            let loc =
              match witness_loc fp a.r_key cell with
              | Some l -> l
              | None -> (
                match a.r_loc with Some l -> l | None -> Location.none)
            in
            if i = j then
              Diag.addf sink ~rule ~loc
                "parallel root '%s' races with itself: %s conflict on %s \
                 with no common synchronization (touched in %s); it runs on \
                 multiple domains — guard the access or make the state \
                 per-instance"
                a.r_label kind (pp_cell cell) (file a)
            else
              Diag.addf sink ~rule ~loc
                "parallel roots '%s' and '%s' can race: %s conflict on %s \
                 with no common synchronization (%s vs %s); guard both \
                 sides with one mutex or make the state per-root"
                a.r_label b.r_label kind (pp_cell cell) (file a) (file b))
          (conflict_cells ~self:(i = j) sa sb)
      end
    done
  done
