(* Interprocedural effect inference.

   Every table function gets a summary of booleans — the effect labels
   {Persist, Force, Send, Mutate, Raise, Random} plus two derived ones
   the headline analyses consume (SetsState for the spec-drift
   extraction, UnguardedSend for the write-ahead check) — computed as
   the least fixpoint of "a function has an effect if it performs it
   directly or references a function that has it".  References, not
   just saturated calls: a partially applied [mark_green t] handed to
   [List.iter] will run, so its effects count.

   The primitive vocabulary is the project's storage and group-
   communication API:

   - Persist: [Wlog.append] / [Wlog.append_sync] — an entry enters the
     log buffer (not yet durable);
   - Force: [Wlog.sync] / [Wlog.append_sync] / [Disk.force] — a
     stable-storage force is requested; its continuation runs once the
     entries are durable;
   - Send: [Endpoint.send], [Network.unicast] / [Network.broadcast],
     and any application of a record field labelled [send] (the
     engine's callback indirection into the GCS layer).

   UnguardedSend is the write-ahead analysis' notion of a *protocol*
   send point: an application of a [send]-labelled field that is not
   syntactically inside a continuation passed to a Force-effecting
   callee.  [sync_then t (fun () -> send_payload t ...)] is guarded —
   the send happens after durability — while a bare [send_payload]
   after an append is not; the property propagates through calls that
   occur outside such continuations. *)

type effects = {
  mutable e_persist : bool;
  mutable e_force : bool;
  mutable e_send : bool;
  mutable e_mutate : bool;
  mutable e_raise : bool;
  mutable e_random : bool;
  mutable e_sets_state : bool;
  mutable e_unguarded_send : bool;
  mutable e_unordered : bool;
      (** iterates a hash table ([Hashtbl.iter]/[fold], incl. functor
          instances) — result order depends on hashing, a nondeterminism
          source for anything replica-visible *)
  mutable e_phys_eq_value : bool;
      (** applies [==]/[!=] to a [Value.t] — physical identity is an
          allocation accident, not replicated state *)
}

let fresh () =
  {
    e_persist = false;
    e_force = false;
    e_send = false;
    e_mutate = false;
    e_raise = false;
    e_random = false;
    e_sets_state = false;
    e_unguarded_send = false;
    e_unordered = false;
    e_phys_eq_value = false;
  }

type t = {
  graph : Callgraph.t;
  table : (string, effects) Hashtbl.t;
  refs : (string, string list) Hashtbl.t;
      (** per function: table functions it references *)
}

let persist_prims = [ "Wlog.append"; "Wlog.append_batch"; "Wlog.append_sync" ]
let force_prims = [ "Wlog.sync"; "Wlog.append_sync"; "Disk.force" ]

let send_prims =
  [ "Endpoint.send"; "Network.unicast"; "Network.broadcast"; "Model.send" ]

let raise_prims = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let mutate_prims =
  [ ":="; "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Array.set"; "Bytes.set" ]

let clock_prims = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let unordered_prims =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.Make.iter"; "Hashtbl.Make.fold" ]

let is_random_name n = Cmt_load.has_prefix "Random." n || List.mem n clock_prims

(* A transition function by name: the engine's (and any fixture's)
   [set_state]. *)
let is_transition_path p =
  match p with
  | Path.Pdot (_, s) -> s = "set_state"
  | Path.Pident id -> Ident.name id = "set_state"
  | _ -> false

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    let e = fresh () in
    Hashtbl.replace t.table key e;
    e

let refs t key = match Hashtbl.find_opt t.refs key with Some l -> l | None -> []

(* --- phase A: direct effects and the reference graph ----------------- *)

let scan_direct graph (fn : Callgraph.fn) =
  let eff = fresh () in
  let rs = ref [] in
  let caller_unit = fn.f_unit.Cmt_load.u_name in
  let on_ident p =
    let names = Callgraph.prim_names graph ~caller_unit p in
    let mem prims = List.exists (fun n -> List.mem n prims) names in
    if mem persist_prims then eff.e_persist <- true;
    if mem force_prims then eff.e_force <- true;
    if mem send_prims then eff.e_send <- true;
    if mem raise_prims then eff.e_raise <- true;
    if mem mutate_prims then eff.e_mutate <- true;
    if List.exists is_random_name names then eff.e_random <- true;
    if
      List.mem (Callgraph.canonical graph ~caller_unit p) unordered_prims
      || mem unordered_prims
    then eff.e_unordered <- true;
    if is_transition_path p then eff.e_sets_state <- true;
    match Callgraph.resolve graph ~caller_unit p with
    | Some g when g.Callgraph.f_key <> fn.Callgraph.f_key ->
      rs := g.Callgraph.f_key :: !rs
    | Some _ | None -> ()
  in
  let expr_hook it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> on_ident p
    | Typedtree.Texp_setfield (_, _, _, v) ->
      eff.e_mutate <- true;
      if Cmt_load.is_engine_state v.exp_type then eff.e_sets_state <- true
    | Typedtree.Texp_setinstvar _ -> eff.e_mutate <- true
    | Typedtree.Texp_assert _ -> eff.e_raise <- true
    | Typedtree.Texp_apply
        ({ exp_desc = Typedtree.Texp_field (_, _, lbl); _ }, _)
      when lbl.lbl_name = "send" ->
      eff.e_send <- true
    | Typedtree.Texp_apply
        ( {
            exp_desc =
              Typedtree.Texp_ident (Path.Pdot (Path.Pident m, op), _, _);
            _;
          },
          args )
      when Ident.name m = "Stdlib"
           && (op = "==" || op = "!=")
           && List.exists
                (fun (_, a) ->
                  match a with
                  | Some (a : Typedtree.expression) ->
                    Cmt_load.is_value_type a.exp_type
                  | None -> false)
                args ->
      eff.e_phys_eq_value <- true
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_hook } in
  it.Tast_iterator.expr it fn.Callgraph.f_expr;
  (eff, List.rev !rs)

(* --- phase B: unguarded sends ---------------------------------------- *)

let is_fun_literal (e : Typedtree.expression) =
  match e.exp_desc with Typedtree.Texp_function _ -> true | _ -> false

(* Is this application's callee going to force the log before running
   function-literal arguments?  (Force prims take the continuation
   directly; so do the engine's [sync_then] wrappers, recognized
   through their inferred Force effect.) *)
let callee_forces t ~caller_unit (f : Typedtree.expression) =
  match f.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
    let names = Callgraph.prim_names t.graph ~caller_unit p in
    List.exists (fun n -> List.mem n force_prims) names
    ||
    match Callgraph.resolve t.graph ~caller_unit p with
    | Some g -> (find t g.Callgraph.f_key).e_force
    | None -> false)
  | _ -> false

let scan_unguarded t (fn : Callgraph.fn) =
  let direct = ref false in
  let rs = ref [] in
  let caller_unit = fn.f_unit.Cmt_load.u_name in
  let rec walk guarded (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      match Callgraph.resolve t.graph ~caller_unit p with
      | Some g when g.Callgraph.f_key <> fn.Callgraph.f_key ->
        if not guarded then rs := g.Callgraph.f_key :: !rs
      | Some _ | None -> ())
    | Typedtree.Texp_apply (f, args) ->
      (match f.exp_desc with
      | Typedtree.Texp_field (obj, _, lbl) when lbl.lbl_name = "send" ->
        if not guarded then direct := true;
        walk guarded obj
      | _ -> walk guarded f);
      let forces = callee_forces t ~caller_unit f in
      List.iter
        (fun (_, arg) ->
          match arg with
          | Some a when forces && is_fun_literal a -> walk true a
          | Some a -> walk guarded a
          | None -> ())
        args
    | _ -> List.iter (walk guarded) (Callgraph.subexprs e)
  in
  walk false fn.Callgraph.f_expr;
  (!direct, List.rev !rs)

(* --- the fixpoints ---------------------------------------------------- *)

let infer (graph : Callgraph.t) =
  let t = { graph; table = Hashtbl.create 256; refs = Hashtbl.create 256 } in
  let fns =
    List.filter_map (fun key -> Callgraph.find graph key) graph.Callgraph.keys
  in
  List.iter
    (fun fn ->
      let eff, rs = scan_direct graph fn in
      Hashtbl.replace t.table fn.Callgraph.f_key eff;
      Hashtbl.replace t.refs fn.Callgraph.f_key rs)
    fns;
  (* Basic effects: propagate along references to a fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let eff = find t fn.Callgraph.f_key in
        List.iter
          (fun g ->
            let ge = find t g in
            let lift get set =
              if get ge && not (get eff) then begin
                set eff;
                changed := true
              end
            in
            lift (fun e -> e.e_persist) (fun e -> e.e_persist <- true);
            lift (fun e -> e.e_force) (fun e -> e.e_force <- true);
            lift (fun e -> e.e_send) (fun e -> e.e_send <- true);
            lift (fun e -> e.e_mutate) (fun e -> e.e_mutate <- true);
            lift (fun e -> e.e_raise) (fun e -> e.e_raise <- true);
            lift (fun e -> e.e_random) (fun e -> e.e_random <- true);
            lift (fun e -> e.e_unordered) (fun e -> e.e_unordered <- true);
            lift
              (fun e -> e.e_phys_eq_value)
              (fun e -> e.e_phys_eq_value <- true);
            lift (fun e -> e.e_sets_state) (fun e -> e.e_sets_state <- true))
          (refs t fn.Callgraph.f_key))
      fns
  done;
  (* Unguarded sends: the guarded-continuation scan needs the Force
     results above, so it runs second, with its own fixpoint. *)
  let unguarded_refs = Hashtbl.create 256 in
  List.iter
    (fun fn ->
      let direct, rs = scan_unguarded t fn in
      let eff = find t fn.Callgraph.f_key in
      if direct then eff.e_unguarded_send <- true;
      Hashtbl.replace unguarded_refs fn.Callgraph.f_key rs)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let eff = find t fn.Callgraph.f_key in
        if not eff.e_unguarded_send then
          let rs =
            match Hashtbl.find_opt unguarded_refs fn.Callgraph.f_key with
            | Some l -> l
            | None -> []
          in
          if List.exists (fun g -> (find t g).e_unguarded_send) rs then begin
            eff.e_unguarded_send <- true;
            changed := true
          end)
      fns
  done;
  t
