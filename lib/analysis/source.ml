(* Source-line access for the analyses: suppression tags live in the
   source text, not the typed AST, so every rule that honours
   [(* repcheck: allow *)] reads the offending line (and the line above
   it) back from the file recorded in the cmt.  The analyses run from
   the build context root (_build/default), where dune's copies of the
   sources live at the relative paths the cmts record. *)

let allow_tag = "repcheck: allow"

let files : (string, string array) Hashtbl.t = Hashtbl.create 16
[@@analysis.ambient_ok
  "read-only memoization of immutable build-tree sources; the lint \
   driver is a batch process, not a multi-tenant engine"]

let lines_of_file fname =
  match Hashtbl.find_opt files fname with
  | Some l -> l
  | None ->
    let l =
      try
        let ic = open_in fname in
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> close_in ic);
        Array.of_list (List.rev !acc)
      with Sys_error _ -> [||]
    in
    Hashtbl.replace files fname l;
    l

let line fname n =
  let lines = lines_of_file fname in
  if n >= 1 && n <= Array.length lines then Some lines.(n - 1) else None

let contains_tag s =
  let tag_len = String.length allow_tag and len = String.length s in
  let rec scan i =
    i + tag_len <= len && (String.sub s i tag_len = allow_tag || scan (i + 1))
  in
  scan 0

(* A diagnostic is suppressed when the tag sits on its line or on the
   line above (the conventional place for a standalone comment). *)
let allowed loc =
  let fname = loc.Location.loc_start.Lexing.pos_fname in
  let lnum = loc.Location.loc_start.Lexing.pos_lnum in
  let has n = match line fname n with Some s -> contains_tag s | None -> false in
  has lnum || has (lnum - 1)
