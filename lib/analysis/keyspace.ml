(* The abstract domain of database keys.

   A procedure's read/write footprint is a set of *symbolic* keys: a
   key expression in the body abstracts to a lattice element —

     Const s              a string literal
     Param i              the i-th procedure argument, rendered as a key
     Concat parts         concatenation of Const/Param parts in order
     Top                  any key (the expression is data-dependent in a
                          way the analysis cannot bound)

   The order is the obvious one (everything below Top, distinct
   non-Top elements incomparable), and sets of elements form the
   powerset lattice with Top absorbing: a set containing Top *is*
   {Top}.  Sets are kept sorted and deduplicated so every consumer —
   the manifest, the drift diff, the findings — is deterministic, and
   widened to Top past a small cardinality bound so looping helper
   structures cannot grow footprints without bound.

   [Concat] is normalized on construction: nested concats flattened,
   adjacent/empty constants merged, any Top part absorbing the whole —
   so syntactically different but equal key expressions compare
   equal. *)

type abs =
  | Const of string
  | Param of int
  | Concat of abs list  (* >= 2 parts, each Const or Param, no adjacent Consts *)
  | Top

let rank = function Const _ -> 0 | Param _ -> 1 | Concat _ -> 2 | Top -> 3

let rec compare_abs a b =
  match (a, b) with
  | Const x, Const y -> String.compare x y
  | Param i, Param j -> Int.compare i j
  | Concat xs, Concat ys -> List.compare compare_abs xs ys
  | Top, Top -> 0
  | _ -> Int.compare (rank a) (rank b)

let equal_abs a b = compare_abs a b = 0

(* Concatenation with normalization; Top poisons the result — a key
   with an unbounded part is an unbounded key. *)
let concat a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Const x, Const y -> Const (x ^ y)
  | _ ->
    let parts = function Concat l -> l | x -> [ x ] in
    let rec norm = function
      | Const "" :: rest -> norm rest
      | Const x :: Const y :: rest -> norm (Const (x ^ y) :: rest)
      | p :: rest -> p :: norm rest
      | [] -> []
    in
    (match norm (parts a @ parts b) with
    | [] -> Const ""
    | [ one ] -> one
    | l -> Concat l)

let rec to_string = function
  | Const s -> Printf.sprintf "const %S" s
  | Param i -> Printf.sprintf "param %d" i
  | Concat parts -> "concat(" ^ String.concat ", " (List.map to_string parts) ^ ")"
  | Top -> "top"

(* --- sets ------------------------------------------------------------- *)

let widen_limit = 8

let normalize set =
  if List.exists (equal_abs Top) set then [ Top ]
  else
    let set = List.sort_uniq compare_abs set in
    if List.length set > widen_limit then [ Top ] else set

let union a b = normalize (a @ b)
let add x set = union [ x ] set

(* Substitute call-site actuals for parameters: the summary of a helper
   is expressed over its own [Param j]; at a call with abstract actuals
   [a0; a1; ...] the j-th parameter becomes [aj] (Top when the call
   site passes fewer arguments than the summary mentions). *)
let rec subst actuals = function
  | Const s -> Const s
  | Param i -> (
    match List.nth_opt actuals i with Some a -> a | None -> Top)
  | Concat parts ->
    List.fold_left (fun acc p -> concat acc (subst actuals p)) (Const "") parts
  | Top -> Top

let subst_set actuals set = normalize (List.map (subst actuals) set)

(* Does [declared] cover [inferred]?  Top in the declaration covers
   everything; otherwise coverage is membership.  Used by the drift
   check in both directions (a declared pattern matching no inferred
   key is stale). *)
let covers declared inferred =
  List.exists (equal_abs Top) declared
  || List.exists (equal_abs inferred) declared
