(* The pattern-level rule catalogue, on the shared framework: one typed-
   AST traversal per unit, [Source.allowed] suppression, [Diag] sink.

   1. no-poly-id-compare — polymorphic [=] / [<>] / [compare] (and the
      other Stdlib comparison operators) must not be applied to the
      abstract identifier types [Node_id.t], [Action.Id.t], [Conf_id.t];
      use the owning module's equal/compare.

   2. no-engine-state-wildcard — [match] on [Types.engine_state] must
      enumerate its constructors: a [_ ->] branch silently absorbs any
      state later added to the protocol state machine.

   3. no-failwith-in-core — [failwith] / [assert false] are forbidden
      inside the core: the replication engine must degrade through its
      protocol states, not abort.

   4. no-ambient-nondeterminism — [Random] (however the module is
      spelled: [Stdlib.Random], via [open], or through a module alias)
      and wall-clock reads ([Unix.gettimeofday] / [Unix.time] /
      [Sys.time]) are forbidden outside lib/sim: reproducibility and
      the model checker's deterministic replay depend on all randomness
      flowing from [Repro_sim.Rng] and all time from the virtual clock.

   5. no-poly-id-hash — [Hashtbl.hash] / [seeded_hash] on the abstract
      id types would silently reshuffle on a representation change; use
      the owning module's [hash].

   6. no-wlog-recover-outside-persist — [Wlog.recover] may only be
      called from lib/core/persist.ml: the damage-verdict policy lives
      in [Persist.recover].

   7. no-disk-fault-config-outside-harness — [Disk.fault_config] may
      only be constructed in lib/harness (the nemesis campaigns),
      lib/storage (its defining library) and tests: a fault schedule
      wired directly into engine or protocol code would make faults
      part of normal operation instead of an injected experiment.

   8. no-unordered-iteration-in-db — [Hashtbl.iter] / [Hashtbl.fold]
      (including functor instances) inside lib/db: iteration order
      depends on hashing, so any replica-visible result derived from it
      is nondeterministic — the same source the procedure determinism
      verdict (Procfoot) tracks, surfaced as an ordinary finding.  Sort
      the result or tag the line if order provably cannot escape.

   9. no-phys-eq-on-value — [==] / [!=] applied to [Value.t] inside
      lib/db: physical identity is an allocation accident that differs
      across replicas replaying the same order; use [Value.equal]. *)

let id_type_suffixes = [ "Node_id.t"; "Action.Id.t"; "Conf_id.t"; "Id.t" ]
let poly_compare_names = [ "="; "<>"; "=="; "!="; "compare"; "<"; ">"; "<="; ">=" ]

let is_id_type ty =
  match Cmt_load.type_constr_name ty with
  | Some name ->
    List.exists
      (fun suffix ->
        name = suffix
        || (String.length name > String.length suffix
           && String.sub name
                (String.length name - String.length suffix - 1)
                (String.length suffix + 1)
              = "." ^ suffix))
      id_type_suffixes
  | None -> false

let stdlib_ident p names =
  match p with
  | Path.Pdot (Path.Pident m, s) -> Ident.name m = "Stdlib" && List.mem s names
  | _ -> false

let is_ambient_nondet name =
  Cmt_load.has_prefix "Random." name
  || name = "Unix.gettimeofday" || name = "Unix.time" || name = "Sys.time"

let is_poly_hash name =
  List.mem name [ "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

let is_wlog_recover name =
  name = "Wlog.recover" || Filename.check_suffix name ".Wlog.recover"

let is_fault_config ty =
  match Cmt_load.type_constr_name ty with
  | Some name ->
    name = "fault_config" || Filename.check_suffix name ".fault_config"
  | None -> false

type ctx = {
  core : string list;  (** prefixes treated as protocol core *)
  sink : Diag.sink;
}

let in_any prefixes src = List.exists (fun p -> Cmt_load.has_prefix p src) prefixes

let wlog_recover_allowed = [ "lib/core/persist.ml"; "lib/storage/wlog.ml" ]

let fault_config_allowed = [ "lib/harness/"; "lib/storage/"; "test/"; "bench/" ]

(* The database layer must be deterministic re-executable code (paper
   §6); fixtures are in scope so the seeded violations golden-test the
   rules. *)
let db_determinism_scope = [ "lib/db/"; "test/fixtures/" ]

let is_unordered_iter name =
  List.mem name Effects.unordered_prims

let check_unit ctx (graph : Callgraph.t) (u : Cmt_load.unit_info) =
  let src = u.Cmt_load.u_src in
  let in_core = in_any ctx.core src in
  let in_sim = Cmt_load.has_prefix "lib/sim/" src in
  let in_db = in_any db_determinism_scope src in
  let sink = ctx.sink in
  (* The shared canonical speller (Callgraph.canonical): module aliases
     — including functor aliases — substituted, mangling stripped,
     Stdlib/wrapper prefixes dropped.  The same table the ambient-state
     and race passes read, so an alias that hides [Random] from this
     rule would also hide a table from those — and none of them let it. *)
  let canonical p = Callgraph.canonical graph ~caller_unit:u.Cmt_load.u_name p in
  let check_expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_apply
        ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
      when stdlib_ident p poly_compare_names ->
      let op = match p with Path.Pdot (_, s) -> s | _ -> assert false in
      List.iter
        (function
          | _, Some (arg : Typedtree.expression) when is_id_type arg.exp_type ->
            if not (Source.allowed e.exp_loc) then
              Diag.addf sink ~rule:"no-poly-id-compare" ~loc:e.exp_loc
                "polymorphic (%s) applied to abstract id type %s; use the \
                 module's equal/compare"
                op
                (match Cmt_load.type_constr_name arg.exp_type with
                | Some n -> n
                | None -> "?")
          | _, Some (arg : Typedtree.expression)
            when in_db
                 && (op = "==" || op = "!=")
                 && Cmt_load.is_value_type arg.exp_type ->
            if not (Source.allowed e.exp_loc) then
              Diag.addf sink ~rule:"no-phys-eq-on-value" ~loc:e.exp_loc
                "physical equality on Value.t is an allocation accident, \
                 not replicated state; use Value.equal"
          | _ -> ())
        args
    | Typedtree.Texp_match (scrut, cases, _)
      when Cmt_load.is_engine_state scrut.exp_type ->
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          let is_wild =
            match c.Typedtree.c_lhs.Typedtree.pat_desc with
            | Typedtree.Tpat_value arg -> (
              match
                (arg :> Typedtree.value Typedtree.general_pattern)
                  .Typedtree.pat_desc
              with
              | Typedtree.Tpat_any -> true
              | _ -> false)
            | _ -> false
          in
          if is_wild && not (Source.allowed c.Typedtree.c_lhs.Typedtree.pat_loc)
          then
            Diag.addf sink ~rule:"no-engine-state-wildcard"
              ~loc:c.Typedtree.c_lhs.Typedtree.pat_loc
              "match on engine_state uses a _ branch; enumerate the states \
               so new ones fail exhaustiveness")
        cases
    | Typedtree.Texp_apply
        ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
      when is_poly_hash (canonical p) ->
      List.iter
        (function
          | _, Some (arg : Typedtree.expression) when is_id_type arg.exp_type ->
            if not (Source.allowed e.exp_loc) then
              Diag.addf sink ~rule:"no-poly-id-hash" ~loc:e.exp_loc
                "Hashtbl.hash applied to abstract id type %s; use the owning \
                 module's hash"
                (match Cmt_load.type_constr_name arg.exp_type with
                | Some n -> n
                | None -> "?")
          | _ -> ())
        args
    | Typedtree.Texp_ident (p, _, _)
      when is_wlog_recover (canonical p)
           && (not (List.mem src wlog_recover_allowed))
           && not (Source.allowed e.exp_loc) ->
      Diag.addf sink ~rule:"no-wlog-recover-outside-persist" ~loc:e.exp_loc
        "Wlog.recover called from %s; the damage-verdict policy lives in \
         Repro_core.Persist.recover — go through it"
        src
    | Typedtree.Texp_ident (p, _, _)
      when (not in_sim)
           && is_ambient_nondet (canonical p)
           && not (Source.allowed e.exp_loc) ->
      Diag.addf sink ~rule:"no-ambient-nondeterminism" ~loc:e.exp_loc
        "%s outside lib/sim; draw randomness from Repro_sim.Rng and time \
         from the virtual clock"
        (canonical p)
    | Typedtree.Texp_ident (p, _, _)
      when in_db
           && is_unordered_iter (canonical p)
           && not (Source.allowed e.exp_loc) ->
      Diag.addf sink ~rule:"no-unordered-iteration-in-db" ~loc:e.exp_loc
        "%s in the database layer: hash-order iteration is a \
         nondeterminism source for replica-visible results; sort the \
         result or tag the line with (* %s *)"
        (canonical p) Source.allow_tag
    | Typedtree.Texp_apply
        ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _)
      when in_core
           && stdlib_ident p [ "failwith" ]
           && not (Source.allowed e.exp_loc) ->
      Diag.addf sink ~rule:"no-failwith-in-core" ~loc:e.exp_loc
        "the protocol core must not abort; return through the protocol \
         state machine or tag the line with (* %s *)"
        Source.allow_tag
    | Typedtree.Texp_assert
        ( {
            exp_desc =
              Typedtree.Texp_construct (_, { cstr_name = "false"; _ }, _);
            _;
          },
          loc )
      when in_core && not (Source.allowed loc) ->
      Diag.addf sink ~rule:"no-failwith-in-core" ~loc
        "assert false in the protocol core; handle the case or tag the line \
         with (* %s *)"
        Source.allow_tag
    | Typedtree.Texp_record { fields = _; _ }
      when is_fault_config e.exp_type
           && (not (in_any fault_config_allowed src))
           && not (Source.allowed e.exp_loc) ->
      Diag.addf sink ~rule:"no-disk-fault-config-outside-harness" ~loc:e.exp_loc
        "Disk.fault_config constructed in %s; fault schedules belong to \
         lib/harness (nemesis campaigns) and tests"
        src
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = check_expr } in
  it.Tast_iterator.structure it u.Cmt_load.u_str

let run ~core (graph : Callgraph.t) (sink : Diag.sink) =
  let ctx = { core; sink } in
  List.iter (check_unit ctx graph) graph.Callgraph.units
