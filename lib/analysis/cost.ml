(* Interprocedural hot-path cost analysis.

   Every table function gets a cost summary — a work mask and an
   allocation mask over the Loops bound classes — computed to fixpoint
   along the call graph, Effects-style: a function's masks are the join
   of what its body does directly and what its callees' summaries say,
   and the whole table is rescanned until nothing grows (masks are
   monotone, so the loop terminates in at most bit-count rounds).

   The body scan tracks a *loop context*: the join of the bound classes
   of every enclosing iteration.  The classification of an iterated
   collection (loops.ml) is origin- and type-based:

   - the bare element variable of an enclosing iteration: absorbed —
     iterating each element's own data sums to the enclosing bound;
   - a collection whose element type names a system quantity
     (membership, actions, log frames): that class;
   - otherwise a bare parameter of the function: batch (its own input);
   - otherwise: Top.

   Inside a non-trivial loop, any further non-absorbed scan or
   non-constant callee is Top — the "no nested whole-collection scans
   per event" discipline that catches the quadratic view-change
   intersection this pass shipped against.  Structural recursion (self
   or locally [let rec]-bound), [while], and non-constant [for] bounds
   are Top; genuinely bounded recursion (heap sifts, amortized queue
   drains) is waived with an explicit [@@analysis.cost "..."] trusted
   summary, which replaces the computed one and is itself checked for
   staleness (a waiver no hot path reaches is a finding).

   Budgets are declared at the roots: [@@analysis.hotpath "O(queue)"]
   on a per-event handler fails the build if the propagated summary
   exceeds the budget, with the offending scan or allocation site as
   the finding location.  Messages carry no line numbers, so baselines
   survive code motion (Diag fingerprints are rule+file+message).

   Approximations, documented in DESIGN.md §15: mutual recursion
   between top-level functions is approximated by summary join (the
   iteration count is not modelled); a batch-bounded callee invoked per
   element is assumed to process per-element data (its work sums to the
   enclosing bound rather than multiplying it). *)

type summary = {
  s_work : int;
  s_alloc : int;
  s_wwit : (int * Location.t * string) list;  (* per-bit work witness *)
  s_awit : (int * Location.t * string) list;  (* per-bit alloc witness *)
}

let empty_summary = { s_work = 0; s_alloc = 0; s_wwit = []; s_awit = [] }

type t = {
  graph : Callgraph.t;
  summaries : (string, summary) Hashtbl.t;
  trusted : (string, int * int) Hashtbl.t;
  mutable bad_trusted : (Callgraph.fn * string) list;
  refs : (string, string list) Hashtbl.t;
}

let hotpath_attr = "analysis.hotpath"
let trusted_attr = "analysis.cost"
let cost_rule = "hotpath-cost"
let alloc_rule = "hotpath-alloc"
let annot_rule = "bad-cost-annotation"
let unused_rule = "unused-hotpath"
let comparator_rule = "boxed-float-comparator"

let pretty key = Cmt_load.demangle key

(* --- type and origin classification ----------------------------------- *)

let rec constr_names depth acc (ty : Types.type_expr) =
  if depth = 0 then acc
  else
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) ->
      List.fold_left
        (constr_names (depth - 1))
        (Cmt_load.demangle (Cmt_load.path_name p) :: acc)
        args
    | Types.Ttuple tys -> List.fold_left (constr_names (depth - 1)) acc tys
    | _ -> acc

let type_class ty = Loops.classify_names (constr_names 4 [] ty)

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let is_float_ty ty =
  match Cmt_load.type_constr_name ty with Some "float" -> true | _ -> false

(* A function-literal comparator over boxed floats: the classic
   accidental-boxing shape ([Heap.create ~cmp:(fun a b -> ...)] over
   float keys). *)
let is_float_comparator_literal (a : Typedtree.expression) =
  (match a.exp_desc with Typedtree.Texp_function _ -> true | _ -> false)
  &&
  match Types.get_desc a.exp_type with
  | Types.Tarrow (_, t1, rest, _) -> (
    is_float_ty t1
    &&
    match Types.get_desc rest with
    | Types.Tarrow (_, t2, _, _) -> is_float_ty t2
    | _ -> false)
  | _ -> false

type bound = B_elem | B_cls of int

let bare_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> Some id
  | _ -> None

let classify ~elems ~wholes (e : Typedtree.expression) =
  match bare_ident e with
  | Some id when List.exists (Ident.same id) elems -> B_elem
  | bare -> (
    match type_class e.exp_type with
    | Some c -> B_cls c
    | None -> (
      match bare with
      | Some id when List.exists (Ident.same id) wholes -> B_cls Loops.batch
      | _ -> B_cls Loops.top))

(* Strip the leading lambda chain of a binding: its parameters are the
   function's own input (batch-bounded when nothing better is known),
   and the innermost bodies are what actually runs per call.  A
   match-lambda ([let f t = function ...]) contributes every case body
   and its pattern variables. *)
let rec strip_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { cases = [ { c_lhs; c_rhs; c_guard = None } ]; _ }
    ->
    let vars, bodies = strip_params c_rhs in
    (Typedtree.pat_bound_idents c_lhs @ vars, bodies)
  | Typedtree.Texp_function { cases; _ } ->
    ( List.concat_map
        (fun (c : _ Typedtree.case) -> Typedtree.pat_bound_idents c.c_lhs)
        cases,
      List.map (fun (c : _ Typedtree.case) -> c.c_rhs) cases )
  | _ -> ([], [ e ])

let is_constant (e : Typedtree.expression) =
  match e.exp_desc with Typedtree.Texp_constant _ -> true | _ -> false

(* --- the body scan ----------------------------------------------------- *)

let summary_masks t key =
  match Hashtbl.find_opt t.trusted key with
  | Some (w, a) -> (w, a)
  | None -> (
    match Hashtbl.find_opt t.summaries key with
    | Some s -> (s.s_work, s.s_alloc)
    | None -> (0, 0))

(* The contribution of a saturated callee with masks [(w, a)] invoked
   in loop context [ctx].  [elem] marks a call whose argument is a bare
   element of the enclosing iteration: the callee's batch-bounded part
   processes per-element data and is absorbed. *)
let contrib ~ctx ~elem (w, a) =
  let tw = if elem then w land lnot Loops.batch else w in
  let ta = if elem then a land lnot Loops.batch else a in
  let cw =
    if Loops.is_top tw then Loops.top
    else if ctx = 0 then tw
    else if tw = 0 then 0
    else Loops.top
  in
  let ca =
    if Loops.is_top ta then Loops.top
    else if ctx = 0 then ta
    else if ta = 0 then 0
    else if ta land lnot Loops.alloc_const = 0 then ctx
    else Loops.top
  in
  (cw, ca)

let scan t (fn : Callgraph.fn) =
  let caller_unit = fn.f_unit.Cmt_load.u_name in
  let work = ref 0 and alloc = ref 0 in
  let wwit = ref [] and awit = ref [] in
  let rs = ref [] in
  let witness wit bit loc desc =
    if not (List.exists (fun (b, _, _) -> b = bit) !wit) then
      wit := (bit, loc, desc) :: !wit
  in
  let add_work loc desc m =
    let fresh = m land lnot !work in
    List.iter (fun bit -> witness wwit bit loc desc) (Loops.bits fresh);
    if Loops.is_top fresh then witness wwit Loops.top loc desc;
    work := Loops.join !work m
  in
  let add_alloc loc desc m =
    let fresh = m land lnot !alloc in
    List.iter (fun bit -> witness awit bit loc desc) (Loops.bits fresh);
    if Loops.is_top fresh then witness awit Loops.top loc desc;
    alloc := Loops.join !alloc m
  in
  let wholes, bodies = strip_params fn.Callgraph.f_expr in
  let resolve p = Callgraph.resolve t.graph ~caller_unit p in
  let callee_at ~ctx ~elem loc (g : Callgraph.fn) =
    if g.Callgraph.f_key = fn.Callgraph.f_key then
      add_work loc "a recursive call (bound not inferred)" Loops.top
    else begin
      rs := g.Callgraph.f_key :: !rs;
      let w, a = summary_masks t g.Callgraph.f_key in
      let cw, ca = contrib ~ctx ~elem (w, a) in
      add_work loc
        (Printf.sprintf "calls %s (work %s)" (pretty g.Callgraph.f_key)
           (Loops.to_string w))
        cw;
      add_alloc loc
        (Printf.sprintf "calls %s (alloc %s)" (pretty g.Callgraph.f_key)
           (Loops.to_string (a land lnot Loops.alloc_const)))
        ca
    end
  in
  let alloc_site ctx loc noun =
    if ctx = 0 then alloc := Loops.join !alloc Loops.alloc_const
    else
      add_alloc loc
        (Printf.sprintf "allocates %s inside an %s loop" noun
           (Loops.to_string ctx))
        ctx
  in
  let rec walk ctx elems (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      match resolve p with
      | Some g -> callee_at ~ctx ~elem:false e.exp_loc g
      | None -> ())
    | Typedtree.Texp_apply (f, args) -> apply ctx elems e f args
    | Typedtree.Texp_function { cases; _ } ->
      alloc_site ctx e.exp_loc "a closure";
      List.iter
        (fun (c : _ Typedtree.case) ->
          Option.iter (walk ctx elems) c.c_guard;
          walk ctx elems c.c_rhs)
        cases
    | Typedtree.Texp_let (rec_flag, vbs, body) ->
      if
        rec_flag = Asttypes.Recursive
        && List.exists
             (fun (vb : Typedtree.value_binding) ->
               match vb.vb_expr.exp_desc with
               | Typedtree.Texp_function _ -> true
               | _ -> false)
             vbs
      then
        add_work e.exp_loc
          "a locally recursive function (bound not inferred)" Loops.top;
      List.iter
        (fun (vb : Typedtree.value_binding) -> walk ctx elems vb.vb_expr)
        vbs;
      walk ctx elems body
    | Typedtree.Texp_while _ ->
      add_work e.exp_loc "a while loop (bound not inferred)" Loops.top;
      List.iter (walk Loops.top elems) (Callgraph.subexprs e)
    | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
      let const_bounds = is_constant lo && is_constant hi in
      if not const_bounds then
        add_work e.exp_loc "a for loop with a non-constant bound" Loops.top;
      walk ctx elems lo;
      walk ctx elems hi;
      walk (if const_bounds then ctx else Loops.top) elems body
    | Typedtree.Texp_tuple _ ->
      alloc_site ctx e.exp_loc "a tuple";
      List.iter (walk ctx elems) (Callgraph.subexprs e)
    | Typedtree.Texp_record _ ->
      alloc_site ctx e.exp_loc "a record";
      List.iter (walk ctx elems) (Callgraph.subexprs e)
    | Typedtree.Texp_array _ ->
      alloc_site ctx e.exp_loc "an array";
      List.iter (walk ctx elems) (Callgraph.subexprs e)
    | Typedtree.Texp_construct (_, _, args) when args <> [] ->
      alloc_site ctx e.exp_loc "a constructor";
      List.iter (walk ctx elems) (Callgraph.subexprs e)
    | Typedtree.Texp_variant (_, Some _) ->
      alloc_site ctx e.exp_loc "a variant";
      List.iter (walk ctx elems) (Callgraph.subexprs e)
    | _ -> List.iter (walk ctx elems) (Callgraph.subexprs e)
  and apply ctx elems e f args =
    let arg_exprs = List.filter_map (fun (_, a) -> a) args in
    match f.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      let canon = Callgraph.canonical t.graph ~caller_unit p in
      match (canon, arg_exprs) with
      | ("|>", [ x; g ]) | ("@@", [ g; x ]) ->
        (* Unfold the pipeline so the piped collection reaches the scan
           combinator as its missing positional argument: [xs |> List.filter p]
           is [List.filter p xs], not an application with no target. *)
        (match g.Typedtree.exp_desc with
        | Typedtree.Texp_apply (h, pargs) ->
          apply ctx elems e h (pargs @ [ (Asttypes.Nolabel, Some x) ])
        | _ -> apply ctx elems e g [ (Asttypes.Nolabel, Some x) ])
      | _ -> (
      match Loops.scan_target canon with
      | Some { Loops.sc_arg; sc_allocs } ->
        let bound =
          match List.nth_opt arg_exprs sc_arg with
          | Some c -> classify ~elems ~wholes c
          | None -> B_cls Loops.top
        in
        let eff =
          match bound with
          | B_elem -> if ctx = 0 then Loops.batch else ctx
          | B_cls c ->
            if Loops.is_top c then Loops.top
            else if ctx = 0 then c
            else Loops.top
        in
        let desc =
          match bound with
          | B_cls c when ctx <> 0 && not (Loops.is_top c) ->
            Printf.sprintf "a %s scan nested inside an %s loop" canon
              (Loops.to_string ctx)
          | B_cls c when Loops.is_top c ->
            let names =
              match List.nth_opt arg_exprs sc_arg with
              | Some a -> constr_names 4 [] a.Typedtree.exp_type
              | None -> []
            in
            Printf.sprintf "%s over a collection with no inferred bound%s"
              canon
              (match names with
              | [] -> ""
              | _ -> Printf.sprintf " (type %s)" (String.concat " " names))
          | _ ->
            Printf.sprintf "%s over an %s collection" canon
              (Loops.to_string eff)
        in
        add_work e.exp_loc desc eff;
        if sc_allocs then
          if eff = 0 then alloc := Loops.join !alloc Loops.alloc_const
          else
            add_alloc e.exp_loc
              (Printf.sprintf "%s allocates its %s result" canon
                 (Loops.to_string eff))
              eff;
        List.iteri
          (fun i a ->
            if i = sc_arg then walk ctx elems a
            else if is_arrow a.Typedtree.exp_type then iteratee eff elems a
            else walk ctx elems a)
          arg_exprs
      | None -> (
        match resolve p with
        | Some g ->
          let elem =
            List.exists
              (fun a ->
                match bare_ident a with
                | Some id -> List.exists (Ident.same id) elems
                | None -> false)
              arg_exprs
          in
          callee_at ~ctx ~elem f.Typedtree.exp_loc g;
          List.iter (walk ctx elems) arg_exprs
        | None ->
          if List.mem canon Loops.alloc_prims then
            alloc_site ctx e.exp_loc (Printf.sprintf "%s output" canon);
          List.iter (walk ctx elems) arg_exprs)))
    | Typedtree.Texp_apply (g, pargs) ->
      (* A curried application chain — what the typechecker leaves of
         [xs |> List.filter p] — flattens to one call with all the
         arguments, so the scan combinator sees its collection. *)
      apply ctx elems e g (pargs @ args)
    | _ ->
      walk ctx elems f;
      List.iter (walk ctx elems) arg_exprs
  (* An arrow-typed argument of an iteration primitive: runs once per
     element of an [eff]-bounded loop. *)
  and iteratee eff elems (a : Typedtree.expression) =
    match a.Typedtree.exp_desc with
    | Typedtree.Texp_function _ ->
      let vars, bodies = strip_params a in
      List.iter (walk eff (vars @ elems)) bodies
    | Typedtree.Texp_ident (p, _, _) -> (
      match resolve p with
      | Some g -> callee_at ~ctx:eff ~elem:true a.Typedtree.exp_loc g
      | None -> ())
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, pargs)
      -> (
      let pre = List.filter_map (fun (_, x) -> x) pargs in
      (match resolve p with
      | Some g -> callee_at ~ctx:eff ~elem:true a.Typedtree.exp_loc g
      | None -> ());
      (* the closed-over arguments are evaluated once, outside the loop *)
      List.iter (walk 0 elems) pre)
    | _ -> walk eff elems a
  in
  List.iter (walk 0 []) bodies;
  ( { s_work = !work; s_alloc = !alloc; s_wwit = !wwit; s_awit = !awit },
    List.rev !rs )

(* --- the fixpoint ------------------------------------------------------ *)

let table_fns (graph : Callgraph.t) =
  List.filter_map
    (fun key -> Callgraph.find graph key)
    graph.Callgraph.keys

let analyze (graph : Callgraph.t) =
  let t =
    {
      graph;
      summaries = Hashtbl.create 256;
      trusted = Hashtbl.create 16;
      bad_trusted = [];
      refs = Hashtbl.create 256;
    }
  in
  let fns = table_fns graph in
  List.iter
    (fun fn ->
      match Callgraph.attr fn trusted_attr with
      | Some s -> (
        match Loops.parse_budget s with
        | Some (w, a) ->
          Hashtbl.replace t.trusted fn.Callgraph.f_key
            (w, a lor Loops.alloc_const)
        | None -> t.bad_trusted <- (fn, s) :: t.bad_trusted)
      | None -> ())
    fns;
  (* Trusted functions keep their declared masks, but their bodies are
     still scanned once so the reference graph (reachability for the
     staleness check, the ranked table) passes through them. *)
  List.iter
    (fun fn ->
      let _, rs = scan t fn in
      Hashtbl.replace t.refs fn.Callgraph.f_key rs)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        if not (Hashtbl.mem t.trusted fn.Callgraph.f_key) then begin
          let s, rs = scan t fn in
          Hashtbl.replace t.refs fn.Callgraph.f_key rs;
          (match Hashtbl.find_opt t.summaries fn.Callgraph.f_key with
          | Some old
            when old.s_work = s.s_work && old.s_alloc = s.s_alloc ->
            ()
          | _ -> changed := true);
          Hashtbl.replace t.summaries fn.Callgraph.f_key s
        end)
      fns
  done;
  t

(* --- enforcement ------------------------------------------------------- *)

let roots t =
  List.filter_map
    (fun fn ->
      match Callgraph.attr fn hotpath_attr with
      | Some budget -> Some (fn, budget)
      | None -> None)
    (table_fns t.graph)

let effective t key =
  match Hashtbl.find_opt t.trusted key with
  | Some (w, a) -> (w, a, [], [])
  | None -> (
    match Hashtbl.find_opt t.summaries key with
    | Some s -> (s.s_work, s.s_alloc, s.s_wwit, s.s_awit)
    | None -> (0, 0, [], []))

let offending mask budget =
  if Loops.is_top mask then [ Loops.top ]
  else Loops.bits (mask land lnot (budget lor Loops.alloc_const))

let witness_for wits fallback_loc bit =
  match List.find_opt (fun (b, _, _) -> b = bit) wits with
  | Some (_, loc, desc) -> (loc, desc)
  | None -> (fallback_loc, "propagated from a trusted summary")

let run t sink =
  let fns = table_fns t.graph in
  (* The boxed-float-comparator rule is structural, not budgeted: the
     shape is wrong wherever it appears on analyzed code. *)
  let caller_unit_of (fn : Callgraph.fn) = fn.Callgraph.f_unit.Cmt_load.u_name in
  ignore caller_unit_of;
  List.iter
    (fun (fn : Callgraph.fn) ->
      let hook it (e : Typedtree.expression) =
        (match e.Typedtree.exp_desc with
        | Typedtree.Texp_apply (_, args) ->
          List.iter
            (fun (_, a) ->
              match a with
              | Some a when is_float_comparator_literal a ->
                Diag.add sink ~rule:comparator_rule ~loc:a.Typedtree.exp_loc
                  "float comparator closure passed to a polymorphic \
                   higher-order function: both floats are boxed on every \
                   comparison; specialize the container to unboxed keys \
                   (int-keyed heap, float array sort via Float.compare)"
              | _ -> ())
            args
        | _ -> ());
        Tast_iterator.default_iterator.expr it e
      in
      let it = { Tast_iterator.default_iterator with expr = hook } in
      it.Tast_iterator.expr it fn.Callgraph.f_expr)
    fns;
  List.iter
    (fun ((fn : Callgraph.fn), s) ->
      Diag.addf sink ~rule:annot_rule ~loc:fn.Callgraph.f_loc
        "trusted cost annotation %S on %s does not parse; expected e.g. \
         \"O(queue)\" or \"O(members); alloc O(1)\""
        s
        (pretty fn.Callgraph.f_key))
    t.bad_trusted;
  List.iter
    (fun ((fn : Callgraph.fn), budget) ->
      match Loops.parse_budget budget with
      | None ->
        Diag.addf sink ~rule:annot_rule ~loc:fn.Callgraph.f_loc
          "hot-path budget %S on %s does not parse; expected e.g. \
           \"O(queue)\" or \"O(members+queue); alloc O(1)\""
          budget
          (pretty fn.Callgraph.f_key)
      | Some (bw, ba) ->
        if not (is_arrow fn.Callgraph.f_expr.Typedtree.exp_type) then
          Diag.addf sink ~rule:unused_rule ~loc:fn.Callgraph.f_loc
            "hot-path budget on %s, which is not a function; the \
             annotation has no effect"
            (pretty fn.Callgraph.f_key)
        else begin
          let w, a, wwit, awit = effective t fn.Callgraph.f_key in
          List.iter
            (fun bit ->
              let loc, desc = witness_for wwit fn.Callgraph.f_loc bit in
              Diag.addf sink ~rule:cost_rule ~loc
                "hot path %s exceeds its work budget %S: %s"
                (pretty fn.Callgraph.f_key)
                budget desc)
            (offending w bw);
          List.iter
            (fun bit ->
              let loc, desc = witness_for awit fn.Callgraph.f_loc bit in
              Diag.addf sink ~rule:alloc_rule ~loc
                "hot path %s exceeds its allocation budget %S: %s"
                (pretty fn.Callgraph.f_key)
                budget desc)
            (offending a ba)
        end)
    (roots t);
  (* Stale trusted summaries: a waiver no hot path reaches. *)
  let root_keys = List.map (fun (fn, _) -> fn.Callgraph.f_key) (roots t) in
  let trusted_keys =
    List.filter
      (fun (fn : Callgraph.fn) -> Hashtbl.mem t.trusted fn.Callgraph.f_key)
      fns
  in
  let stale =
    Loops.stale_trusted ~roots:root_keys
      ~refs:(fun key -> Hashtbl.find t.refs key)
      ~trusted:(List.map (fun (fn : Callgraph.fn) -> fn.Callgraph.f_key)
                  trusted_keys)
  in
  List.iter
    (fun key ->
      match Callgraph.find t.graph key with
      | Some fn ->
        Diag.addf sink ~rule:unused_rule ~loc:fn.Callgraph.f_loc
          "trusted cost annotation on %s is not reachable from any \
           [@@analysis.hotpath] root; remove it or annotate the hot path \
           it was written for"
          (pretty key)
      | None -> ())
    stale

(* --- the ranked table -------------------------------------------------- *)

(* Every function reachable from a hot-path root, ranked by inferred
   work (Top first, then heavier bound classes): the profiling
   worklist.  Deterministic — sorted, no timestamps. *)
let ranked_table t =
  let root_list = roots t in
  let budget_of =
    List.map (fun ((fn : Callgraph.fn), b) -> (fn.Callgraph.f_key, b)) root_list
  in
  let reached = Hashtbl.create 64 in
  let rec visit key =
    if not (Hashtbl.mem reached key) then begin
      Hashtbl.replace reached key ();
      List.iter visit
        (match Hashtbl.find_opt t.refs key with Some l -> l | None -> [])
    end
  in
  List.iter (fun (k, _) -> visit k) budget_of;
  let rank m = if Loops.is_top m then max_int else m land lnot Loops.alloc_const in
  let rows =
    Hashtbl.fold
      (fun key () acc ->
        let w, a, _, _ = effective t key in
        (rank w, rank a, pretty key, key, w, a) :: acc)
      reached []
  in
  let rows =
    List.sort
      (fun (rw1, ra1, n1, k1, _, _) (rw2, ra2, n2, k2, _, _) ->
        let c = compare rw2 rw1 in
        if c <> 0 then c
        else
          let c = compare ra2 ra1 in
          if c <> 0 then c
          else
            let c = compare n1 n2 in
            if c <> 0 then c else compare k1 k2)
      rows
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "cost: %d hot-path root(s), %d reachable function(s)\n"
       (List.length root_list) (List.length rows));
  Buffer.add_string b
    (Printf.sprintf "  %-18s %-18s %s\n" "work" "alloc" "function");
  List.iter
    (fun (_, _, name, key, w, a) ->
      let suffix =
        match List.assoc_opt key budget_of with
        | Some budget -> Printf.sprintf "  [root: %s]" budget
        | None -> ""
      in
      Buffer.add_string b
        (Printf.sprintf "  %-18s %-18s %s%s\n" (Loops.to_string w)
           (Loops.to_string (a land lnot Loops.alloc_const))
           name suffix))
    rows;
  Buffer.contents b
