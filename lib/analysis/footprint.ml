(* Field-sensitive read/write footprints.

   The boolean [Mutate] effect says "this function writes something";
   the parallel-apply roadmap item needs to know *what*.  This pass
   refines it into per-function footprints over cells — abstract
   locations identified by [(type name, mutable field name)]:

   - a record's mutable field: [Texp_setfield] writes
     [(type_of obj, field)], [Texp_field] on a mutable label reads it;
   - a ref cell: [!] / [:=] / [incr] / [decr] read or write
     [("<param> ref", "contents")] — parameterized by the element type's
     head constructor, so an [int ref] and a [state ref] never alias;
   - a mutable container: the Hashtbl/Queue/Stack/Buffer/Array/Bytes/
     Atomic primitives (matched through the shared alias table, so
     [module H = Hashtbl] hides nothing) read or write
     [(container type, "*")];
   - a top-level mutable global (the ambient-state pass's verdicts):
     any reference reads [("global", name)]; appearing as the mutated
     operand of [:=]/a container mutator — or as the object of a
     [Texp_setfield] — writes it.  Races on ambient state are exactly
     the multi-tenant bugs the sharding work must exclude.

   Accesses carry the set of synchronization tokens held at the access
   site: the body of a function literal passed to [Mutex.protect] holds
   a token naming that mutex; a binding annotated
   [@@analysis.synchronized "tok"] holds ["tok"] throughout.  Function
   summaries are the least fixpoint over the reference graph of

     footprint(f) = direct(f)
                  ∪ { (cell, rw, toks ∪ toks_at_callsite)
                      | g referenced by f, (cell, rw, toks) ∈ footprint(g) }

   with entries for the same [(cell, rw)] merged by token-set
   *intersection* — a token survives only if it is held on every path
   to the access, the sound direction for a race check.  Cells only
   grow and token sets only shrink, so the fixpoint terminates.

   The traversal also collects the parallel spawn sites ([Domain.spawn]
   / [Thread.create]): an applied or partially-applied named function
   becomes a root by its table key; a literal closure becomes a pseudo
   function keyed "<enclosing>#spawn@<line>" whose body is scanned like
   any other function (with an empty token context — the closure runs
   on another domain, not under the spawner's locks).  The race checker
   consumes both.  [solve] is pure data-in/data-out and is unit-tested
   directly, convergence on cyclic reference graphs included. *)

type cell = { c_type : string; c_field : string }

type access = {
  a_cell : cell;
  a_write : bool;
  a_tokens : string list;  (** sorted; synchronization held at the site *)
  a_loc : Location.t;
}

type edge = { e_callee : string; e_tokens : string list }

type spawn = {
  s_root : string;  (** table key (named fn) or pseudo key (literal) *)
  s_label : string;
  s_loc : Location.t;
  s_literal : bool;
}

type t = {
  graph : Callgraph.t;
  direct : (string, access list) Hashtbl.t;  (** key -> accesses, reversed *)
  edges : (string, edge list) Hashtbl.t;
  mutable spawns : spawn list;  (** in traversal order *)
  summaries : (string, (cell * bool, string list) Hashtbl.t) Hashtbl.t;
}

let sync_prims = [ "Mutex.protect" ]
let spawn_prims = [ "Domain.spawn"; "Thread.create" ]

let ref_reads = [ "!" ]
let ref_writes = [ ":="; "incr"; "decr" ]

let container_writes =
  [ "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace"; "Queue.add"; "Queue.push";
    "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer"; "Stack.push";
    "Stack.pop"; "Stack.clear"; "Buffer.add_string"; "Buffer.add_char";
    "Buffer.add_bytes"; "Buffer.add_subbytes"; "Buffer.clear"; "Buffer.reset";
    "Array.set"; "Array.fill"; "Array.blit"; "Array.unsafe_set"; "Bytes.set";
    "Bytes.fill"; "Bytes.blit"; "Atomic.set"; "Atomic.incr"; "Atomic.decr";
    "Atomic.exchange"; "Atomic.compare_and_set"; "Atomic.fetch_and_add" ]

let container_reads =
  [ "Hashtbl.find"; "Hashtbl.find_opt"; "Hashtbl.find_all"; "Hashtbl.mem";
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.length"; "Queue.peek";
    "Queue.top"; "Queue.is_empty"; "Queue.length"; "Queue.iter"; "Queue.fold";
    "Stack.top"; "Stack.is_empty"; "Stack.length"; "Buffer.contents";
    "Buffer.length"; "Buffer.nth"; "Array.get"; "Array.unsafe_get";
    "Bytes.get"; "Atomic.get" ]

let compare_cell a b =
  let c = compare a.c_type b.c_type in
  if c <> 0 then c else compare a.c_field b.c_field

let pp_cell ppf c = Format.fprintf ppf "%s.%s" c.c_type c.c_field

(* --- cell spelling ---------------------------------------------------- *)

(* [normalize] so a cell's type spells the same everywhere
   ("Hashtbl.t", never "Stdlib.Hashtbl.t"): cell equality across two
   roots' footprints is what the race pairing compares. *)
let head_name ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Cmt_load.normalize (Cmt_load.path_name p)
  | _ -> "?"

(* The cell of a ref operation, from the *ref expression*'s type
   ['a ref]: parameterize by the element's head constructor. *)
let ref_cell (e : Typedtree.expression) =
  let param =
    match Types.get_desc e.Typedtree.exp_type with
    | Types.Tconstr (_, [ a ], _) -> (
      match Types.get_desc a with
      | Types.Tconstr (p, _, _) -> Cmt_load.normalize (Cmt_load.path_name p)
      | _ -> "_")
    | _ -> "_"
  in
  { c_type = param ^ " ref"; c_field = "contents" }

let container_cell (e : Typedtree.expression) =
  { c_type = head_name e.Typedtree.exp_type; c_field = "*" }

(* --- the traversal ---------------------------------------------------- *)

let add_access t key a =
  let cur = match Hashtbl.find_opt t.direct key with Some l -> l | None -> [] in
  Hashtbl.replace t.direct key (a :: cur)

let add_edge t key e =
  let cur = match Hashtbl.find_opt t.edges key with Some l -> l | None -> [] in
  Hashtbl.replace t.edges key (e :: cur)

let first_arg args =
  List.find_map (fun (_, a) -> a) args

let rec arg_head_path (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | Typedtree.Texp_apply (f, _) -> arg_head_path f
  | _ -> None

let scan_unit t ~globals (fn : Callgraph.fn) =
  let caller_unit = fn.Callgraph.f_unit.Cmt_load.u_name in
  let canonical p = Callgraph.canonical t.graph ~caller_unit p in
  let resolve p = Callgraph.resolve t.graph ~caller_unit p in
  let resolve_global (e : Typedtree.expression) =
    match arg_head_path e with
    | Some p -> (
      match resolve p with
      | Some g when Hashtbl.mem globals g.Callgraph.f_key ->
        Some g.Callgraph.f_key
      | Some _ | None -> None)
    | None -> None
  in
  let global_cell key = { c_type = "global"; c_field = Cmt_load.demangle key } in
  (* [key] is where accesses/edges accrue: the enclosing function, or a
     pseudo function for a spawned literal. *)
  let rec walk key tokens (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      match resolve p with
      | Some g when Hashtbl.mem globals g.Callgraph.f_key ->
        add_access t key
          { a_cell = global_cell g.Callgraph.f_key; a_write = false;
            a_tokens = tokens; a_loc = e.Typedtree.exp_loc }
      | Some g when g.Callgraph.f_key <> key ->
        add_edge t key { e_callee = g.Callgraph.f_key; e_tokens = tokens }
      | Some _ | None -> ())
    | Typedtree.Texp_setfield (obj, _, lbl, v) ->
      add_access t key
        { a_cell =
            { c_type = head_name obj.Typedtree.exp_type;
              c_field = lbl.Types.lbl_name };
          a_write = true; a_tokens = tokens; a_loc = e.Typedtree.exp_loc };
      (match resolve_global obj with
      | Some g ->
        add_access t key
          { a_cell = global_cell g; a_write = true; a_tokens = tokens;
            a_loc = e.Typedtree.exp_loc }
      | None -> walk key tokens obj);
      walk key tokens v
    | Typedtree.Texp_field (obj, _, lbl) ->
      if lbl.Types.lbl_mut = Asttypes.Mutable then
        add_access t key
          { a_cell =
              { c_type = head_name obj.Typedtree.exp_type;
                c_field = lbl.Types.lbl_name };
            a_write = false; a_tokens = tokens; a_loc = e.Typedtree.exp_loc };
      walk key tokens obj
    | Typedtree.Texp_apply (f, args) -> (
      let head =
        match f.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> Some (canonical p, p)
        | _ -> None
      in
      match head with
      | Some (name, _) when List.mem name spawn_prims ->
        (* The spawned computation runs on another domain: record it as
           a parallel root, do not charge it to the spawner. *)
        (match first_arg args with
        | Some arg -> (
          let loc = e.Typedtree.exp_loc in
          let named =
            match arg_head_path arg with Some p -> resolve p | None -> None
          in
          match named with
          | Some g ->
            t.spawns <-
              { s_root = g.Callgraph.f_key;
                s_label = Cmt_load.demangle g.Callgraph.f_key; s_loc = loc;
                s_literal = false }
              :: t.spawns;
            (* arguments of a partial application are evaluated by the
               spawner *)
            List.iter
              (fun (_, a) ->
                match a with
                | Some (x : Typedtree.expression)
                  when x.Typedtree.exp_loc <> arg.Typedtree.exp_loc ->
                  walk key tokens x
                | _ -> ())
              args
          | None ->
            let line = loc.Location.loc_start.Lexing.pos_lnum in
            let pseudo = Printf.sprintf "%s#spawn@%d" key line in
            t.spawns <-
              { s_root = pseudo;
                s_label =
                  Printf.sprintf "%s (closure spawned at line %d)"
                    (Cmt_load.demangle key) line;
                s_loc = loc; s_literal = true }
              :: t.spawns;
            walk pseudo [] arg)
        | None -> ())
      | Some (name, p) when List.mem name sync_prims ->
        let token =
          match first_arg args with
          | Some m -> (
            match arg_head_path m with
            | Some mp -> canonical mp
            | None ->
              Printf.sprintf "mutex@%s:%d"
                e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_fname
                e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum)
          | None -> "mutex@?"
        in
        ignore p;
        List.iter
          (fun (_, a) ->
            match a with
            | Some (x : Typedtree.expression) ->
              if Effects.is_fun_literal x then
                walk key (List.sort_uniq compare (token :: tokens)) x
              else walk key tokens x
            | None -> ())
          args
      | Some (name, _)
        when List.mem name ref_reads || List.mem name ref_writes
             || List.mem name container_writes
             || List.mem name container_reads ->
        let write = List.mem name ref_writes || List.mem name container_writes in
        (match first_arg args with
        | Some operand ->
          let cell =
            if List.mem name ref_reads || List.mem name ref_writes then
              ref_cell operand
            else container_cell operand
          in
          add_access t key
            { a_cell = cell; a_write = write; a_tokens = tokens;
              a_loc = e.Typedtree.exp_loc };
          (match resolve_global operand with
          | Some g ->
            add_access t key
              { a_cell = global_cell g; a_write = write; a_tokens = tokens;
                a_loc = e.Typedtree.exp_loc }
          | None -> ())
        | None -> ());
        List.iter
          (fun (_, a) -> match a with Some x -> walk key tokens x | None -> ())
          args
      | _ ->
        walk key tokens f;
        List.iter
          (fun (_, a) -> match a with Some x -> walk key tokens x | None -> ())
          args)
    | _ -> List.iter (walk key tokens) (Callgraph.subexprs e)
  in
  let tokens =
    match Callgraph.attr fn "analysis.synchronized" with
    | Some tok when tok <> "" -> [ tok ]
    | Some _ -> [ "synchronized" ]
    | None -> []
  in
  walk fn.Callgraph.f_key tokens fn.Callgraph.f_expr

(* --- the fixpoint (pure) ---------------------------------------------- *)

let intersect a b = List.filter (fun x -> List.mem x b) a

(* [solve ~direct ~edges] maps each key to its summary: a sorted
   [((cell, write), tokens)] list.  Pure so the convergence tests can
   feed synthetic (cyclic) graphs. *)
let solve ~direct ~edges =
  let summaries = Hashtbl.create 64 in
  let summary key =
    match Hashtbl.find_opt summaries key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace summaries key s;
      s
  in
  let merge tbl centry tokens =
    match Hashtbl.find_opt tbl centry with
    | None ->
      Hashtbl.replace tbl centry tokens;
      true
    | Some old ->
      let inter = intersect old tokens in
      if List.length inter < List.length old then begin
        Hashtbl.replace tbl centry inter;
        true
      end
      else false
  in
  List.iter
    (fun (key, accesses) ->
      let s = summary key in
      List.iter
        (fun a -> ignore (merge s (a.a_cell, a.a_write) a.a_tokens))
        accesses)
    direct;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (key, es) ->
        let s = summary key in
        List.iter
          (fun e ->
            let callee = summary e.e_callee in
            let entries =
              Hashtbl.fold (fun k v acc -> (k, v) :: acc) callee []
            in
            List.iter
              (fun (centry, tokens) ->
                let lifted =
                  List.sort_uniq compare (tokens @ e.e_tokens)
                in
                if merge s centry lifted then changed := true)
              entries)
          es)
      edges
  done;
  summaries

let entries summaries key =
  match Hashtbl.find_opt summaries key with
  | None -> []
  | Some s ->
    List.sort
      (fun ((ca, wa), _) ((cb, wb), _) ->
        let c = compare_cell ca cb in
        if c <> 0 then c else compare wa wb)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s [])

(* --- scanning a whole graph ------------------------------------------- *)

let scan (graph : Callgraph.t) ~globals =
  let t =
    {
      graph;
      direct = Hashtbl.create 256;
      edges = Hashtbl.create 256;
      spawns = [];
      summaries = Hashtbl.create 256;
    }
  in
  let gset = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace gset g ()) globals;
  List.iter
    (fun key ->
      match Callgraph.find graph key with
      | Some fn -> scan_unit t ~globals:gset fn
      | None -> ())
    graph.Callgraph.keys;
  t.spawns <- List.rev t.spawns;
  let direct =
    Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) t.direct []
  in
  let edges = Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) t.edges [] in
  let summaries = solve ~direct ~edges in
  Hashtbl.reset t.summaries;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.summaries k v) summaries;
  t

let summary t key = entries t.summaries key

(* A deterministic witness for [cell] under [root]: BFS along the
   reference edges in traversal order, first direct access wins; prefer
   a write witness when one exists. *)
let witness t ~root cell =
  let seen = Hashtbl.create 64 in
  let best = ref None in
  let queue = Queue.create () in
  Queue.add root queue;
  Hashtbl.replace seen root ();
  (try
     while not (Queue.is_empty queue) do
       let k = Queue.pop queue in
       (match Hashtbl.find_opt t.direct k with
       | Some accesses ->
         List.iter
           (fun a ->
             if compare_cell a.a_cell cell = 0 then
               match (!best, a.a_write) with
               | None, _ -> best := Some (k, a)
               | Some (_, b), true when not b.a_write -> best := Some (k, a)
               | _ -> ())
           (List.rev accesses)
       | None -> ());
       (match !best with
       | Some (_, a) when a.a_write -> raise Exit
       | _ -> ());
       match Hashtbl.find_opt t.edges k with
       | Some es ->
         List.iter
           (fun e ->
             if not (Hashtbl.mem seen e.e_callee) then begin
               Hashtbl.replace seen e.e_callee ();
               Queue.add e.e_callee queue
             end)
           (List.rev es)
       | None -> ()
     done
   with Exit -> ());
  !best
