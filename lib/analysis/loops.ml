(* The bound-class lattice and iteration vocabulary of the hot-path
   cost analysis (cost.ml).

   A cost summary is a *set* of bound classes — which system quantities
   a function's work (or allocation) is linear in — rather than a total
   order: [O(members+queue)] is a meaningful budget for an ack handler
   that both recomputes a safe index over the membership and drains the
   delivery queue.  The classes:

   - batch:   the function's own input data (a parameter collection, a
              message payload, a submission batch of [Op]s);
   - members: the view membership ([Node_id.Set]/[Map], state messages);
   - queue:   the ordered-action structures (action ids, pending action
              lists, delivery queues, timer heaps);
   - log:     the write-ahead log (frames, recovery spans);
   - Top:     no bound inferred (nested whole-collection scans,
              recursion, [while], data the tables cannot classify).

   Join is set union; Top absorbs.  A budget permits a set of classes,
   so a summary fits iff it is a subset and not Top.  The same masks
   describe allocation, with one extra bit: [alloc_const] marks
   constant-size allocation (a return record, a closure built once per
   call), which every budget tolerates — budgets constrain what is
   allocated *per element of a loop*, not the O(1) boxing every OCaml
   function performs.

   Everything in this module is pure string/int manipulation so the
   unit tests (test_analysis.ml) exercise the lattice, the budget
   grammar and the type-marker classification without loading cmts. *)

(* --- masks ------------------------------------------------------------ *)

let batch = 1
let members = 2
let queue = 4
let log_bound = 8
let top = 16
let alloc_const = 32

let const = 0
let is_top m = m land top <> 0
let join a b = a lor b

(* Does summary [m] fit within budget [b]?  [alloc_const] is always
   tolerated; Top fits nothing (and, as a budget, would permit
   anything — the grammar cannot spell it, deliberately). *)
let fits m b =
  (not (is_top m)) && m land lnot (b lor alloc_const) = 0

(* Fixed rendering order so messages and tables are deterministic. *)
let class_names =
  [ (batch, "batch"); (members, "members"); (queue, "queue");
    (log_bound, "log") ]

let class_name bit =
  match List.assoc_opt bit class_names with Some n -> n | None -> "?"

let to_string m =
  if is_top m then "Top"
  else
    match List.filter (fun (bit, _) -> m land bit <> 0) class_names with
    | [] -> "O(1)"
    | present ->
      "O(" ^ String.concat "+" (List.map snd present) ^ ")"

(* The class bits of [m], largest first — the ranking order of the
   --cost table (log > queue > members > batch). *)
let bits m =
  List.filter_map
    (fun (bit, _) -> if m land bit <> 0 then Some bit else None)
    (List.rev class_names)

(* --- the budget grammar ----------------------------------------------- *)

(* budget ::= work [ ";" "alloc" work ]
   work   ::= "O(" classes ")"
   classes::= "1" | class ("+" class)*
   class  ::= "batch" | "members" | "queue" | "log"

   "O(1)" is the empty set.  When the alloc clause is omitted the
   allocation budget defaults to the work budget (a members-bounded
   handler may build a members-sized structure, and any handler may do
   constant allocation). *)

let strip_spaces s =
  String.to_seq s
  |> Seq.filter (fun c -> c <> ' ' && c <> '\t')
  |> String.of_seq

let parse_classes s =
  if s = "1" then Some const
  else
    let parts = String.split_on_char '+' s in
    List.fold_left
      (fun acc part ->
        match acc with
        | None -> None
        | Some m -> (
          match
            List.find_opt (fun (_, n) -> n = part) class_names
          with
          | Some (bit, _) -> Some (m lor bit)
          | None -> None))
      (Some const) parts

let parse_work s =
  let n = String.length s in
  if n >= 3 && String.sub s 0 2 = "O(" && s.[n - 1] = ')' then
    parse_classes (String.sub s 2 (n - 3))
  else None

let parse_budget s =
  match String.split_on_char ';' (strip_spaces s) with
  | [ work ] -> (
    match parse_work work with
    | Some w -> Some (w, w)
    | None -> None)
  | [ work; alloc ] when Cmt_load.has_prefix "alloc" alloc -> (
    let alloc = String.sub alloc 5 (String.length alloc - 5) in
    match (parse_work work, parse_work alloc) with
    | Some w, Some a -> Some (w, a)
    | _ -> None)
  | _ -> None

(* --- type-marker classification --------------------------------------- *)

(* What a collection is *of* decides what its length is bounded by: a
   [state_msg array] is the membership however it was built, an
   [Action.Id.t list] is a queue segment.  The markers are substrings
   of the demangled type-constructor names appearing in the collection
   type, checked in priority order (log before queue before members
   before batch: a per-sender pending list mentions both [Node_id] and
   [Action], and the action bound is the one that grows). *)

let marker_table =
  [ (log_bound, [ "Wlog"; "frame" ]);
    (queue, [ "Action"; "timer"; "choice"; "Heap"; "Id_tbl" ]);
    (members, [ "Node_id"; "state_msg"; "prim_component"; "vulnerable" ]);
    (batch, [ "Op"; "Value"; "payload" ]) ]

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
  in
  at 0

let classify_names names =
  List.find_map
    (fun (bit, markers) ->
      if
        List.exists
          (fun name ->
            List.exists (fun m -> contains_sub name m) markers)
          names
      then Some bit
      else None)
    marker_table

(* --- the iteration vocabulary ----------------------------------------- *)

(* Per canonical callee name: the position of the scanned collection
   among the positional arguments, and whether the primitive allocates
   a result proportional to it.  [scan_target] also recognizes the
   functorized spellings ("Node_id.Set.fold", "Hashtbl.Make.iter")
   through their last components, which is how [Callgraph.canonical]
   spells them. *)

type scan = { sc_arg : int; sc_allocs : bool }

let sc arg allocs = Some { sc_arg = arg; sc_allocs = allocs }

let list_scans op =
  match op with
  | "iter" | "map" | "mapi" | "iteri" | "filter" | "filter_map"
  | "concat_map" | "rev_map" | "for_all" | "exists" | "find"
  | "find_opt" | "find_map" | "partition" | "sort" | "stable_sort"
  | "fast_sort" | "sort_uniq" | "mem" | "memq" | "assoc" | "assoc_opt"
  | "mem_assoc" | "remove_assoc" ->
    sc 1
      (match op with
      | "iter" | "iteri" | "for_all" | "exists" | "find" | "find_opt"
      | "find_map" | "mem" | "memq" | "assoc" | "assoc_opt" | "mem_assoc" ->
        false
      | _ -> true)
  | "init" -> sc 0 true (* the bound is the first argument *)
  | "fold_left" -> sc 2 false
  | "fold_right" -> sc 1 false
  | "length" -> sc 0 false
  | "rev" | "append" | "rev_append" | "concat" | "flatten" | "split"
  | "combine" | "of_seq" ->
    sc 0 true
  | "nth" | "nth_opt" -> sc 0 false
  | _ -> None

let array_scans op =
  match op with
  | "iter" | "map" | "mapi" | "iteri" | "for_all" | "exists" | "mem"
  | "sort" | "stable_sort" ->
    sc 1
      (match op with
      | "iter" | "iteri" | "for_all" | "exists" | "mem" -> false
      | _ -> true)
  | "init" | "make" -> sc 0 true (* the bound is the first argument *)
  | "fold_left" -> sc 2 false
  | "fold_right" -> sc 1 false
  | "to_list" | "of_list" | "copy" | "sub" | "append" | "concat" ->
    sc 0 true
  | _ -> None

let seq_scans op =
  match op with
  | "iter" | "iteri" -> sc 1 false
  | "fold_left" -> sc 2 false
  | "length" -> sc 0 false
  | _ -> None

let set_scans op =
  match op with
  | "iter" | "fold" | "map" | "filter" | "filter_map" | "for_all"
  | "exists" | "partition" ->
    sc 1
      (match op with
      | "iter" | "fold" | "for_all" | "exists" -> false
      | _ -> true)
  | "elements" | "to_list" | "of_list" | "cardinal" | "union" | "inter"
  | "diff" | "subset" | "equal" | "compare" ->
    sc 0
      (match op with
      | "cardinal" | "subset" | "equal" | "compare" -> false
      | _ -> true)
  | _ -> None

let map_scans op =
  match op with
  | "iter" | "fold" | "map" | "mapi" | "filter" | "filter_map"
  | "for_all" | "exists" | "partition" | "merge" | "union" ->
    sc 1
      (match op with
      | "iter" | "fold" | "for_all" | "exists" -> false
      | _ -> true)
  | "bindings" | "to_list" | "of_list" | "cardinal" | "equal" | "compare" ->
    sc 0 (op = "bindings" || op = "to_list" || op = "of_list")
  | _ -> None

let hashtbl_scans op =
  match op with
  | "iter" -> sc 1 false
  | "fold" -> sc 1 false
  | "copy" | "to_seq" -> sc 0 true
  | _ -> None

let string_scans op =
  match op with
  | "concat" -> sc 1 true
  | "split_on_char" -> sc 1 true
  | "map" | "iter" -> sc 1 (op = "map")
  | _ -> None

let scan_target canonical =
  match List.rev (String.split_on_char '.' canonical) with
  | [ "@" ] -> sc 0 true
  | [ op; "List" ] -> list_scans op
  | [ op; "Array" ] -> array_scans op
  | [ op; "Seq" ] -> seq_scans op
  | [ op; "String" ] -> string_scans op
  | [ op; "Hashtbl" ] | op :: "Make" :: "Hashtbl" :: _ -> hashtbl_scans op
  | op :: "Set" :: _ -> set_scans op
  | op :: "Map" :: _ -> map_scans op
  | _ -> None

(* Constant-size allocation builders that are not otherwise scans. *)
let alloc_prims =
  [ "^"; "ref"; "String.make"; "String.sub"; "Bytes.create"; "Bytes.make";
    "Bytes.sub"; "Printf.sprintf"; "Format.sprintf"; "Format.asprintf";
    "Buffer.create"; "Buffer.contents" ]

(* --- annotation hygiene ------------------------------------------------ *)

(* A trusted [@@analysis.cost] summary that no [@@analysis.hotpath]
   root reaches constrains nothing: the waiver would silently survive a
   refactor that removed the hot path it was written for.  Pure
   reachability over the reference graph so the check (and its unit
   test) needs no cmts; mirrors Globals.stale_suppressions. *)
let stale_trusted ~roots ~refs ~trusted =
  let reached = Hashtbl.create 64 in
  let rec visit key =
    if not (Hashtbl.mem reached key) then begin
      Hashtbl.replace reached key ();
      List.iter visit (try refs key with Not_found -> [])
    end
  in
  List.iter visit roots;
  List.filter (fun key -> not (Hashtbl.mem reached key)) trusted
