(* Write-ahead ordering: on every intraprocedural path through the core,
   a stable-storage force must dominate the corresponding GCS send.

   The paper's discipline (§4, Figure 5): an action is multicast only
   after the log record that describes it has been forced — the
   [vulnerable] record exists precisely to close the crash window that
   opens if the order is reversed.  The engine encodes the discipline
   in continuation-passing style: [Persist.sync t (fun () -> send ...)]
   runs the send once durability is confirmed, and the force itself is
   asynchronous, so code textually *after* the sync call runs *before*
   durability.  The analysis therefore tracks, along every path of
   every core function, whether an un-forced log append is pending:

   - a call with the Persist effect sets pending (and nothing in
     straight line ever clears it — only entering a continuation passed
     to a Force-effecting callee does, because only there has the force
     completed);
   - reaching a protocol send point — an application of a
     [send]-labelled record field, or a call to a function with the
     UnguardedSend effect — while pending is a violation.

   Branches fork the pending flag and rejoin with OR, so a send is
   flagged if *any* path reaches it with an un-forced append. *)

let rule = "write-ahead-ordering"

let in_scope prefixes src =
  List.exists (fun p -> Cmt_load.has_prefix p src) prefixes

let walk_cases :
    'k.
    (bool -> Typedtree.expression -> bool) ->
    bool ->
    'k Typedtree.case list ->
    bool =
 fun walk pending cases ->
  List.fold_left
    (fun acc (c : 'k Typedtree.case) ->
      let p =
        match c.Typedtree.c_guard with
        | Some g -> walk pending g
        | None -> pending
      in
      acc || walk p c.Typedtree.c_rhs)
    false cases

let check_fn (eff : Effects.t) (fn : Callgraph.fn) (sink : Diag.sink) =
  let caller_unit = fn.Callgraph.f_unit.Cmt_load.u_name in
  let graph = eff.Effects.graph in
  let resolve p = Callgraph.resolve graph ~caller_unit p in
  let callee_effects (f : Typedtree.expression) =
    match f.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      let names = Callgraph.prim_names graph ~caller_unit p in
      let prim prims = List.exists (fun n -> List.mem n prims) names in
      let resolved = resolve p in
      let e =
        Option.map (fun g -> Effects.find eff g.Callgraph.f_key) resolved
      in
      let get f = match e with Some e -> f e | None -> false in
      ( prim Effects.persist_prims || get (fun e -> e.Effects.e_persist),
        prim Effects.force_prims || get (fun e -> e.Effects.e_force),
        get (fun e -> e.Effects.e_unguarded_send),
        resolved ))
    | _ -> (false, false, false, None)
  in
  let rec walk pending (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ifthenelse (c, then_, else_) ->
      let p = walk pending c in
      let pt = walk p then_ in
      let pe = match else_ with Some e' -> walk p e' | None -> p in
      pt || pe
    | Typedtree.Texp_match (scrut, cases, _) ->
      walk_cases walk (walk pending scrut) cases
    | Typedtree.Texp_try (body, cases) ->
      let p = walk pending body in
      p || walk_cases walk p cases
    | Typedtree.Texp_function { cases; _ } -> walk_cases walk pending cases
    | Typedtree.Texp_apply (f, args) ->
      let persists, forces, unguarded, resolved = callee_effects f in
      let p = ref pending in
      (match f.exp_desc with
      | Typedtree.Texp_field (obj, _, lbl) when lbl.lbl_name = "send" ->
        p := walk !p obj;
        if !p then
          Diag.addf sink ~rule ~loc:e.exp_loc
            "group-communication send before the log force completes: the \
             multicast must run in the continuation of the stable-storage \
             sync (paper §4: the vulnerable record only covers an action \
             whose log record is durable first)"
      | _ -> p := walk !p f);
      List.iter
        (fun (_, arg) ->
          match arg with
          | Some a when forces && Effects.is_fun_literal a ->
            (* the force's continuation: durability holds inside *)
            ignore (walk false a)
          | Some a -> p := walk !p a
          | None -> ())
        args;
      if unguarded && !p then
        Diag.addf sink ~rule ~loc:e.exp_loc
          "call to %s multicasts before the log force completes: the send \
           must be dominated by the stable-storage sync (paper §4, \
           vulnerable-record discipline)"
          (match resolved with
          | Some g -> Cmt_load.demangle g.Callgraph.f_key
          | None -> "a sending function");
      !p || persists
    | _ -> List.fold_left walk pending (Callgraph.subexprs e)
  in
  ignore (walk false fn.Callgraph.f_expr)

(* Check every function of the units under the core prefixes. *)
let run (eff : Effects.t) ~core (sink : Diag.sink) =
  let graph = eff.Effects.graph in
  List.iter
    (fun key ->
      match Callgraph.find graph key with
      | Some fn when in_scope core fn.Callgraph.f_unit.Cmt_load.u_src ->
        check_fn eff fn sink
      | Some _ | None -> ())
    graph.Callgraph.keys
