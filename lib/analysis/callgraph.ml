(* The interprocedural function table and call resolution.

   Functions are the top-level [let] bindings of every loaded unit,
   keyed by "MangledUnit.name" ("Repro_core__Engine.mark_red") — the
   mangled unit prefix is what disambiguates the two [Engine] modules
   (lib/sim vs lib/core).  Nested lets are not table entries of their
   own; their bodies are analyzed as part of the enclosing binding.

   Resolution maps the [Path.t] at a use site back to a table key.  The
   typed AST records paths as written, so one callee has many
   spellings: a bare recursive call ("mark_red"), a wrapper-qualified
   cross-library call ("Repro_storage.Wlog.append"), the -open alias
   module of the enclosing library ("Repro_core__.Persist.sync"), or a
   structure-level alias ("Sim.Engine.schedule" after
   [module Sim = Repro_sim]).  Candidates for each spelling are tried
   against the table in order; unresolved uses are treated as
   effect-free by the analyses (conservative for stdlib, and the
   project's own cross-module calls all resolve). *)

type fn = {
  f_key : string;
  f_unit : Cmt_load.unit_info;
  f_name : string;
  f_expr : Typedtree.expression;
  f_loc : Location.t;
  f_attrs : Typedtree.attributes;
      (** the binding's [\@\@...] attributes plus the bound expression's
          [\@...] ones — the ambient-state and race passes read their
          [analysis.*] markers from here *)
}

type t = {
  fns : (string, fn) Hashtbl.t;
  keys : string list;  (** insertion order: unit order, then source order *)
  aliases : (string, (string * string) list) Hashtbl.t;
      (** per mangled unit: structure-level [module X = P] aliases *)
  units : Cmt_load.unit_info list;
}

(* Every direct subexpression of [e], in syntactic order — the generic
   child step for hand-rolled walks, via a one-level Tast_iterator. *)
let subexprs (e : Typedtree.expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ e' -> acc := e' :: !acc);
    }
  in
  Tast_iterator.default_iterator.expr it e;
  List.rev !acc

let bound_functions (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.filter_map
          (fun (vb : Typedtree.value_binding) ->
            match vb.vb_pat.pat_desc with
            (* [Tpat_alias] is how a type-annotated [let x : t = e]
               types: without it, exactly the bindings careful enough
               to declare their type would be invisible to every
               pass — the pre-PR 7 procedure registry was. *)
            | Typedtree.Tpat_var (id, _) | Typedtree.Tpat_alias (_, id, _) ->
              Some
                ( Ident.name id, vb.vb_expr, vb.vb_loc,
                  vb.vb_attributes @ vb.vb_expr.exp_attributes )
            | _ -> None)
          vbs
      | _ -> [])
    str.str_items

(* The head module path of a module expression, through constraints and
   functor applications: [module Tbl : S = Hashtbl.Make (K)] records
   "Tbl" -> "Hashtbl.Make", so a later [Tbl.create] canonicalizes to a
   spelling the stateful-module matchers recognize.  This is the shared
   alias table every pass (rules, globals, footprint) reads — a
   [module H = Hashtbl] cannot hide a global table from any of them. *)
let rec module_head (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Typedtree.Tmod_ident (p, _) -> Some (Cmt_load.path_name p)
  | Typedtree.Tmod_constraint (me, _, _, _) -> module_head me
  | Typedtree.Tmod_apply (f, _, _) -> module_head f
  | _ -> None

let unit_aliases (str : Typedtree.structure) =
  List.filter_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_module { mb_id = Some id; mb_expr; _ } -> (
        match module_head mb_expr with
        | Some target -> Some (Ident.name id, target)
        | None -> None)
      | _ -> None)
    str.str_items

let build (units : Cmt_load.unit_info list) =
  let fns = Hashtbl.create 256 in
  let keys = ref [] in
  let aliases = Hashtbl.create 16 in
  List.iter
    (fun (u : Cmt_load.unit_info) ->
      Hashtbl.replace aliases u.u_name (unit_aliases u.u_str);
      List.iter
        (fun (name, expr, loc, attrs) ->
          let key = u.u_name ^ "." ^ name in
          if not (Hashtbl.mem fns key) then begin
            Hashtbl.replace fns key
              { f_key = key; f_unit = u; f_name = name; f_expr = expr;
                f_loc = loc; f_attrs = attrs };
            keys := key :: !keys
          end)
        (bound_functions u.u_str))
    units;
  { fns; keys = List.rev !keys; aliases; units }

let find t key = Hashtbl.find_opt t.fns key

(* The library wrapper of a mangled unit name:
   "Repro_core__Engine" -> "Repro_core"; a plain unit is its own. *)
let lib_of_unit unit_name =
  let len = String.length unit_name in
  let rec find i =
    if i + 1 >= len then None
    else if unit_name.[i] = '_' && unit_name.[i + 1] = '_' then
      Some (String.sub unit_name 0 i)
    else find (i + 1)
  in
  match find 0 with Some lib -> lib | None -> unit_name

let drop_trailing_underscores s =
  let len = String.length s in
  let rec stop i = if i > 0 && s.[i - 1] = '_' then stop (i - 1) else i in
  String.sub s 0 (stop len)

let contains_mangling s =
  let len = String.length s in
  let rec scan i =
    i + 2 < len && ((s.[i] = '_' && s.[i + 1] = '_') || scan (i + 1))
  in
  scan 0

(* Candidate table keys for a path spelled [parts] from [caller_unit],
   most specific first. *)
let candidates ~caller_unit parts =
  match parts with
  | [] -> []
  | [ name ] -> [ caller_unit ^ "." ^ name ]
  | p0 :: p1 :: rest ->
    let join unit path = unit ^ "." ^ String.concat "." path in
    let c =
      if contains_mangling p0 then [ join p0 (p1 :: rest) ]
        (* already a mangled unit: "Repro_core__Persist.sync" *)
      else []
    in
    let c =
      c
      @
      if Cmt_load.has_prefix "Repro_" p0 then
        (* wrapper-qualified: "Repro_storage.Wlog.append", or the -open
           alias module "Repro_core__.Persist.sync" *)
        let lib = drop_trailing_underscores p0 in
        if rest = [] then [] else [ join (lib ^ "__" ^ p1) rest ]
      else []
    in
    (* same-library sibling: "Persist.sync" from Repro_core__Engine *)
    c @ [ join (lib_of_unit caller_unit ^ "__" ^ p0) (p1 :: rest) ]

let resolve t ~caller_unit (p : Path.t) =
  let raw = Cmt_load.path_name p in
  let parts = String.split_on_char '.' raw in
  (* structure-level alias substitution on the head component *)
  let parts =
    match parts with
    | head :: rest -> (
      match Hashtbl.find_opt t.aliases caller_unit with
      | Some al -> (
        match List.assoc_opt head al with
        | Some target -> String.split_on_char '.' target @ rest
        | None -> parts)
      | None -> parts)
    | [] -> parts
  in
  let rec first = function
    | [] -> None
    | key :: rest -> (
      match Hashtbl.find_opt t.fns key with
      | Some fn -> Some fn
      | None -> first rest)
  in
  first (candidates ~caller_unit parts)

(* Every name a use site answers to for primitive matching: the
   normalized syntactic spelling, plus the normalized resolved key when
   resolution succeeds ("Wlog.append" matches whether it was written
   as a bare [append] inside wlog.ml or qualified from outside). *)
let prim_names t ~caller_unit p =
  let raw = Cmt_load.normalize (Cmt_load.path_name p) in
  match resolve t ~caller_unit p with
  | Some fn -> [ raw; Cmt_load.normalize fn.f_key ]
  | None -> [ raw ]

(* The canonical spelling of a referenced path: structure-level module
   aliases substituted on the head component ([module R = Random] does
   not hide Random, [module H = Hashtbl] does not hide a table, and a
   functor alias [module Tbl = Hashtbl.Make (K)] spells [Tbl.create] as
   "Hashtbl.Make.create"), mangling stripped, Stdlib/wrapper prefixes
   dropped.  Shared by the rule catalogue and both PR 7 passes so no
   detector has a private — and therefore divergent — alias story. *)
let canonical t ~caller_unit p =
  let raw = Cmt_load.path_name p in
  let parts = String.split_on_char '.' raw in
  let parts =
    match parts with
    | head :: rest -> (
      match Hashtbl.find_opt t.aliases caller_unit with
      | Some al -> (
        match List.assoc_opt head al with
        | Some target -> String.split_on_char '.' target @ rest
        | None -> parts)
      | None -> parts)
    | [] -> parts
  in
  Cmt_load.normalize (String.concat "." parts)

(* --- analysis attributes --------------------------------------------- *)

(* [attr fn "analysis.ambient_ok"] is [None] when absent, [Some reason]
   when present ([Some ""] when the payload is missing or not a string
   literal — presence suppresses, the reason is for humans). *)
let attr (fn : fn) name =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> name then None
      else
        Some
          (match a.attr_payload with
          | Parsetree.PStr
              [
                {
                  pstr_desc =
                    Parsetree.Pstr_eval
                      ( {
                          pexp_desc =
                            Parsetree.Pexp_constant
                              (Parsetree.Pconst_string (s, _, _));
                          _;
                        },
                        _ );
                  _;
                };
              ] ->
            s
          | _ -> ""))
    fn.f_attrs
