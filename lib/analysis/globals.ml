(* Ambient-state analysis: which top-level values are process-wide
   mutable state, and who touches them.

   The sharding and parallel-apply roadmap items need engine instances
   to be cheap, self-contained values: many engines in one process,
   each owning a key shard, none observing another's state.  Any
   top-level mutable binding breaks that silently — the process-wide
   procedure registry this pass was built to catch (lib/db/procedure.ml
   before PR 7) let two tenants see each other's stored procedures.

   Detection is a three-way lattice over the top-level bindings of
   every loaded unit (they are all callgraph table entries):

   - Container: the binding's type — after head expansion, so type
     abbreviations do not hide anything — is a known mutable container
     ([ref], [Hashtbl.t], [array], [Buffer.t], [Bytes.t], [Queue.t],
     [Stack.t], [Atomic.t], [Weak.t]), or a record one of whose fields
     has such a type (a holder of a table is as ambient as the table).
   - Functor_state: the initializer is an application of a stateful
     creator ([Hashtbl.create], [ref], ...), matched through the shared
     module-alias table (Callgraph.canonical), which also resolves
     functor aliases — [module Tbl = Hashtbl.Make (K)] spells
     [Tbl.create] as "Hashtbl.Make.create".  This catches state whose
     type is abstract (the usual shape of functor-produced tables).
   - Mutable_record: the type is a record with mutable fields.  Flagged
     only when some loaded function actually writes a mutable field of
     that type (write evidence): a default-configuration record nobody
     mutates is a constant, not ambient state.

   Accessors come from the effect layer's reference graph: a function
   touches a global if its summary references it, directly or through
   callees.  Findings classify each global by reachability from the
   engine entry libraries (default lib/core, lib/db, lib/gcs — the
   [--entry] prefixes): defined inside engine code, reached from it, or
   ambient-but-internal.

   Justified exemptions carry [@@analysis.ambient_ok "why"] on the
   binding.  A suppression that suppresses nothing (the binding is not
   detected as ambient state) is itself a finding — exemptions must not
   outlive the state they excuse. *)

let rule = "ambient-state"
let unused_rule = "unused-ambient-ok"
let attr_name = "analysis.ambient_ok"

let container_types =
  [ "ref"; "Hashtbl.t"; "array"; "Buffer.t"; "Bytes.t"; "Queue.t"; "Stack.t";
    "Atomic.t"; "Weak.t"; "Ephemeron.K1.t" ]

let stateful_creators =
  [ "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Weak.create"; "Atomic.make"; "Array.make"; "Array.init";
    "Array.create_float"; "Bytes.create"; "Bytes.make" ]

(* A creator reached through a functor alias: "Hashtbl.Make.create"
   after the alias table rewrote the [Tbl] head. *)
let is_functor_creator name =
  (Cmt_load.has_prefix "Hashtbl." name || Cmt_load.has_prefix "Ephemeron." name)
  && (Filename.check_suffix name ".create" || Filename.check_suffix name ".make")

let expand env ty = try Ctype.expand_head env ty with _ -> ty

(* [normalize], not [demangle]: type paths reach here spelled through
   the stdlib alias chain ("Stdlib.Hashtbl.t"), and the leading Stdlib
   must not hide the container from [container_types]. *)
let head_constr env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, args, _) ->
    Some (Cmt_load.normalize (Cmt_load.path_name p), p, args)
  | _ -> None

let container_kind env ty =
  match head_constr env ty with
  | Some (name, _, _) when List.mem name container_types -> Some name
  | _ -> None

(* Record scrutiny: the declared kind of the head constructor.  Returns
   [(type name, has mutable field, has container-typed field)]. *)
let record_info env ty =
  match head_constr env ty with
  | Some (name, p, _) -> (
    match Env.find_type p env with
    | exception Not_found -> None
    | decl -> (
      match decl.Types.type_kind with
      | Types.Type_record (lds, _) ->
        let mut =
          List.exists
            (fun (l : Types.label_declaration) ->
              l.Types.ld_mutable = Asttypes.Mutable)
            lds
        in
        let container =
          List.exists
            (fun (l : Types.label_declaration) ->
              container_kind env l.Types.ld_type <> None)
            lds
        in
        Some (name, mut, container)
      | _ -> None))
  | None -> None

let rec expr_head_path (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply (f, _) -> expr_head_path f
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | _ -> None

type verdict =
  | Container of string  (** mutable by type: the container's type name *)
  | Functor_state of string  (** mutable by initializer: the creator *)
  | Mutable_record of string  (** record with mutable fields; needs a writer *)

(* Classify one top-level binding.  Functions are never globals — an
   arrow-typed binding closes over state at most, and the state itself
   is what gets flagged. *)
let classify (graph : Callgraph.t) (fn : Callgraph.fn) =
  let env = fn.Callgraph.f_expr.Typedtree.exp_env in
  let ty = fn.Callgraph.f_expr.Typedtree.exp_type in
  match Types.get_desc (expand env ty) with
  | Types.Tarrow _ -> None
  | _ -> (
    match container_kind env ty with
    | Some name -> Some (Container name)
    | None -> (
      let creator =
        match expr_head_path fn.Callgraph.f_expr with
        | Some p ->
          let name =
            Callgraph.canonical graph
              ~caller_unit:fn.Callgraph.f_unit.Cmt_load.u_name p
          in
          if List.mem name stateful_creators || is_functor_creator name then
            Some name
          else None
        | None -> None
      in
      match creator with
      | Some name -> Some (Functor_state name)
      | None -> (
        match record_info env ty with
        | Some (name, _, true) -> Some (Container name)
        | Some (name, true, false) -> Some (Mutable_record name)
        | Some _ | None -> None)))

(* Write evidence for the Mutable_record verdict: every record type
   name that receives a [Texp_setfield] somewhere in the loaded units. *)
let written_record_types (graph : Callgraph.t) =
  let written = Hashtbl.create 32 in
  let expr_hook it (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_setfield (obj, _, _, _) -> (
      match head_constr obj.Typedtree.exp_env obj.Typedtree.exp_type with
      | Some (name, _, _) -> Hashtbl.replace written name ()
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_hook } in
  List.iter
    (fun (u : Cmt_load.unit_info) -> it.Tast_iterator.structure it u.Cmt_load.u_str)
    graph.Callgraph.units;
  written

(* The ambient mutable globals of the loaded units, suppressed or not:
   [(key, kind description)].  The race pass reads this to give global
   state its own footprint cells. *)
let mutable_globals (graph : Callgraph.t) =
  let written = written_record_types graph in
  List.filter_map
    (fun key ->
      match Callgraph.find graph key with
      | None -> None
      | Some fn -> (
        match classify graph fn with
        | Some (Container name) -> Some (key, name)
        | Some (Functor_state creator) -> Some (key, creator ^ " state")
        | Some (Mutable_record name) ->
          if Hashtbl.mem written name then Some (key, name ^ " (mutable fields)")
          else None
        | None -> None))
    graph.Callgraph.keys

(* Pure bookkeeping for the unused-suppression report, unit-testable
   without cmts: annotated bindings that were never flagged. *)
let stale_suppressions ~annotated ~flagged =
  List.filter (fun (key, _) -> not (List.mem key flagged)) annotated

let in_any prefixes src =
  List.exists (fun p -> Cmt_load.has_prefix p src) prefixes

let run (eff : Effects.t) ~entry (sink : Diag.sink) =
  let graph = eff.Effects.graph in
  let globals = mutable_globals graph in
  (* Reverse reference graph: who references me. *)
  let rev = Hashtbl.create 256 in
  List.iter
    (fun key ->
      List.iter
        (fun callee ->
          let cur =
            match Hashtbl.find_opt rev callee with Some l -> l | None -> []
          in
          Hashtbl.replace rev callee (key :: cur))
        (Effects.refs eff key))
    graph.Callgraph.keys;
  (* Everything that transitively reaches [key], by upward BFS. *)
  let reachers key =
    let seen = Hashtbl.create 64 in
    let rec go k =
      match Hashtbl.find_opt rev k with
      | None -> ()
      | Some callers ->
        List.iter
          (fun c ->
            if not (Hashtbl.mem seen c) then begin
              Hashtbl.replace seen c ();
              go c
            end)
          callers
    in
    go key;
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
  in
  let annotated = ref [] and flagged = ref [] in
  (* Record every annotated binding (functions included: an exemption on
     something that cannot be flagged is stale by construction). *)
  List.iter
    (fun key ->
      match Callgraph.find graph key with
      | Some fn when Callgraph.attr fn attr_name <> None ->
        annotated := (key, fn.Callgraph.f_loc) :: !annotated
      | Some _ | None -> ())
    graph.Callgraph.keys;
  List.iter
    (fun (key, kind) ->
      let fn = Option.get (Callgraph.find graph key) in
      flagged := key :: !flagged;
      if Callgraph.attr fn attr_name = None then begin
        let src = fn.Callgraph.f_unit.Cmt_load.u_src in
        let classification =
          if in_any entry src then
            Printf.sprintf "defined inside engine code (%s)" src
          else
            let entry_reachers =
              List.filter
                (fun k ->
                  match Callgraph.find graph k with
                  | Some g -> in_any entry g.Callgraph.f_unit.Cmt_load.u_src
                  | None -> false)
                (reachers key)
            in
            match
              List.sort compare (List.map Cmt_load.demangle entry_reachers)
            with
            | witness :: _ ->
              Printf.sprintf "reachable from the engine entry point %s" witness
            | [] -> "not reached from engine entry points"
        in
        Diag.addf sink ~rule ~loc:fn.Callgraph.f_loc
          "top-level mutable value '%s' (%s) is process-wide ambient state, \
           %s; a second engine instance in this process would share it — \
           thread it through instance creation or justify it with \
           [@@%s \"why\"]"
          (Cmt_load.demangle key) kind classification attr_name
      end)
    globals;
  List.iter
    (fun (key, loc) ->
      Diag.addf sink ~rule:unused_rule ~loc
        "[@@%s] on '%s' suppresses nothing (the binding is not detected as \
         ambient mutable state); remove the stale exemption"
        attr_name (Cmt_load.demangle key))
    (stale_suppressions ~annotated:(List.rev !annotated) ~flagged:!flagged)
