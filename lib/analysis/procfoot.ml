(* Procedure key-space footprint inference.

   The replication paper's active transactions (§6) are stored
   procedures: deterministic functions from database state and
   arguments to an update list, re-executed at the same global-order
   position on every replica.  Two forthcoming consumers need static
   facts about them:

   - the parallel-apply scheduler (ROADMAP item 2) needs each action's
     *predicted* write keys before execution, so independent actions
     can apply concurrently — the data-item routing assumption of the
     partial-replication literature;
   - the §6 relaxed semantics skip validation for procedures that only
     emit commutative ops, which is a per-procedure classification.

   This pass finds every [Procedure.register] site in the loaded units
   (the builtins in lib/db/procedure.ml register through the same
   function fixtures and tests do), abstracts each registered body over
   the [Keyspace] lattice, and produces per procedure:

   (a) symbolic read and write sets — writes from constructed [Op.t]
       values, reads from [Database.get]/[timestamp]/[read] lookups,
       both propagated through helper calls by substituting call-site
       actuals into the callee's summary;

   (b) a determinism verdict from the [Effects] fixpoint — any
       reachable Random/wall-clock use, unordered [Hashtbl] iteration,
       physical equality on [Value.t], or reference to an ambient
       mutable global makes the body non-re-executable;

   (c) a commutativity class: a procedure is validation-skippable iff
       every op it can emit satisfies [Op.is_commutative] AND no op is
       constructed under a branch whose condition depends on a database
       read.  The read-guard refinement is what separates [restock]
       (reads only feed the output) from [transfer] (the balance check
       guards the updates): re-ordering transfer against a concurrent
       write to the same account can change whether its ops are emitted
       at all, so emitting them early is not safe even though [Add]
       itself commutes.

   Declared footprints ([register ?footprint]) are parsed from the
   register site's literal argument and diffed against the inference —
   a disagreement is a spec-drift-style finding.  The driver writes the
   whole thing as the golden-diffed procedure-manifest.json, and
   [Check.Procguard] re-validates the declarations at run time.

   Soundness: the abstraction errs upward.  Any key expression the
   evaluator cannot bound is Top; unanalyzable bodies get Top sets; the
   runtime validator then checks the concrete executions against the
   declarations the lint proved consistent with inference. *)

type op_write = {
  w_key : Keyspace.abs;
  w_commutative : bool;  (* the op constructor satisfies Op.is_commutative *)
  w_guarded : bool;  (* constructed under a db-read-dependent branch *)
}

type report = {
  r_name : string;
  r_src : string;  (* source file of the body *)
  r_body_loc : Location.t;
  r_reg_loc : Location.t;  (* the register site, for drift findings *)
  r_reads : Keyspace.abs list;
  r_writes : Keyspace.abs list;
  r_commutative : bool;
  r_nondet : string list;  (* nondeterminism sources; [] = deterministic *)
  r_declared : (Keyspace.abs list * Keyspace.abs list) option;  (* reads, writes *)
}

(* --- shared context --------------------------------------------------- *)

type helper_summary = {
  h_reads : Keyspace.abs list;
  h_writes : op_write list;
  h_ret : Keyspace.abs;  (* abstraction of the returned value as a key *)
  h_reads_db : bool;
}

let empty_helper =
  { h_reads = []; h_writes = []; h_ret = Keyspace.Top; h_reads_db = false }

type ctx = {
  eff : Effects.t;
  helpers : (string, helper_summary option) Hashtbl.t;
      (* [None] while in progress: recursion bottoms out at the empty
         summary (one-pass approximation; a recursive helper that
         grows its own footprint lands in Top via the call below) *)
  ambient : (string * string) list;  (* mutable globals: f_key, kind *)
}

let read_prims = [ "Database.get"; "Database.timestamp"; "Database.read" ]
let commutative_ops = [ "Add"; "Set_if_newer" ]
let op_constructors = [ "Set"; "Add"; "Remove"; "Set_if_newer" ]

let is_op_type ty =
  match Cmt_load.type_constr_name ty with
  | Some name -> name = "Op.t" || Filename.check_suffix name ".Op.t"
  | None -> false

let canonical ctx ~caller_unit p =
  Callgraph.canonical ctx.eff.Effects.graph ~caller_unit p

let resolve ctx ~caller_unit p =
  Callgraph.resolve ctx.eff.Effects.graph ~caller_unit p

let positional args =
  List.filter_map
    (function
      | Asttypes.Nolabel, Some (a : Typedtree.expression) -> Some a
      | _ -> None)
    args

(* --- abstract evaluation of key expressions --------------------------- *)

type st = {
  mutable reads : Keyspace.abs list;
  mutable writes : op_write list;
  mutable tainted : Ident.t list;
}

let lookup env id =
  match List.find_opt (fun (i, _) -> Ident.same i id) env with
  | Some (_, a) -> a
  | None -> Keyspace.Top

let rec helper_of ctx (fn : Callgraph.fn) =
  match Hashtbl.find_opt ctx.helpers fn.Callgraph.f_key with
  | Some (Some s) -> s
  | Some None -> empty_helper (* recursion: bottom out *)
  | None ->
    Hashtbl.replace ctx.helpers fn.Callgraph.f_key None;
    let caller_unit = fn.Callgraph.f_unit.Cmt_load.u_name in
    (* Peel curried parameters: each single-var function layer binds
       the next Param index. *)
    let rec peel i env (e : Typedtree.expression) =
      match e.exp_desc with
      | Typedtree.Texp_function
          { cases = [ { c_lhs; c_guard = None; c_rhs; _ } ]; _ } -> (
        match c_lhs.Typedtree.pat_desc with
        | Typedtree.Tpat_var (id, _) | Typedtree.Tpat_alias (_, id, _) ->
          peel (i + 1) ((id, Keyspace.Param i) :: env) c_rhs
        | Typedtree.Tpat_any -> peel (i + 1) env c_rhs
        | _ -> (env, e))
      | _ -> (env, e)
    in
    let env, body = peel 0 [] fn.Callgraph.f_expr in
    let st = { reads = []; writes = []; tainted = [] } in
    walk ctx ~caller_unit st env ~guard:false body;
    let s =
      {
        h_reads = Keyspace.normalize st.reads;
        h_writes = st.writes;
        h_ret = eval ctx ~caller_unit env body;
        h_reads_db = st.reads <> [];
      }
    in
    Hashtbl.replace ctx.helpers fn.Callgraph.f_key (Some s);
    s

and eval ctx ~caller_unit env (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) -> Keyspace.Const s
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> lookup env id
  | Typedtree.Texp_let (_, _, body) -> eval ctx ~caller_unit env body
  | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
    -> (
    let pos = positional args in
    match (canonical ctx ~caller_unit p, pos) with
    | "^", [ a; b ] ->
      Keyspace.concat (eval ctx ~caller_unit env a) (eval ctx ~caller_unit env b)
    | ("string_of_int" | "Int.to_string"), [ a ] ->
      (* the runtime key rendering of an Int argument — keeps a
         [Value.Int]-bound parameter abstract instead of Top *)
      eval ctx ~caller_unit env a
    | _, _ -> (
      match resolve ctx ~caller_unit p with
      | Some fn ->
        let s = helper_of ctx fn in
        let actuals = List.map (eval ctx ~caller_unit env) pos in
        Keyspace.subst actuals s.h_ret
      | None -> Keyspace.Top))
  | _ -> Keyspace.Top

(* --- taint: does an expression depend on a database read? ------------- *)

and mentions_read ctx ~caller_unit tainted (e : Typedtree.expression) =
  let found = ref false in
  let rec go (e : Typedtree.expression) =
    if not !found then begin
      (match e.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> (
        (match p with
        | Path.Pident id when List.exists (Ident.same id) tainted ->
          found := true
        | _ -> ());
        if List.mem (canonical ctx ~caller_unit p) read_prims then found := true
        else
          match resolve ctx ~caller_unit p with
          | Some fn -> (
            match Hashtbl.find_opt ctx.helpers fn.Callgraph.f_key with
            | Some (Some s) when s.h_reads_db -> found := true
            | Some _ -> ()
            | None -> if (helper_of ctx fn).h_reads_db then found := true)
          | None -> ())
      | _ -> ());
      if not !found then List.iter go (Callgraph.subexprs e)
    end
  in
  go e;
  !found

(* --- the body walk ---------------------------------------------------- *)

and taint_pattern_vars : type k. st -> k Typedtree.general_pattern -> unit =
 fun st p ->
  (match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> st.tainted <- id :: st.tainted
  | Typedtree.Tpat_alias (_, id, _) -> st.tainted <- id :: st.tainted
  | _ -> ());
  let it =
    {
      Tast_iterator.default_iterator with
      pat = (fun _ q -> taint_pattern_vars st q);
    }
  in
  Tast_iterator.default_iterator.pat it p

and walk ctx ~caller_unit (st : st) env ~guard (e : Typedtree.expression) =
  let eval' = eval ctx ~caller_unit env in
  match e.exp_desc with
  | Typedtree.Texp_let (_, vbs, body) ->
    List.iter (fun (vb : Typedtree.value_binding) ->
        walk ctx ~caller_unit st env ~guard vb.vb_expr)
      vbs;
    let env' =
      List.fold_left
        (fun acc (vb : Typedtree.value_binding) ->
          match vb.vb_pat.pat_desc with
          | Typedtree.Tpat_var (id, _) | Typedtree.Tpat_alias (_, id, _) ->
            (id, eval ctx ~caller_unit env vb.vb_expr) :: acc
          | _ -> acc)
        env vbs
    in
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        if mentions_read ctx ~caller_unit st.tainted vb.vb_expr then
          taint_pattern_vars st vb.vb_pat)
      vbs;
    walk ctx ~caller_unit st env' ~guard body
  | Typedtree.Texp_ifthenelse (cond, then_, else_) ->
    walk ctx ~caller_unit st env ~guard cond;
    let g = guard || mentions_read ctx ~caller_unit st.tainted cond in
    walk ctx ~caller_unit st env ~guard:g then_;
    Option.iter (walk ctx ~caller_unit st env ~guard:g) else_
  | Typedtree.Texp_match (scrut, cases, _) ->
    walk ctx ~caller_unit st env ~guard scrut;
    let g = guard || mentions_read ctx ~caller_unit st.tainted scrut in
    List.iter
      (fun (c : Typedtree.computation Typedtree.case) ->
        if g then taint_pattern_vars st c.Typedtree.c_lhs;
        Option.iter (walk ctx ~caller_unit st env ~guard:g) c.Typedtree.c_guard;
        walk ctx ~caller_unit st env ~guard:g c.Typedtree.c_rhs)
      cases
  | Typedtree.Texp_construct (_, cstr, args)
    when List.mem cstr.Types.cstr_name op_constructors && is_op_type e.exp_type
    -> (
    match args with
    | key :: rest ->
      st.writes <-
        {
          w_key = eval' key;
          w_commutative = List.mem cstr.Types.cstr_name commutative_ops;
          w_guarded = guard;
        }
        :: st.writes;
      List.iter (walk ctx ~caller_unit st env ~guard) (key :: rest)
    | [] -> ())
  | Typedtree.Texp_apply
      (({ exp_desc = Typedtree.Texp_ident (p, _, _); _ } as f), args) -> (
    walk ctx ~caller_unit st env ~guard f;
    List.iter
      (fun (_, a) -> Option.iter (walk ctx ~caller_unit st env ~guard) a)
      args;
    let pos = positional args in
    match canonical ctx ~caller_unit p with
    | ("Database.get" | "Database.timestamp") -> (
      match pos with
      | _ :: key :: _ -> st.reads <- eval' key :: st.reads
      | _ -> st.reads <- Keyspace.Top :: st.reads)
    | "Database.read" -> (
      match pos with
      | _ :: keys :: _ ->
        let rec list_elems (e : Typedtree.expression) =
          match e.exp_desc with
          | Typedtree.Texp_construct (_, { cstr_name = "::"; _ }, [ hd; tl ])
            ->
            eval' hd :: list_elems tl
          | Typedtree.Texp_construct (_, { cstr_name = "[]"; _ }, []) -> []
          | _ -> [ Keyspace.Top ]
        in
        st.reads <- list_elems keys @ st.reads
      | _ -> st.reads <- Keyspace.Top :: st.reads)
    | _ -> (
      match resolve ctx ~caller_unit p with
      | Some fn ->
        let s = helper_of ctx fn in
        let actuals = List.map eval' pos in
        st.reads <- Keyspace.subst_set actuals s.h_reads @ st.reads;
        st.writes <-
          List.map
            (fun w ->
              {
                w with
                w_key = Keyspace.subst actuals w.w_key;
                w_guarded = w.w_guarded || guard;
              })
            s.h_writes
          @ st.writes
      | None -> ()))
  | _ -> List.iter (walk ctx ~caller_unit st env ~guard) (Callgraph.subexprs e)

(* --- entry analysis: the two-stage procedure shape -------------------- *)

(* Bind the elements of the [Value.t list] argument pattern:
   [\[ Value.Text a; Value.Int n; whole \]] binds a -> Param 0,
   n -> Param 1, whole -> Param 2 (the runtime key rendering of a
   [Value.t] is [value_to_key], which both [Kparam] concretization and
   the [string_of_int] case above agree with). *)
let rec bind_list_pattern :
    type k. int -> k Typedtree.general_pattern -> (Ident.t * Keyspace.abs) list
    =
 fun i p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_construct (_, { cstr_name = "::"; _ }, [ elem; rest ], _) ->
    bind_element i elem @ bind_list_pattern (i + 1) rest
  | Typedtree.Tpat_alias (q, _, _) -> bind_list_pattern i q
  | _ -> []

and bind_element i (p : Typedtree.value Typedtree.general_pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ (id, Keyspace.Param i) ]
  | Typedtree.Tpat_alias (q, id, _) -> (id, Keyspace.Param i) :: bind_element i q
  | Typedtree.Tpat_construct (_, _, subpats, _) ->
    List.concat_map
      (fun (sp : Typedtree.value Typedtree.general_pattern) ->
        match sp.Typedtree.pat_desc with
        | Typedtree.Tpat_var (id, _) | Typedtree.Tpat_alias (_, id, _) ->
          [ (id, Keyspace.Param i) ]
        | _ -> [])
      subpats
  | _ -> []

type inference = {
  i_reads : Keyspace.abs list;
  i_writes : Keyspace.abs list;
  i_commutative : bool;
}

let analyze_body ctx ~caller_unit (body : Typedtree.expression) =
  let st = { reads = []; writes = []; tainted = [] } in
  (match body.exp_desc with
  | Typedtree.Texp_function { cases = [ { c_rhs = db_rhs; _ } ]; _ } -> (
    match db_rhs.exp_desc with
    | Typedtree.Texp_function { cases; _ } ->
      (* the canonical [fun db -> function | [args] -> ...] shape *)
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          let env = bind_list_pattern 0 c.Typedtree.c_lhs in
          Option.iter
            (walk ctx ~caller_unit st env ~guard:false)
            c.Typedtree.c_guard;
          walk ctx ~caller_unit st env ~guard:false c.Typedtree.c_rhs)
        cases
    | _ ->
      (* unrecognized shape: analyze with no parameter binding — every
         argument-derived key degrades to Top (sound, imprecise) *)
      walk ctx ~caller_unit st [] ~guard:false db_rhs)
  | _ -> walk ctx ~caller_unit st [] ~guard:false body);
  {
    i_reads = Keyspace.normalize st.reads;
    i_writes = Keyspace.normalize (List.map (fun w -> w.w_key) st.writes);
    i_commutative =
      List.for_all (fun w -> w.w_commutative && not w.w_guarded) st.writes;
  }

(* --- determinism verdict ---------------------------------------------- *)

let nondet_sources ctx (fn : Callgraph.fn) =
  let eff = Effects.find ctx.eff fn.Callgraph.f_key in
  (* Transitive reference closure for ambient-state reachability — the
     effect fixpoint has already saturated the boolean labels, but the
     ambient set is per-binding, so walk the edges here. *)
  let seen = Hashtbl.create 16 in
  let rec reach key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      List.iter reach (Effects.refs ctx.eff key)
    end
  in
  reach fn.Callgraph.f_key;
  let ambient =
    List.filter_map
      (fun (key, kind) ->
        if Hashtbl.mem seen key then
          Some
            (Printf.sprintf "ambient state %s (%s)" (Cmt_load.normalize key)
               kind)
        else None)
      ctx.ambient
  in
  List.sort compare
    ((if eff.Effects.e_random then [ "random or wall-clock read" ] else [])
    @ (if eff.Effects.e_unordered then [ "unordered hash iteration" ] else [])
    @ (if eff.Effects.e_phys_eq_value then
         [ "physical equality on Value.t" ]
       else [])
    @ ambient)

(* --- register-site discovery ------------------------------------------ *)

let string_arg (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
  | _ -> None

(* The declared footprint is a record literal of list literals of
   [key_pattern] constructors; anything else degrades to Top (which the
   drift check then reports against a precise inference — a declaration
   the lint cannot read is as good as a wrong one). *)
let rec parse_pattern ctx ~caller_unit (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_construct (_, cstr, args) -> (
    match (cstr.Types.cstr_name, args) with
    | "Kconst", [ a ] -> (
      match string_arg a with Some s -> Keyspace.Const s | None -> Keyspace.Top)
    | "Kparam", [ { exp_desc = Typedtree.Texp_constant (Asttypes.Const_int i); _ } ]
      ->
      Keyspace.Param i
    | "Kconcat", [ parts ] ->
      List.fold_left
        (fun acc p -> Keyspace.concat acc (parse_pattern ctx ~caller_unit p))
        (Keyspace.Const "")
        (pattern_list ctx ~caller_unit parts)
    | "Kany", [] -> Keyspace.Top
    | _ -> Keyspace.Top)
  | _ -> Keyspace.Top

and pattern_list ctx ~caller_unit (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_construct (_, { cstr_name = "::"; _ }, [ hd; tl ]) ->
    hd :: pattern_list ctx ~caller_unit tl
  | _ -> []

let rec parse_footprint ctx ~caller_unit (e : Typedtree.expression) =
  (* The optional argument reaches the apply node wrapped: [Some
     record] when passed, a [None] construct when omitted. *)
  match e.exp_desc with
  | Typedtree.Texp_construct (_, { cstr_name = "Some"; _ }, [ inner ]) ->
    parse_footprint ctx ~caller_unit inner
  | Typedtree.Texp_construct (_, { cstr_name = "None"; _ }, []) -> None
  | Typedtree.Texp_record { fields; _ } ->
    let field name =
      Array.to_list fields
      |> List.find_map (fun ((lbl : Types.label_description), def) ->
             if lbl.Types.lbl_name = name then
               match def with
               | Typedtree.Overridden (_, fe) ->
                 Some
                   (Keyspace.normalize
                      (List.map
                         (parse_pattern ctx ~caller_unit)
                         (pattern_list ctx ~caller_unit fe)))
               | Typedtree.Kept _ -> None
             else None)
    in
    Some
      ( (match field "reads" with Some l -> l | None -> [ Keyspace.Top ]),
        match field "writes" with Some l -> l | None -> [ Keyspace.Top ] )
  | _ -> Some ([ Keyspace.Top ], [ Keyspace.Top ])

let analyze (eff : Effects.t) =
  let graph = eff.Effects.graph in
  let ctx =
    { eff; helpers = Hashtbl.create 64; ambient = Globals.mutable_globals graph }
  in
  let reports = ref [] in
  let scan_unit (u : Cmt_load.unit_info) =
    let caller_unit = u.Cmt_load.u_name in
    let expr_hook it (e : Typedtree.expression) =
      (match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply
          ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
        when List.mem "Procedure.register"
               (canonical ctx ~caller_unit p
               :: Callgraph.prim_names graph ~caller_unit p) -> (
        let pos = positional args in
        (* [register reg "name" body]: a forwarding site whose name is
           not a literal (Replica.register_procedure) carries no
           procedure of its own and is skipped — the actual
           registrations behind it are themselves register sites. *)
        match pos with
        | [ _reg; name_arg; body_arg ] -> (
          match string_arg name_arg with
          | Some name -> (
            let declared =
              List.find_map
                (fun (lbl, a) ->
                  match (lbl, a) with
                  | ( (Asttypes.Labelled "footprint" | Asttypes.Optional "footprint"),
                      Some fe ) ->
                    parse_footprint ctx ~caller_unit fe
                  | _ -> None)
                args
            in
            let body_fn =
              match body_arg.Typedtree.exp_desc with
              | Typedtree.Texp_ident (bp, _, _) -> resolve ctx ~caller_unit bp
              | _ -> None
            in
            match body_fn with
            | Some fn ->
              let inf =
                analyze_body ctx
                  ~caller_unit:fn.Callgraph.f_unit.Cmt_load.u_name
                  fn.Callgraph.f_expr
              in
              reports :=
                {
                  r_name = name;
                  r_src = fn.Callgraph.f_unit.Cmt_load.u_src;
                  r_body_loc = fn.Callgraph.f_loc;
                  r_reg_loc = e.Typedtree.exp_loc;
                  r_reads = inf.i_reads;
                  r_writes = inf.i_writes;
                  r_commutative = inf.i_commutative;
                  r_nondet = nondet_sources ctx fn;
                  r_declared = declared;
                }
                :: !reports
            | None ->
              (* literal or unresolvable body: record it with Top sets
                 so the manifest is honest about the blind spot *)
              reports :=
                {
                  r_name = name;
                  r_src = u.Cmt_load.u_src;
                  r_body_loc = e.Typedtree.exp_loc;
                  r_reg_loc = e.Typedtree.exp_loc;
                  r_reads = [ Keyspace.Top ];
                  r_writes = [ Keyspace.Top ];
                  r_commutative = false;
                  r_nondet = [];
                  r_declared = declared;
                }
                :: !reports)
          | None -> ())
        | _ -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr = expr_hook } in
    it.Tast_iterator.structure it u.Cmt_load.u_str
  in
  List.iter scan_unit graph.Callgraph.units;
  List.sort_uniq
    (fun a b ->
      let c = compare a.r_name b.r_name in
      if c <> 0 then c
      else
        let c = compare a.r_src b.r_src in
        if c <> 0 then c
        else
          compare a.r_reg_loc.Location.loc_start.Lexing.pos_lnum
            b.r_reg_loc.Location.loc_start.Lexing.pos_lnum)
    !reports

(* --- findings --------------------------------------------------------- *)

let set_to_string set = String.concat ", " (List.map Keyspace.to_string set)

let drift_detail ~declared ~inferred =
  let undeclared =
    List.filter (fun k -> not (Keyspace.covers declared k)) inferred
  in
  let stale =
    List.filter
      (fun d ->
        match d with
        | Keyspace.Top -> not (List.exists (Keyspace.equal_abs Keyspace.Top) inferred)
        | d -> not (List.exists (Keyspace.equal_abs d) inferred))
      declared
  in
  if undeclared = [] && stale = [] then None
  else
    Some
      (String.concat "; "
         ((if undeclared <> [] then
             [ "inferred but undeclared: " ^ set_to_string undeclared ]
           else [])
         @
         if stale <> [] then
           [ "declared but never inferred: " ^ set_to_string stale ]
         else []))

let run reports (sink : Diag.sink) =
  List.iter
    (fun r ->
      if List.exists (Keyspace.equal_abs Keyspace.Top) r.r_writes then
        Diag.addf sink ~rule:"procedure-unbounded-footprint" ~loc:r.r_body_loc
          "procedure '%s' has an unbounded (top) write set: a key is \
           computed from data the analysis cannot bound, so the \
           parallel-apply scheduler cannot route this action; derive keys \
           from arguments and literals only"
          r.r_name;
      if r.r_nondet <> [] then
        Diag.addf sink ~rule:"procedure-nondeterminism" ~loc:r.r_body_loc
          "procedure '%s' is not deterministically re-executable: %s; every \
           replica must compute the same updates at the same order position \
           (paper §6)"
          r.r_name
          (String.concat ", " r.r_nondet);
      match r.r_declared with
      | None -> ()
      | Some (dr, dw) ->
        let report kind declared inferred =
          match drift_detail ~declared ~inferred with
          | Some detail ->
            Diag.addf sink ~rule:"procedure-footprint-drift" ~loc:r.r_reg_loc
              "procedure '%s': declared %s footprint {%s} disagrees with the \
               inferred {%s} (%s); fix the declaration or the body — the \
               runtime validator enforces the declaration"
              r.r_name kind (set_to_string declared) (set_to_string inferred)
              detail
          | None -> ()
        in
        report "read" dr r.r_reads;
        report "write" dw r.r_writes)
    reports

(* --- the manifest ------------------------------------------------------ *)

let manifest_json reports =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"version\": \"1\",\n";
  Buffer.add_string b "  \"tool\": \"repro-analysis/procfoot\",\n";
  Buffer.add_string b "  \"procedures\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      let strings set =
        String.concat ", "
          (List.map
             (fun a -> Printf.sprintf "\"%s\"" (Diag.escape (Keyspace.to_string a)))
             set)
      in
      let declared =
        match r.r_declared with
        | None -> "none"
        | Some (dr, dw) ->
          if
            drift_detail ~declared:dr ~inferred:r.r_reads = None
            && drift_detail ~declared:dw ~inferred:r.r_writes = None
          then "agrees"
          else "drift"
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"source\": \"%s\", \"reads\": [%s], \
            \"writes\": [%s], \"commutative\": %b, \"deterministic\": %b, \
            \"nondeterminism\": [%s], \"declared\": \"%s\"}"
           (Diag.escape r.r_name) (Diag.escape r.r_src) (strings r.r_reads)
           (strings r.r_writes) r.r_commutative (r.r_nondet = [])
           (String.concat ", "
              (List.map
                 (fun s -> Printf.sprintf "\"%s\"" (Diag.escape s))
                 r.r_nondet))
           declared))
    reports;
  if reports <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
