(* Spec drift: the transition graph compiled into the core vs Figure 4.

   The extraction is a small abstract interpretation over each core
   function with one abstract value: the set S of [engine_state]
   constructors the replica may currently be in (⊤ = all of them).
   S is refined by [match] on an [engine_state]-typed scrutinee (each
   case narrows S to its enumerated constructors) and by
   [if ... t.state = C ...] conditions; it is updated by transitions:

   - [set_state t C] (a call to a function named [set_state] with a
     constant constructor argument) emits the edges S × {C} and sets
     S := {C};
   - a direct [x.state <- C] field assignment of [engine_state] type is
     treated the same; with a non-constant right-hand side it resets
     S := ⊤;
   - a call to any function that may transition (the SetsState effect)
     resets S := ⊤ afterwards.

   Branches are walked independently and rejoin by union; function
   literals are walked under the S at their occurrence (the engine runs
   its sync continuations in the state that requested the sync).

   Entry sets: a function observed only at call sites inherits the
   union of S at those sites ([end_of_retrans] is only ever reached
   under [t.state = Exchange_actions], so its transitions leave
   Exchange_actions, not ⊤); a root — no table callers, or referenced
   from outside the extraction scope — starts at ⊤, as does anything
   the fixpoint never reaches.  This is what keeps the clean tree's
   extracted graph equal to the Figure 4 table rather than a blur of
   ⊤ × targets. *)

module SSet = Set.Make (String)

let rule = "spec-drift"

let in_scope prefixes src =
  List.exists (fun p -> Cmt_load.has_prefix p src) prefixes

(* --- pattern and condition refinement -------------------------------- *)

(* The engine_state constructors named by a pattern; None = no
   refinement (wildcard or binder). *)
let rec pat_constructors : type k. k Typedtree.general_pattern -> SSet.t option
    =
 fun pat ->
  match pat.pat_desc with
  | Typedtree.Tpat_value arg ->
    pat_constructors (arg :> Typedtree.value Typedtree.general_pattern)
  | Typedtree.Tpat_construct (_, cd, _, _) ->
    Some (SSet.singleton cd.cstr_name)
  | Typedtree.Tpat_or (a, b, _) -> (
    match (pat_constructors a, pat_constructors b) with
    | Some x, Some y -> Some (SSet.union x y)
    | _ -> None)
  | Typedtree.Tpat_alias (p, _, _) -> pat_constructors p
  | _ -> None

let constr_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_construct (_, cd, []) when Cmt_load.is_engine_state e.exp_type
    ->
    Some cd.cstr_name
  | _ -> None

(* [Some cs] when the condition implies the state is in [cs]. *)
let rec cond_states (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply
      ( { exp_desc = Typedtree.Texp_ident (p, _, _); _ },
        [ (_, Some a); (_, Some b) ] ) -> (
    match Cmt_load.normalize (Cmt_load.path_name p) with
    | "&&" -> (
      match (cond_states a, cond_states b) with
      | Some x, Some y -> Some (SSet.inter x y)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None)
    | "=" | "==" -> (
      match (constr_of a, constr_of b) with
      | Some c, _ when Cmt_load.is_engine_state b.exp_type ->
        Some (SSet.singleton c)
      | _, Some c when Cmt_load.is_engine_state a.exp_type ->
        Some (SSet.singleton c)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* --- the walker ------------------------------------------------------- *)

type ctx = {
  eff : Effects.t;
  top : SSet.t;
  entries : (string, SSet.t) Hashtbl.t;  (** per core fn: entry set *)
  core : string list;
  mutable emit : (string * string * Location.t) list;  (** from, to, site *)
  mutable contribute : bool;  (** record call-site S into [entries]? *)
  mutable changed : bool;
}

let entry ctx key =
  match Hashtbl.find_opt ctx.entries key with
  | Some s -> s
  | None -> SSet.empty

let add_entry ctx key s =
  let cur = entry ctx key in
  let next = SSet.union cur s in
  if not (SSet.equal cur next) then begin
    Hashtbl.replace ctx.entries key next;
    ctx.changed <- true
  end

let target_of_args args =
  List.fold_left
    (fun acc (_, arg) ->
      match acc with
      | Some _ -> acc
      | None -> ( match arg with Some a -> constr_of a | None -> None))
    None args

let walk_fn ctx (fn : Callgraph.fn) s0 =
  let caller_unit = fn.Callgraph.f_unit.Cmt_load.u_name in
  let graph = ctx.eff.Effects.graph in
  let transition s target loc =
    SSet.iter (fun from_ -> ctx.emit <- (from_, target, loc) :: ctx.emit) s;
    SSet.singleton target
  in
  let rec walk s (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ifthenelse (c, then_, else_) ->
      let s = walk s c in
      let s_then =
        match cond_states c with Some cs -> SSet.inter s cs | None -> s
      in
      let st = walk s_then then_ in
      let se = match else_ with Some e' -> walk s e' | None -> s in
      SSet.union st se
    | Typedtree.Texp_match (scrut, cases, _) ->
      let s = walk s scrut in
      let refines = Cmt_load.is_engine_state scrut.exp_type in
      List.fold_left
        (fun acc (c : Typedtree.computation Typedtree.case) ->
          let s_case =
            if refines then
              match pat_constructors c.Typedtree.c_lhs with
              | Some cs -> SSet.inter s cs
              | None -> s
            else s
          in
          let s_case =
            match c.Typedtree.c_guard with
            | Some g -> walk s_case g
            | None -> s_case
          in
          SSet.union acc (walk s_case c.Typedtree.c_rhs))
        SSet.empty cases
    | Typedtree.Texp_try (body, cases) ->
      let s = walk s body in
      List.fold_left
        (fun acc (c : Typedtree.value Typedtree.case) ->
          SSet.union acc (walk s c.Typedtree.c_rhs))
        s cases
    | Typedtree.Texp_function { cases; _ } ->
      (* a literal: its body runs under the S of its occurrence; what it
         leaves behind does not flow back to the definition site *)
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          ignore (walk s c.Typedtree.c_rhs))
        cases;
      s
    | Typedtree.Texp_setfield (obj, _, _lbl, v)
      when Cmt_load.is_engine_state v.exp_type ->
      let s = walk (walk s obj) v in
      (match constr_of v with
      | Some target -> transition s target e.exp_loc
      | None -> ctx.top)
    | Typedtree.Texp_apply (f, args) -> (
      match f.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> (
        let resolved = Callgraph.resolve graph ~caller_unit p in
        (* record the call-site S as the callee's entry set *)
        (match resolved with
        | Some g
          when ctx.contribute
               && in_scope ctx.core g.Callgraph.f_unit.Cmt_load.u_src ->
          add_entry ctx g.Callgraph.f_key s
        | Some _ | None -> ());
        let s_args =
          List.fold_left
            (fun acc (_, arg) ->
              match arg with Some a -> walk acc a | None -> acc)
            s args
        in
        if Effects.is_transition_path p then
          match target_of_args args with
          | Some target -> transition s target e.exp_loc
          | None -> ctx.top
        else
          let sets_state =
            match resolved with
            | Some g ->
              (Effects.find ctx.eff g.Callgraph.f_key).Effects.e_sets_state
            | None -> false
          in
          if sets_state then ctx.top else s_args)
      | _ ->
        let s = walk s f in
        List.fold_left
          (fun acc (_, arg) ->
            match arg with Some a -> walk acc a | None -> acc)
          s args)
    | Typedtree.Texp_ident (p, _, _) ->
      (* a bare reference (a closure being passed): it may run under
         any state its consumer chooses — contribute ⊤, not S *)
      (match Callgraph.resolve graph ~caller_unit p with
      | Some g
        when ctx.contribute
             && g.Callgraph.f_key <> fn.Callgraph.f_key
             && in_scope ctx.core g.Callgraph.f_unit.Cmt_load.u_src ->
        add_entry ctx g.Callgraph.f_key ctx.top
      | Some _ | None -> ());
      s
    | _ -> List.fold_left walk s (Callgraph.subexprs e)
  in
  ignore (walk s0 fn.Callgraph.f_expr)

(* --- extraction ------------------------------------------------------- *)

let extract (eff : Effects.t) ~core ~all_states =
  let graph = eff.Effects.graph in
  let top = SSet.of_list all_states in
  let ctx =
    { eff; top; entries = Hashtbl.create 64; core; emit = []; contribute = true;
      changed = false }
  in
  let core_fns =
    List.filter_map
      (fun key ->
        match Callgraph.find graph key with
        | Some fn when in_scope core fn.Callgraph.f_unit.Cmt_load.u_src ->
          Some fn
        | Some _ | None -> None)
      graph.Callgraph.keys
  in
  (* Roots: referenced from outside the scope, or not referenced at all. *)
  let referenced = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let inside =
        match Callgraph.find graph key with
        | Some fn -> in_scope core fn.Callgraph.f_unit.Cmt_load.u_src
        | None -> false
      in
      List.iter
        (fun g ->
          if g <> key then
            Hashtbl.replace referenced g
              (inside && (match Hashtbl.find_opt referenced g with
                          | Some false -> false
                          | _ -> true)))
        (Effects.refs eff key))
    graph.Callgraph.keys;
  List.iter
    (fun fn ->
      match Hashtbl.find_opt referenced fn.Callgraph.f_key with
      | None | Some false ->
        (* no caller at all, or some caller outside the scope *)
        add_entry ctx fn.Callgraph.f_key top
      | Some true -> ())
    core_fns;
  (* Entry-set fixpoint: propagate call-site state sets. *)
  let rounds = ref 0 in
  ctx.changed <- true;
  while ctx.changed && !rounds < 32 do
    ctx.changed <- false;
    incr rounds;
    List.iter
      (fun fn ->
        let e = entry ctx fn.Callgraph.f_key in
        if not (SSet.is_empty e) then walk_fn ctx fn e)
      core_fns
  done;
  (* Final pass: emit edges; unreached functions walk under ⊤. *)
  ctx.contribute <- false;
  ctx.emit <- [];
  List.iter
    (fun fn ->
      let e = entry ctx fn.Callgraph.f_key in
      let e = if SSet.is_empty e then top else e in
      walk_fn ctx fn e)
    core_fns;
  (* Dedup to the first (in walk order) site per edge, sorted. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (f, t, loc) ->
      if not (Hashtbl.mem seen (f, t)) then Hashtbl.replace seen (f, t) loc)
    (List.rev ctx.emit);
  Hashtbl.fold (fun (f, t) loc acc -> ((f, t), loc) :: acc) seen []
  |> List.sort compare

(* --- the diff (pure, unit-testable) ----------------------------------- *)

let expand_spec ~all_states spec =
  List.concat_map
    (fun (from_, target) ->
      match from_ with
      | Some s -> [ (s, target) ]
      | None -> List.map (fun s -> (s, target)) all_states)
    spec
  |> List.sort_uniq compare

(* (code-only, spec-only) *)
let diff ~spec_pairs ~code_pairs =
  let spec = List.sort_uniq compare spec_pairs in
  let code = List.sort_uniq compare code_pairs in
  ( List.filter (fun e -> not (List.mem e spec)) code,
    List.filter (fun e -> not (List.mem e code)) spec )
