(* Loading the typed ASTs.

   Dune leaves one .cmt per compilation unit under the build context;
   the analyses run from the context root (_build/default), where the
   cmts and dune's copies of the sources are both reachable by the
   relative paths the cmts record.

   Compilation unit names are dune-mangled ("Repro_core__Engine"), and
   the mangled name is the only unambiguous identity: two libraries may
   both contain an [Engine] (lib/sim and lib/core do), so everything
   downstream — the function table, the call graph, effect summaries —
   keys by the mangled unit name and only demangles for display and
   primitive matching. *)

type unit_info = {
  u_name : string;  (** mangled compilation unit name, e.g. "Repro_core__Engine" *)
  u_src : string;  (** source path relative to the build root *)
  u_str : Typedtree.structure;
}

let rec find_cmts dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then find_cmts path @ acc
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      [] entries

let load path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | infos -> (
    match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation tstr, Some src ->
      Some { u_name = infos.Cmt_format.cmt_modname; u_src = src; u_str = tstr }
    | _ -> None)

(* Sorted by cmt path so unit order — and therefore everything derived
   from it — is independent of readdir order. *)
let load_roots roots =
  let cmts = List.sort compare (List.concat_map find_cmts roots) in
  (cmts, List.filter_map load cmts)

(* --- names ----------------------------------------------------------- *)

let rec path_name p =
  match p with
  | Path.Pident id -> Ident.name id
  | Path.Pdot (p, s) -> path_name p ^ "." ^ s
  | Path.Papply (a, b) -> path_name a ^ "(" ^ path_name b ^ ")"
  | Path.Pextra_ty (p, _) -> path_name p

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Strip the dune mangling from one dot-component:
   "Repro_net__Node_id" -> "Node_id".  A trailing "__" (the wrapper
   alias module "Repro_core__") has no tail and is left alone. *)
let strip_mangle part =
  let len = String.length part in
  let rec find i =
    if i + 1 >= len then None
    else if part.[i] = '_' && part.[i + 1] = '_' then
      Some (String.sub part (i + 2) (len - i - 2))
    else find (i + 1)
  in
  match find 0 with Some tail when tail <> "" -> tail | _ -> part

(* "Repro_net__Node_id.t" -> "Node_id.t" *)
let demangle name =
  String.concat "." (List.map strip_mangle (String.split_on_char '.' name))

(* The canonical short spelling used for primitive matching:
   demangle every component and drop a leading [Stdlib] or library
   wrapper ("Repro_storage.Wlog.append", "Repro_core__.Persist.sync"
   and "Wlog.append" all normalize to the same suffix). *)
let normalize name =
  let parts = String.split_on_char '.' name in
  let parts =
    List.filter_map
      (fun p ->
        if p = "Stdlib" || has_prefix "Repro_" p then
          let stripped = strip_mangle p in
          if stripped = p then None else Some stripped
        else Some (strip_mangle p))
      parts
  in
  String.concat "." parts

(* --- type predicates ------------------------------------------------- *)

let type_constr_name ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (demangle (path_name p))
  | _ -> None

let is_engine_state ty =
  match type_constr_name ty with
  | Some name ->
    name = "engine_state" || Filename.check_suffix name ".engine_state"
  | None -> false

let is_value_type ty =
  match type_constr_name ty with
  | Some name -> name = "Value.t" || Filename.check_suffix name ".Value.t"
  | None -> false
