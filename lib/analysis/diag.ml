(* Diagnostics: the one reporting path shared by every rule and
   analysis.

   Suppression happens here, once, for everything: a finding whose
   location carries the [Source.allow_tag] (on the line or the line
   above) is dropped at [add] time, so every rule and both headline
   analyses honor the same tag without each re-checking.

   A sink deduplicates as findings arrive — the key is (file, line,
   rule), so a rule that trips on several sub-expressions of one line
   (both arguments of a polymorphic compare, say) reports once — and
   [to_list] returns them in a total order (file, line, col, rule,
   message), so the emitted report is identical across runs regardless
   of cmt discovery order.

   The JSON report is SARIF-lite: a fixed top-level shape with a
   [findings] array, hand-rolled with a fixed key order and no
   timestamps so two runs over the same tree are byte-identical.  The
   parser below reads exactly that shape back (for baseline
   comparison); it is not a general JSON parser. *)

type t = {
  d_rule : string;
  d_file : string;
  d_line : int;
  d_col : int;
  d_message : string;
}

type sink = {
  mutable findings : t list; (* newest first *)
  seen : (string * int * string, unit) Hashtbl.t; (* file, line, rule *)
}

let create_sink () = { findings = []; seen = Hashtbl.create 64 }

let add sink ~rule ~loc message =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol
  in
  let key = (file, line, rule) in
  if (not (Source.allowed loc)) && not (Hashtbl.mem sink.seen key) then begin
    Hashtbl.replace sink.seen key ();
    sink.findings <-
      { d_rule = rule; d_file = file; d_line = line; d_col = col;
        d_message = message }
      :: sink.findings
  end

let addf sink ~rule ~loc fmt = Format.kasprintf (add sink ~rule ~loc) fmt

let compare_diag a b =
  let c = compare a.d_file b.d_file in
  if c <> 0 then c
  else
    let c = compare a.d_line b.d_line in
    if c <> 0 then c
    else
      let c = compare a.d_col b.d_col in
      if c <> 0 then c
      else
        let c = compare a.d_rule b.d_rule in
        if c <> 0 then c else compare a.d_message b.d_message

let to_list sink = List.sort compare_diag sink.findings

let pp ppf d =
  Format.fprintf ppf "File \"%s\", line %d, characters %d-%d:@.Error (%s): %s"
    d.d_file d.d_line d.d_col d.d_col d.d_rule d.d_message

(* --- JSON emission -------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json diags =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"version\": \"1\",\n";
  Buffer.add_string b "  \"tool\": \"repro-analysis\",\n";
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"col\": %d, \"message\": \"%s\"}"
           (escape d.d_rule) (escape d.d_file) d.d_line d.d_col
           (escape d.d_message)))
    diags;
  if diags <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

(* --- JSON parsing (the report shape only) --------------------------- *)

exception Parse_error of string

type token =
  | Tok_lbrace
  | Tok_rbrace
  | Tok_lbracket
  | Tok_rbracket
  | Tok_colon
  | Tok_comma
  | Tok_string of string
  | Tok_int of int
  | Tok_eof

let tokenize s =
  let toks = ref [] and i = ref 0 in
  let len = String.length s in
  let push t = toks := t :: !toks in
  while !i < len do
    (match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '{' -> push Tok_lbrace; incr i
    | '}' -> push Tok_rbrace; incr i
    | '[' -> push Tok_lbracket; incr i
    | ']' -> push Tok_rbracket; incr i
    | ':' -> push Tok_colon; incr i
    | ',' -> push Tok_comma; incr i
    | '"' ->
      incr i;
      let b = Buffer.create 16 in
      let rec str () =
        if !i >= len then raise (Parse_error "unterminated string")
        else
          match s.[!i] with
          | '"' -> incr i
          | '\\' ->
            if !i + 1 >= len then raise (Parse_error "bad escape");
            (match s.[!i + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
              if !i + 5 >= len then raise (Parse_error "bad \\u escape");
              let code = int_of_string ("0x" ^ String.sub s (!i + 2) 4) in
              Buffer.add_char b (Char.chr (code land 0xff));
              i := !i + 4
            | c -> raise (Parse_error (Printf.sprintf "bad escape \\%c" c)));
            i := !i + 2;
            str ()
          | c ->
            Buffer.add_char b c;
            incr i;
            str ()
      in
      str ();
      push (Tok_string (Buffer.contents b))
    | '-' | '0' .. '9' ->
      let start = !i in
      incr i;
      while !i < len && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
        incr i
      done;
      push (Tok_int (int_of_string (String.sub s start (!i - start))))
    | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c)))
  done;
  push Tok_eof;
  List.rev !toks

let parse_report s =
  let toks = ref (tokenize s) in
  let next () =
    match !toks with
    | [] -> Tok_eof
    | t :: rest ->
      toks := rest;
      t
  in
  let expect t =
    let got = next () in
    if got <> t then raise (Parse_error "unexpected token")
  in
  let expect_string () =
    match next () with
    | Tok_string s -> s
    | _ -> raise (Parse_error "expected string")
  in
  (* Skips a value we do not care about (strings and ints only: the
     report format has no nested values outside [findings]). *)
  let rec parse_finding () =
    expect Tok_lbrace;
    let rule = ref "" and file = ref "" and line = ref 0 and col = ref 0 in
    let message = ref "" in
    let rec fields () =
      let key = expect_string () in
      expect Tok_colon;
      (match (key, next ()) with
      | "rule", Tok_string s -> rule := s
      | "file", Tok_string s -> file := s
      | "line", Tok_int n -> line := n
      | "col", Tok_int n -> col := n
      | "message", Tok_string s -> message := s
      | _ -> raise (Parse_error "unexpected finding field"));
      match next () with
      | Tok_comma -> fields ()
      | Tok_rbrace -> ()
      | _ -> raise (Parse_error "expected , or } in finding")
    in
    fields ();
    { d_rule = !rule; d_file = !file; d_line = !line; d_col = !col;
      d_message = !message }
  and parse_findings acc =
    match next () with
    | Tok_rbracket -> List.rev acc
    | Tok_comma -> parse_findings acc
    | Tok_lbrace ->
      toks := Tok_lbrace :: !toks;
      parse_findings (parse_finding () :: acc)
    | _ -> raise (Parse_error "expected finding or ]")
  in
  expect Tok_lbrace;
  let findings = ref [] in
  let rec top () =
    let key = expect_string () in
    expect Tok_colon;
    (match key with
    | "findings" ->
      expect Tok_lbracket;
      findings := parse_findings []
    | _ -> ignore (next ()) (* version / tool: a scalar *));
    match next () with
    | Tok_comma -> top ()
    | Tok_rbrace -> ()
    | _ -> raise (Parse_error "expected , or } at top level")
  in
  top ();
  !findings

(* --- baseline comparison -------------------------------------------- *)

(* The fingerprint deliberately drops line/col: shifting code around a
   grandfathered finding must not resurface it as "new". *)
let fingerprint d = (d.d_rule, d.d_file, d.d_message)

let new_findings ~baseline diags =
  let known = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace known (fingerprint d) ()) baseline;
  List.filter (fun d -> not (Hashtbl.mem known (fingerprint d))) diags

(* The other direction: baseline entries no current finding matches.
   An obsolete fingerprint is debt — it would silently grandfather a
   *re-introduced* instance of the finding it once excused — so the
   driver surfaces these as notes whenever a baseline is in play. *)
let stale_baseline ~baseline diags =
  let current = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace current (fingerprint d) ()) diags;
  List.filter (fun d -> not (Hashtbl.mem current (fingerprint d))) baseline
