open Repro_net
open Repro_gcs
open Repro_db

(** The replication engine: the paper's algorithm (Figure 4, Appendix A,
    CodeSegments 5.1/5.2).

    One engine runs at each replica, above an EVS group-communication
    endpoint and a write-ahead log, and below the database.  It turns the
    stream of endpoint events into a global persistent total order of
    actions: actions delivered safely in the primary component turn green
    immediately (no per-action end-to-end acknowledgement); actions
    delivered elsewhere stay red until knowledge propagates; view changes
    trigger one state-exchange round, retransmission, quorum evaluation
    (dynamic linear voting) and, when quorate, the Create-Primary-
    Component round guarded by the [vulnerable] record. *)

type callbacks = {
  on_green : Action.t list -> unit;
      (** a delivery burst's actions reached their places in the global
          order, in green order: apply them as one group-committed
          batch.  Invoked once per burst (the batch is never empty). *)
  on_red : Action.t -> unit;
      (** the action was accepted locally (dirty knowledge) *)
  on_transfer_request : joiner:Node_id.t -> join_green_count:int -> unit;
      (** a [Join] created by this server turned green: this server is
          the representative and must snapshot and transfer state *)
  on_self_leave : unit -> unit;
      (** this server's [Leave] turned green: it exits the system *)
  on_state_change : Types.engine_state -> unit;
  send : service:Endpoint.service -> size:int -> Types.payload -> unit;
      (** multicast through the group communication layer *)
}

type t

(** Cumulative counters, for observability and tests. *)
type stats = {
  mutable s_exchanges : int;  (** state-exchange rounds started *)
  mutable s_installs : int;  (** primary components installed here *)
  mutable s_retrans_batches : int;  (** retransmission batches sent *)
  mutable s_actions_resent : int;  (** ongoing actions re-multicast *)
  mutable s_submit_batches : int;
      (** submission batches logged and sent (frames on the forced path) *)
  mutable s_batched_submissions : int;
      (** actions carried by those batches — the ratio to
          [s_submit_batches] is the achieved mean batch size *)
}

(** A structured feed of protocol-level decisions, consumed by the
    repcheck invariant monitor ([Repro_check]).  Purely observational:
    whether a sink is attached never changes engine behaviour. *)
type audit_event =
  | Audit_state of Types.engine_state  (** state-machine transition *)
  | Audit_quorum of {
      aq_members : Node_id.Set.t;  (** candidate set (the view) *)
      aq_vulnerable : Node_id.Set.t;
          (** members whose knowledge-computed vulnerable record is
              still valid at decision time (paper §5, [IsQuorum]) *)
      aq_prev_prim : Types.prim_component;
          (** the last installed primary the quorum is taken against *)
      aq_granted : bool;
    }  (** an [IsQuorum] evaluation at the end of a state exchange *)
  | Audit_install of Types.prim_component
      (** a primary component was installed at this server *)

val set_audit : t -> (audit_event -> unit) -> unit
(** Attaches (or replaces) the audit sink. *)

val create :
  ?weights:Quorum.weights ->
  ?quorum_policy:Quorum.policy ->
  ?submit_delay:Repro_sim.Time.t ->
  sim:Repro_sim.Engine.t ->
  node:Node_id.t ->
  servers:Node_id.Set.t ->
  persist:Persist.t ->
  callbacks:callbacks ->
  unit ->
  t
(** A fresh replica of the initial server set [servers]; the initial
    primary component is the full set with index 0, so the first quorate
    component installs primary #1.

    [submit_delay] enables end-to-end submission batching: requests
    accepted within the delay coalesce into one ongoing-queue log
    frame, one covering force, and one ordered [Action_batch] (a delay
    of zero still coalesces requests arriving at the same instant).
    Without it every submission is its own unit, exactly the paper's
    per-action pipeline. *)

val create_from_snapshot :
  ?weights:Quorum.weights ->
  ?action_floor:int ->
  ?submit_delay:Repro_sim.Time.t ->
  sim:Repro_sim.Engine.t ->
  node:Node_id.t ->
  servers:Node_id.Set.t ->
  snapshot:Database.snapshot ->
  green_count:int ->
  green_line:Action.Id.t option ->
  red_cut:int Node_id.Map.t ->
  prim:Types.prim_component ->
  dedup:Dedup.snapshot ->
  persist:Persist.t ->
  callbacks:callbacks ->
  unit ->
  t
(** A dynamically instantiated replica (paper CodeSegment 5.2): its green
    prefix starts at the transferred [green_count] with no action bodies
    (the database state arrived by [snapshot], which is logged as this
    replica's first durable checkpoint, [dedup] — the sponsor's
    exactly-once window at the same green position — included).
    [action_floor] seeds the action-index counter: an amnesiac rejoiner
    passes the sponsor's red cut for it, so ids of its discarded life
    are never re-minted. *)

val recover :
  ?weights:Quorum.weights ->
  ?quorum_policy:Quorum.policy ->
  ?submit_delay:Repro_sim.Time.t ->
  ?recovered:Persist.recovered ->
  sim:Repro_sim.Engine.t ->
  node:Node_id.t ->
  servers:Node_id.Set.t ->
  persist:Persist.t ->
  callbacks:callbacks ->
  unit ->
  t * Persist.checkpoint option * Action.t list
(** Rebuilds the engine from the durable log (paper CodeSegment A.13):
    returns the engine, the latest durable checkpoint (if any — its
    database snapshot and exactly-once window travel together) and the
    green actions after it, in green order, so the caller can rebuild
    its database.  Ongoing own actions past the durable red
    cut are re-marked red and stay queued for re-proposal after the
    next state exchange.  [recovered] supplies an already-performed
    [Persist.recover] result (the caller typically branched on its
    verdict first — amnesiac recovery must not build an engine from the
    discarded log); when absent the log is recovered here.  Do not call
    with a [V_amnesia] verdict. *)

val checkpoint : t -> dedup:Dedup.snapshot -> Database.snapshot -> unit
(** Records a durable checkpoint of the engine's green knowledge paired
    with the database [snapshot] and exactly-once window [dedup] at the
    same point, then compacts the write-ahead log and discards stored
    bodies of white actions (green at every known server).  Call with a
    snapshot taken at the current green position. *)

(* --- Event input -------------------------------------------------- *)

val handle_event : t -> Types.payload Endpoint.event -> unit
(** Feed every event of the group-communication endpoint here.  Each
    call is (at least) one delivery burst: red/green marks made while
    processing it are group-committed at its end — one multi-record log
    frame per colour and one [on_green] application batch. *)

val begin_burst : t -> unit
val end_burst : t -> unit
(** Bracket a multi-event delivery burst (the GCS endpoint delivers a
    run of ordered messages when safety advances): marks made by the
    bracketed [handle_event] calls flush once, at the outermost
    [end_burst], instead of per event.  Nesting is refcounted; the
    per-event flush inside [handle_event] uses the same refcount, so an
    unbracketed engine behaves identically, just with burst = event. *)

val submit :
  t ->
  ?client:int ->
  ?semantics:Action.semantics ->
  ?size:int ->
  ?req_seq:int ->
  ?req_ack:int ->
  kind:Action.kind ->
  on_created:(Action.Id.t -> unit) ->
  unit ->
  unit
(** A client request: creates the action now when in [Reg_prim] or
    [Non_prim] (write to the ongoing queue, forced sync, then multicast)
    and buffers it otherwise; [on_created] reports the assigned id.
    [req_seq]/[req_ack] stamp the durable per-client request id for
    exactly-once retries (see {!Action.t}); both default to 0. *)

(* --- Observation --------------------------------------------------- *)

val node : t -> Node_id.t
val state : t -> Types.engine_state
val halted : t -> bool
val green_count : t -> int
val green_actions : t -> Action.t list
val red_actions : t -> Action.t list

(** [List.length (red_actions t)], in O(1) — cache keys and stats on
    the query hot path must not walk the red queue. *)
val red_count : t -> int
val green_line : t -> Action.Id.t option

val ongoing_actions : t -> Action.t list
(** Own created actions not yet delivered back, oldest first (they are
    re-sent after every exchange; part of the logical replica state a
    model checker fingerprints). *)

val attempt : t -> int
(** The installation-attempt counter guarded by the vulnerable record
    (paper §4) — logical state a model checker fingerprints. *)

val red_cut : t -> Node_id.t -> int

val green_cut_map : t -> int Node_id.Map.t
(** Per creator, the index of its last action inside the green prefix —
    the red cut a snapshot-instantiated replica starts from. *)

val red_cut_map : t -> int Node_id.Map.t
(** The whole red cut, per creator (observability; the repcheck monitor
    asserts its per-creator monotonicity). *)

val known_servers : t -> Node_id.Set.t
val prim_component : t -> Types.prim_component
val vulnerable : t -> Types.vulnerable
val yellow : t -> Types.yellow
val white_line : t -> int
(** Green positions known green at every known server (discardable). *)

val in_primary : t -> bool
(** Whether this replica currently operates in the primary component. *)

val stats : t -> stats
