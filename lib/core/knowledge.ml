open Repro_net
open Repro_db
open Types

type t = {
  k_prim : prim_component;
  k_attempt : int;
  k_yellow : yellow;
  k_vulnerable : vulnerable Node_id.Map.t;
  k_green_target : int;
  k_green_plan : (Node_id.t * int * int) list;
  k_green_from : int;
  k_red_targets : int Node_id.Map.t;
}

module Id_tbl = Hashtbl.Make (struct
  type t = Action.Id.t

  let equal = Action.Id.equal
  let hash (id : Action.Id.t) = Hashtbl.hash (id.server, id.index)
end)

(* Keep [reference]'s order, intersect with every other set.  One
   counting table over all the other sets — an id survives iff every
   other set contributed it — so the whole intersection is a single
   O(sum of set sizes) pass with one lookup per reference id, instead
   of one table *per set* and a per-id scan across them. *)
let intersect_ordered reference others =
  match others with
  | [] -> reference
  | _ ->
    let k = List.length others in
    let counts = Id_tbl.create 64 in
    List.iter
      (fun ids ->
        List.iter
          (fun id ->
            let c =
              match Id_tbl.find_opt counts id with Some c -> c | None -> 0
            in
            Id_tbl.replace counts id (c + 1))
          ids)
      others;
    List.filter (fun id -> Id_tbl.find_opt counts id = Some k) reference

(* Array filter without the intermediate list a [List.filter] over
   [Array.to_list] would cons per element. *)
let filter_arr p arr =
  let n = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n arr.(0) in
    let i = ref 0 in
    Array.iter
      (fun x ->
        if p x then begin
          out.(!i) <- x;
          incr i
        end)
      arr;
    out
  end
  [@@analysis.cost "O(members); alloc O(members)"]

(* Steps 3-4 of ComputeKnowledge: vulnerability invalidation.  The
   contradiction test scans [v.v_set] per member — worst-case
   O(members^2), but v_set only holds the participants of an
   in-flight installation attempt, which is empty outside view-change
   churn, and the whole computation runs once per view change, never
   per delivered message. *)
let invalidate_vulnerable ~members vuln_of k_prim =
  let step3 =
    Node_id.Set.fold
      (fun m acc ->
        let v = vuln_of m in
        let v' =
          if not v.v_valid then v
          else begin
            let outside_prim = not (Node_id.Set.mem m k_prim.prim_servers) in
            let contradicted =
              Node_id.Set.exists
                (fun w ->
                  Node_id.Set.mem w members
                  && not (vulnerable_same_attempt (vuln_of w) v))
                v.v_set
            in
            if outside_prim || contradicted then invalid_vulnerable else v
          end
        in
        Node_id.Map.add m v' acc)
      members Node_id.Map.empty
  in
  let union_bits =
    Node_id.Map.fold
      (fun _ v acc ->
        if v.v_valid then Node_id.Set.union acc v.v_bits else acc)
      step3 Node_id.Set.empty
  in
  Node_id.Map.map
    (fun v ->
      if not v.v_valid then v
      else begin
        let bits = Node_id.Set.union v.v_bits union_bits in
        if Node_id.Set.subset v.v_set bits then invalid_vulnerable
        else { v with v_bits = bits }
      end)
    step3
  [@@analysis.cost "O(members); alloc O(members)"]

(* Green retransmission plan: cover positions (from, target] with a
   chain of sources.  A source can serve positions in (its floor, its
   green count]; prefer, at each point, the source reaching furthest
   (lowest id among equals).  Replicas that joined by snapshot have a
   non-zero floor, hence possibly a multi-source chain.  Each chain
   step strictly advances the covered position and scans the members
   once; chains are one or two steps outside snapshot-join scenarios. *)
let green_plan ~from ~target all =
  let rec plan pos acc =
    if pos >= target then List.rev acc
    else begin
      let best =
        Array.fold_left
          (fun best sm ->
            if sm.sm_green_floor <= pos && sm.sm_green_count > pos then
              match best with
              | None -> Some sm
              | Some b ->
                if
                  sm.sm_green_count > b.sm_green_count
                  || (sm.sm_green_count = b.sm_green_count
                     && Node_id.compare sm.sm_server b.sm_server < 0)
                then Some sm
                else best
            else best)
          None all
      in
      match best with
      | None -> List.rev acc (* uncoverable gap: partial plan *)
      | Some sm ->
        plan sm.sm_green_count ((sm.sm_server, pos, sm.sm_green_count) :: acc)
    end
  in
  plan from []
  [@@analysis.cost "O(members); alloc O(members)"]

(* Per creator, the maximal red cut any member advertises.  The inner
   fold is over one member's red-cut map (creators it has actions
   from), so the total is the sum of the advertised map sizes. *)
let merge_red_targets all =
  Array.fold_left
    (fun acc sm ->
      Node_id.Map.fold
        (fun creator cut acc ->
          match Node_id.Map.find_opt creator acc with
          | Some best when best >= cut -> acc
          | _ -> Node_id.Map.add creator cut acc)
        sm.sm_red_cut acc)
    Node_id.Map.empty all
  [@@analysis.cost "O(members); alloc O(members)"]

let compute ~members states =
  let state_of m =
    match Node_id.Map.find_opt m states with
    | Some sm -> sm
    | None ->
      invalid_arg
        (Format.asprintf "Knowledge.compute: missing state of %a" Node_id.pp m)
  in
  let all = Array.of_list (List.map state_of (Node_id.Set.elements members)) in
  (* Step 1: maximal primary component; the updated group around it. *)
  let k_prim =
    Array.fold_left
      (fun best sm -> if prim_order sm.sm_prim best > 0 then sm.sm_prim else best)
      (state_of (Node_id.Set.min_elt members)).sm_prim all
  in
  let updated =
    filter_arr (fun sm -> prim_order sm.sm_prim k_prim = 0) all
  in
  let valid_group =
    filter_arr (fun sm -> sm.sm_yellow.y_valid) updated
  in
  let k_attempt =
    Array.fold_left (fun acc sm -> max acc sm.sm_attempt) 0 updated
  in
  (* Step 2: yellow knowledge. *)
  let k_yellow =
    if Array.length valid_group = 0 then invalid_yellow
    else begin
      let first = valid_group.(0) in
      let sets =
        Array.to_list (Array.map (fun sm -> sm.sm_yellow.y_set) valid_group)
      in
      { y_valid = true; y_set = intersect_ordered first.sm_yellow.y_set sets }
    end
  in
  (* Steps 3-4: vulnerability invalidation. *)
  let vuln_of m = (state_of m).sm_vulnerable in
  let k_vulnerable = invalidate_vulnerable ~members vuln_of k_prim in
  (* Retransmission targets. *)
  let k_green_target =
    Array.fold_left (fun acc sm -> max acc sm.sm_green_count) 0 all
  in
  let k_green_from =
    Array.fold_left (fun acc sm -> min acc sm.sm_green_count) max_int all
  in
  let k_green_from = if Array.length all = 0 then 0 else k_green_from in
  let k_green_plan = green_plan ~from:k_green_from ~target:k_green_target all in
  let k_red_targets = merge_red_targets all in
  {
    k_prim;
    k_attempt;
    k_yellow;
    k_vulnerable;
    k_green_target;
    k_green_plan;
    k_green_from;
    k_red_targets;
  }
  [@@analysis.hotpath "O(batch+members+queue)"]

let red_duties ~self ~knowledge ~states =
  let cut_of sm creator =
    match Node_id.Map.find_opt creator sm.sm_red_cut with
    | Some c -> c
    | None -> 0
  in
  Node_id.Map.fold
    (fun creator target acc ->
      let low =
        Node_id.Map.fold (fun _ sm acc -> min acc (cut_of sm creator)) states target
      in
      if target <= low then acc
      else begin
        (* Lowest-id member holding the maximal cut is the duty holder. *)
        let holder =
          Node_id.Map.fold
            (fun m sm best ->
              if cut_of sm creator = target then
                match best with
                | None -> Some m
                | Some b -> if Node_id.compare m b < 0 then Some m else best
              else best)
            states None
        in
        match holder with
        | Some h when Node_id.equal h self -> (creator, low, target) :: acc
        | _ -> acc
      end)
    knowledge.k_red_targets []

let exchange_finished ~green_count ~red_cut knowledge =
  green_count >= knowledge.k_green_target
  && Node_id.Map.for_all
       (fun creator target -> red_cut creator >= target)
       knowledge.k_red_targets
