(** Shared types of the replication engine (paper Appendix A).

    These mirror the paper's data structures: the engine state machine,
    the last-installed primary component, the [vulnerable] record that
    bridges group-communication notifications and stable storage across
    crashes, the [yellow] record tracking actions delivered in a
    transitional configuration of a primary component, the state message
    exchanged on view changes, and the payload the engine multicasts
    through the group communication layer. *)

open Repro_net
open Repro_gcs
open Repro_db

(** The engine state machine (paper Figure 4). *)
type engine_state =
  | Reg_prim  (** primary component, regular configuration *)
  | Trans_prim  (** primary component, transitional configuration *)
  | Exchange_states
  | Exchange_actions
  | Construct  (** exchanging Create-Primary-Component messages *)
  | No_state  (** transitional configuration hit during [Construct] *)
  | Un_state  (** all CPCs seen but some only transitionally: undecided *)
  | Non_prim

let pp_engine_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Reg_prim -> "RegPrim"
    | Trans_prim -> "TransPrim"
    | Exchange_states -> "ExchangeStates"
    | Exchange_actions -> "ExchangeActions"
    | Construct -> "Construct"
    | No_state -> "No"
    | Un_state -> "Un"
    | Non_prim -> "NonPrim")

(** The last primary component this server knows installed. *)
type prim_component = {
  prim_index : int;  (** index of the last primary component installed *)
  prim_attempt : int;  (** attempt by which it was installed *)
  prim_servers : Node_id.Set.t;  (** its membership *)
}

let initial_prim ~servers = { prim_index = 0; prim_attempt = 0; prim_servers = servers }

let prim_order a b =
  let c = Int.compare a.prim_index b.prim_index in
  if c <> 0 then c else Int.compare a.prim_attempt b.prim_attempt

(** Status of the last installation attempt this server joined.  While
    valid, the server does not know how the attempt ended (or, if it
    ended, what was delivered in the installed primary), so it must not
    present itself as a knowledgeable member: no quorum can include a
    vulnerable server (paper §5, [IsQuorum]). *)
type vulnerable = {
  v_valid : bool;
  v_prim_index : int;  (** primary installed before the attempt *)
  v_attempt : int;  (** index of the attempt *)
  v_set : Node_id.Set.t;  (** servers attempting the installation *)
  v_bits : Node_id.Set.t;
      (** members whose CPC message was delivered *safely*: once the
          union of bits over the attempt's participants covers the whole
          set, the attempt's outcome is durably known and vulnerability
          can be cleared (ComputeKnowledge step 4) *)
}

let invalid_vulnerable =
  {
    v_valid = false;
    v_prim_index = 0;
    v_attempt = 0;
    v_set = Node_id.Set.empty;
    v_bits = Node_id.Set.empty;
  }

let vulnerable_same_attempt a b =
  a.v_valid = b.v_valid
  && a.v_prim_index = b.v_prim_index
  && a.v_attempt = b.v_attempt

(** Actions delivered in a transitional configuration of a primary
    component: globally ordered at this server, but possibly missing or
    red elsewhere. *)
type yellow = {
  y_valid : bool;
  y_set : Action.Id.t list;  (** in delivery order *)
}

let invalid_yellow = { y_valid = false; y_set = [] }

(** The state message exchanged at the beginning of every view change
    (paper Appendix A, "State message"). *)
type state_msg = {
  sm_server : Node_id.t;
  sm_conf : Conf_id.t;
  sm_red_cut : int Node_id.Map.t;
      (** per creator: index of its last action this server holds *)
  sm_green_count : int;  (** length of this server's green prefix *)
  sm_green_line : Action.Id.t option;  (** id of its last green action *)
  sm_green_floor : int;
      (** lowest green position whose action body this server still
          holds (a freshly joined replica inherits state by snapshot, not
          by actions, so its floor is its join point) *)
  sm_attempt : int;
  sm_prim : prim_component;
  sm_vulnerable : vulnerable;
  sm_yellow : yellow;
}

(** What the engine multicasts through the group communication layer. *)
type payload =
  | Action_msg of Action.t  (** a new client (or join/leave) action *)
  | Action_batch of Action.t list
      (** a submission batch: new actions from one creator, in creation
          order, ordered and delivered as one unit (their shared log
          frame was covered by a single force before the send) *)
  | Retrans_green of { g_from : int; g_actions : Action.t list }
      (** retransmission of the green actions at positions
          [g_from+1 .. g_from+length], batched for flow control *)
  | Retrans_red of Action.t list  (** retransmission of red actions *)
  | State_msg of state_msg
  | Cpc of { cpc_server : Node_id.t; cpc_conf : Conf_id.t }
      (** Create Primary Component message *)

let payload_size = function
  | Action_msg a -> a.Action.size
  | Action_batch actions ->
    List.fold_left (fun acc a -> acc + a.Action.size + 8) 16 actions
  | Retrans_red actions ->
    List.fold_left (fun acc a -> acc + a.Action.size + 8) 16 actions
  | Retrans_green { g_actions; _ } ->
    List.fold_left (fun acc a -> acc + a.Action.size + 8) 16 g_actions
  | State_msg sm -> 128 + (16 * Node_id.Map.cardinal sm.sm_red_cut)
  | Cpc _ -> 32

let pp_payload ppf = function
  | Action_msg a -> Format.fprintf ppf "action %a" Action.pp a
  | Action_batch actions ->
    Format.fprintf ppf "action-batch x%d" (List.length actions)
  | Retrans_green { g_from; g_actions } ->
    Format.fprintf ppf "retrans-green %d+%d" g_from (List.length g_actions)
  | Retrans_red actions ->
    Format.fprintf ppf "retrans-red x%d" (List.length actions)
  | State_msg sm -> Format.fprintf ppf "state from %a" Node_id.pp sm.sm_server
  | Cpc { cpc_server; _ } -> Format.fprintf ppf "cpc from %a" Node_id.pp cpc_server

(** Durable meta record (everything small the engine must persist). *)
type meta = {
  m_prim : prim_component;
  m_vulnerable : vulnerable;
  m_attempt : int;
  m_yellow : yellow;
  m_servers : Node_id.Set.t;  (** known replica set (dynamic joins/leaves) *)
}
