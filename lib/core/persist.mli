open Repro_net
open Repro_storage
open Repro_db

(** The replication engine's stable storage.

    A typed write-ahead log over a simulated {!Disk}.  Appends are
    buffered; [sync] marks the paper's "** sync to disk" points
    (group-committed with concurrent syncs on the same disk — this is
    the engine's single forced write per action).  Red and green marks
    are appended without forcing: their durability is covered by the
    vulnerability mechanism, which is exactly the gap the paper's
    [vulnerable] record exists to close.

    Recovery replays the durable prefix into the full engine state:
    per-creator red cuts, the green prefix (in green order), the
    remaining red actions (in arrival order), the ongoing queue of own
    actions not yet delivered, and the last meta record. *)

type t

val create : engine:Repro_sim.Engine.t -> disk:Disk.t -> unit -> t
val disk : t -> Disk.t

val log_ongoing : t -> Action.t -> unit
(** A client action created at this server (its [ongoingQueue]). *)

val log_red : t -> Action.t -> unit
val log_green : t -> Action.Id.t -> unit
val log_meta : t -> Types.meta -> unit

val log_ongoing_batch : t -> Action.t list -> unit
(** A whole submission batch as {e one} log frame: one device write and
    one covering [sync] make every record in it durable together, and a
    crash loses or keeps the batch as a unit (frame-granular torn
    tail).  The empty batch writes nothing. *)

val log_red_batch : t -> Action.t list -> unit
val log_green_batch : t -> Action.Id.t list -> unit
(** One frame for a delivery burst's green marks (group commit: greens
    are appended without forcing, like {!log_green}). *)

(** A durable summary of everything up to a green position: the database
    snapshot at that point, the green line, and the per-creator green
    cuts.  Written by a replica instantiated from a state transfer
    (paper CodeSegment 5.2) and periodically as a checkpoint; log entries
    it covers can then be compacted away. *)
type checkpoint = {
  c_snapshot : Database.snapshot;
  c_green_count : int;
  c_green_line : Action.Id.t option;
  c_green_cut : int Node_id.Map.t;
  c_meta : Types.meta;
  c_dedup : Dedup.snapshot;
      (** the per-client exactly-once window at the same green position
          as [c_snapshot] — restored alongside it so recovery and
          §5.1 joiners never re-execute an already-applied request *)
}

val log_checkpoint : t -> checkpoint -> unit

val compact : t -> unit
(** Drops log entries superseded by the latest checkpoint: everything
    before it except red actions not yet inside its green cuts and own
    ongoing actions.  Call after the checkpoint has been synced. *)

val sync : t -> (unit -> unit) -> unit
(** Force everything appended so far; callback when durable. *)

val crash : t -> unit

(** What recovery decided after verifying the log's record framing
    (paper A.13 extended with the storage fault model):

    - [V_clean]: every record verified; full state rebuilt.
    - [V_torn_tail n]: the [n] damaged records at the tail were the
      in-flight (never-synced) suffix; they were truncated and the rest
      of the state rebuilt.  Safe by the vulnerable-record argument: an
      unsynced suffix is indistinguishable from a crash just before the
      write — the paper already treats that window as lost.
    - [V_salvaged n]: interior corruption past the last checkpoint;
      the [n] records from the first damaged one on were dropped and
      the trusted prefix rebuilt.  Green/red knowledge may be
      under-claimed (safe: peers retransmit), but the newest *readable*
      meta record — even beyond the damage — is adopted, because
      under-claiming the vulnerable record would be unsafe.
    - [V_amnesia]: the damage undermines the log's foundation (its head
      record, or the freshest checkpoint lies at/after the damage): no
      prefix can be trusted.  The log was discarded; the caller must
      rejoin through the §5.1 state-transfer path under a fresh
      incarnation so no stale red/green claims leak back. *)
type verdict =
  | V_clean
  | V_torn_tail of int  (** records truncated *)
  | V_salvaged of int  (** records dropped from the first corrupt one *)
  | V_amnesia

val pp_verdict : Format.formatter -> verdict -> unit

type recovered = {
  r_meta : Types.meta option;
  r_green : Action.t list;
      (** green actions after the checkpoint, in green order *)
  r_checkpoint : checkpoint option;
      (** the latest durable checkpoint (also the state-transfer floor) *)
  r_red : Action.t list;  (** still-red actions, in arrival order *)
  r_ongoing : Action.t list;  (** own actions not yet delivered back *)
  r_red_cut : int Node_id.Map.t;
  r_action_index : int;  (** highest own action index ever created *)
  r_verdict : verdict;
  r_read_retries : int;  (** transient read errors retried *)
  r_backoff : Repro_sim.Time.t;  (** total read-retry backoff charged *)
}

val recover : self:Node_id.t -> t -> recovered
(** The only sanctioned way to read the log back (the lint rule
    [no-wlog-recover-outside-persist] enforces it): verifies the
    framing, applies the verdict policy above — truncating, salvaging
    or discarding the log as a side effect — and rebuilds the state
    from whatever prefix survived. *)

val corrupt_nth : t -> int -> bool
(** Damage the log frame containing the [nth] record (0-based, append
    order) — deterministic fault injection for tests and the nemesis
    driver.  [false] when out of range. *)

val entries_logged : t -> int
