open Repro_db

type op =
  | Exec of Action.semantics * int * Action.kind * (Action.response -> unit)
  | Read of string list * ((string * Value.t option) list -> unit)

type t = {
  replica : Replica.t;
  client : int;
  queue : op Queue.t;
  mutable in_flight : bool;
  mutable completed : int;
  mutable aborted : int;
}

let attach replica ~client =
  { replica; client; queue = Queue.create (); in_flight = false; completed = 0; aborted = 0 }

let replica t = t.replica
let client t = t.client
let outstanding t = Queue.length t.queue + if t.in_flight then 1 else 0
let completed t = t.completed
let aborted t = t.aborted

let rec pump t =
  if not t.in_flight then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (Exec (semantics, size, kind, k)) ->
      t.in_flight <- true;
      Replica.submit t.replica ~client:t.client ~semantics ~size kind
        ~on_response:(fun response ->
          t.in_flight <- false;
          t.completed <- t.completed + 1;
          (match response with
          (* Busy terminates the op for this single-replica session;
             failover-with-retry lives in Repro_harness.Client. *)
          | Action.Aborted | Action.Busy -> t.aborted <- t.aborted + 1
          | Action.Committed _ | Action.Procedure_output _ -> ());
          k response;
          pump t)
    | Some (Read (keys, k)) ->
      t.in_flight <- true;
      Replica.local_query t.replica keys ~on_response:(fun result ->
          t.in_flight <- false;
          t.completed <- t.completed + 1;
          k result;
          pump t)

let exec t ?(semantics = Action.Strict) ?(size = 200) kind ~k =
  Queue.add (Exec (semantics, size, kind, k)) t.queue;
  pump t

let read t keys ~k =
  Queue.add (Read (keys, k)) t.queue;
  pump t
