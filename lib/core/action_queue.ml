open Repro_db

module Id_tbl = Hashtbl.Make (struct
  type t = Action.Id.t

  let equal = Action.Id.equal
  let hash (id : Action.Id.t) = Hashtbl.hash (id.server, id.index)
end)

type t = {
  mutable green : Action.t array; (* growable; slot i = green position i+1 *)
  mutable green_count : int;
  mutable floor : int; (* positions <= floor have no body *)
  mutable floor_line : Action.Id.t option;
  mutable red : Action.t list;
      (* newest first; may hold lazily-deleted entries — [red_set] is
         the authoritative membership index *)
  mutable red_count : int; (* live entries in [red] *)
  mutable red_dead : int; (* tombstoned entries still in [red] *)
  green_pos : int Id_tbl.t; (* id -> green position *)
  bodies : Action.t Id_tbl.t; (* every body we hold *)
  red_set : unit Id_tbl.t; (* live red ids *)
}

let create () =
  {
    green = [||];
    green_count = 0;
    floor = 0;
    floor_line = None;
    red = [];
    red_count = 0;
    red_dead = 0;
    green_pos = Id_tbl.create 256;
    bodies = Id_tbl.create 256;
    red_set = Id_tbl.create 256;
  }

let green_count t = t.green_count
let green_floor t = t.floor

let green_line t =
  if t.green_count = 0 then None
  else if t.green_count = t.floor then t.floor_line
  else Some (t.green.(t.green_count - 1 - t.floor)).Action.id

let nth_green t n =
  if n <= t.floor || n > t.green_count then
    invalid_arg
      (Printf.sprintf "Action_queue.nth_green: %d not in (%d, %d]" n t.floor
         t.green_count);
  t.green.(n - 1 - t.floor)

let greens_from t n =
  let start = max n t.floor in
  let rec collect i acc =
    if i <= start then acc else collect (i - 1) (nth_green t i :: acc)
  in
  collect t.green_count []

let set_join_floor t ~count ~line =
  if t.green_count <> 0 || t.red_count <> 0 then
    invalid_arg "Action_queue.set_join_floor: queue not empty";
  t.floor <- count;
  t.green_count <- count;
  t.floor_line <- line

let is_green t id = Id_tbl.mem t.green_pos id

let discard_below t n =
  let n = min n t.green_count in
  if n <= t.floor then 0
  else begin
    let dropped = n - t.floor in
    let stored = t.green_count - t.floor in
    (* The last discarded body becomes the floor line. *)
    let last = t.green.(dropped - 1) in
    for i = 0 to dropped - 1 do
      Id_tbl.remove t.bodies t.green.(i).Action.id
    done;
    let remaining = stored - dropped in
    let ng = if remaining = 0 then [||] else Array.make remaining last in
    Array.blit t.green dropped ng 0 remaining;
    t.green <- ng;
    t.floor <- n;
    t.floor_line <- Some last.Action.id;
    dropped
  end
  (* Walks and reallocates the retained green suffix — the in-memory
     image of the log kept above the checkpoint floor. *)
  [@@analysis.cost "O(log); alloc O(log)"]

(* O(1) amortized: capacity doubles, so each copied slot is paid for by
   the append that first filled it. *)
let grow t a =
  let stored = t.green_count - t.floor in
  let cap = Array.length t.green in
  if stored = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ng = Array.make ncap a in
    Array.blit t.green 0 ng 0 stored;
    t.green <- ng
  end
  [@@analysis.cost "O(1); alloc O(1)"]

(* O(1) amortized: membership is a hashtable lookup and deletion is
   lazy — the list entry becomes a tombstone, swept out only when
   tombstones outnumber live entries (so each sweep's O(n) is paid for
   by the n removals that preceded it). *)
let remove_red t id =
  if Id_tbl.mem t.red_set id then begin
    Id_tbl.remove t.red_set id;
    t.red_count <- t.red_count - 1;
    t.red_dead <- t.red_dead + 1;
    if t.red_dead > t.red_count + 64 then begin
      t.red <- List.filter (fun a -> Id_tbl.mem t.red_set a.Action.id) t.red;
      t.red_dead <- 0
    end
  end

let append_green t a =
  if is_green t a.Action.id then
    invalid_arg "Action_queue.append_green: already green";
  remove_red t a.Action.id;
  grow t a;
  t.green.(t.green_count - t.floor) <- a;
  t.green_count <- t.green_count + 1;
  Id_tbl.replace t.green_pos a.Action.id t.green_count;
  Id_tbl.replace t.bodies a.Action.id a;
  t.green_count

let add_red t a =
  if not (Id_tbl.mem t.bodies a.Action.id) then begin
    t.red <- a :: t.red;
    t.red_count <- t.red_count + 1;
    Id_tbl.replace t.red_set a.Action.id ();
    Id_tbl.replace t.bodies a.Action.id a
  end

let red_actions t =
  List.rev
    (List.filter (fun a -> Id_tbl.mem t.red_set a.Action.id) t.red)
let red_count t = t.red_count
let find t id = Id_tbl.find_opt t.bodies id
let mem t id = Id_tbl.mem t.bodies id
