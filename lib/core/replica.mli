open Repro_net
open Repro_gcs
open Repro_storage
open Repro_db

(** A full replication server: database + replication engine + group
    communication endpoint + stable storage + state-transfer channel,
    assembled per the paper's node architecture (§2.1).

    Replicas of one cluster share a payload network (group communication)
    and a transfer network (the point-to-point channel a joining site
    uses to pull a database snapshot from its representative, §5.1). *)

type cluster
(** The shared substrate: simulation engine, topology, both networks. *)

val make_cluster :
  ?net_config:Network.config ->
  ?params:Params.t ->
  ?seed:int ->
  nodes:Node_id.t list ->
  unit ->
  cluster

val cluster_sim : cluster -> Repro_sim.Engine.t
val cluster_topology : cluster -> Topology.t

type t

(** Admission control: a local backpressure gate on {!submit}.  When
    either backlog threshold is crossed, the submission is answered
    [Action.Busy] synchronously — nothing is created, logged or
    ordered — and the client is expected to back off and retry.  This
    is what turns the open-loop overload curve from collapse into a
    goodput plateau. *)
type admission = {
  adm_max_inflight : int;
      (** own strict submissions still awaiting their green response *)
  adm_max_red : int;  (** ordered-but-not-yet-green backlog bound *)
}

val create :
  ?disk_config:Disk.config ->
  ?attach_cpu:bool ->
  ?checkpoint_every:int option ->
  ?weights:Quorum.weights ->
  ?quorum_policy:Quorum.policy ->
  ?submit_delay:Repro_sim.Time.t ->
  ?dedup_window:int ->
  ?admission:admission ->
  cluster:cluster ->
  node:Node_id.t ->
  servers:Node_id.t list ->
  unit ->
  t
(** A replica of the initial (static) server set.  [attach_cpu] (default
    true) routes its message processing through a serial CPU resource.
    [checkpoint_every] (default [Some 2000]) takes a durable checkpoint —
    database snapshot + green knowledge, followed by log compaction and
    white-action garbage collection — every that many applied actions;
    [None] disables checkpointing.  [submit_delay] enables end-to-end
    submission batching (see {!Engine.create}); it survives crash
    recovery and joiner instantiation.  [dedup_window] (default 8)
    bounds the per-client exactly-once response cache (see {!Dedup});
    [admission] (default none) enables overload shedding. *)

val create_joiner :
  ?disk_config:Disk.config ->
  ?attach_cpu:bool ->
  ?checkpoint_every:int option ->
  ?submit_delay:Repro_sim.Time.t ->
  ?dedup_window:int ->
  ?admission:admission ->
  ?retry_interval:Repro_sim.Time.t ->
  cluster:cluster ->
  node:Node_id.t ->
  sponsors:Node_id.t list ->
  unit ->
  t
(** A dynamically instantiated replica (paper §5.1/5.2): it connects to
    the sponsor list in order, obtains a PERSISTENT_JOIN and a database
    snapshot, and only then joins the replicated group.  Remember to add
    the node to the topology first. *)

val start : t -> unit
(** Joins the group (or begins the join-by-transfer procedure). *)

val node : t -> Node_id.t

val engine : t -> Engine.t
(** Direct access to the replication engine (read-mostly). *)

val database : t -> Database.t

val procedures : t -> Procedure.registry
(** This replica's stored-procedure registry.  Instance-scoped: two
    replicas (even in one process) never share it.  Deterministic
    replication requires registering the same procedures on every
    replica of a group, exactly as it requires running the same code. *)

val register_procedure :
  ?footprint:Procedure.footprint -> t -> string -> Procedure.body -> unit
(** [register_procedure t name body] adds a procedure to [t]'s own
    registry (shorthand for [Procedure.register (procedures t) ...]).
    [?footprint] declares the key-space footprint the runtime guard
    ({!set_procedure_hook}) and the static drift lint check against. *)

val set_procedure_hook : t -> (Executor.procedure_trace -> unit) -> unit
(** Observes every procedure this replica executes — green apply,
    commutative red answer, dirty-read materialisation and recovery
    replay alike — with its actual key accesses.  Survives crash and
    recovery (the hook lives on the replica, not the engine).  Used by
    [Check.Procguard] to validate declared footprints at run time. *)

val state : t -> Types.engine_state
val in_primary : t -> bool
val is_ready : t -> bool
(** A joiner is ready once its snapshot arrived and it entered the group. *)

(* --- Client interface ---------------------------------------------- *)

val submit :
  t ->
  ?client:int ->
  ?semantics:Action.semantics ->
  ?size:int ->
  ?req_seq:int ->
  ?req_ack:int ->
  Action.kind ->
  on_response:(Action.response -> unit) ->
  unit
(** Submits a transaction.  Strict semantics answer when the action turns
    green at this replica; [Commutative] answers at first local (red)
    application — paper §6.

    [req_seq]/[req_ack] (both default 0 = no tracking) stamp the durable
    per-client request id: a retry of an already-applied [(client,
    req_seq)] is answered from the replicated dedup cache instead of
    re-executing — see {!Dedup} and the client contract there.

    When {!admission} control is configured and a backlog threshold is
    crossed, [on_response] fires synchronously with [Action.Busy] and
    nothing enters the order. *)

val weak_query : t -> string list -> (string * Value.t option) list
(** Immediate answer from the consistent-but-possibly-stale green state. *)

val local_query :
  t ->
  string list ->
  on_response:((string * Value.t option) list -> unit) ->
  unit
(** The paper's §6 read-only optimisation: answered from the green state
    once every earlier action submitted through this replica has been
    applied (session consistency) — no ordering round, no forced write. *)

val dirty_query : t -> string list -> (string * Value.t option) list
(** Immediate answer from green state plus locally known red actions. *)

val leave : t -> unit
(** Permanently leaves the replicated system (PERSISTENT_LEAVE). *)

val checkpoint_now : t -> unit
(** Takes a durable checkpoint immediately (snapshot + compaction + GC). *)

val log_entries : t -> int
(** Entries currently in the write-ahead log (observes compaction). *)

val log_flushes : t -> int
(** Physical flushes the stable storage performed so far (measures the
    forced-write and group-commit cost of a run, survives crashes). *)

val cpu_stats : t -> (int * Repro_sim.Time.t) option
(** Attached-CPU pressure: (jobs queued or running, cumulative busy
    time).  [None] when the replica runs without a CPU resource. *)

(* --- Failure injection --------------------------------------------- *)

val crash : t -> unit
(** Loses all volatile state (database included); stable storage
    retains the durable log prefix — possibly torn or corrupted, per
    the disk's fault model. *)

val recover : t -> unit
(** Restarts from stable storage (paper CodeSegment A.13) and rejoins.
    Recovery verifies the log's record framing and acts on the verdict:
    a torn tail is truncated and recovery proceeds in place; interior
    corruption past the last checkpoint salvages the trusted prefix;
    anything worse triggers {e amnesiac recovery} — the log is
    discarded and the replica re-enters through the §5.1 join/state-
    transfer path under a fresh incarnation, so no stale red/green
    claims leak back into the group. *)

val last_recovery : t -> Persist.verdict option
(** What the most recent [recover] decided ([None] before the first). *)

val corrupt_log : t -> nth:int -> bool
(** Damage the [nth] stable-log record (0-based, append order):
    deterministic fault injection for tests and the nemesis driver.
    [false] when out of range. *)

val is_up : t -> bool

val incarnation : t -> int
(** Bumped on every crash.  Observers (the repcheck monitor) compare
    incarnations to know when volatile state was legitimately lost and
    monotonicity baselines must reset. *)

val set_audit : t -> (Engine.audit_event -> unit) -> unit
(** Attaches an engine audit sink, re-attached automatically across
    crash/recovery and joiner instantiation. *)

(* --- Statistics ----------------------------------------------------- *)

val greens_applied : t -> int
val actions_submitted : t -> int

val dupes_suppressed : t -> int
(** Retried-but-already-applied requests answered from the dedup cache
    instead of re-executing (recovery replay included).  Survives
    crashes, like [actions_submitted]. *)

val shed : t -> int
(** Submissions answered [Busy] by admission control.  Survives crashes. *)

val dedup_window : t -> int

val dedup_max_cached : t -> int
(** Largest per-client cached-response list currently held — bounded by
    [dedup_window] (the replicated-state-growth property tests assert
    this). *)

val dedup_summary : t -> (int * int * int) list
(** [(client, highest applied req_seq, acked)] triples in client order:
    the convergence-relevant view of the exactly-once window.  Equal on
    every replica at the same green position. *)

val transfer_chunks_sent : t -> int
(** State-transfer chunks this replica served as a representative
    (observes resume: a resumed transfer re-sends only the tail). *)
