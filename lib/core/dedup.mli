open Repro_db

(** Replicated per-client exactly-once state (the dedup window).

    Maps each client to the highest request sequence number applied so
    far plus a bounded cache of recent responses.  Consulted and
    mutated only on the green apply path — live application, recovery
    replay, and snapshot install all go through the same code — so at a
    given green position every replica holds an identical table, and it
    can ride {!Persist} checkpoints and §5.1 state-transfer snapshots
    unchanged.

    The client contract that makes [seq <= highest] the correct
    duplicate test: sequence numbers are issued FIFO with one
    outstanding request, and a client only advances after a response.
    Stale copies of an old request may green-commit {e after} later
    sequence numbers (partition float), which is why contiguity is not
    assumed. *)

type t

type verdict =
  | Fresh  (** first time this (client, seq) reaches the green order *)
  | Duplicate of Action.response option
      (** already applied; the cached response if still within the
          window, [None] if the client's ack low-water evicted it *)

val create : window:int -> unit -> t
(** [window] bounds the per-client cached-response list (clamped to at
    least 1). *)

val window : t -> int

val check : t -> client:int -> seq:int -> verdict
(** Read-only duplicate test.  [seq <= 0] is always [Fresh] (the
    request opted out of exactly-once tracking). *)

val is_applied : t -> client:int -> seq:int -> bool

val record : t -> client:int -> seq:int -> ack:int -> Action.response -> unit
(** Book one freshly executed request: advances the high-water mark,
    caches the response, folds in the client's ack and prunes the cache
    to the window.  No-op when [seq <= 0]. *)

val observe_ack : t -> client:int -> ack:int -> unit
(** Fold in the ack low-water carried by a request that turned out to
    be a duplicate (it still proves what the client has seen). *)

val clients : t -> int
val max_cached : t -> int
(** Largest per-client cached-response list — the quantity the bounded-
    window property test asserts never exceeds {!window}. *)

(** {2 Snapshots} — pure data, deterministically ordered. *)

type client_state = {
  s_client : int;
  s_hi : int;
  s_ack : int;
  s_cache : (int * Action.response) list;
}

type snapshot = { s_window : int; s_clients : client_state list }

val snapshot : t -> snapshot
val of_snapshot : snapshot -> t
val empty_snapshot : window:int -> snapshot

val summary : t -> (int * int * int) list
(** [(client, highest applied seq, acked)] triples in client order —
    what the cross-replica convergence check compares. *)

val pp : Format.formatter -> t -> unit
