module Sim = Repro_sim
open Repro_net
open Repro_gcs
open Repro_db
open Types

let log_src = Logs.Src.create "repro.engine" ~doc:"replication engine"

module Log = (val Logs.src_log log_src)

module Id_tbl = Hashtbl.Make (struct
  type t = Action.Id.t

  let equal = Action.Id.equal
  let hash (id : Action.Id.t) = Hashtbl.hash (id.server, id.index)
end)

type callbacks = {
  on_green : Action.t list -> unit;
  on_red : Action.t -> unit;
  on_transfer_request : joiner:Node_id.t -> join_green_count:int -> unit;
  on_self_leave : unit -> unit;
  on_state_change : engine_state -> unit;
  send : service:Endpoint.service -> size:int -> payload -> unit;
}

type buffered_request = {
  bq_client : int;
  bq_semantics : Action.semantics;
  bq_size : int;
  bq_kind : Action.kind;
  bq_req_seq : int;
  bq_req_ack : int;
  bq_on_created : Action.Id.t -> unit;
}

type stats = {
  mutable s_exchanges : int;
  mutable s_installs : int;
  mutable s_retrans_batches : int;
  mutable s_actions_resent : int;
  mutable s_submit_batches : int;
  mutable s_batched_submissions : int;
}

(* Audit events: a structured feed of the engine's protocol-level
   decisions, consumed by the repcheck invariant monitor (lib/check).
   Unlike [callbacks], which drive the application, the audit feed is
   observational only — emitting it must never change behaviour. *)
type audit_event =
  | Audit_state of engine_state  (** state-machine transition *)
  | Audit_quorum of {
      aq_members : Node_id.Set.t;  (** candidate set (the view) *)
      aq_vulnerable : Node_id.Set.t;
          (** members whose knowledge-computed vulnerable record is
              still valid at decision time *)
      aq_prev_prim : prim_component;  (** quorum is taken against this *)
      aq_granted : bool;
    }  (** an [IsQuorum] evaluation at the end of a state exchange *)
  | Audit_install of prim_component  (** a primary component installed *)

type t = {
  sim : Sim.Engine.t;
  node : Node_id.t;
  persist : Persist.t;
  weights : Quorum.weights;
  quorum_policy : Quorum.policy;
  stats : stats;
  cb : callbacks;
  mutable state : engine_state;
  mutable halted : bool;
  queue : Action_queue.t;
  red_cut : (Node_id.t, int) Hashtbl.t;
  green_cut : (Node_id.t, int) Hashtbl.t; (* per creator: green prefix index *)
  green_counts : (Node_id.t, int) Hashtbl.t;
  green_lines : (Node_id.t, Action.Id.t) Hashtbl.t;
  pending_red : (Node_id.t, (int, Action.t) Hashtbl.t) Hashtbl.t;
  mutable pending_green : (int * Action.t) list;
  mutable ongoing : Action.t list; (* own undelivered actions, oldest first *)
  mutable action_index : int;
  (* end-to-end batching *)
  submit_delay : Sim.Time.t option;
      (* [Some d]: submissions accepted within [d] coalesce into one log
         frame / force / ordered batch; [None]: one action per unit *)
  mutable pending_submit : buffered_request list; (* newest first *)
  mutable submit_armed : bool;
  mutable red_accum : Action.t list; (* marks of the burst, newest first *)
  mutable green_accum : Action.t list; (* newest first *)
  mutable burst_depth : int; (* delivery-burst nesting, 0 = flushed *)
  yellow_ids : unit Id_tbl.t; (* membership index over yellow.y_set *)
  mutable known_servers : Node_id.Set.t;
  mutable prim : prim_component;
  mutable vulnerable : vulnerable;
  mutable attempt : int;
  mutable yellow : yellow;
  (* per-configuration state *)
  mutable conf : Endpoint.view option;
  mutable states : state_msg Node_id.Map.t;
  mutable knowledge : Knowledge.t option;
  mutable exchange_done : bool;
  mutable cpc_received : Node_id.Set.t;
  mutable pending_cpcs : (Node_id.t * Conf_id.t * bool) list;
  mutable buffered : buffered_request list; (* newest first *)
  mutable era : int; (* bumped on every view event; guards sync continuations *)
  mutable audit : (audit_event -> unit) option;
}

let set_audit t f = t.audit <- Some f
let emit_audit t ev = match t.audit with Some f -> f ev | None -> ()

let node t = t.node
let state t = t.state
let halted t = t.halted
let green_count t = Action_queue.green_count t.queue
let green_actions t = Action_queue.greens_from t.queue 0
let red_actions t = Action_queue.red_actions t.queue
let red_count t = Action_queue.red_count t.queue
let green_line t = Action_queue.green_line t.queue
let ongoing_actions t = t.ongoing
let attempt t = t.attempt
let red_cut t s = match Hashtbl.find_opt t.red_cut s with Some c -> c | None -> 0

let green_cut t s =
  match Hashtbl.find_opt t.green_cut s with Some c -> c | None -> 0

let green_cut_map t =
  Hashtbl.fold (fun s c acc -> Node_id.Map.add s c acc) t.green_cut
    Node_id.Map.empty

let red_cut_map t =
  Hashtbl.fold (fun s c acc -> Node_id.Map.add s c acc) t.red_cut
    Node_id.Map.empty
let known_servers t = t.known_servers
let prim_component t = t.prim
let vulnerable t = t.vulnerable
let yellow t = t.yellow

let in_primary t =
  (not t.halted)
  &&
  match t.state with
  | Reg_prim | Trans_prim -> true
  | Exchange_states | Exchange_actions | Construct | No_state | Un_state
  | Non_prim -> false

let white_line t =
  Node_id.Set.fold
    (fun s acc ->
      let c = match Hashtbl.find_opt t.green_counts s with Some c -> c | None -> 0 in
      min acc c)
    t.known_servers (Action_queue.green_count t.queue)

let set_state t s =
  if t.state <> s then begin
    Log.debug (fun m ->
        m "n%d: %a -> %a" t.node pp_engine_state t.state pp_engine_state s);
    t.state <- s;
    t.cb.on_state_change s;
    emit_audit t (Audit_state s)
  end

let meta_of t =
  {
    m_prim = t.prim;
    m_vulnerable = t.vulnerable;
    m_attempt = t.attempt;
    m_yellow = t.yellow;
    m_servers = t.known_servers;
  }

let log_meta t = Persist.log_meta t.persist (meta_of t)

(* Sync to disk, then continue — unless the configuration changed (the
   paper's process would still be blocked inside fsync when the view
   change arrives; the continuation is then obsolete). *)
let sync_then_era t k =
  let era = t.era in
  Persist.sync t.persist (fun () -> if era = t.era && not t.halted then k ())

let sync_then t k = Persist.sync t.persist (fun () -> if not t.halted then k ())

let send_payload t ~service p =
  t.cb.send ~service ~size:(payload_size p) p

(* [yellow] is replaced wholesale at view events; keep the membership
   index (used on the per-delivery hot path of transitional
   configurations) in step. *)
let set_yellow t y =
  t.yellow <- y;
  Id_tbl.reset t.yellow_ids;
  List.iter (fun id -> Id_tbl.replace t.yellow_ids id ()) y.y_set

(* ------------------------------------------------------------------ *)
(* Group commit (delivery bursts)                                      *)

(* Red and green marks accumulate while a delivery burst is processed
   and are flushed as one multi-record log frame per colour — red
   before green, so every green mark's body precedes it in the log —
   plus a single application callback for the whole green batch (one
   apply, one cache invalidation, one response sweep downstream).
   Durability semantics are unchanged: marks were never individually
   forced, and no disk or network event can interleave with a burst
   (it is synchronous within one simulation event). *)
let flush_marks t =
  (match t.red_accum with
  | [] -> ()
  | acc ->
    t.red_accum <- [];
    Persist.log_red_batch t.persist (List.rev acc));
  match t.green_accum with
  | [] -> ()
  | acc ->
    t.green_accum <- [];
    let batch = List.rev acc in
    Persist.log_green_batch t.persist (List.map (fun a -> a.Action.id) batch);
    t.cb.on_green batch
  [@@analysis.hotpath "O(batch+queue)"]

let begin_burst t = t.burst_depth <- t.burst_depth + 1

let end_burst t =
  t.burst_depth <- t.burst_depth - 1;
  if t.burst_depth <= 0 then begin
    t.burst_depth <- 0;
    flush_marks t
  end

(* ------------------------------------------------------------------ *)
(* Marking (paper CodeSegments A.14 and 5.1)                           *)

let note_own_green t pos (id : Action.Id.t) =
  Hashtbl.replace t.green_counts t.node pos;
  Hashtbl.replace t.green_lines t.node id;
  Hashtbl.replace t.green_cut id.server id.index

(* MarkRed.  Returns [true] when the action is newly accepted; gaps are
   buffered until the missing predecessors arrive (retransmissions from
   different duty holders may interleave). *)
let rec mark_red t (a : Action.t) =
  let creator = a.id.server in
  let cut = red_cut t creator in
  (* Never mint an action id below one already seen with our creator
     stamp: after a salvaged or amnesiac recovery, copies of our old
     incarnation's actions may still arrive from peers, and reusing
     their indices would collide with them. *)
  if Node_id.equal creator t.node && a.id.index > t.action_index then
    t.action_index <- a.id.index;
  if a.id.index = cut + 1 then begin
    Hashtbl.replace t.red_cut creator (cut + 1);
    t.red_accum <- a :: t.red_accum;
    Action_queue.add_red t.queue a;
    if Node_id.equal creator t.node then
      t.ongoing <-
        List.filter (fun o -> not (Action.Id.equal o.Action.id a.id)) t.ongoing;
    t.cb.on_red a;
    drain_pending_red t creator;
    true
  end
  else if a.id.index <= cut then begin
    (* Duplicate delivery.  After recovery our own undelivered actions
       are already red (A.13) yet stay on the ongoing queue for
       resending; the delivery of a resent copy is the signal that it
       is ordered and the queue entry can go. *)
    if Node_id.equal creator t.node then
      t.ongoing <-
        List.filter (fun o -> not (Action.Id.equal o.Action.id a.id)) t.ongoing;
    false
  end
  else begin
    let tbl =
      match Hashtbl.find_opt t.pending_red creator with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.pending_red creator tbl;
        tbl
    in
    Hashtbl.replace tbl a.id.index a;
    false
  end
  (* Mutually recursive with [drain_pending_red]: each drained action is
     removed from its pending table, so the pair does one queue-bounded
     sweep per contiguous run — the analysis sees only the recursion. *)
  [@@analysis.cost "O(queue); alloc O(queue)"]

and drain_pending_red t creator =
  match Hashtbl.find_opt t.pending_red creator with
  | None -> ()
  | Some tbl -> (
    let next = red_cut t creator + 1 in
    match Hashtbl.find_opt tbl next with
    | Some a ->
      Hashtbl.remove tbl next;
      ignore (mark_red t a)
    | None -> ())

(* MarkGreen, including the dynamic-reconfiguration handling of
   PERSISTENT_JOIN / PERSISTENT_LEAVE (CodeSegment 5.1). *)
let mark_green t (a : Action.t) =
  ignore (mark_red t a);
  (* [is_green] only sees the queue above its floor; after a snapshot
     resync (or a checkpoint discard) an id greened below the floor is
     invisible to it, but the per-creator green cut still covers it —
     re-appending such a copy would fork the total order against
     replicas that remember the original position. *)
  if
    (not (Action_queue.is_green t.queue a.id))
    && a.id.index > green_cut t a.id.server
  then begin
    (* FIFO per creator makes green prefixes per creator contiguous; a
       green marking can therefore never jump over a missing red. *)
    if a.id.index > red_cut t a.id.server then
      invalid_arg "Engine.mark_green: gap below a green action";
    let pos = Action_queue.append_green t.queue a in
    t.green_accum <- a :: t.green_accum;
    note_own_green t pos a.id;
    (match a.kind with
    | Action.Join joiner when not (Node_id.Set.mem joiner t.known_servers) ->
      t.known_servers <- Node_id.Set.add joiner t.known_servers;
      Hashtbl.replace t.green_counts joiner pos;
      Hashtbl.replace t.green_lines joiner a.id;
      log_meta t;
      if Node_id.equal a.id.server t.node then
        t.cb.on_transfer_request ~joiner ~join_green_count:pos
    | Action.Join _ -> () (* duplicate announcement: first one counted *)
    | Action.Leave leaver when Node_id.Set.mem leaver t.known_servers ->
      t.known_servers <- Node_id.Set.remove leaver t.known_servers;
      log_meta t;
      if Node_id.equal leaver t.node then begin
        t.halted <- true;
        t.cb.on_self_leave ()
      end
    | Action.Leave _ -> ()
    | Action.Query _ | Action.Update _ | Action.Read_write _
    | Action.Active _ | Action.Interactive _ -> ())
  end

let mark_yellow t (a : Action.t) =
  ignore (mark_red t a);
  if
    (not (Action_queue.is_green t.queue a.id))
    && not (Id_tbl.mem t.yellow_ids a.id)
  then begin
    t.yellow <- { t.yellow with y_set = t.yellow.y_set @ [ a.id ] };
    Id_tbl.replace t.yellow_ids a.id ()
  end

(* ------------------------------------------------------------------ *)
(* Install (paper CodeSegment A.10)                                    *)

let install t =
  t.stats.s_installs <- t.stats.s_installs + 1;
  Log.info (fun m ->
      m "n%d: installing primary %d (attempt %d, %d members)" t.node
        (t.prim.prim_index + 1) t.attempt
        (Node_id.Set.cardinal t.vulnerable.v_set));
  if t.yellow.y_valid then
    List.iter
      (fun id ->
        if not (Action_queue.is_green t.queue id) then
          match Action_queue.find t.queue id with
          | Some a -> mark_green t a (* OR-1.2 *)
          | None -> ())
      t.yellow.y_set;
  set_yellow t invalid_yellow;
  t.prim <-
    {
      prim_index = t.prim.prim_index + 1;
      prim_attempt = t.attempt;
      prim_servers = t.vulnerable.v_set;
    };
  t.attempt <- 0;
  emit_audit t (Audit_install t.prim);
  let reds =
    List.sort
      (fun a b -> Action.Id.compare a.Action.id b.Action.id)
      (Action_queue.red_actions t.queue)
  in
  List.iter (mark_green t) reds; (* OR-2 *)
  log_meta t;
  sync_then t (fun () -> ())
  (* Greens every yellow and red once; each marked action leaves the
     corresponding set, and install runs once per primary installation,
     not per delivered message. *)
  [@@analysis.cost "O(queue); alloc O(queue)"]

(* ------------------------------------------------------------------ *)
(* Client requests (paper A.1/A.2 Client_req, A.8)                     *)

let create_action t ~client ~semantics ~size ~req_seq ~req_ack ~kind
    ~on_created =
  t.action_index <- t.action_index + 1;
  let a =
    Action.make ~client ~semantics
      ~green_line:(Action_queue.green_line t.queue)
      ~size ~req_seq ~req_ack ~server:t.node ~index:t.action_index kind
  in
  t.ongoing <- t.ongoing @ [ a ];
  on_created a.Action.id;
  a

let create_and_log t ~client ~semantics ~size ~req_seq ~req_ack ~kind
    ~on_created =
  let a =
    create_action t ~client ~semantics ~size ~req_seq ~req_ack ~kind
      ~on_created
  in
  Persist.log_ongoing t.persist a;
  a

(* A singleton still travels as [Action_msg] — the unbatched engine and
   every recorded trace keep their exact wire shape. *)
let send_actions t actions =
  match actions with
  | [] -> ()
  | [ a ] -> send_payload t ~service:Endpoint.Safe (Action_msg a)
  | _ -> send_payload t ~service:Endpoint.Safe (Action_batch actions)

(* One submission batch end to end: every request accepted since the
   batch timer was armed becomes one multi-record log frame, one
   covering force, and one ordered [Action_batch]. *)
let note_submit_batch t actions =
  t.stats.s_submit_batches <- t.stats.s_submit_batches + 1;
  t.stats.s_batched_submissions <-
    t.stats.s_batched_submissions + List.length actions

let flush_submissions t =
  t.submit_armed <- false;
  if not t.halted then begin
    let requests = List.rev t.pending_submit in
    t.pending_submit <- [];
    if requests <> [] then
      match t.state with
      | Reg_prim | Non_prim ->
        let actions =
          List.map
            (fun r ->
              create_action t ~client:r.bq_client ~semantics:r.bq_semantics
                ~size:r.bq_size ~req_seq:r.bq_req_seq ~req_ack:r.bq_req_ack
                ~kind:r.bq_kind ~on_created:r.bq_on_created)
            requests
        in
        Persist.log_ongoing_batch t.persist actions;
        note_submit_batch t actions;
        sync_then t (fun () -> send_actions t actions)
      | Trans_prim | Exchange_states | Exchange_actions | Construct
      | No_state | Un_state ->
        (* A view change overtook the batch timer: park the requests
           with the buffered ones — they are created and sent when the
           exchange resolves. *)
        t.buffered <- t.buffered @ List.rev requests
  end

let submit t ?(client = 0) ?(semantics = Action.Strict) ?(size = 200)
    ?(req_seq = 0) ?(req_ack = 0) ~kind ~on_created () =
  if not t.halted then
    match t.state with
    | Reg_prim | Non_prim -> (
      match t.submit_delay with
      | None ->
        let a =
          create_and_log t ~client ~semantics ~size ~req_seq ~req_ack ~kind
            ~on_created
        in
        sync_then t (fun () ->
            send_payload t ~service:Endpoint.Safe (Action_msg a))
      | Some delay ->
        t.pending_submit <-
          {
            bq_client = client;
            bq_semantics = semantics;
            bq_size = size;
            bq_kind = kind;
            bq_req_seq = req_seq;
            bq_req_ack = req_ack;
            bq_on_created = on_created;
          }
          :: t.pending_submit;
        if not t.submit_armed then begin
          t.submit_armed <- true;
          ignore
            (Sim.Engine.schedule t.sim ~delay (fun () -> flush_submissions t))
        end)
    | Trans_prim | Exchange_states | Exchange_actions | Construct | No_state
    | Un_state ->
      t.buffered <-
        {
          bq_client = client;
          bq_semantics = semantics;
          bq_size = size;
          bq_kind = kind;
          bq_req_seq = req_seq;
          bq_req_ack = req_ack;
          bq_on_created = on_created;
        }
        :: t.buffered

(* Actions created here but never delivered back (the group
   communication drops unordered messages at a view change) are re-sent
   from the ongoing queue after every exchange — as one batch, since
   their log records are durable by now; duplicate deliveries are shed
   by the red-cut check in MarkRed. *)
let resend_ongoing t =
  t.stats.s_actions_resent <- t.stats.s_actions_resent + List.length t.ongoing;
  send_actions t t.ongoing

let handle_buffered t =
  let requests = List.rev t.buffered in
  t.buffered <- [];
  if requests <> [] then begin
    let actions =
      List.map
        (fun r ->
          create_action t ~client:r.bq_client ~semantics:r.bq_semantics
            ~size:r.bq_size ~req_seq:r.bq_req_seq ~req_ack:r.bq_req_ack
            ~kind:r.bq_kind ~on_created:r.bq_on_created)
        requests
    in
    Persist.log_ongoing_batch t.persist actions;
    note_submit_batch t actions;
    sync_then t (fun () -> send_actions t actions)
  end

(* ------------------------------------------------------------------ *)
(* State exchange (paper A.4, A.5, A.6, A.7)                           *)

let my_state_msg t conf_id =
  {
    sm_server = t.node;
    sm_conf = conf_id;
    sm_red_cut =
      Hashtbl.fold (fun s c acc -> Node_id.Map.add s c acc) t.red_cut
        Node_id.Map.empty;
    sm_green_count = Action_queue.green_count t.queue;
    sm_green_line = Action_queue.green_line t.queue;
    sm_green_floor = Action_queue.green_floor t.queue;
    sm_attempt = t.attempt;
    sm_prim = t.prim;
    sm_vulnerable = t.vulnerable;
    sm_yellow = t.yellow;
  }

let is_quorum t knowledge members =
  let vulnerable_present =
    Node_id.Set.exists
      (fun m ->
        match Node_id.Map.find_opt m knowledge.Knowledge.k_vulnerable with
        | Some v -> v.v_valid
        | None -> false)
      members
  in
  Quorum.policy_quorum t.quorum_policy ~weights:t.weights
    ~prev:knowledge.Knowledge.k_prim.prim_servers ~all:t.known_servers
    ~vulnerable_present members

let retrans_batch = 32
let retrans_pace = Sim.Time.of_ms 1.

(* Send one retransmission batch per pacing tick; abandon on view change. *)
let rec send_paced t payloads =
  match payloads with
  | [] -> ()
  | payload :: rest ->
    t.stats.s_retrans_batches <- t.stats.s_retrans_batches + 1;
    send_payload t ~service:Endpoint.Agreed payload;
    if rest <> [] then begin
      let era = t.era in
      ignore
        (Sim.Engine.schedule t.sim ~delay:retrans_pace (fun () ->
             if era = t.era && not t.halted then send_paced t rest))
    end

let rec shift_to_exchange_states t =
  t.states <- Node_id.Map.empty;
  t.knowledge <- None;
  t.exchange_done <- false;
  t.cpc_received <- Node_id.Set.empty;
  t.pending_cpcs <- [];
  t.stats.s_exchanges <- t.stats.s_exchanges + 1;
  set_state t Exchange_states;
  log_meta t;
  match t.conf with
  | None -> ()
  | Some view ->
    sync_then_era t (fun () ->
        send_payload t ~service:Endpoint.Agreed
          (State_msg (my_state_msg t view.Endpoint.id)))

and check_all_states t =
  match t.conf with
  | None -> ()
  | Some view ->
    if
      Node_id.Set.for_all
        (fun m -> Node_id.Map.mem m t.states)
        view.Endpoint.members
    then begin
      let knowledge = Knowledge.compute ~members:view.Endpoint.members t.states in
      t.knowledge <- Some knowledge;
      (* Retransmit my share: green segments of the plan, then red duties
         ("if most updated server: Retrans()").  Batched and paced: a
         long-partitioned member may need thousands of actions, and an
         unthrottled burst would clog receivers' CPUs long enough to trip
         their failure detectors (a livelock a real engine avoids with
         flow-controlled state transfer). *)
      let green_batches =
        List.concat_map
          (fun (source, from_pos, to_pos) ->
            if Node_id.equal source t.node then begin
              let rec batches pos acc =
                if pos >= to_pos then List.rev acc
                else begin
                  let upper = min to_pos (pos + retrans_batch) in
                  let actions =
                    List.init (upper - pos) (fun i ->
                        Action_queue.nth_green t.queue (pos + 1 + i))
                  in
                  batches upper
                    (Retrans_green { g_from = pos; g_actions = actions } :: acc)
                end
              in
              batches from_pos []
            end
            else [])
          knowledge.Knowledge.k_green_plan
      in
      let duties =
        Knowledge.red_duties ~self:t.node ~knowledge ~states:t.states
      in
      let red_actions =
        List.concat_map
          (fun (creator, low, high) ->
            List.filter_map
              (fun index ->
                match
                  Action_queue.find t.queue { Action.Id.server = creator; index }
                with
                | Some a when not (Action_queue.is_green t.queue a.Action.id) ->
                  Some a
                | Some _ | None -> None
                  (* green bodies travel via the green plan *))
              (List.init (high - low) (fun i -> low + 1 + i)))
          duties
      in
      let rec red_batches = function
        | [] -> []
        | actions ->
          let batch = List.filteri (fun i _ -> i < retrans_batch) actions in
          let rest =
            List.filteri (fun i _ -> i >= retrans_batch) actions
          in
          Retrans_red batch :: red_batches rest
      in
      send_paced t (green_batches @ red_batches red_actions);
      set_state t Exchange_actions;
      check_end_of_retrans t
    end

and check_end_of_retrans t =
  if t.state = Exchange_actions && not t.exchange_done then
    match t.knowledge with
    | Some knowledge
      when Knowledge.exchange_finished
             ~green_count:(Action_queue.green_count t.queue)
             ~red_cut:(red_cut t) knowledge ->
      t.exchange_done <- true;
      end_of_retrans t knowledge
    | Some _ | None -> ()

and end_of_retrans t knowledge =
  match t.conf with
  | None -> ()
  | Some view ->
    (* Incorporate the exchanged green lines. *)
    Node_id.Map.iter
      (fun m sm ->
        let current =
          match Hashtbl.find_opt t.green_counts m with Some c -> c | None -> 0
        in
        if sm.sm_green_count > current then begin
          Hashtbl.replace t.green_counts m sm.sm_green_count;
          match sm.sm_green_line with
          | Some id -> Hashtbl.replace t.green_lines m id
          | None -> ()
        end)
      t.states;
    (* Adopt the computed knowledge. *)
    t.prim <- knowledge.Knowledge.k_prim;
    t.attempt <- knowledge.Knowledge.k_attempt;
    set_yellow t knowledge.Knowledge.k_yellow;
    (match Node_id.Map.find_opt t.node knowledge.Knowledge.k_vulnerable with
    | Some v -> t.vulnerable <- v
    | None -> ());
    let granted = is_quorum t knowledge view.Endpoint.members in
    emit_audit t
      (Audit_quorum
         {
           aq_members = view.Endpoint.members;
           aq_vulnerable =
             Node_id.Set.filter
               (fun m ->
                 match
                   Node_id.Map.find_opt m knowledge.Knowledge.k_vulnerable
                 with
                 | Some v -> v.v_valid
                 | None -> false)
               view.Endpoint.members;
           aq_prev_prim = knowledge.Knowledge.k_prim;
           aq_granted = granted;
         });
    if granted then begin
      t.attempt <- t.attempt + 1;
      t.vulnerable <-
        {
          v_valid = true;
          v_prim_index = t.prim.prim_index;
          v_attempt = t.attempt;
          v_set = view.Endpoint.members;
          v_bits = Node_id.Set.empty;
        };
      log_meta t;
      sync_then_era t (fun () ->
          resend_ongoing t;
          send_payload t ~service:Endpoint.Safe
            (Cpc { cpc_server = t.node; cpc_conf = view.Endpoint.id });
          set_state t Construct;
          replay_pending_cpcs t)
    end
    else begin
      log_meta t;
      sync_then_era t (fun () ->
          set_state t Non_prim;
          resend_ongoing t;
          handle_buffered t)
    end

(* ------------------------------------------------------------------ *)
(* Construct / No / Un (paper A.9, A.11, A.12)                         *)

and note_cpc t server ~in_regular =
  t.cpc_received <- Node_id.Set.add server t.cpc_received;
  if in_regular && t.vulnerable.v_valid then
    t.vulnerable <-
      { t.vulnerable with v_bits = Node_id.Set.add server t.vulnerable.v_bits }

and all_cpcs_in t =
  match t.conf with
  | None -> false
  | Some view -> Node_id.Set.subset view.Endpoint.members t.cpc_received

and on_cpc t server conf_id ~in_regular =
  match t.conf with
  | Some view when Conf_id.equal view.Endpoint.id conf_id -> (
    match t.state with
    | Construct ->
      note_cpc t server ~in_regular;
      if all_cpcs_in t then begin
        (* Everyone synchronised during the exchange: after install all
           members share this green line (A.9). *)
        let my_count = Action_queue.green_count t.queue in
        let my_line = Action_queue.green_line t.queue in
        Node_id.Set.iter
          (fun s ->
            Hashtbl.replace t.green_counts s my_count;
            match my_line with
            | Some id -> Hashtbl.replace t.green_lines s id
            | None -> ())
          view.Endpoint.members;
        install t;
        set_state t Reg_prim;
        handle_buffered t
      end
    | No_state ->
      note_cpc t server ~in_regular;
      if all_cpcs_in t then set_state t Un_state
    | Exchange_actions ->
      (* A CPC can overtake our own end-of-retrans disk sync; it belongs
         to this configuration and is replayed on entering Construct. *)
      t.pending_cpcs <- (server, conf_id, in_regular) :: t.pending_cpcs
    | Exchange_states | Reg_prim | Trans_prim | Un_state | Non_prim -> ())
  | Some _ | None -> () (* a CPC of a configuration we already left *)

and replay_pending_cpcs t =
  let pending = List.rev t.pending_cpcs in
  t.pending_cpcs <- [];
  List.iter
    (fun (server, conf_id, in_regular) -> on_cpc t server conf_id ~in_regular)
    pending

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)

let on_action t (a : Action.t) ~in_regular =
  match t.state with
  | Reg_prim ->
    assert in_regular;
    mark_green t a;
    (match a.green_line with
    | Some gl -> Hashtbl.replace t.green_lines a.id.server gl
    | None -> ()) (* OR-1.1 *)
  | Trans_prim -> mark_yellow t a
  | Un_state ->
    (* 1b: someone installed the primary and generated this action before
       the cascading failure; act as if installing too (A.12). *)
    install t;
    mark_yellow t a;
    set_state t Trans_prim
  | Non_prim | Exchange_states | Exchange_actions -> ignore (mark_red t a)
  | Construct | No_state ->
    (* Total order makes this unreachable (actions are ordered after the
       CPCs that precede them); accept defensively as red. *)
    ignore (mark_red t a)
  [@@analysis.hotpath "O(batch+members+queue)"]

let rec on_retrans_green t g_index (a : Action.t) =
  let count = Action_queue.green_count t.queue in
  if g_index = count + 1 then begin
    mark_green t a;
    (* Drain any buffered successors. *)
    let next = Action_queue.green_count t.queue + 1 in
    match List.assoc_opt next t.pending_green with
    | Some a' ->
      t.pending_green <- List.remove_assoc next t.pending_green;
      on_retrans_green t next a'
    | None -> check_end_of_retrans t
  end
  else if g_index > count + 1 then
    t.pending_green <- (g_index, a) :: t.pending_green
  else check_end_of_retrans t (* duplicate *)

let on_retrans_red t a =
  ignore (mark_red t a);
  check_end_of_retrans t

let on_state_msg t sm =
  match t.state with
  | Exchange_states -> (
    match t.conf with
    | Some view when Conf_id.equal view.Endpoint.id sm.sm_conf ->
      t.states <- Node_id.Map.add sm.sm_server sm t.states;
      check_all_states t
    | Some _ | None -> ())
  | Reg_prim | Trans_prim | Exchange_actions | Construct | No_state | Un_state
  | Non_prim -> ()

let on_trans_conf t =
  t.era <- t.era + 1;
  match t.state with
  | Reg_prim -> set_state t Trans_prim
  | Construct -> set_state t No_state
  | Exchange_states | Exchange_actions -> set_state t Non_prim
  | Trans_prim | No_state | Un_state | Non_prim -> ()

let on_reg_conf t view =
  t.era <- t.era + 1;
  t.conf <- Some view;
  (match t.state with
  | Trans_prim ->
    (* A.3: the installed primary's epoch ended; yellow knowledge becomes
       transferable, the installation attempt is durably resolved. *)
    t.vulnerable <- invalid_vulnerable;
    t.yellow <- { t.yellow with y_valid = true }
  | No_state ->
    (* Nobody can have installed: every server lacked some CPC (A.11). *)
    t.vulnerable <- invalid_vulnerable
  | Un_state | Non_prim | Reg_prim | Exchange_states | Exchange_actions
  | Construct -> ());
  shift_to_exchange_states t

let handle_event t event =
  if not t.halted then begin
    (* Every event is its own (innermost) delivery burst: marks flush at
       the end even when the engine is driven without a group-commit
       wrapper (model checker, direct tests).  When the GCS endpoint
       brackets a multi-event burst with [begin_burst]/[end_burst], the
       per-event flush defers to the outer bracket. *)
    begin_burst t;
    (match event with
    | Endpoint.Reg_conf view -> on_reg_conf t view
    | Endpoint.Trans_conf _ -> on_trans_conf t
    | Endpoint.Deliver d -> (
      match d.Endpoint.payload with
      | Action_msg a -> on_action t a ~in_regular:d.in_regular
      | Action_batch actions ->
        List.iter (fun a -> on_action t a ~in_regular:d.in_regular) actions
      | Retrans_green { g_from; g_actions } ->
        List.iteri
          (fun i a -> on_retrans_green t (g_from + 1 + i) a)
          g_actions
      | Retrans_red actions -> List.iter (on_retrans_red t) actions
      | State_msg sm -> on_state_msg t sm
      | Cpc { cpc_server; cpc_conf } ->
        on_cpc t cpc_server cpc_conf ~in_regular:d.in_regular));
    end_burst t
  end

(* ------------------------------------------------------------------ *)
(* Construction and recovery                                           *)

let make_blank ?(weights = Quorum.no_weights)
    ?(quorum_policy = Quorum.Dynamic_linear) ?submit_delay ~sim ~node ~servers
    ~persist ~callbacks () =
  {
    sim;
    node;
    persist;
    weights;
    quorum_policy;
    stats =
      {
        s_exchanges = 0;
        s_installs = 0;
        s_retrans_batches = 0;
        s_actions_resent = 0;
        s_submit_batches = 0;
        s_batched_submissions = 0;
      };
    cb = callbacks;
    state = Non_prim;
    halted = false;
    queue = Action_queue.create ();
    red_cut = Hashtbl.create 16;
    green_cut = Hashtbl.create 16;
    green_counts = Hashtbl.create 16;
    green_lines = Hashtbl.create 16;
    pending_red = Hashtbl.create 16;
    pending_green = [];
    ongoing = [];
    action_index = 0;
    submit_delay;
    pending_submit = [];
    submit_armed = false;
    red_accum = [];
    green_accum = [];
    burst_depth = 0;
    yellow_ids = Id_tbl.create 64;
    known_servers = servers;
    prim = initial_prim ~servers;
    vulnerable = invalid_vulnerable;
    attempt = 0;
    yellow = invalid_yellow;
    conf = None;
    states = Node_id.Map.empty;
    knowledge = None;
    exchange_done = false;
    cpc_received = Node_id.Set.empty;
    pending_cpcs = [];
    buffered = [];
    era = 0;
    audit = None;
  }

let create ?weights ?quorum_policy ?submit_delay ~sim ~node ~servers ~persist
    ~callbacks () =
  let t =
    make_blank ?weights ?quorum_policy ?submit_delay ~sim ~node ~servers
      ~persist ~callbacks ()
  in
  log_meta t;
  t

let stats t = t.stats

let create_from_snapshot ?weights ?(action_floor = 0) ?submit_delay ~sim ~node
    ~servers ~snapshot ~green_count ~green_line ~red_cut ~prim ~dedup ~persist
    ~callbacks () =
  let t =
    make_blank ?weights ?submit_delay ~sim ~node ~servers ~persist ~callbacks ()
  in
  (* An amnesiac rejoiner must not re-mint action ids its previous life
     used: start counting from the sponsor's red cut for this node, or
     from the floor recovered from still-readable log records when that
     is higher.  In the latter case the ids between the two are known
     only to the dead incarnation; since per-creator delivery is
     gap-free, they are re-proposed as no-op fillers (bodies lost) so
     peers can advance past them. *)
  let own_cut =
    match Node_id.Map.find_opt node red_cut with Some c -> c | None -> 0
  in
  t.action_index <- max action_floor own_cut;
  for index = own_cut + 1 to action_floor do
    let filler =
      Action.make ~client:0 ~size:32 ~server:node ~index (Action.Update [])
    in
    Persist.log_ongoing t.persist filler;
    t.ongoing <- t.ongoing @ [ filler ]
  done;
  Action_queue.set_join_floor t.queue ~count:green_count ~line:green_line;
  Node_id.Map.iter
    (fun s c ->
      Hashtbl.replace t.red_cut s c;
      Hashtbl.replace t.green_cut s c)
    red_cut;
  t.prim <- prim;
  Hashtbl.replace t.green_counts node green_count;
  (match green_line with
  | Some id -> Hashtbl.replace t.green_lines node id
  | None -> ());
  (* The transferred state is this replica's first checkpoint: crash
     recovery restores it from disk rather than replaying actions it
     never held. *)
  Persist.log_checkpoint t.persist
    {
      Persist.c_snapshot = snapshot;
      c_green_count = green_count;
      c_green_line = green_line;
      c_green_cut = red_cut;
      c_meta = meta_of t;
      c_dedup = dedup;
    };
  sync_then t (fun () -> ());
  t

let recover ?weights ?quorum_policy ?submit_delay ?recovered ~sim ~node
    ~servers ~persist ~callbacks () =
  let r =
    match recovered with
    | Some r -> r
    | None -> Persist.recover ~self:node persist
  in
  let t =
    make_blank ?weights ?quorum_policy ?submit_delay ~sim ~node ~servers
      ~persist ~callbacks ()
  in
  (match r.Persist.r_meta with
  | Some m ->
    t.prim <- m.m_prim;
    t.vulnerable <- m.m_vulnerable;
    t.attempt <- m.m_attempt;
    set_yellow t m.m_yellow;
    t.known_servers <- m.m_servers
  | None -> ());
  (match r.Persist.r_checkpoint with
  | Some c ->
    Action_queue.set_join_floor t.queue ~count:c.Persist.c_green_count
      ~line:c.Persist.c_green_line;
    Hashtbl.replace t.green_counts node c.Persist.c_green_count;
    (match c.Persist.c_green_line with
    | Some id -> Hashtbl.replace t.green_lines node id
    | None -> ());
    Node_id.Map.iter
      (fun s cut -> Hashtbl.replace t.green_cut s cut)
      c.Persist.c_green_cut
  | None -> ());
  (* Rebuild the queue without firing application callbacks: the caller
     replays the returned green prefix into its database itself. *)
  List.iter
    (fun a ->
      let pos = Action_queue.append_green t.queue a in
      note_own_green t pos a.Action.id)
    r.Persist.r_green;
  List.iter (fun a -> Action_queue.add_red t.queue a) r.Persist.r_red;
  Node_id.Map.iter (fun s c -> Hashtbl.replace t.red_cut s c) r.Persist.r_red_cut;
  t.action_index <- r.Persist.r_action_index;
  (* A.13: re-inject own undelivered actions as red AND keep them on
     the ongoing queue, so [resend_ongoing] re-proposes them after the
     next exchange.  (mark_red pops own actions off the queue when they
     are newly accepted, so the queue is restored afterwards; the
     duplicate delivery of a resent copy drains it.) *)
  List.iter (fun a -> ignore (mark_red t a)) r.Persist.r_ongoing;
  t.ongoing <- r.Persist.r_ongoing;
  (* The re-injected reds accumulated as marks; recovery runs outside
     any delivery burst, so flush their log frame here.  (No greens can
     accumulate: the queue above was rebuilt without [mark_green].) *)
  flush_marks t;
  log_meta t;
  sync_then t (fun () -> ());
  (t, r.Persist.r_checkpoint, r.Persist.r_green)

(* A durable checkpoint: the caller supplies the database snapshot taken
   at the current green position; the log is then compacted and white
   action bodies (green everywhere) are dropped from memory. *)
let checkpoint t ~dedup snapshot =
  Persist.log_checkpoint t.persist
    {
      Persist.c_snapshot = snapshot;
      c_green_count = Action_queue.green_count t.queue;
      c_green_line = Action_queue.green_line t.queue;
      c_green_cut = green_cut_map t;
      c_meta = meta_of t;
      c_dedup = dedup;
    };
  sync_then t (fun () ->
      Persist.compact t.persist;
      ignore (Action_queue.discard_below t.queue (white_line t)))
