open Repro_db

(* Per-client exactly-once bookkeeping, living in replicated state.

   Correctness rests on the client contract: a client issues request
   sequence numbers 1, 2, 3, ... in FIFO order with at most one number
   outstanding, and only moves to [seq+1] after receiving a response
   for [seq].  A retried request therefore satisfies
   [seq <= highest applied] exactly when some copy of it already
   executed — contiguity is NOT assumed, because a stale copy created
   before a partition can reach the green order after later sequence
   numbers from the same client (the engine orders every created copy;
   only the first one in green order executes).

   Every mutation happens on the green apply path, so the table is a
   pure function of the green prefix and is identical on every replica
   at the same green position — which is what lets it ride checkpoints
   and state-transfer snapshots. *)

type entry = {
  mutable e_hi : int;  (* highest req_seq applied for this client *)
  mutable e_ack : int;  (* client-acked low-water mark *)
  mutable e_cache : (int * Action.response) list;  (* seq descending *)
}

type t = {
  d_window : int;
  d_tbl : (int, entry) Hashtbl.t;
}

type verdict = Fresh | Duplicate of Action.response option

let create ~window () =
  { d_window = max 1 window; d_tbl = Hashtbl.create 16 }

let window t = t.d_window

let entry t client =
  match Hashtbl.find_opt t.d_tbl client with
  | Some e -> e
  | None ->
    let e = { e_hi = 0; e_ack = 0; e_cache = [] } in
    Hashtbl.replace t.d_tbl client e;
    e

let check t ~client ~seq =
  if seq <= 0 then Fresh
  else
    match Hashtbl.find_opt t.d_tbl client with
    | None -> Fresh
    | Some e ->
      if seq <= e.e_hi then Duplicate (List.assoc_opt seq e.e_cache)
      else Fresh
  (* [e_cache] is capped at the dedup window (see [prune]) — the scan
     is over a constant-bounded list, not a queue-sized one. *)
  [@@analysis.cost "O(1); alloc O(1)"]

let is_applied t ~client ~seq =
  match check t ~client ~seq with Duplicate _ -> true | Fresh -> false

(* The cache bound: drop everything the client acknowledged, then keep
   at most [window] of the newest unacknowledged responses.  The ack
   low-water is the primary bound; the window caps growth when a
   client's acks lag (e.g. it crashed between issue and ack). *)
(* Window-bounded input, window-bounded output: constant for the cost
   lattice (the window is a config constant, not a load-dependent
   dimension). *)
let prune t e =
  e.e_cache <-
    List.filteri
      (fun i _ -> i < t.d_window)
      (List.filter (fun (s, _) -> s > e.e_ack) e.e_cache)
  [@@analysis.cost "O(1); alloc O(1)"]

let observe_ack t ~client ~ack =
  if ack > 0 then
    match Hashtbl.find_opt t.d_tbl client with
    | None -> ()
    | Some e ->
      if ack > e.e_ack then begin
        e.e_ack <- ack;
        prune t e
      end

let record t ~client ~seq ~ack response =
  if seq > 0 then begin
    let e = entry t client in
    if seq > e.e_hi then e.e_hi <- seq;
    if ack > e.e_ack then e.e_ack <- ack;
    e.e_cache <-
      List.sort
        (fun (a, _) (b, _) -> Int.compare b a)
        ((seq, response) :: List.filter (fun (s, _) -> s <> seq) e.e_cache);
    prune t e
  end
  [@@analysis.cost "O(1); alloc O(1)"]

let clients t = Hashtbl.length t.d_tbl

let max_cached t =
  Hashtbl.fold (fun _ e acc -> max acc (List.length e.e_cache)) t.d_tbl 0

(* ------------------------------------------------------------------ *)
(* Snapshots: pure data, deterministically ordered so two replicas at
   the same green position serialize identically. *)

type client_state = {
  s_client : int;
  s_hi : int;
  s_ack : int;
  s_cache : (int * Action.response) list;
}

type snapshot = { s_window : int; s_clients : client_state list }

let snapshot t =
  let cs =
    Hashtbl.fold
      (fun c e acc ->
        { s_client = c; s_hi = e.e_hi; s_ack = e.e_ack; s_cache = e.e_cache }
        :: acc)
      t.d_tbl []
  in
  {
    s_window = t.d_window;
    s_clients =
      List.sort (fun a b -> Int.compare a.s_client b.s_client) cs;
  }
  (* Checkpoint-path only: the client table is part of the durable state
     the checkpoint rewrites, so its size rides the log class. *)
  [@@analysis.cost "O(log); alloc O(log)"]

let of_snapshot s =
  let t = create ~window:s.s_window () in
  List.iter
    (fun c ->
      Hashtbl.replace t.d_tbl c.s_client
        { e_hi = c.s_hi; e_ack = c.s_ack; e_cache = c.s_cache })
    s.s_clients;
  t

let empty_snapshot ~window = { s_window = max 1 window; s_clients = [] }

(* The convergence-relevant summary: (client, highest applied, acked)
   triples in client order.  Cached response bodies are a function of
   these plus the database, so equality of summaries across replicas is
   the right convergence check. *)
let summary t =
  List.map (fun c -> (c.s_client, c.s_hi, c.s_ack)) (snapshot t).s_clients

let pp ppf t =
  Format.fprintf ppf "@[<h>dedup{%d clients, window %d}@]" (clients t)
    t.d_window
