open Repro_net
open Repro_storage
open Repro_db

type checkpoint = {
  c_snapshot : Database.snapshot;
  c_green_count : int;
  c_green_line : Action.Id.t option;
  c_green_cut : int Node_id.Map.t;
  c_meta : Types.meta;
}

type entry =
  | E_ongoing of Action.t
  | E_red of Action.t
  | E_green of Action.Id.t
  | E_meta of Types.meta
  | E_checkpoint of checkpoint

type t = { log : entry Wlog.t; disk : Disk.t }

let create ~engine ~disk () = { log = Wlog.create ~engine ~disk (); disk }
let disk t = t.disk
let log_ongoing t a = Wlog.append t.log (E_ongoing a)
let log_red t a = Wlog.append t.log (E_red a)
let log_green t id = Wlog.append t.log (E_green id)
let log_meta t m = Wlog.append t.log (E_meta m)
let log_checkpoint t c = Wlog.append t.log (E_checkpoint c)
let sync t k = Wlog.sync t.log k
let crash t = Wlog.crash t.log
let entries_logged t = Wlog.length t.log

type recovered = {
  r_meta : Types.meta option;
  r_green : Action.t list;
  r_checkpoint : checkpoint option;
  r_red : Action.t list;
  r_ongoing : Action.t list;
  r_red_cut : int Node_id.Map.t;
  r_action_index : int;
}

let cut_of map server =
  match Node_id.Map.find_opt server map with Some c -> c | None -> 0

let recover ~self t =
  let entries = Wlog.recover t.log in
  let bodies : (Node_id.t * int, Action.t) Hashtbl.t = Hashtbl.create 256 in
  let greened : (Node_id.t * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let key (id : Action.Id.t) = (id.server, id.index) in
  let meta = ref None in
  let checkpoint = ref None in
  let green_rev = ref [] in
  let red_order_rev = ref [] in
  let ongoing_rev = ref [] in
  let red_cut = ref Node_id.Map.empty in
  let action_index = ref 0 in
  let note_cut (id : Action.Id.t) =
    if id.index > cut_of !red_cut id.server then
      red_cut := Node_id.Map.add id.server id.index !red_cut;
    if Node_id.equal id.server self && id.index > !action_index then
      action_index := id.index
  in
  List.iter
    (fun entry ->
      match entry with
      | E_ongoing a ->
        ongoing_rev := a :: !ongoing_rev;
        if
          Node_id.equal a.Action.id.server self
          && a.Action.id.index > !action_index
        then
          action_index := a.Action.id.index
      | E_red a ->
        Hashtbl.replace bodies (key a.Action.id) a;
        red_order_rev := a.Action.id :: !red_order_rev;
        note_cut a.Action.id
      | E_green id -> (
        match Hashtbl.find_opt bodies (key id) with
        | Some a ->
          if not (Hashtbl.mem greened (key id)) then begin
            Hashtbl.replace greened (key id) ();
            green_rev := a :: !green_rev
          end
        | None -> () (* body lost with the unflushed tail: treated as unknown *))
      | E_meta m -> meta := Some m
      | E_checkpoint c ->
        (* The checkpoint summarises everything before it: the green
           prefix lives in its snapshot, red actions it covers are green
           inside it. *)
        checkpoint := Some c;
        meta := Some c.c_meta;
        green_rev := [];
        Hashtbl.reset greened;
        red_order_rev :=
          List.filter
            (fun (id : Action.Id.t) -> id.index > cut_of c.c_green_cut id.server)
            !red_order_rev;
        red_cut :=
          Node_id.Map.union (fun _ a b -> Some (max a b)) c.c_green_cut !red_cut)
    entries;
  let r_red =
    List.rev !red_order_rev
    |> List.filter_map (fun id ->
           if Hashtbl.mem greened (key id) then None
           else Hashtbl.find_opt bodies (key id))
  in
  let r_ongoing =
    List.rev !ongoing_rev
    |> List.filter (fun a -> a.Action.id.index > cut_of !red_cut self)
  in
  {
    r_meta = !meta;
    r_green = List.rev !green_rev;
    r_checkpoint = !checkpoint;
    r_red;
    r_ongoing;
    r_red_cut = !red_cut;
    r_action_index = !action_index;
  }

(* Compaction: keep the newest checkpoint and whatever it does not
   cover — later entries, red actions above its green cuts, and own
   ongoing actions.  Mirrors switching to a fresh log segment whose head
   is the checkpoint. *)
let compact t =
  let entries = Wlog.recover t.log in
  let latest =
    List.fold_left
      (fun acc entry ->
        match entry with E_checkpoint c -> Some c | _ -> acc)
      None entries
  in
  match latest with
  | None -> ()
  | Some c ->
    let covered (id : Action.Id.t) = id.index <= cut_of c.c_green_cut id.server in
    let after_checkpoint = ref false in
    let keep entry =
      if !after_checkpoint then true
      else
        match entry with
        | E_checkpoint c' when c' == c ->
          after_checkpoint := true;
          true
        | E_checkpoint _ | E_meta _ | E_green _ -> false
        | E_red a -> not (covered a.Action.id)
        | E_ongoing a -> not (covered a.Action.id)
    in
    Wlog.compact t.log ~keep
