open Repro_net
open Repro_storage
open Repro_db

type checkpoint = {
  c_snapshot : Database.snapshot;
  c_green_count : int;
  c_green_line : Action.Id.t option;
  c_green_cut : int Node_id.Map.t;
  c_meta : Types.meta;
  c_dedup : Dedup.snapshot;
}

type entry =
  | E_ongoing of Action.t
  | E_red of Action.t
  | E_green of Action.Id.t
  | E_meta of Types.meta
  | E_checkpoint of checkpoint

type t = { log : entry Wlog.t; disk : Disk.t }

let create ~engine ~disk () = { log = Wlog.create ~engine ~disk (); disk }
let disk t = t.disk
let log_ongoing t a = Wlog.append t.log (E_ongoing a)
let log_red t a = Wlog.append t.log (E_red a)
let log_green t id = Wlog.append t.log (E_green id)
let log_meta t m = Wlog.append t.log (E_meta m)

(* Batch variants: one Wlog frame per call — one device write, one
   checksum, and downstream one covering force for the whole batch. *)
let log_ongoing_batch t actions =
  Wlog.append_batch t.log (List.map (fun a -> E_ongoing a) actions)

let log_red_batch t actions =
  Wlog.append_batch t.log (List.map (fun a -> E_red a) actions)

let log_green_batch t ids =
  Wlog.append_batch t.log (List.map (fun id -> E_green id) ids)
let log_checkpoint t c = Wlog.append t.log (E_checkpoint c)
let sync t k = Wlog.sync t.log k
let crash t = Wlog.crash t.log
let entries_logged t = Wlog.length t.log

type verdict =
  | V_clean
  | V_torn_tail of int
  | V_salvaged of int
  | V_amnesia

let pp_verdict ppf = function
  | V_clean -> Format.pp_print_string ppf "clean"
  | V_torn_tail n -> Format.fprintf ppf "torn-tail(-%d)" n
  | V_salvaged n -> Format.fprintf ppf "salvaged(-%d)" n
  | V_amnesia -> Format.pp_print_string ppf "amnesia"

type recovered = {
  r_meta : Types.meta option;
  r_green : Action.t list;
  r_checkpoint : checkpoint option;
  r_red : Action.t list;
  r_ongoing : Action.t list;
  r_red_cut : int Node_id.Map.t;
  r_action_index : int;
  r_verdict : verdict;
  r_read_retries : int;
  r_backoff : Repro_sim.Time.t;
}

let cut_of map server =
  match Node_id.Map.find_opt server map with Some c -> c | None -> 0

(* Replay a verified entry list into engine state. *)
let parse ~self entries =
  let bodies : (Node_id.t * int, Action.t) Hashtbl.t = Hashtbl.create 256 in
  let greened : (Node_id.t * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let key (id : Action.Id.t) = (id.server, id.index) in
  let meta = ref None in
  let checkpoint = ref None in
  let green_rev = ref [] in
  let red_order_rev = ref [] in
  let ongoing_rev = ref [] in
  let red_cut = ref Node_id.Map.empty in
  let action_index = ref 0 in
  let note_cut (id : Action.Id.t) =
    if id.index > cut_of !red_cut id.server then
      red_cut := Node_id.Map.add id.server id.index !red_cut;
    if Node_id.equal id.server self && id.index > !action_index then
      action_index := id.index
  in
  List.iter
    (fun entry ->
      match entry with
      | E_ongoing a ->
        ongoing_rev := a :: !ongoing_rev;
        if
          Node_id.equal a.Action.id.server self
          && a.Action.id.index > !action_index
        then
          action_index := a.Action.id.index
      | E_red a ->
        Hashtbl.replace bodies (key a.Action.id) a;
        red_order_rev := a.Action.id :: !red_order_rev;
        note_cut a.Action.id
      | E_green id -> (
        match Hashtbl.find_opt bodies (key id) with
        | Some a ->
          if not (Hashtbl.mem greened (key id)) then begin
            Hashtbl.replace greened (key id) ();
            green_rev := a :: !green_rev
          end
        | None -> () (* body lost with the unflushed tail: treated as unknown *))
      | E_meta m -> meta := Some m
      | E_checkpoint c ->
        (* The checkpoint summarises everything before it: the green
           prefix lives in its snapshot, red actions it covers are green
           inside it.  Its green cut also bounds the indexes our own
           dead incarnations minted — records of those actions may have
           been compacted away, and re-minting a greened id would
           collide forever. *)
        checkpoint := Some c;
        meta := Some c.c_meta;
        if cut_of c.c_green_cut self > !action_index then
          action_index := cut_of c.c_green_cut self;
        green_rev := [];
        Hashtbl.reset greened;
        red_order_rev :=
          List.filter
            (fun (id : Action.Id.t) -> id.index > cut_of c.c_green_cut id.server)
            !red_order_rev;
        red_cut :=
          Node_id.Map.union (fun _ a b -> Some (max a b)) c.c_green_cut !red_cut)
    entries;
  let r_red =
    List.rev !red_order_rev
    |> List.filter_map (fun id ->
           if Hashtbl.mem greened (key id) then None
           else Hashtbl.find_opt bodies (key id))
  in
  let r_ongoing =
    List.rev !ongoing_rev
    |> List.filter (fun a -> a.Action.id.index > cut_of !red_cut self)
  in
  ( !meta,
    List.rev !green_rev,
    !checkpoint,
    r_red,
    r_ongoing,
    !red_cut,
    !action_index )

let is_checkpoint = function E_checkpoint _ -> true | _ -> false
let checkpoints entries = List.length (List.filter is_checkpoint entries)

(* The highest own action index mentioned anywhere in [entries] —
   including records beyond the damage point.  Adopting it prevents a
   salvaged or amnesiac replica from re-minting an action id its
   previous life already used (ids must be unique forever: a duplicate
   would collide with copies still floating at peers). *)
let max_own_index ~self entries =
  List.fold_left
    (fun acc entry ->
      let own (id : Action.Id.t) =
        if Node_id.equal id.server self then max acc id.index else acc
      in
      match entry with
      | E_ongoing a | E_red a -> own a.Action.id
      | E_green id -> own id
      | E_meta _ | E_checkpoint _ -> acc)
    0 entries

(* Own-creator action bodies found among [entries] (readable records,
   possibly beyond the damage point), indexed by action index. *)
let own_bodies ~self entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun entry ->
      match entry with
      | E_ongoing a | E_red a ->
        if Node_id.equal a.Action.id.server self then
          Hashtbl.replace tbl a.Action.id.index a
      | E_green _ | E_meta _ | E_checkpoint _ -> ())
    entries;
  tbl

(* Salvage drops records that were durable — and the engine forces the
   ongoing write *before* multicasting, so a dropped own action may
   already be known (red) at peers.  Action delivery is FIFO and
   gap-free per creator: if this server resumed minting above its
   trusted index, the skipped indexes would never be deliverable and
   every peer would stall on the gap.  So the lost range is re-proposed:
   bodies recovered from readable records verbatim, unrecoverable
   indexes as no-op fillers.  A filler and a still-floating old copy of
   the same id resolve by first-green-wins — globally consistent, since
   green assignment is totally ordered and delivery dedups by id. *)
let refill_own ~self ~readable ~own_cut ~floor =
  let bodies = own_bodies ~self readable in
  let rec build idx acc =
    if idx > floor then List.rev acc
    else
      let a =
        match Hashtbl.find_opt bodies idx with
        | Some a -> a
        | None ->
          Action.make ~client:0 ~size:32 ~server:self ~index:idx
            (Action.Update [])
      in
      build (idx + 1) (a :: acc)
  in
  build (own_cut + 1) []

(* The newest meta record among [entries] (checkpoints carry one too).
   Under-claiming green/red knowledge is safe — peers retransmit — but
   under-claiming the vulnerable record is not: a server that forgot it
   joined an installation attempt could let a non-quorum install.  So
   salvage adopts the newest *readable* meta even past the damage. *)
let newest_meta entries =
  List.fold_left
    (fun acc entry ->
      match entry with
      | E_meta m -> Some m
      | E_checkpoint c -> Some c.c_meta
      | E_ongoing _ | E_red _ | E_green _ -> acc)
    None entries

let recover ~self t =
  let rv = Wlog.recover t.log in
  let finish ~verdict ~meta_override ~action_floor entries =
    let meta, green, checkpoint, red, ongoing, red_cut, action_index =
      parse ~self entries
    in
    {
      r_meta = (match meta_override with Some _ as m -> m | None -> meta);
      r_green = green;
      r_checkpoint = checkpoint;
      r_red = red;
      r_ongoing = ongoing;
      r_red_cut = red_cut;
      r_action_index = max action_index action_floor;
      r_verdict = verdict;
      r_read_retries = rv.Wlog.rv_read_retries;
      r_backoff = rv.Wlog.rv_backoff;
    }
  in
  match rv.Wlog.rv_verdict with
  | Wlog.Clean ->
    finish ~verdict:V_clean ~meta_override:None ~action_floor:0
      rv.Wlog.rv_trusted
  | Wlog.Torn_tail i ->
    (* The damaged suffix was in flight: its sync callback never fired,
       so no one — client, peer, or the engine's own continuation — was
       ever told it was durable.  Truncating it is indistinguishable
       from having crashed a moment earlier.  [i] is a frame index;
       the verdict reports dropped *records*, so count them as the
       length delta across the truncation. *)
    let before = Wlog.length t.log in
    Wlog.truncate_damaged t.log ~from:i;
    let dropped = before - Wlog.length t.log in
    finish ~verdict:(V_torn_tail dropped) ~meta_override:None ~action_floor:0
      rv.Wlog.rv_trusted
  | Wlog.Corrupt_interior i ->
    let foundation_lost =
      (* The log's head record is gone (for a compacted log that head is
         the checkpoint everything builds on), or the freshest readable
         checkpoint lies at/after the damage: the trusted prefix would
         rebuild state older than what this server already claimed
         durably.  No prefix can be trusted — discard and rejoin by
         state transfer. *)
      i = 0 || checkpoints rv.Wlog.rv_readable > checkpoints rv.Wlog.rv_trusted
    in
    if foundation_lost then begin
      let action_floor = max_own_index ~self rv.Wlog.rv_readable in
      Wlog.reset t.log;
      {
        r_meta = None;
        r_green = [];
        r_checkpoint = None;
        r_red = [];
        r_ongoing = [];
        r_red_cut = Node_id.Map.empty;
        r_action_index = action_floor;
        r_verdict = V_amnesia;
        r_read_retries = rv.Wlog.rv_read_retries;
        r_backoff = rv.Wlog.rv_backoff;
      }
    end
    else begin
      let before = Wlog.length t.log in
      Wlog.truncate_damaged t.log ~from:i;
      let dropped = before - Wlog.length t.log in
      let r =
        finish ~verdict:(V_salvaged dropped)
          ~meta_override:(newest_meta rv.Wlog.rv_readable)
          ~action_floor:(max_own_index ~self rv.Wlog.rv_readable)
          rv.Wlog.rv_trusted
      in
      (* Re-propose the own actions the dropped suffix held (see
         [refill_own]); the trusted ongoing queue ends at the trusted
         index, so appending keeps the queue in index order. *)
      let own_cut =
        List.fold_left
          (fun acc (a : Action.t) -> max acc a.id.index)
          (cut_of r.r_red_cut self) r.r_ongoing
      in
      let refill =
        refill_own ~self ~readable:rv.Wlog.rv_readable ~own_cut
          ~floor:r.r_action_index
      in
      { r with r_ongoing = r.r_ongoing @ refill }
    end

let corrupt_nth t nth = Wlog.corrupt t.log ~nth

(* Compaction: keep the newest checkpoint and whatever it does not
   cover — later entries, red actions above its green cuts, and own
   ongoing actions.  Mirrors switching to a fresh log segment whose head
   is the checkpoint. *)
let compact t =
  let rv = Wlog.recover t.log in
  (* With damage present, compaction could silently drop records the
     verdict policy still needs; leave the log alone until the next
     recovery has resolved it. *)
  let entries =
    match rv.Wlog.rv_verdict with
    | Wlog.Torn_tail _ | Wlog.Corrupt_interior _ -> []
    | Wlog.Clean -> rv.Wlog.rv_trusted
  in
  let latest =
    List.fold_left
      (fun acc entry ->
        match entry with E_checkpoint c -> Some c | _ -> acc)
      None entries
  in
  match latest with
  | None -> ()
  | Some c ->
    let covered (id : Action.Id.t) = id.index <= cut_of c.c_green_cut id.server in
    let after_checkpoint = ref false in
    let keep entry =
      if !after_checkpoint then true
      else
        match entry with
        | E_checkpoint c' when c' == c ->
          after_checkpoint := true;
          true
        | E_checkpoint _ | E_meta _ | E_green _ -> false
        | E_red a -> not (covered a.Action.id)
        | E_ongoing a -> not (covered a.Action.id)
    in
    Wlog.compact t.log ~keep
  [@@analysis.cost "O(log); alloc O(log)"]
