module Sim = Repro_sim
open Repro_net
open Repro_gcs
open Repro_storage
open Repro_db

let log_src = Logs.Src.create "repro.replica" ~doc:"replication server"

module Log = (val Logs.src_log log_src)

(* A transfer version: deterministic replicas hold identical databases at
   the same green position, so (green position, digest) identifies the
   snapshot content independently of which sponsor serves it — a resumed
   transfer can continue from a *different* sponsor (paper §5.1,
   "continue its update"). *)
type transfer_version = { tv_green_count : int; tv_digest : int }

type transfer_payload = {
  td_green_line : Action.Id.t option;
  td_red_cut : int Node_id.Map.t;
  td_prim : Types.prim_component;
  td_servers : Node_id.Set.t;
  td_snapshot : Database.snapshot;
  td_joiner_floor : int;
      (* the sponsor's red cut for the joiner: an amnesiac rejoiner
         resumes action numbering above everything the group has seen
         from its previous life *)
  td_dedup : Dedup.snapshot;
      (* the sponsor's exactly-once window at the same green position
         as td_snapshot: the joiner must suppress retries of requests
         applied before it existed *)
}

type transfer_msg =
  | Treq of {
      tr_joiner : Node_id.t;
      tr_resume : (transfer_version * int) option;
          (** version + chunks already received *)
    }
  | Tchunk of {
      tc_version : transfer_version;
      tc_index : int;  (** 0-based *)
      tc_total : int;
      tc_payload : transfer_payload option;  (** carried by the last chunk *)
    }

type cluster = {
  c_sim : Sim.Engine.t;
  c_topology : Topology.t;
  c_net : Types.payload Endpoint.wire Network.t;
  c_transfer : transfer_msg Network.t;
  c_params : Params.t;
}

let make_cluster ?(net_config = Network.lan_gigabit) ?(params = Params.default)
    ?(seed = 11) ~nodes () =
  let c_sim = Sim.Engine.create ~seed () in
  let c_topology = Topology.create ~nodes in
  let c_net = Network.create ~engine:c_sim ~topology:c_topology ~config:net_config () in
  let c_transfer =
    Network.create ~engine:c_sim ~topology:c_topology ~config:net_config ()
  in
  { c_sim; c_topology; c_net; c_transfer; c_params = params }

let cluster_sim c = c.c_sim
let cluster_topology c = c.c_topology

type role =
  | Static  (** member of the initial server set *)
  | Joiner of { sponsors : Node_id.t list; retry : Sim.Time.t }

(* Admission control: shed a submission with [Action.Busy] — before it
   is created, logged or ordered — once this replica's backlog crosses
   either threshold.  Both are local quantities, so the gate is cheap
   and needs no coordination. *)
type admission = {
  adm_max_inflight : int;
      (* own strict submissions awaiting their green response *)
  adm_max_red : int;  (* ordered-but-not-yet-green backlog *)
}

type t = {
  cluster : cluster;
  node_id : Node_id.t;
  servers : Node_id.Set.t; (* initial set (static) or empty (joiner) *)
  role : role;
  disk_config : Disk.config;
  mutable disk : Disk.t;
  mutable persist : Persist.t;
  mutable engine : Engine.t option; (* joiners have none until transferred *)
  mutable endpoint : Types.payload Endpoint.t option;
  mutable db : Database.t;
  procs : Procedure.registry;
      (* this instance's stored procedures — code, not data: survives
         crash (unlike [db], procedures are configuration, so a restart
         of the same replica value still knows them) and is never
         shared with another engine in the process *)
  mutable dirty_cache : (int * int * Database.t) option;
      (* (db version, red count) -> cached dirty copy *)
  cpu : Sim.Resource.t option;
  pending : (Action.Id.t, Action.response -> unit) Hashtbl.t;
  transfer_sessions : (Node_id.t, unit) Hashtbl.t;
  mutable up : bool;
  mutable started : bool;
  mutable joiner_waiting : bool;
  mutable transfer_chunks_sent : int;
  mutable incoming : (transfer_version * int) option;
      (* joiner: version being received + contiguous chunks received *)
  weights : Quorum.weights;
  quorum_policy : Quorum.policy;
  submit_delay : Sim.Time.t option;
      (* end-to-end submission batching window (None: per-action) *)
  checkpoint_every : int option;
  mutable greens_since_checkpoint : int;
  mutable query_waiters : (unit -> unit) list; (* awaiting own-action drain *)
  mutable greens_applied : int;
  mutable actions_submitted : int;
  dedup_window : int;
  mutable dedup : Dedup.t;
      (* replicated exactly-once state: mutated only on the green apply
         path, reset on crash, restored from checkpoints and transfer
         snapshots (it is a function of the green prefix) *)
  admission : admission option;
  mutable dupes_suppressed : int;
      (* retried-but-already-applied requests answered from the dedup
         cache instead of re-executing (recovery replay included) *)
  mutable shed : int; (* submissions answered [Busy] by admission *)
  mutable left : bool;
  mutable audit : (Engine.audit_event -> unit) option;
      (* re-attached to every engine this replica creates *)
  mutable proc_hook : (Executor.procedure_trace -> unit) option;
      (* observes every executed procedure's actual key accesses
         (green apply, red answer, dirty reads, recovery replay);
         Check.Procguard validates them against declared footprints *)
  mutable incarnation : int;
      (* bumped on crash: volatile state was lost, so observers must not
         hold this replica to monotonicity across the boundary *)
  mutable last_recovery : Persist.verdict option;
  mutable amnesia_floor : int;
      (* highest own action index readable in the discarded log of an
         amnesiac recovery; seeds the next incarnation's id counter *)
      (* what the most recent recovery from stable storage decided *)
}

let node t = t.node_id
let database t = t.db
let procedures t = t.procs
let register_procedure ?footprint t name body =
  Procedure.register ?footprint t.procs name body

let set_procedure_hook t h = t.proc_hook <- Some h

let engine t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Replica.engine: joiner not yet transferred"

let state t =
  match t.engine with Some e -> Engine.state e | None -> Types.Non_prim

let in_primary t = match t.engine with Some e -> Engine.in_primary e | None -> false
let is_ready t = t.engine <> None && t.up && not t.left
let is_up t = t.up
let incarnation t = t.incarnation
let last_recovery t = t.last_recovery
let corrupt_log t ~nth = Persist.corrupt_nth t.persist nth
let greens_applied t = t.greens_applied
let log_entries t = Persist.entries_logged t.persist
let log_flushes t = Disk.flushes (Persist.disk t.persist)

let cpu_stats t =
  match t.cpu with
  | Some cpu ->
    Some (Sim.Resource.queue_length cpu, Sim.Resource.busy_time cpu)
  | None -> None
let transfer_chunks_sent t = t.transfer_chunks_sent
let actions_submitted t = t.actions_submitted
let dupes_suppressed t = t.dupes_suppressed
let shed t = t.shed
let dedup_window t = t.dedup_window
let dedup_max_cached t = Dedup.max_cached t.dedup
let dedup_summary t = Dedup.summary t.dedup

(* ------------------------------------------------------------------ *)
(* Engine callbacks                                                    *)

(* Install a freshly created engine, re-attaching the audit sink (the
   repcheck monitor survives crash/recovery and joiner instantiation). *)
let adopt_engine t e =
  (match t.audit with Some f -> Engine.set_audit e f | None -> ());
  t.engine <- Some e

let set_audit t f =
  t.audit <- Some f;
  match t.engine with Some e -> Engine.set_audit e f | None -> ()

let checkpoint_now t =
  match t.engine with
  | None -> ()
  | Some e ->
    t.greens_since_checkpoint <- 0;
    Engine.checkpoint e ~dedup:(Dedup.snapshot t.dedup)
      (Database.snapshot t.db)

let flush_query_waiters t =
  if Hashtbl.length t.pending = 0 && t.query_waiters <> [] then begin
    let waiters = List.rev t.query_waiters in
    t.query_waiters <- [];
    List.iter (fun k -> k ()) waiters
  end
  (* Each waiter is a parked weak query, bounded by the in-flight
     request queue; the list is consumed as it is flushed. *)
  [@@analysis.cost "O(queue); alloc O(queue)"]

(* Execute one green action with exactly-once suppression.  Every path
   that applies greens — live apply, recovery replay — goes through
   here, so the dedup decision is a pure function of the green prefix
   and identical on every replica and across restarts.  A duplicate (a
   retried copy of a request some earlier copy already applied) is
   answered from the bounded response cache; once the client's ack
   low-water evicted the entry no legitimate retry can still want it,
   so the stray copy gets [Aborted]. *)
let execute_green t (a : Action.t) =
  match Dedup.check t.dedup ~client:a.Action.client ~seq:a.Action.req_seq with
  | Dedup.Duplicate cached ->
    t.dupes_suppressed <- t.dupes_suppressed + 1;
    Dedup.observe_ack t.dedup ~client:a.Action.client ~ack:a.Action.req_ack;
    (match cached with Some r -> r | None -> Action.Aborted)
  | Dedup.Fresh ->
    let response =
      Executor.execute ?on_procedure:t.proc_hook ~procs:t.procs t.db a
    in
    Dedup.record t.dedup ~client:a.Action.client ~seq:a.Action.req_seq
      ~ack:a.Action.req_ack response;
    response

(* Group-committed apply: one delivery burst's green actions execute
   back to back against the database, with the per-burst bookkeeping
   (dirty-cache invalidation, query-waiter flush, checkpoint cadence)
   paid once instead of per action. *)
let apply_green_batch t (actions : Action.t list) =
  let n = List.length actions in
  t.greens_applied <- t.greens_applied + n;
  t.dirty_cache <- None;
  List.iter
    (fun (a : Action.t) ->
      let response = execute_green t a in
      if Node_id.equal a.Action.id.server t.node_id then
        match Hashtbl.find_opt t.pending a.Action.id with
        | Some k ->
          Hashtbl.remove t.pending a.Action.id;
          k response
        | None -> ())
    actions;
  flush_query_waiters t;
  match t.checkpoint_every with
  | Some cadence ->
    t.greens_since_checkpoint <- t.greens_since_checkpoint + n;
    if t.greens_since_checkpoint >= cadence then checkpoint_now t
  | None -> ()
  (* members: the checkpoint record carries the per-member green cut. *)
  [@@analysis.hotpath "O(batch+members+queue+log)"]

let apply_red t (a : Action.t) =
  t.dirty_cache <- None;
  (* Commutative-semantics actions answer at first local application:
     their effect is order-insensitive, so the final state converges
     (paper §6). *)
  if
    a.Action.semantics = Action.Commutative
    && Node_id.equal a.Action.id.server t.node_id
  then
    match Hashtbl.find_opt t.pending a.Action.id with
    | Some k ->
      Hashtbl.remove t.pending a.Action.id;
      (* A retried copy of an already-green request must not observe a
         double-application even through the early red answer. *)
      if Dedup.is_applied t.dedup ~client:a.Action.client ~seq:a.Action.req_seq
      then begin
        t.dupes_suppressed <- t.dupes_suppressed + 1;
        k
          (match
             Dedup.check t.dedup ~client:a.Action.client ~seq:a.Action.req_seq
           with
          | Dedup.Duplicate (Some r) -> r
          | Dedup.Duplicate None | Dedup.Fresh -> Action.Aborted)
      end
      else
        (* The response is computed against the dirty state. *)
        k
          (Executor.execute ?on_procedure:t.proc_hook ~procs:t.procs
             (Database.copy t.db) a)
    | None -> ()

let transfer_chunk_bytes = 65_536

(* Stream the snapshot in fixed-size chunks starting at [from_chunk]; the
   final chunk carries the metadata + snapshot value (the earlier chunks
   model the bulk bytes on the wire). *)
let do_transfer ?(from_chunk = 0) t ~joiner =
  match t.engine with
  | None -> ()
  | Some e ->
    let snapshot = Database.snapshot t.db in
    let size = Database.snapshot_size snapshot in
    let total = max 1 ((size + transfer_chunk_bytes - 1) / transfer_chunk_bytes) in
    let version =
      { tv_green_count = Engine.green_count e; tv_digest = Database.digest t.db }
    in
    let payload =
      {
        td_green_line = Engine.green_line e;
        td_red_cut = Engine.green_cut_map e;
        td_prim = Engine.prim_component e;
        td_servers = Engine.known_servers e;
        td_snapshot = snapshot;
        td_joiner_floor = Engine.red_cut e joiner;
        td_dedup = Dedup.snapshot t.dedup;
      }
    in
    (* Paced at roughly line rate: streaming, not a burst — a crash or
       partition interrupts the transfer partway, which the joiner then
       resumes elsewhere. *)
    let rec send_chunk index =
      if t.up && (not t.left) && index < total then begin
        t.transfer_chunks_sent <- t.transfer_chunks_sent + 1;
        let last = index = total - 1 in
        let chunk_size =
          if last then size - (index * transfer_chunk_bytes)
          else transfer_chunk_bytes
        in
        Network.unicast t.cluster.c_transfer ~src:t.node_id ~dst:joiner
          ~size:(max 64 chunk_size)
          (Tchunk
             {
               tc_version = version;
               tc_index = index;
               tc_total = total;
               tc_payload = (if last then Some payload else None);
             });
        if not last then
          ignore
            (Sim.Engine.schedule t.cluster.c_sim ~delay:(Sim.Time.of_ms 5.)
               (fun () -> send_chunk (index + 1)))
      end
    in
    send_chunk (max 0 from_chunk)

let on_transfer_request t ~joiner ~join_green_count:_ =
  if Hashtbl.mem t.transfer_sessions joiner then begin
    Hashtbl.remove t.transfer_sessions joiner;
    do_transfer t ~joiner
  end

let make_callbacks t =
  {
    Engine.on_green = (fun actions -> apply_green_batch t actions);
    on_red = (fun a -> apply_red t a);
    on_transfer_request =
      (fun ~joiner ~join_green_count ->
        (* The request fires inside a delivery burst, where green marks
           may be ahead of the database (applies run at burst end).
           Defer the capture one event so snapshot and green count are
           taken from the same consistent instant. *)
        ignore
          (Sim.Engine.schedule t.cluster.c_sim ~delay:Sim.Time.zero (fun () ->
               on_transfer_request t ~joiner ~join_green_count)));
    on_self_leave =
      (fun () ->
        t.left <- true;
        match t.endpoint with Some ep -> Endpoint.crash ep | None -> ());
    on_state_change = (fun _ -> ());
    send =
      (fun ~service ~size payload ->
        match t.endpoint with
        | Some ep -> Endpoint.send ep ~service ~size payload
        | None -> ());
  }

let make_endpoint t =
  let on_event event =
    match t.engine with Some e -> Engine.handle_event e event | None -> ()
  in
  let ep =
    Endpoint.create ~network:t.cluster.c_net ~params:t.cluster.c_params
      ~node:t.node_id ~on_event
      ~on_burst_start:(fun () ->
        match t.engine with Some e -> Engine.begin_burst e | None -> ())
      ~on_burst_end:(fun () ->
        match t.engine with Some e -> Engine.end_burst e | None -> ())
      ()
  in
  t.endpoint <- Some ep;
  ep

(* ------------------------------------------------------------------ *)
(* Transfer channel                                                    *)

let on_transfer_msg t ~src msg =
  if t.up && not t.left then
    match msg with
    | Treq { tr_joiner; tr_resume } -> (
      match t.engine with
      | None -> ()
      | Some e ->
        if Node_id.Set.mem tr_joiner (Engine.known_servers e) then begin
          (* The join is already ordered here: resume the transfer
             directly (paper CodeSegment 5.1, line 21) — and skip chunks
             the joiner already holds when our snapshot version matches
             (determinism makes snapshots at equal green positions
             identical across sponsors). *)
          let from_chunk =
            match tr_resume with
            | Some (v, have)
              when v.tv_green_count = Engine.green_count e
                   && v.tv_digest = Database.digest t.db ->
              have
            | _ -> 0
          in
          do_transfer ~from_chunk t ~joiner:tr_joiner
        end
        else begin
          (* Announce the newcomer (lines 17-19); transfer when green.
             The engine submits immediately in [Reg_prim]/[Non_prim] and
             buffers the request itself in every other state. *)
          Hashtbl.replace t.transfer_sessions tr_joiner ();
          Engine.submit e ~kind:(Action.Join tr_joiner)
            ~on_created:(fun _ -> ())
            ()
        end)
    | Tchunk { tc_version; tc_index; tc_total; tc_payload } ->
      if t.engine = None && t.joiner_waiting then begin
        ignore src;
        (* Contiguous reassembly; a version change restarts the count. *)
        let have =
          match t.incoming with
          | Some (v, have) when v = tc_version -> have
          | _ -> 0
        in
        if tc_index = have then begin
          t.incoming <- Some (tc_version, have + 1);
          match tc_payload with
          | Some p when have + 1 = tc_total ->
            t.joiner_waiting <- false;
            t.incoming <- None;
            t.db <- Database.of_snapshot p.td_snapshot;
            t.dedup <- Dedup.of_snapshot p.td_dedup;
            let e =
              Engine.create_from_snapshot ~weights:t.weights
                ?submit_delay:t.submit_delay
                ~action_floor:(max p.td_joiner_floor t.amnesia_floor)
                ~sim:t.cluster.c_sim
                ~node:t.node_id ~servers:p.td_servers
                ~snapshot:p.td_snapshot
                ~green_count:tc_version.tv_green_count
                ~green_line:p.td_green_line ~red_cut:p.td_red_cut
                ~prim:p.td_prim ~dedup:p.td_dedup ~persist:t.persist
                ~callbacks:(make_callbacks t) ()
            in
            t.amnesia_floor <- 0;
            adopt_engine t e;
            let ep =
              match t.endpoint with Some ep -> ep | None -> make_endpoint t
            in
            (* An amnesiac rejoiner's endpoint is still crashed; a fresh
               joiner's is idle.  [recover] revives the former (and
               no-ops on the latter), [join] starts the gather. *)
            Endpoint.recover ep;
            Endpoint.join ep
          | _ -> ()
        end
      end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let base ?(disk_config = Disk.default_forced) ?(attach_cpu = true)
    ?(checkpoint_every = Some 2000) ?(weights = Quorum.no_weights)
    ?(quorum_policy = Quorum.Dynamic_linear) ?submit_delay
    ?(dedup_window = 8) ?admission ~cluster ~node ~servers ~role () =
  let disk = Disk.create ~engine:cluster.c_sim ~config:disk_config () in
  let persist = Persist.create ~engine:cluster.c_sim ~disk () in
  let cpu =
    if attach_cpu then begin
      let cpu = Sim.Resource.create cluster.c_sim in
      Network.attach_cpu cluster.c_net node cpu;
      Network.attach_cpu cluster.c_transfer node cpu;
      Some cpu
    end
    else None
  in
  let t =
    {
      cluster;
      node_id = node;
      servers;
      role;
      disk_config;
      disk;
      persist;
      engine = None;
      endpoint = None;
      db = Database.create ();
      procs = Procedure.builtins ();
      dirty_cache = None;
      cpu;
      pending = Hashtbl.create 32;
      transfer_sessions = Hashtbl.create 4;
      weights;
      quorum_policy;
      submit_delay;
      checkpoint_every;
      greens_since_checkpoint = 0;
      query_waiters = [];
      up = true;
      started = false;
      joiner_waiting = false;
      transfer_chunks_sent = 0;
      incoming = None;
      greens_applied = 0;
      actions_submitted = 0;
      dedup_window;
      dedup = Dedup.create ~window:dedup_window ();
      admission;
      dupes_suppressed = 0;
      shed = 0;
      left = false;
      audit = None;
      proc_hook = None;
      incarnation = 0;
      last_recovery = None;
      amnesia_floor = 0;
    }
  in
  Network.register cluster.c_transfer node ~handler:(fun ~src msg ->
      on_transfer_msg t ~src msg);
  t

let create ?disk_config ?attach_cpu ?checkpoint_every ?weights ?quorum_policy
    ?submit_delay ?dedup_window ?admission ~cluster ~node ~servers () =
  let servers = Node_id.set_of_list servers in
  let t =
    base ?disk_config ?attach_cpu ?checkpoint_every ?weights ?quorum_policy
      ?submit_delay ?dedup_window ?admission ~cluster ~node ~servers
      ~role:Static ()
  in
  let e =
    Engine.create ~weights:t.weights ~quorum_policy:t.quorum_policy
      ?submit_delay:t.submit_delay ~sim:cluster.c_sim ~node ~servers
      ~persist:t.persist ~callbacks:(make_callbacks t) ()
  in
  adopt_engine t e;
  (* installs the event handler; nothing is multicast until the network
     delivers an event, so the meta record Engine.create appended need
     not be forced yet.  repcheck: allow *)
  ignore (make_endpoint t);
  t

let create_joiner ?disk_config ?attach_cpu ?checkpoint_every ?submit_delay
    ?dedup_window ?admission ?(retry_interval = Sim.Time.of_ms 500.) ~cluster
    ~node ~sponsors () =
  base ?disk_config ?attach_cpu ?checkpoint_every ?submit_delay ?dedup_window
    ?admission ~cluster ~node ~servers:Node_id.Set.empty
    ~role:(Joiner { sponsors; retry = retry_interval })
    ()

let rec joiner_request_loop t sponsors_left all_sponsors retry =
  if t.up && t.joiner_waiting && t.engine = None then begin
    let sponsor, rest =
      match sponsors_left with
      | s :: rest -> (s, rest)
      | [] -> (
        match all_sponsors with
        | s :: rest -> (s, rest)
        | [] -> invalid_arg "Replica.create_joiner: no sponsors")
    in
    Network.unicast t.cluster.c_transfer ~src:t.node_id ~dst:sponsor ~size:64
      (Treq { tr_joiner = t.node_id; tr_resume = t.incoming });
    ignore
      (Sim.Engine.schedule t.cluster.c_sim ~delay:retry (fun () ->
           joiner_request_loop t rest all_sponsors retry))
  end

let start t =
  if not t.started then begin
    t.started <- true;
    match t.role with
    | Static -> (
      match t.endpoint with Some ep -> Endpoint.join ep | None -> ())
    | Joiner { sponsors; retry } ->
      t.joiner_waiting <- true;
      joiner_request_loop t sponsors sponsors retry
  end

(* ------------------------------------------------------------------ *)
(* Client interface                                                    *)

let overloaded t =
  match t.admission with
  | None -> false
  | Some adm ->
    Hashtbl.length t.pending >= adm.adm_max_inflight
    ||
    (match t.engine with
    | Some e -> Engine.red_count e >= adm.adm_max_red
    | None -> false)

let submit t ?(client = 1) ?(semantics = Action.Strict) ?(size = 200)
    ?(req_seq = 0) ?(req_ack = 0) kind ~on_response =
  match t.engine with
  | None -> ()
  | Some e ->
    if overloaded t then begin
      (* Shed before anything is created, logged or multicast: the
         request never enters the order, so [Busy] is a pure "try
         again" — no dedup entry, no side effect.  The callback fires
         synchronously, within the caller's submit. *)
      t.shed <- t.shed + 1;
      on_response Action.Busy
    end
    else begin
      t.actions_submitted <- t.actions_submitted + 1;
      Engine.submit e ~client ~semantics ~size ~req_seq ~req_ack ~kind
        ~on_created:(fun id -> Hashtbl.replace t.pending id on_response)
        ()
    end

let weak_query t keys = Database.read t.db keys

(* §6 query optimisation: a read-only transaction needs no global
   ordering — it is answered from the green state as soon as every
   earlier action *of this server* has been applied (session
   consistency), skipping the multicast and the forced write. *)
let local_query t keys ~on_response =
  let answer () = on_response (Database.read t.db keys) in
  if Hashtbl.length t.pending = 0 then answer ()
  else t.query_waiters <- answer :: t.query_waiters

let dirty_db t =
  match t.engine with
  | None -> t.db
  | Some e -> (
    (* Cache key in O(1): building the red list is deferred to a miss. *)
    let key = (Database.version t.db, Engine.red_count e) in
    match t.dirty_cache with
    | Some (v, r, cached) when (v, r) = key -> cached
    | _ ->
      let copy = Database.copy t.db in
      List.iter
        (fun (a : Action.t) ->
          (* Red copies of already-green requests must not double-apply
             even in the dirty view; read-only check, no recording (the
             dedup table only advances on the green path). *)
          if
            not
              (Dedup.is_applied t.dedup ~client:a.Action.client
                 ~seq:a.Action.req_seq)
          then
            ignore
              (Executor.execute ?on_procedure:t.proc_hook ~procs:t.procs copy
                 a))
        (Engine.red_actions e);
      t.dirty_cache <- Some (fst key, snd key, copy);
      copy)

let dirty_query t keys = Database.read (dirty_db t) keys

let leave t =
  match t.engine with
  | None -> ()
  | Some e -> Engine.submit e ~kind:(Action.Leave t.node_id) ~on_created:(fun _ -> ()) ()

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)

let crash t =
  if t.up then begin
    Log.info (fun m -> m "n%d: crash" t.node_id);
    t.up <- false;
    t.incarnation <- t.incarnation + 1;
    (match t.endpoint with Some ep -> Endpoint.crash ep | None -> ());
    Network.set_up t.cluster.c_transfer t.node_id false;
    Persist.crash t.persist;
    (match t.cpu with Some cpu -> Sim.Resource.reset cpu | None -> ());
    Hashtbl.reset t.pending;
    t.query_waiters <- [];
    Hashtbl.reset t.transfer_sessions;
    t.db <- Database.create ();
    t.dedup <- Dedup.create ~window:t.dedup_window ();
    t.dirty_cache <- None;
    t.engine <- None
  end

(* Amnesiac recovery (the log's foundation is gone): discard local
   state and re-enter through the §5.1 join/state-transfer path.  The
   incarnation is bumped a second time beyond the crash bump — the new
   life's counters must never be compared against the old one's — and
   the engine stays absent until a sponsor's snapshot arrives, exactly
   as for a first-time joiner.  The sponsors already count this node
   among the known servers, so they transfer directly (CodeSegment 5.1,
   line 21) without re-ordering a Join action. *)
let amnesiac_rejoin t =
  Log.info (fun m ->
      m "n%d: log unsalvageable, rejoining by state transfer" t.node_id);
  t.incarnation <- t.incarnation + 1;
  t.incoming <- None;
  let sponsors, retry =
    match t.role with
    | Joiner { sponsors; retry } -> (sponsors, retry)
    | Static ->
      ( Node_id.Set.elements (Node_id.Set.remove t.node_id t.servers),
        Sim.Time.of_ms 500. )
  in
  if sponsors = [] then
    (* Nobody to transfer from: a lone replica with a destroyed log is
       unrecoverable; it stays down rather than invent an empty state. *)
    t.up <- false
  else begin
    t.joiner_waiting <- true;
    joiner_request_loop t sponsors sponsors retry
  end

let recover t =
  if (not t.up) && not t.left then begin
    t.up <- true;
    Network.set_up t.cluster.c_transfer t.node_id true;
    if t.joiner_waiting && t.engine = None then begin
      (* Crashed while still awaiting a snapshot (first join or amnesiac
         rejoin): there is no durable state to rebuild an engine from —
         restarting the transfer is the only sound continuation. *)
      t.last_recovery <- Some Persist.V_amnesia;
      amnesiac_rejoin t
    end
    else begin
    let r = Persist.recover ~self:t.node_id t.persist in
    t.last_recovery <- Some r.Persist.r_verdict;
    Log.info (fun m ->
        m "n%d: recovering from stable storage (%a)" t.node_id
          Persist.pp_verdict r.Persist.r_verdict);
    match r.Persist.r_verdict with
    | Persist.V_amnesia ->
      t.amnesia_floor <- max t.amnesia_floor r.Persist.r_action_index;
      amnesiac_rejoin t
    | Persist.V_clean | Persist.V_torn_tail _ | Persist.V_salvaged _ ->
      let e, ckpt, greens =
        Engine.recover ~weights:t.weights ?submit_delay:t.submit_delay
          ~recovered:r ~sim:t.cluster.c_sim ~node:t.node_id ~servers:t.servers
          ~persist:t.persist ~callbacks:(make_callbacks t) ()
      in
      (* Rebuild the database and the exactly-once window from the
         latest durable checkpoint (they were captured at the same
         green position), then replay the green actions logged after it
         through the same dedup-aware path as live application. *)
      (match ckpt with
      | Some c ->
        t.db <- Database.of_snapshot c.Persist.c_snapshot;
        t.dedup <- Dedup.of_snapshot c.Persist.c_dedup
      | None ->
        t.db <- Database.create ();
        t.dedup <- Dedup.create ~window:t.dedup_window ());
      List.iter (fun a -> ignore (execute_green t a)) greens;
      t.greens_applied <- t.greens_applied + List.length greens;
      adopt_engine t e;
      let rejoin () =
        match t.endpoint with
        | Some ep -> if t.up && not t.left then Endpoint.recover ep
        | None -> ()
      in
      (* Transient read errors charged their backoff: the node comes
         back on the network only once the log has actually been read. *)
      if Sim.Time.to_us r.Persist.r_backoff > 0 then
        ignore
          (Sim.Engine.schedule t.cluster.c_sim ~delay:r.Persist.r_backoff
             rejoin)
      else rejoin ()
    end
  end
