open Repro_net

(** Dynamic linear voting (Jajodia & Mutchler), the paper's quorum system.

    A connected component may install the next primary component iff it
    contains a weighted majority of the membership of the *last* primary
    component.  An exact half also qualifies when it contains the
    highest-precedence (lowest-id, or heaviest) member — the classic
    linear tie-breaker, which keeps quorums unique: two disjoint sets can
    never both be quorate over the same previous primary. *)

type weights = int Node_id.Map.t
(** Per-server voting weight; servers absent from the map weigh 1. *)

val no_weights : weights

val weight : weights -> Node_id.t -> int

val has_majority :
  ?weights:weights -> prev:Node_id.Set.t -> Node_id.Set.t -> bool
(** [has_majority ~prev candidate]: does [candidate] hold a strict
    weighted majority of [prev], or exactly half including the
    tie-breaker member? [prev] empty returns [false]. *)

val is_quorum :
  ?weights:weights ->
  prev:Node_id.Set.t ->
  vulnerable_present:bool ->
  Node_id.Set.t ->
  bool
(** The paper's [IsQuorum]: no member of the component may be vulnerable,
    and the component must hold a dynamic-linear-voting majority of the
    last primary component. *)

(** Which set a majority is required of.  The paper (§3.1) notes several
    quorum systems work and picks dynamic linear voting; [Static_majority]
    is the classic alternative — always a majority of the full replica
    set — trading adaptivity for simplicity.  The availability ablation
    compares them under partition churn. *)
type policy =
  | Dynamic_linear  (** majority of the last installed primary (paper) *)
  | Static_majority  (** majority of the known replica set *)
  | Mutated_weak_majority
      (** deliberately broken: half of the last primary suffices
          ([2*have >= all], no tie-breaker), so two disjoint halves can
          both be quorate — the seeded fault the model checker's smoke
          test must catch.  Never use outside checker tests. *)

val policy_quorum :
  policy ->
  ?weights:weights ->
  prev:Node_id.Set.t ->
  all:Node_id.Set.t ->
  vulnerable_present:bool ->
  Node_id.Set.t ->
  bool
