open Repro_net

type weights = int Node_id.Map.t

let no_weights = Node_id.Map.empty

let weight weights n =
  match Node_id.Map.find_opt n weights with Some w -> w | None -> 1

let total weights set =
  Node_id.Set.fold (fun n acc -> acc + weight weights n) set 0

(* The tie-breaker: heaviest member of [prev]; lowest id among equals. *)
let tie_breaker weights prev =
  Node_id.Set.fold
    (fun n best ->
      match best with
      | None -> Some n
      | Some b ->
        let wn = weight weights n and wb = weight weights b in
        if wn > wb || (wn = wb && Node_id.compare n b < 0) then Some n else best)
    prev None

let has_majority ?(weights = no_weights) ~prev candidate =
  if Node_id.Set.is_empty prev then false
  else begin
    let present = Node_id.Set.inter candidate prev in
    let have = total weights present and all = total weights prev in
    if 2 * have > all then true
    else if 2 * have = all then
      match tie_breaker weights prev with
      | Some tb -> Node_id.Set.mem tb present
      | None -> false
    else false
  end

let is_quorum ?(weights = no_weights) ~prev ~vulnerable_present candidate =
  (not vulnerable_present) && has_majority ~weights ~prev candidate

type policy = Dynamic_linear | Static_majority | Mutated_weak_majority

(* The seeded bug: >= instead of >, and no tie-breaker, so two disjoint
   halves of the previous primary can both pass. *)
let has_weak_majority ?(weights = no_weights) ~prev candidate =
  if Node_id.Set.is_empty prev then false
  else begin
    let present = Node_id.Set.inter candidate prev in
    2 * total weights present >= total weights prev
  end

let policy_quorum policy ?(weights = no_weights) ~prev ~all ~vulnerable_present
    candidate =
  (not vulnerable_present)
  &&
  match policy with
  | Dynamic_linear -> has_majority ~weights ~prev candidate
  | Static_majority -> has_majority ~weights ~prev:all candidate
  | Mutated_weak_majority -> has_weak_majority ~weights ~prev candidate
