(** A minimal binary min-heap, specialised by a comparison function.

    Used as the backing store of the simulation event queue; exposed
    separately so it can be unit- and property-tested in isolation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is not modified. *)

(** A min-heap ordered by two immediate-int keys (primary, tiebreak),
    payload alongside: comparisons are inline int compares (no closure
    call, no boxing) and [pop] returns the payload directly (no option
    cell), so the simulation event loop allocates nothing per event on
    its fast path. *)
module Keyed : sig
  type 'a t

  exception Empty

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push : 'a t -> key:int -> tie:int -> 'a -> unit

  val min_key : 'a t -> int
  (** Primary key of the smallest element; raises {!Empty}. *)

  val peek : 'a t -> 'a
  (** Smallest payload without removing it; raises {!Empty}. *)

  val pop : 'a t -> 'a
  (** Removes and returns the smallest payload; raises {!Empty}. *)

  val clear : 'a t -> unit
end
