type entry = { at : Time.t; node : int; tag : string; detail : string }

(* A fixed-capacity ring buffer: [record] is O(1) with no allocation
   beyond the entry itself, so tracing can stay on in long benchmark
   runs.  [entries]/[find_all]/[count] rebuild lists and are meant for
   test-time assertions, not the hot path. *)
type t = {
  capacity : int;
  mutable ring : entry option array;
  mutable next : int; (* slot the next entry goes into *)
  mutable length : int; (* live entries, <= capacity *)
}

let create ?(capacity = 100_000) () =
  let capacity = max 1 capacity in
  { capacity; ring = Array.make capacity None; next = 0; length = 0 }

let record t ~at ~node ~tag detail =
  t.ring.(t.next) <- Some { at; node; tag; detail };
  t.next <- (t.next + 1) mod t.capacity;
  if t.length < t.capacity then t.length <- t.length + 1

let entries t =
  (* Oldest first: walk the ring from the oldest live slot. *)
  let start = (t.next - t.length + t.capacity) mod t.capacity in
  List.init t.length (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> invalid_arg "Trace.entries: hole in ring")

let last t n =
  let n = min n t.length in
  let start = (t.next - n + t.capacity) mod t.capacity in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> invalid_arg "Trace.last: hole in ring")

let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)
let count t ~tag = List.length (find_all t ~tag)
let length t = t.length

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.length <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%a] n%d %s: %s" Time.pp e.at e.node e.tag e.detail
