(** The discrete-event simulation engine.

    A single-threaded scheduler: events are closures executed at a virtual
    time point.  Events scheduled for the same time fire in scheduling
    order (FIFO tie-break), which keeps runs fully deterministic. *)

type t

type timer
(** A handle to a scheduled event, usable to cancel it. *)

type choice = { c_at : Time.t; c_seq : int; c_label : string }
(** One event due at the earliest pending time, as presented to a
    controlled scheduler: its due time, scheduling sequence number, and
    the label given at [schedule] time (empty if none). *)

type scheduler =
  | Fifo  (** scheduling order breaks same-time ties (the default) *)
  | Controlled of (choice list -> int)
      (** when two or more events are due at the same earliest time, the
          callback picks which fires next (an index into the list, which
          is in scheduling order; out-of-range falls back to 0).  Lists
          of length one never reach the callback. *)

val create : ?seed:int -> unit -> t
(** A fresh simulation with its clock at {!Time.zero}.  [seed] (default 1)
    seeds the root RNG from which component streams should be [split]. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The root random stream of this simulation. *)

val set_scheduler : t -> scheduler -> unit
(** Replaces the same-time tie-break policy.  [Fifo] preserves the
    historical deterministic behaviour; [Controlled] turns same-instant
    concurrency into explicit choice points for a model checker. *)

val schedule : ?label:string -> t -> delay:Time.t -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t + delay].  [label] is shown
    to a [Controlled] scheduler (and in traces); it has no effect on
    execution order. *)

val schedule_at : ?label:string -> t -> at:Time.t -> (unit -> unit) -> timer
(** [schedule_at t ~at f] runs [f] at absolute time [at]; [at] must not be
    in the past. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val is_active : timer -> bool

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val run : ?until:Time.t -> t -> unit
(** Executes events in time order until the queue is empty, or until the
    clock would pass [until] (events at exactly [until] are executed).
    When stopped by [until], the clock is advanced to [until]. *)

val step : t -> bool
(** Executes the single next event. Returns [false] if the queue was
    empty. *)

val drain : ?max_steps:int -> t -> int
(** Executes events until the queue is completely empty, returning how
    many were executed.  Raises [Invalid_argument] if the queue has not
    quiesced after [max_steps] (default one million) events — the guard
    against a self-rescheduling timer that would never terminate. *)

val events_executed : t -> int
(** Total events executed since creation (monotonic). *)

val fingerprint : t -> string
(** A short textual digest of the scheduler state (clock, sequence
    counter, queue depth, events executed) for state hashing. *)

exception Stopped

val stop : t -> unit
(** Makes the current [run] return after the current event completes. *)
