type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let to_sorted_list t =
  let copy = { cmp = t.cmp; data = Array.sub t.data 0 t.size; size = t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

(* A min-heap over two immediate-int keys (primary, tiebreak) with the
   payload alongside.  The generic heap above compares through a [cmp]
   closure — an indirect call per sift step, and for float or tuple
   keys a box per comparison.  The sim event loop orders timers by
   (due-time in µs, sequence), both immediate ints, so the specialized
   heap compares inline and its pop returns the payload directly: zero
   allocation per event on the Fifo fast path. *)
module Keyed = struct
  type 'a t = {
    mutable keys : int array; (* primary key *)
    mutable tie : int array; (* tiebreak key *)
    mutable vals : 'a array;
    mutable size : int;
  }

  exception Empty

  let create () = { keys = [||]; tie = [||]; vals = [||]; size = 0 }
  let length t = t.size
  let is_empty t = t.size = 0

  let less t i j =
    t.keys.(i) < t.keys.(j)
    || (t.keys.(i) = t.keys.(j) && t.tie.(i) < t.tie.(j))

  let swap t i j =
    let k = t.keys.(i) and s = t.tie.(i) and v = t.vals.(i) in
    t.keys.(i) <- t.keys.(j);
    t.tie.(i) <- t.tie.(j);
    t.vals.(i) <- t.vals.(j);
    t.keys.(j) <- k;
    t.tie.(j) <- s;
    t.vals.(j) <- v

  let grow t v =
    let cap = Array.length t.keys in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let nkeys = Array.make ncap 0 and ntie = Array.make ncap 0 in
      let nvals = Array.make ncap v in
      Array.blit t.keys 0 nkeys 0 t.size;
      Array.blit t.tie 0 ntie 0 t.size;
      Array.blit t.vals 0 nvals 0 t.size;
      t.keys <- nkeys;
      t.tie <- ntie;
      t.vals <- nvals
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t l !smallest then smallest := l;
    if r < t.size && less t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t ~key ~tie v =
    grow t v;
    t.keys.(t.size) <- key;
    t.tie.(t.size) <- tie;
    t.vals.(t.size) <- v;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let min_key t = if t.size = 0 then raise Empty else t.keys.(0)
  let peek t = if t.size = 0 then raise Empty else t.vals.(0)

  let pop t =
    if t.size = 0 then raise Empty;
    let top = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.tie.(0) <- t.tie.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      (* overwrite the freed slot with a live duplicate so the popped
         payload is not retained by the backing array *)
      t.vals.(t.size) <- t.vals.(0);
      sift_down t 0
    end;
    top

  let clear t =
    t.keys <- [||];
    t.tie <- [||];
    t.vals <- [||];
    t.size <- 0
end
