type timer = {
  at : Time.t;
  seq : int;
  label : string;
  action : unit -> unit;
  mutable active : bool;
}

(* The pluggable scheduler decides which of the events *due at the
   earliest pending time* fires next.  [Fifo] (the default) is the
   historical behaviour: scheduling order breaks ties, keeping runs
   deterministic.  [Controlled pick] hands the due set (as labelled
   choices, scheduling order) to a callback — the hook a model checker
   or a chaos harness uses to explore same-instant interleavings
   without forking the simulator. *)
type choice = { c_at : Time.t; c_seq : int; c_label : string }
type scheduler = Fifo | Controlled of (choice list -> int)

(* The event queue is the int-keyed heap (due-time µs, scheduling
   sequence): ordering never calls a comparator closure and the Fifo
   pop allocates nothing — at 200 simulated replicas the queue churns
   per delivered message, and the old closure-compared [timer Heap.t]
   paid an indirect call per sift step on every push and pop. *)
type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : timer Heap.Keyed.t;
  root_rng : Rng.t;
  mutable stopping : bool;
  mutable scheduler : scheduler;
  mutable executed : int;
}

exception Stopped

let create ?(seed = 1) () =
  {
    clock = Time.zero;
    seq = 0;
    queue = Heap.Keyed.create ();
    root_rng = Rng.of_int seed;
    stopping = false;
    scheduler = Fifo;
    executed = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let set_scheduler t s = t.scheduler <- s
let events_executed t = t.executed

let schedule_at ?(label = "") t ~at action =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let timer = { at; seq = t.seq; label; action; active = true } in
  t.seq <- t.seq + 1;
  Heap.Keyed.push t.queue ~key:(Time.to_us at) ~tie:timer.seq timer;
  timer

let schedule ?label t ~delay action =
  schedule_at ?label t ~at:(Time.add t.clock ~span:delay) action

let cancel timer = timer.active <- false
let is_active timer = timer.active
let pending t = Heap.Keyed.length t.queue
let stop t = t.stopping <- true

let requeue t timer =
  Heap.Keyed.push t.queue ~key:(Time.to_us timer.at) ~tie:timer.seq timer

(* Pop the timer a [Controlled] scheduler selects among those due at
   the earliest pending time, reaping cancelled timers along the way.
   Materialising the due set is queue-bounded and pops each stored
   timer at most once per scheduling decision; the model checker is
   the only consumer, so the Fifo fast path in [step] never pays for
   it. *)
let pop_controlled t pick =
  (* Reap cancelled timers first so choices are only live events. *)
  let rec head () =
    if Heap.Keyed.is_empty t.queue then None
    else
      let timer = Heap.Keyed.peek t.queue in
      if timer.active then Some timer
      else begin
        ignore (Heap.Keyed.pop t.queue);
        head ()
      end
  in
  match head () with
  | None -> None
  | Some first ->
    let rec take acc =
      if Heap.Keyed.is_empty t.queue then List.rev acc
      else
        let timer = Heap.Keyed.peek t.queue in
        if Time.equal timer.at first.at then begin
          ignore (Heap.Keyed.pop t.queue);
          if timer.active then take (timer :: acc) else take acc
        end
        else List.rev acc
    in
    let due = take [] in
    if List.length due = 1 then Some (List.hd due)
    else begin
      let choices =
        List.map
          (fun timer ->
            { c_at = timer.at; c_seq = timer.seq; c_label = timer.label })
          due
      in
      let i = pick choices in
      let i = if i < 0 || i >= List.length due then 0 else i in
      let chosen = List.nth due i in
      List.iteri (fun j timer -> if j <> i then requeue t timer) due;
      Some chosen
    end
  [@@analysis.cost "O(queue); alloc O(queue)"]

let fire t timer =
  if timer.active then begin
    t.clock <- timer.at;
    t.executed <- t.executed + 1;
    timer.action ()
  end

let step t =
  match t.scheduler with
  | Fifo ->
    if Heap.Keyed.is_empty t.queue then false
    else begin
      fire t (Heap.Keyed.pop t.queue);
      true
    end
  | Controlled pick -> (
    match pop_controlled t pick with
    | None -> false
    | Some timer ->
      fire t timer;
      true)
  [@@analysis.hotpath "O(queue)"]

let run ?until t =
  t.stopping <- false;
  let continue = ref true in
  while !continue do
    if t.stopping || Heap.Keyed.is_empty t.queue then continue := false
    else
      let next_at = Time.of_us (Heap.Keyed.min_key t.queue) in
      match until with
      | Some limit when Time.(next_at > limit) ->
        t.clock <- limit;
        continue := false
      | _ -> ignore (step t)
  done;
  match until with
  | Some limit when (not t.stopping) && Time.(t.clock < limit) -> t.clock <- limit
  | _ -> ()

(* Run until the queue is fully empty — the quiescence primitive of the
   model checker's controlled schedules, where every transition's local
   fallout (disk syncs, paced retransmissions) must settle before the
   next scheduling decision.  [max_steps] guards against a runaway
   schedule (a periodic timer would never quiesce). *)
let drain ?(max_steps = 1_000_000) t =
  let steps = ref 0 in
  while (not (Heap.Keyed.is_empty t.queue)) && !steps < max_steps do
    if step t then incr steps
  done;
  if not (Heap.Keyed.is_empty t.queue) then
    invalid_arg "Engine.drain: event queue did not quiesce within max_steps";
  !steps

let fingerprint t =
  Printf.sprintf "sim clock=%dus seq=%d pending=%d executed=%d"
    (Time.to_us t.clock) t.seq (pending t) t.executed
