type timer = {
  at : Time.t;
  seq : int;
  label : string;
  action : unit -> unit;
  mutable active : bool;
}

(* The pluggable scheduler decides which of the events *due at the
   earliest pending time* fires next.  [Fifo] (the default) is the
   historical behaviour: scheduling order breaks ties, keeping runs
   deterministic.  [Controlled pick] hands the due set (as labelled
   choices, scheduling order) to a callback — the hook a model checker
   or a chaos harness uses to explore same-instant interleavings
   without forking the simulator. *)
type choice = { c_at : Time.t; c_seq : int; c_label : string }
type scheduler = Fifo | Controlled of (choice list -> int)

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
  mutable stopping : bool;
  mutable scheduler : scheduler;
  mutable executed : int;
}

exception Stopped

let cmp_timer a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1) () =
  {
    clock = Time.zero;
    seq = 0;
    queue = Heap.create ~cmp:cmp_timer;
    root_rng = Rng.of_int seed;
    stopping = false;
    scheduler = Fifo;
    executed = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let set_scheduler t s = t.scheduler <- s
let events_executed t = t.executed

let schedule_at ?(label = "") t ~at action =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let timer = { at; seq = t.seq; label; action; active = true } in
  t.seq <- t.seq + 1;
  Heap.push t.queue timer;
  timer

let schedule ?label t ~delay action =
  schedule_at ?label t ~at:(Time.add t.clock ~span:delay) action

let cancel timer = timer.active <- false
let is_active timer = timer.active
let pending t = Heap.length t.queue
let stop t = t.stopping <- true

(* Pop the timer the scheduler selects among those due at the earliest
   pending time.  Cancelled timers are reaped for free; under [Fifo] no
   due set is ever materialised. *)
let pop_next t =
  match t.scheduler with
  | Fifo -> Heap.pop t.queue
  | Controlled pick -> (
    (* Reap cancelled timers first so choices are only live events. *)
    let rec head () =
      match Heap.peek t.queue with
      | Some timer when not timer.active ->
        ignore (Heap.pop t.queue);
        head ()
      | other -> other
    in
    match head () with
    | None -> None
    | Some first ->
      let rec take acc =
        match Heap.peek t.queue with
        | Some timer when Time.equal timer.at first.at ->
          ignore (Heap.pop t.queue);
          if timer.active then take (timer :: acc) else take acc
        | _ -> List.rev acc
      in
      let due = take [] in
      if List.length due = 1 then Some (List.hd due)
      else begin
        let choices =
          List.map
            (fun timer ->
              { c_at = timer.at; c_seq = timer.seq; c_label = timer.label })
            due
        in
        let i = pick choices in
        let i = if i < 0 || i >= List.length due then 0 else i in
        let chosen = List.nth due i in
        List.iteri (fun j timer -> if j <> i then Heap.push t.queue timer) due;
        Some chosen
      end)

let step t =
  match pop_next t with
  | None -> false
  | Some timer ->
    if timer.active then begin
      t.clock <- timer.at;
      t.executed <- t.executed + 1;
      timer.action ()
    end;
    true

let run ?until t =
  t.stopping <- false;
  let continue = ref true in
  while !continue do
    if t.stopping then continue := false
    else
      match Heap.peek t.queue with
      | None -> continue := false
      | Some next -> (
        match until with
        | Some limit when Time.(next.at > limit) ->
          t.clock <- limit;
          continue := false
        | _ -> ignore (step t))
  done;
  match until with
  | Some limit when (not t.stopping) && Time.(t.clock < limit) -> t.clock <- limit
  | _ -> ()

(* Run until the queue is fully empty — the quiescence primitive of the
   model checker's controlled schedules, where every transition's local
   fallout (disk syncs, paced retransmissions) must settle before the
   next scheduling decision.  [max_steps] guards against a runaway
   schedule (a periodic timer would never quiesce). *)
let drain ?(max_steps = 1_000_000) t =
  let steps = ref 0 in
  while (not (Heap.is_empty t.queue)) && !steps < max_steps do
    if step t then incr steps
  done;
  if not (Heap.is_empty t.queue) then
    invalid_arg "Engine.drain: event queue did not quiesce within max_steps";
  !steps

let fingerprint t =
  Printf.sprintf "sim clock=%dus seq=%d pending=%d executed=%d"
    (Time.to_us t.clock) t.seq (pending t) t.executed
