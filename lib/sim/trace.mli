(** Structured, bounded trace of simulation events.

    Primarily a debugging and test-assertion aid: scenarios record what
    happened (view changes, state transitions, deliveries) and tests can
    assert over the sequence.  A fixed-capacity ring buffer keeps the
    most recent [capacity] entries: [record] is O(1), so tracing can
    stay enabled in long runs without distorting benchmarks. *)

type entry = { at : Time.t; node : int; tag : string; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 100_000 entries. *)

val record : t -> at:Time.t -> node:int -> tag:string -> string -> unit
(** O(1); evicts the oldest entry when the ring is full. *)

val entries : t -> entry list
(** Oldest first. *)

val last : t -> int -> entry list
(** [last t n] is the most recent [n] entries, oldest first — the
    "window" around a failure that violation reports print. *)

val find_all : t -> tag:string -> entry list
val count : t -> tag:string -> int

val length : t -> int
(** Live entries currently retained. *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
