type job = { duration : Time.t; k : unit -> unit }

type t = {
  engine : Engine.t;
  queue : job Queue.t;
  mutable running : bool;
  mutable busy : Time.t;
  mutable generation : int; (* bumped on reset to orphan in-flight timers *)
}

let create engine =
  { engine; queue = Queue.create (); running = false; busy = Time.zero; generation = 0 }

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.running <- false
  | Some job ->
    t.running <- true;
    t.busy <- Time.add t.busy ~span:job.duration;
    let generation = t.generation in
    ignore
      (Engine.schedule t.engine ~delay:job.duration (fun () ->
           if generation = t.generation then begin
             job.k ();
             start_next t
           end))

let submit t ~duration k =
  Queue.add { duration; k } t.queue;
  if not t.running then start_next t
  [@@analysis.cost "O(1); alloc O(1)"]

let queue_length t = Queue.length t.queue + if t.running then 1 else 0
let busy_time t = t.busy

let reset t =
  Queue.clear t.queue;
  t.running <- false;
  t.generation <- t.generation + 1
