open Repro_net
open Repro_gcs
open Repro_core
module Check = Repro_check

(** The system under test: one replication {!Engine} per node over the
    abstract EVS service ({!Model}), driven one {!Script.transition} at
    a time.  Each transition runs the simulation to quiescence, so the
    only nondeterminism is the caller's choice of transition; after each
    one the repcheck [Snapshot] catalogue and the abstract-spec
    refinement oracle ({!Check.Spec}) are evaluated. *)

type t

type result = {
  applied : bool;  (** the transition was enabled and ran *)
  appends : Conf_id.t list;
      (** configuration logs appended to — the DPOR footprint *)
  violations : Check.Snapshot.violation list;
}

val create : ?policy:Quorum.policy -> nodes:int -> unit -> t
(** Fresh engines on nodes [0 .. nodes-1], one connected component, no
    configuration delivered yet ([policy] defaults to the paper's
    dynamic linear voting; pass [Mutated_weak_majority] to hunt the
    seeded bug). *)

val stabilize : ?max_steps:int -> t -> Check.Snapshot.violation list
(** Delivers everything round-robin until quiescent — boots the system
    to its first installed primary, outside any exploration budget —
    and runs the oracles once.  A correct engine returns []. *)

val enabled : t -> Script.transition list
(** All currently enabled transitions in canonical order: deliveries,
    submissions, crashes, recoveries, canned partitions, merge. *)

val apply : t -> Script.transition -> result
(** Executes one transition to quiescence; [applied = false] (and no
    state change) when it is not currently enabled — replays of
    minimized scripts skip such lines. *)

val fingerprint : t -> string
(** Digest of the logical state: topology, per-node engine state (or
    crash marker) and durable-log length, and the EVS model.  Virtual
    time and incarnation counters are excluded — they encode history,
    not state. *)

val trace : t -> Script.transition list
(** Applied transitions, oldest first. *)

val n_nodes : t -> int
val policy : t -> Quorum.policy
val node_state : t -> Node_id.t -> Types.engine_state option
val lost_sends : t -> int
