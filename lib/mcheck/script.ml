open Repro_net

(* The deterministic event scripts the model checker explores and
   replays.  A transition is everything that happens between two
   scheduling decisions: one coalesced delivery step at a node, one
   client submission, or one injected fault followed by the matching
   reconfiguration.  Scripts serialise one transition per line so a
   counterexample can be stored, minimized and re-run byte-for-byte. *)

type transition =
  | T_deliver of Node_id.t
      (** deliver the node's next event, coalescing view-change fallout
          (leftovers, transitional/regular notices) into the step *)
  | T_submit of Node_id.t  (** one client update at the node *)
  | T_crash of Node_id.t
  | T_recover of Node_id.t
  | T_partition of Node_id.t list list  (** install these components *)
  | T_merge  (** heal the network *)

let is_fault = function
  | T_crash _ | T_recover _ | T_partition _ | T_merge -> true
  | T_deliver _ | T_submit _ -> false

let is_deliver = function T_deliver _ -> true | _ -> false

let equal (a : transition) (b : transition) = a = b

let to_line = function
  | T_deliver n -> Printf.sprintf "deliver %d" n
  | T_submit n -> Printf.sprintf "submit %d" n
  | T_crash n -> Printf.sprintf "crash %d" n
  | T_recover n -> Printf.sprintf "recover %d" n
  | T_partition groups ->
    "partition "
    ^ String.concat "|"
        (List.map
           (fun g -> String.concat "," (List.map string_of_int g))
           groups)
  | T_merge -> "merge"

let pp ppf t = Format.pp_print_string ppf (to_line t)

let of_line line =
  let line = String.trim line in
  match String.split_on_char ' ' line with
  | [ "merge" ] -> Some T_merge
  | [ "deliver"; n ] -> Some (T_deliver (int_of_string n))
  | [ "submit"; n ] -> Some (T_submit (int_of_string n))
  | [ "crash"; n ] -> Some (T_crash (int_of_string n))
  | [ "recover"; n ] -> Some (T_recover (int_of_string n))
  | [ "partition"; groups ] ->
    Some
      (T_partition
         (String.split_on_char '|' groups
         |> List.map (fun g ->
                String.split_on_char ',' g |> List.map int_of_string)))
  | _ -> None

let to_string script =
  String.concat "\n" (List.map to_line script) ^ "\n"

(* Lines starting with '#' carry replay metadata (node count, policy)
   and free-form comments. *)
let of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match of_line line with
           | Some t -> Some t
           | None -> invalid_arg ("Script.of_string: bad line: " ^ line))
