module Sim = Repro_sim
open Repro_net
open Repro_gcs
open Repro_storage
open Repro_db
open Repro_core
module Check = Repro_check

(* The system under test: one replication [Engine] per node, wired to the
   abstract EVS service ([Model]) instead of the timing-driven endpoint
   stack.  The checker drives it one {!Script.transition} at a time; each
   transition runs to quiescence (the simulation queue drains fully), so
   the only nondeterminism left is the choice of transition — exactly
   what the explorer branches on.

   Every transition is followed by the two oracles: the repcheck
   [Snapshot] catalogue (instantaneous + step invariants over engine
   snapshots) and the abstract-spec conformance oracle ([Spec]), fed the
   view/delivery triggers before the engine consumes them and the audit
   feed while it does. *)

type config = {
  nodes : int;
  policy : Quorum.policy;
}

type node = {
  id : Node_id.t;
  persist : Persist.t;  (** survives crashes: the durable log *)
  mutable engine : Engine.t option;  (** [None] while crashed *)
  mutable incarnation : int;
  mutable prev_snap : Check.Snapshot.node_snap option;
}

type t = {
  cfg : config;
  sim : Sim.Engine.t;
  model : Types.payload Model.t;
  topo : Topology.t;
  spec : Check.Spec.t;
  nodes : node array;
  servers : Node_id.Set.t;
  mutable trace : Script.transition list; (* newest first *)
}

type result = {
  applied : bool;  (** the transition was enabled and ran *)
  appends : Conf_id.t list;
      (** configuration logs appended to — the DPOR footprint *)
  violations : Check.Snapshot.violation list;
}

(* ------------------------------------------------------------------ *)
(* Content-faithful payload digests.  [Types.pp_payload] elides message
   bodies (fine for traces, fatal for state hashing): two states that
   differ only in a queued state message's red cut must hash apart.    *)

let digest_id (i : Action.Id.t) = Printf.sprintf "%d.%d" i.Action.Id.server i.Action.Id.index

let digest_action (a : Action.t) =
  digest_id a.Action.id
  ^ (match a.Action.kind with
    | Action.Query _ -> "q"
    | Action.Update _ -> "u"
    | Action.Read_write _ -> "rw"
    | Action.Active _ -> "ac"
    | Action.Interactive _ -> "i"
    | Action.Join n -> "j" ^ string_of_int n
    | Action.Leave n -> "l" ^ string_of_int n)
  ^ match a.Action.green_line with None -> "" | Some g -> "@" ^ digest_id g

let digest_actions actions = String.concat ";" (List.map digest_action actions)
let digest_set s = Format.asprintf "%a" Node_id.pp_set s

let digest_cut cut =
  String.concat ","
    (List.map
       (fun (n, i) -> Printf.sprintf "%d:%d" n i)
       (Node_id.Map.bindings cut))

let digest_prim (p : Types.prim_component) =
  Printf.sprintf "%d.%d%s" p.Types.prim_index p.Types.prim_attempt
    (digest_set p.Types.prim_servers)

let digest_vulnerable (v : Types.vulnerable) =
  if not v.Types.v_valid then "-"
  else
    Printf.sprintf "%d.%d%s/%s" v.Types.v_prim_index v.Types.v_attempt
      (digest_set v.Types.v_set) (digest_set v.Types.v_bits)

let digest_yellow (y : Types.yellow) =
  if not y.Types.y_valid then "-"
  else String.concat ";" (List.map digest_id y.Types.y_set)

let digest_payload = function
  | Types.Action_msg a -> "act " ^ digest_action a
  | Types.Action_batch actions ->
    Printf.sprintf "batch[%s]" (digest_actions actions)
  | Types.Retrans_green { g_from; g_actions } ->
    Printf.sprintf "green %d[%s]" g_from (digest_actions g_actions)
  | Types.Retrans_red actions ->
    Printf.sprintf "red[%s]" (digest_actions actions)
  | Types.State_msg sm ->
    Printf.sprintf "state n%d %s rc{%s} g%d gl%s f%d a%d p%s v%s y%s"
      sm.Types.sm_server
      (Conf_id.to_string sm.Types.sm_conf)
      (digest_cut sm.Types.sm_red_cut)
      sm.Types.sm_green_count
      (match sm.Types.sm_green_line with None -> "-" | Some g -> digest_id g)
      sm.Types.sm_green_floor sm.Types.sm_attempt
      (digest_prim sm.Types.sm_prim)
      (digest_vulnerable sm.Types.sm_vulnerable)
      (digest_yellow sm.Types.sm_yellow)
  | Types.Cpc { cpc_server; cpc_conf } ->
    Printf.sprintf "cpc n%d %s" cpc_server (Conf_id.to_string cpc_conf)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

(* Zero-latency forced writes: durability ordering is preserved (the
   sync callback still runs as a simulation event) but virtual time
   never advances, so fingerprints stay time-free. *)
let mc_disk_config =
  { Disk.default_forced with Disk.sync_latency = Sim.Time.zero; sync_jitter = 0. }

let callbacks t node_id =
  {
    Engine.on_green = (fun _ -> ());
    on_red = (fun _ -> ());
    on_transfer_request = (fun ~joiner:_ ~join_green_count:_ -> ());
    on_self_leave = (fun () -> ());
    on_state_change = (fun _ -> ());
    send =
      (fun ~service:_ ~size:_ payload ->
        Model.send t.model ~from:node_id payload);
  }

let attach_audit t nd e =
  Engine.set_audit e (fun ev -> Check.Spec.on_audit t.spec ~node:nd.id ev)

let drain t = ignore (Sim.Engine.drain t.sim)

let create ?(policy = Quorum.Dynamic_linear) ~nodes:n () =
  if n < 1 then invalid_arg "System.create: need at least one node";
  let ids = List.init n (fun i -> i) in
  let servers = Node_id.Set.of_list ids in
  let sim = Sim.Engine.create () in
  (* Residual same-instant ties inside a transition resolve to the first
     scheduled event — the historical FIFO order — via the controlled
     hook, so no hidden timing nondeterminism survives into states. *)
  Sim.Engine.set_scheduler sim (Sim.Engine.Controlled (fun _ -> 0));
  let model = Model.create ~nodes:ids ~pp_payload:digest_payload () in
  let topo = Topology.create ~nodes:ids in
  let spec = Check.Spec.create () in
  let t =
    {
      cfg = { nodes = n; policy };
      sim;
      model;
      topo;
      spec;
      nodes =
        Array.of_list
          (List.map
             (fun id ->
               let disk = Disk.create ~engine:sim ~config:mc_disk_config () in
               {
                 id;
                 persist = Persist.create ~engine:sim ~disk ();
                 engine = None;
                 incarnation = 0;
                 prev_snap = None;
               })
             ids);
      servers;
      trace = [];
    }
  in
  Array.iter
    (fun nd ->
      let e =
        Engine.create ~quorum_policy:policy ~sim ~node:nd.id ~servers
          ~persist:nd.persist
          ~callbacks:(callbacks t nd.id)
          ()
      in
      attach_audit t nd e;
      nd.engine <- Some e)
    t.nodes;
  Model.reconfigure model ~components:(Topology.components topo);
  drain t;
  t

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)

let check t =
  let spec_violations = Check.Spec.take t.spec in
  let snaps =
    Array.fold_right
      (fun nd acc ->
        match nd.engine with
        | Some e -> Check.Snapshot.of_engine ~incarnation:nd.incarnation e :: acc
        | None -> acc)
      t.nodes []
  in
  let observation = Check.Snapshot.check_observation snaps in
  let steps =
    List.concat_map
      (fun cur ->
        let nd = t.nodes.(cur.Check.Snapshot.ns_node) in
        let vs =
          match nd.prev_snap with
          | Some prev -> Check.Snapshot.check_step ~prev ~cur
          | None -> []
        in
        nd.prev_snap <- Some cur;
        vs)
      snaps
  in
  spec_violations @ observation @ steps

(* ------------------------------------------------------------------ *)
(* Transitions                                                         *)

(* One endpoint event, spec oracle first (it must see the trigger before
   the engine's audit feed reports the reaction), then the engine, then
   quiescence. *)
let deliver_one t nd e =
  match Model.deliver t.model nd.id with
  | None -> None
  | Some ev ->
    (match ev with
    | Endpoint.Trans_conf _ -> Check.Spec.on_view t.spec ~node:nd.id `Trans
    | Endpoint.Reg_conf _ -> Check.Spec.on_view t.spec ~node:nd.id `Reg
    | Endpoint.Deliver d ->
      Check.Spec.on_deliver t.spec ~node:nd.id d.Endpoint.payload
        ~in_regular:d.Endpoint.in_regular);
    Engine.handle_event e ev;
    drain t;
    Some ev

(* A delivery transition consumes view-change fallout (transitional
   configuration, demoted leftovers) until it lands one regular-service
   event: a fresh open-configuration delivery or the next regular
   configuration.  Coalescing keeps fallout — which has no interleaving
   freedom worth exploring against itself — out of the depth budget. *)
let deliver_step t nd e =
  let rec loop () =
    let fresh = Model.next_is_fresh t.model nd.id in
    match deliver_one t nd e with
    | None -> ()
    | Some ev ->
      let landed =
        fresh || (match ev with Endpoint.Reg_conf _ -> true | _ -> false)
      in
      if (not landed) && Model.has_pending t.model nd.id then loop ()
  in
  loop ()

let reconfigure t =
  Model.reconfigure t.model ~components:(Topology.components t.topo);
  drain t

let crash t nd =
  nd.incarnation <- nd.incarnation + 1;
  nd.prev_snap <- None;
  (* Detach the audit sink before dropping the engine: era-guarded
     closures of the dead incarnation may still fire inside later drains
     and must not feed the spec oracle as this node. *)
  (match nd.engine with Some e -> Engine.set_audit e (fun _ -> ()) | None -> ());
  Persist.crash nd.persist;
  nd.engine <- None;
  Model.crash t.model nd.id;
  reconfigure t

let recover t nd =
  Check.Spec.on_recover t.spec ~node:nd.id;
  let e, _snapshot, _greens =
    Engine.recover ~quorum_policy:t.cfg.policy ~sim:t.sim ~node:nd.id
      ~servers:t.servers ~persist:nd.persist
      ~callbacks:(callbacks t nd.id)
      ()
  in
  attach_audit t nd e;
  nd.engine <- Some e;
  Model.recover t.model nd.id;
  reconfigure t

let norm_groups groups =
  List.sort compare (List.map (fun g -> List.sort_uniq compare g) groups)

let current_groups t =
  norm_groups
    (List.map (fun c -> Node_id.Set.elements c) (Topology.components t.topo))

let submittable e =
  match Engine.state e with
  | Types.Reg_prim | Types.Non_prim -> true
  | Types.Trans_prim | Types.Exchange_states | Types.Exchange_actions
  | Types.Construct | Types.No_state | Types.Un_state ->
    false

let apply t tr =
  let inapplicable = { applied = false; appends = []; violations = [] } in
  let finish () =
    t.trace <- tr :: t.trace;
    {
      applied = true;
      appends = Model.take_appended t.model;
      violations = check t;
    }
  in
  match tr with
  | Script.T_deliver n -> (
    let nd = t.nodes.(n) in
    match nd.engine with
    | Some e when Model.has_pending t.model n ->
      deliver_step t nd e;
      finish ()
    | Some _ | None -> inapplicable)
  | Script.T_submit n -> (
    let nd = t.nodes.(n) in
    match nd.engine with
    | Some e when submittable e ->
      Engine.submit e ~client:1
        ~kind:(Action.Update [ Op.Add ("mc", 1) ])
        ~on_created:(fun _ -> ())
        ();
      drain t;
      finish ()
    | Some _ | None -> inapplicable)
  | Script.T_crash n ->
    let nd = t.nodes.(n) in
    if nd.engine = None then inapplicable
    else begin
      crash t nd;
      finish ()
    end
  | Script.T_recover n ->
    let nd = t.nodes.(n) in
    if nd.engine <> None then inapplicable
    else begin
      recover t nd;
      finish ()
    end
  | Script.T_partition groups ->
    if norm_groups groups = current_groups t then inapplicable
    else begin
      Topology.partition t.topo groups;
      reconfigure t;
      finish ()
    end
  | Script.T_merge ->
    if List.length (Topology.components t.topo) < 2 then inapplicable
    else begin
      Topology.merge_all t.topo;
      reconfigure t;
      finish ()
    end

(* ------------------------------------------------------------------ *)
(* Enabled transitions, in canonical order: deliveries first (the only
   transitions DPOR prunes), then submissions, then faults.            *)

let canned_partitions n =
  let all = List.init n (fun i -> i) in
  let isolate i = [ [ i ]; List.filter (fun j -> j <> i) all ] in
  let split = List.map (fun i -> [ i ]) all in
  (if n > 2 then List.map isolate all else [])
  @ [ (if n > 1 then split else []) ]
  |> List.filter (fun g -> g <> [])

let enabled t =
  let delivers =
    Array.to_list t.nodes
    |> List.filter_map (fun nd ->
           match nd.engine with
           | Some _ when Model.has_pending t.model nd.id ->
             Some (Script.T_deliver nd.id)
           | Some _ | None -> None)
  in
  let submits =
    Array.to_list t.nodes
    |> List.filter_map (fun nd ->
           match nd.engine with
           | Some e when submittable e -> Some (Script.T_submit nd.id)
           | Some _ | None -> None)
  in
  let crashes =
    Array.to_list t.nodes
    |> List.filter_map (fun nd ->
           if nd.engine <> None then Some (Script.T_crash nd.id) else None)
  in
  let recovers =
    Array.to_list t.nodes
    |> List.filter_map (fun nd ->
           if nd.engine = None then Some (Script.T_recover nd.id) else None)
  in
  let cur = current_groups t in
  let partitions =
    canned_partitions t.cfg.nodes
    |> List.filter (fun g -> norm_groups g <> cur)
    |> List.map (fun g -> Script.T_partition g)
  in
  let merges =
    if List.length (Topology.components t.topo) > 1 then [ Script.T_merge ]
    else []
  in
  delivers @ submits @ crashes @ recovers @ partitions @ merges

(* ------------------------------------------------------------------ *)
(* State hashing                                                       *)

let engine_digest e =
  Format.asprintf "%a|p%s|a%d|v%s|y%s|g%d[%s]|r[%s]|rc{%s}|o[%s]|w%d|gl%s|k%s"
    Types.pp_engine_state (Engine.state e)
    (digest_prim (Engine.prim_component e))
    (Engine.attempt e)
    (digest_vulnerable (Engine.vulnerable e))
    (digest_yellow (Engine.yellow e))
    (Engine.green_count e)
    (digest_actions (Engine.green_actions e))
    (digest_actions (Engine.red_actions e))
    (digest_cut (Engine.red_cut_map e))
    (digest_actions (Engine.ongoing_actions e))
    (Engine.white_line e)
    (match Engine.green_line e with None -> "-" | Some g -> digest_id g)
    (digest_set (Engine.known_servers e))

(* Virtual time and incarnation counters are deliberately excluded: they
   encode how the state was reached, not what it is.  After a drained
   transition the simulation queue is empty, so nothing hides there.   *)
let fingerprint t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Topology.fingerprint t.topo);
  Array.iter
    (fun nd ->
      Buffer.add_string buf (Printf.sprintf "/n%d:" nd.id);
      match nd.engine with
      | None -> Buffer.add_string buf "down"
      | Some e ->
        Buffer.add_string buf (engine_digest e);
        Buffer.add_string buf
          (Printf.sprintf "|log%d" (Persist.entries_logged nd.persist)))
    t.nodes;
  Buffer.add_char buf '/';
  Buffer.add_string buf (Model.fingerprint t.model);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Initial stabilization: deliver everything round-robin until quiet,
   outside any budget — exploration starts from the installed primary,
   like a production system that booted cleanly.                       *)

let stabilize ?(max_steps = 10_000) t =
  let rec loop budget =
    if budget = 0 then invalid_arg "System.stabilize: no quiescence";
    let next =
      Array.to_list t.nodes
      |> List.find_opt (fun nd ->
             nd.engine <> None && Model.has_pending t.model nd.id)
    in
    match next with
    | None -> ()
    | Some nd ->
      (match nd.engine with
      | Some e -> ignore (deliver_one t nd e)
      | None -> ());
      loop (budget - 1)
  in
  loop max_steps;
  ignore (Model.take_appended t.model);
  check t

let trace t = List.rev t.trace
let n_nodes t = t.cfg.nodes
let policy t = t.cfg.policy
let node_state t n = Option.map Engine.state t.nodes.(n).engine
let lost_sends t = Model.lost_sends t.model
