open Repro_net
open Repro_gcs
open Repro_core
module Check = Repro_check

(* The bounded stateless explorer.

   Iterative-deepening-free DFS over {!Script.transition} interleavings
   from the stabilized initial state, with three complementary prunings:

   - {b dynamic partial-order reduction} (Flanagan & Godefroid 2005)
     over delivery transitions: two deliveries at different nodes are
     independent unless they appended to the same configuration log
     (their footprints, [result.appends], intersect).  When an executed
     delivery races with an earlier one, the earlier choice point gains
     a backtrack obligation; otherwise the alternative order is provably
     state-equivalent and never explored.  Fault and submission
     transitions are {e not} reduced: they are optional actions the DPOR
     theorem does not cover (nothing ever "races" with a crash that was
     simply never injected), so every choice point branches on all of
     them within the fault/submission budgets.

   - {b sleep sets}: a transition proven redundant at a state stays
     asleep in descendant states until a dependent transition executes,
     killing the symmetric half of each independent pair.

   - a {b fingerprint cache} with budget-vector dominance: a state
     revisited with no more remaining depth/fault/submission budget than
     a fully-explored earlier visit (and an empty sleep set recorded)
     cannot reach anything new.

   The explorer is stateless in the Godefroid sense: it keeps no state
   copies and re-executes the deterministic prefix on backtrack. *)

type budgets = { b_depth : int; b_faults : int; b_submits : int }

type stats = {
  mutable st_states : int;  (** choice points expanded *)
  mutable st_executed : int;  (** transitions executed (incl. replays) *)
  mutable st_enabled_sum : int;  (** Σ budget-eligible candidates *)
  mutable st_branches : int;  (** children actually explored *)
  mutable st_sleep_skips : int;
  mutable st_cache_hits : int;
  mutable st_races : int;  (** backtrack points added by DPOR *)
  mutable st_distinct : int;  (** distinct fingerprints seen *)
  mutable st_elapsed : float;  (** CPU seconds *)
}

type counterexample = {
  cx_script : Script.transition list;  (** minimized *)
  cx_raw_len : int;  (** length before minimization *)
  cx_violations : Check.Snapshot.violation list;
}

type outcome = {
  found : counterexample option;
  stats : stats;
  complete : bool;  (** false when [max_states] stopped the search *)
}

(* Reduction factor: how much wider the tree would have been had every
   budget-eligible candidate been branched at every expanded state. *)
let reduction_factor st =
  float_of_int st.st_enabled_sum /. float_of_int (max 1 st.st_branches)

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>states expanded:    %d@,transitions run:    %d@,distinct states:    \
     %d@,branches explored:  %d@,candidate branches: %d@,DPOR reduction:     \
     %.2fx@,sleep-set skips:    %d@,cache hits:         %d@,races detected:    \
     %d@,elapsed:            %.2fs (%.0f states/s)@]"
    st.st_states st.st_executed st.st_distinct st.st_branches st.st_enabled_sum
    (reduction_factor st) st.st_sleep_skips st.st_cache_hits st.st_races
    st.st_elapsed
    (float_of_int st.st_states /. Float.max 1e-6 st.st_elapsed)

(* ------------------------------------------------------------------ *)

type frame = {
  fr_enabled : Script.transition list;  (* budget-eligible at this state *)
  mutable fr_backtrack : Script.transition list;
  mutable fr_done : Script.transition list;
  mutable fr_chosen : Script.transition;
  mutable fr_appends : Conf_id.t list;
}

let mem tr l = List.exists (Script.equal tr) l

let independent a a_app b b_app =
  match (a, b) with
  | Script.T_deliver n, Script.T_deliver m when not (Node_id.equal n m) ->
    not (List.exists (fun c -> List.exists (Conf_id.equal c) b_app) a_app)
  | _ -> false

exception Found of Script.transition list * Check.Snapshot.violation list
exception Limit

let replay_violations ~policy ~nodes script =
  let sys = System.create ~policy ~nodes () in
  let v0 = System.stabilize sys in
  if v0 <> [] then Some ([], v0)
  else
    let rec go prefix = function
      | [] -> None
      | tr :: rest ->
        let r = System.apply sys tr in
        if not r.System.applied then go prefix rest
        else if r.System.violations <> [] then
          Some (List.rev (tr :: prefix), r.System.violations)
        else go (tr :: prefix) rest
    in
    go [] script

(* Greedy delta-debugging of a failing script: drop one transition at a
   time, keep the drop whenever the replay still fails.  O(n²) replays,
   fine at model-checking depths. *)
let minimize ~policy ~nodes script =
  let fails s = replay_violations ~policy ~nodes s <> None in
  let rec go script i =
    if i >= List.length script then script
    else
      let cand = List.filteri (fun j _ -> j <> i) script in
      if fails cand then go cand i else go script (i + 1)
  in
  go script 0

let run ?(policy = Quorum.Dynamic_linear) ?(use_cache = true)
    ?(max_states = 5_000_000) ~nodes ~depth ~faults ~submits () =
  (* wall-clock of the exploration itself, reported in stats — not
     protocol-visible time.  repcheck: allow *)
  let started = Sys.time () in
  let stats =
    {
      st_states = 0;
      st_executed = 0;
      st_enabled_sum = 0;
      st_branches = 0;
      st_sleep_skips = 0;
      st_cache_hits = 0;
      st_races = 0;
      st_distinct = 0;
      st_elapsed = 0.;
    }
  in
  let cache : (string, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let dominated fp (d, f, s) =
    match Hashtbl.find_opt cache fp with
    | None ->
      stats.st_distinct <- stats.st_distinct + 1;
      (* Seed the entry so revisits count as known states, not new. *)
      Hashtbl.replace cache fp [];
      false
    | Some vs -> List.exists (fun (d', f', s') -> d' >= d && f' >= f && s' >= s) vs
  in
  let remember fp (d, f, s) =
    let vs = Option.value ~default:[] (Hashtbl.find_opt cache fp) in
    if not (List.exists (fun (d', f', s') -> d' >= d && f' >= f && s' >= s) vs)
    then Hashtbl.replace cache fp ((d, f, s) :: vs)
  in
  let build prefix =
    let sys = System.create ~policy ~nodes () in
    (match System.stabilize sys with
    | [] -> ()
    | v -> raise (Found ([], v)));
    List.iter (fun tr -> ignore (System.apply sys tr)) prefix;
    sys
  in
  (* The DFS path, deepest frame first, for race detection. *)
  let path : frame list ref = ref [] in
  (* [sys] is positioned after [prefix]; ownership moves to the first
     child, later children rebuild by replay. *)
  let rec visit sys prefix sleep budgets =
    if stats.st_states >= max_states then raise Limit;
    stats.st_states <- stats.st_states + 1;
    let fp = System.fingerprint sys in
    let bud = (budgets.b_depth, budgets.b_faults, budgets.b_submits) in
    if use_cache && dominated fp bud then
      stats.st_cache_hits <- stats.st_cache_hits + 1
    else begin
      let budget_ok = function
        | Script.T_deliver _ -> budgets.b_depth > 0
        | Script.T_submit _ -> budgets.b_submits > 0
        | Script.T_crash _ | Script.T_recover _ | Script.T_partition _
        | Script.T_merge ->
          budgets.b_faults > 0
      in
      let candidates = List.filter budget_ok (System.enabled sys) in
      stats.st_enabled_sum <- stats.st_enabled_sum + List.length candidates;
      let delivers, optional = List.partition Script.is_deliver candidates in
      let frame =
        {
          fr_enabled = candidates;
          (* Branch every optional action; seed one delivery and let
             race detection demand the rest. *)
          fr_backtrack =
            (match delivers with [] -> optional | d :: _ -> d :: optional);
          fr_done = [];
          fr_chosen = Script.T_merge;
          fr_appends = [];
        }
      in
      path := frame :: !path;
      let executed = ref [] in
      (* (tr, appends) of explored siblings *)
      let live = ref (Some sys) in
      let take () =
        List.find_opt (fun tr -> not (mem tr frame.fr_done)) frame.fr_backtrack
      in
      let rec loop () =
        match take () with
        | None -> ()
        | Some tr ->
          frame.fr_done <- tr :: frame.fr_done;
          if List.exists (fun (u, _) -> Script.equal u tr) sleep then
            stats.st_sleep_skips <- stats.st_sleep_skips + 1
          else begin
            let sys =
              match !live with
              | Some s ->
                live := None;
                s
              | None -> build prefix
            in
            frame.fr_chosen <- tr;
            let r = System.apply sys tr in
            if r.System.applied then begin
              stats.st_executed <- stats.st_executed + 1;
              stats.st_branches <- stats.st_branches + 1;
              frame.fr_appends <- r.System.appends;
              if Script.is_deliver tr then detect_races tr r.System.appends;
              if r.System.violations <> [] then
                raise (Found (prefix @ [ tr ], r.System.violations));
              let sleep' =
                if Script.is_deliver tr then
                  List.filter
                    (fun (u, u_app) -> independent tr r.System.appends u u_app)
                    (sleep @ !executed)
                else [] (* faults and submissions depend on everything *)
              in
              executed := (tr, r.System.appends) :: !executed;
              let budgets' =
                match tr with
                | Script.T_deliver _ ->
                  { budgets with b_depth = budgets.b_depth - 1 }
                | Script.T_submit _ ->
                  { budgets with b_submits = budgets.b_submits - 1 }
                | _ -> { budgets with b_faults = budgets.b_faults - 1 }
              in
              visit sys (prefix @ [ tr ]) sleep' budgets'
            end
          end;
          loop ()
      in
      loop ();
      path := List.tl !path;
      if use_cache && sleep = [] then remember fp bud
    end
  (* An executed delivery [tr] races with the most recent path transition
     it depends on: that choice point must also try [tr] first. *)
  and detect_races tr appends =
    let n = match tr with Script.T_deliver n -> n | _ -> assert false in
    let rec scan = function
      | [] -> ()
      | fr :: rest -> (
        match fr.fr_chosen with
        | Script.T_deliver m
          when (not (Node_id.equal m n))
               && List.exists
                    (fun c -> List.exists (Conf_id.equal c) fr.fr_appends)
                    appends ->
          let to_add =
            if mem tr fr.fr_enabled then [ tr ]
            else List.filter Script.is_deliver fr.fr_enabled
          in
          let added = ref false in
          List.iter
            (fun u ->
              if not (mem u fr.fr_backtrack) then begin
                fr.fr_backtrack <- fr.fr_backtrack @ [ u ];
                added := true
              end)
            to_add;
          if !added then stats.st_races <- stats.st_races + 1
        | _ -> scan rest)
    in
    (* skip the current frame (head): it chose [tr] itself *)
    match !path with [] -> () | _ :: ancestors -> scan ancestors
  in
  let finish found complete =
    stats.st_elapsed <- Sys.time () -. started (* repcheck: allow *);
    { found; stats; complete }
  in
  match
    let sys = build [] in
    visit sys [] [] { b_depth = depth; b_faults = faults; b_submits = submits }
  with
  | () -> finish None true
  | exception Limit -> finish None false
  | exception Found (script, _) ->
    let raw_len = List.length script in
    let script = minimize ~policy ~nodes script in
    let violations =
      match replay_violations ~policy ~nodes script with
      | Some (_, v) -> v
      | None -> [] (* unreachable: minimize preserves failure *)
    in
    finish
      (Some { cx_script = script; cx_raw_len = raw_len; cx_violations = violations })
      true
