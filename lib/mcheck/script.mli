open Repro_net

(** Deterministic event scripts: the unit of scheduling the model
    checker branches on, and the replayable counterexample format
    (one transition per line; ['#'] lines are comments). *)

type transition =
  | T_deliver of Node_id.t
      (** deliver the node's next endpoint event, coalescing view-change
          fallout (leftovers, transitional/regular notices) *)
  | T_submit of Node_id.t  (** one client update at the node *)
  | T_crash of Node_id.t
  | T_recover of Node_id.t
  | T_partition of Node_id.t list list  (** install these components *)
  | T_merge  (** heal the network *)

val is_fault : transition -> bool
val is_deliver : transition -> bool
val equal : transition -> transition -> bool
val pp : Format.formatter -> transition -> unit
val to_line : transition -> string

val of_line : string -> transition option
(** [None] on anything that is not a transition line. *)

val to_string : transition list -> string

val of_string : string -> transition list
(** Ignores blank and ['#'] lines; raises [Invalid_argument] on a
    malformed transition line. *)
