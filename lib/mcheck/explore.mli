open Repro_core
module Check = Repro_check

(** The bounded stateless DFS explorer: dynamic partial-order reduction
    over delivery transitions (independence = disjoint configuration-log
    footprints at different nodes), sleep sets, and a state-fingerprint
    cache with budget-vector dominance.  Fault and submission
    transitions are branched exhaustively within their budgets — they
    are optional actions outside the DPOR theorem.  Counterexamples are
    minimized greedily and replayable with {!replay_violations}. *)

type budgets = { b_depth : int; b_faults : int; b_submits : int }

type stats = {
  mutable st_states : int;  (** choice points expanded *)
  mutable st_executed : int;  (** transitions executed (incl. replays) *)
  mutable st_enabled_sum : int;  (** Σ budget-eligible candidates *)
  mutable st_branches : int;  (** children actually explored *)
  mutable st_sleep_skips : int;
  mutable st_cache_hits : int;
  mutable st_races : int;  (** backtrack points added by DPOR *)
  mutable st_distinct : int;  (** distinct fingerprints seen *)
  mutable st_elapsed : float;  (** CPU seconds *)
}

val reduction_factor : stats -> float
(** Candidate branches per explored branch: how much wider full
    branching would have been at the expanded states. *)

val pp_stats : Format.formatter -> stats -> unit

type counterexample = {
  cx_script : Script.transition list;  (** minimized *)
  cx_raw_len : int;  (** length before minimization *)
  cx_violations : Check.Snapshot.violation list;
}

type outcome = {
  found : counterexample option;
  stats : stats;
  complete : bool;  (** false when [max_states] stopped the search *)
}

val run :
  ?policy:Quorum.policy ->
  ?use_cache:bool ->
  ?max_states:int ->
  nodes:int ->
  depth:int ->
  faults:int ->
  submits:int ->
  unit ->
  outcome
(** Explores every interleaving of at most [depth] deliveries, [faults]
    fault injections and [submits] client submissions from the
    stabilized initial state, modulo the reductions. *)

val replay_violations :
  policy:Quorum.policy ->
  nodes:int ->
  Script.transition list ->
  (Script.transition list * Check.Snapshot.violation list) option
(** Deterministically replays a script on a fresh system; returns the
    applied prefix up to and including the first failing transition and
    its violations, or [None] if the whole script runs clean.
    Not-currently-enabled lines are skipped (minimization can leave
    them). *)

val minimize :
  policy:Quorum.policy ->
  nodes:int ->
  Script.transition list ->
  Script.transition list
(** Greedy delta-debugging: drops transitions one at a time, keeping
    each drop that still reproduces a violation. *)
