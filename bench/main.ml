(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7) on the simulated substrate, then runs
   micro-benchmarks of the core building blocks.

   Run with:  dune exec bench/main.exe            (full suite)
              dune exec bench/main.exe -- quick   (shorter sweeps)   *)

module Sim = Repro_sim
module Check = Repro_check
open Repro_harness

let ppf = Format.std_formatter

let quick = Array.exists (String.equal "quick") Sys.argv
let bench6_mode = Array.exists (String.equal "bench6") Sys.argv
let bench9_mode = Array.exists (String.equal "bench9") Sys.argv
let bench10_mode = Array.exists (String.equal "bench10") Sys.argv

let duration = Sim.Time.of_sec (if quick then 2. else 6.)
let clients = if quick then [ 1; 4; 8; 14 ] else [ 1; 2; 4; 6; 8; 10; 12; 14 ]

(* ------------------------------------------------------------------ *)
(* Protocol sanity: run the repcheck invariant monitor over a churn
   scenario before timing anything — numbers from a broken protocol
   would be meaningless.                                                *)

let repcheck_sanity () =
  let w = World.make ~seed:2002 ~n:5 () in
  let mon = World.attach_monitor w in
  World.run w ~ms:1000.;
  for i = 1 to 20 do
    World.submit_update w ~node:(i mod 5) ~key:(Printf.sprintf "s%d" i) i
  done;
  World.run w ~ms:500.;
  Repro_net.Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  World.run w ~ms:1500.;
  Repro_core.Replica.crash (World.replica w 3);
  World.heal_and_settle ~ms:5000. w;
  Check.Monitor.check_now mon;
  Check.Monitor.assert_ok mon;
  Format.fprintf ppf "repcheck: %d sweeps over the sanity scenario, clean@."
    (Check.Monitor.observations mon)

(* ------------------------------------------------------------------ *)
(* Recovery cost: how long a crashed replica takes to get back into the
   group, by log length, checkpoint freshness and the storage verdict
   its write-ahead log recovery returns.  "rec ms" is virtual time from
   [Replica.recover] until the replica is ready and has caught back up
   to its peers' green count; "entries" is the durable log replayed (or
   discarded, for amnesia); "flushes" the physical flushes recovery and
   catch-up cost; "xfer" the state-transfer chunks the peers served —
   amnesia looks fast on the clock precisely because it ships the
   compacted snapshot over the wire instead of replaying locally.      *)

let recovery_table () =
  let module Disk = Repro_storage.Disk in
  let module Replica = Repro_core.Replica in
  let module Action = Repro_db.Action in
  Format.fprintf ppf
    "@.== Recovery cost: log length x checkpoint freshness x verdict ==@.";
  Format.fprintf ppf "%6s %10s %9s %14s %8s %8s %6s %9s@." "log" "checkpoint"
    "fault" "verdict" "entries" "flushes" "xfer" "rec ms";
  let lengths = if quick then [ 60; 240 ] else [ 60; 240; 960 ] in
  let cadences = [ (None, "never"); (Some 50, "every 50") ] in
  let faults =
    [ ("none", `Clean); ("torn", `Torn); ("interior", `Interior);
      ("head", `Head) ]
  in
  List.iter
    (fun len ->
      List.iter
        (fun (cadence, cadence_name) ->
          List.iter
            (fun (fault_name, fault) ->
              let fault_cfg =
                match fault with
                | `Torn ->
                  { Disk.no_faults with torn_tail_on_crash = 1.0 }
                | _ -> Disk.no_faults
              in
              let disk_config =
                {
                  Disk.default_forced with
                  sync_latency = Sim.Time.of_ms 1.;
                  sync_jitter = 0.;
                  faults = fault_cfg;
                }
              in
              let w =
                World.make ~disk_config ~checkpoint_every:cadence ~seed:7
                  ~n:3 ()
              in
              World.run w ~ms:1000.;
              let victim = World.replica w 2 in
              let submitted = ref 0 in
              while !submitted < len do
                for _ = 1 to 20 do
                  incr submitted;
                  World.submit_update w ~node:(!submitted mod 3)
                    ~key:(Printf.sprintf "r%d" (!submitted mod 16))
                    !submitted
                done;
                World.run w ~ms:200.
              done;
              World.run w ~ms:1000.;
              (match fault with
              | `Torn ->
                (* Leave a record in flight so the crash tears it. *)
                Replica.submit victim
                  (Action.Update
                     [ Repro_db.Op.Set ("torn", Repro_db.Value.Int 1) ])
                  ~on_response:(fun _ -> ())
              | _ -> ());
              Replica.crash victim;
              (match fault with
              | `Interior ->
                ignore
                  (Replica.corrupt_log victim
                     ~nth:(Replica.log_entries victim - 1))
              | `Head -> ignore (Replica.corrupt_log victim ~nth:0)
              | `Clean | `Torn -> ());
              let entries = Replica.log_entries victim in
              let flushes0 = Replica.log_flushes victim in
              let chunks () =
                List.fold_left
                  (fun acc r -> acc + Replica.transfer_chunks_sent r)
                  0 (World.replicas w)
              in
              let chunks0 = chunks () in
              let sim = World.sim w in
              let t0 = Sim.Engine.now sim in
              Replica.recover victim;
              let peer = World.replica w 0 in
              let caught_up () =
                Replica.is_ready victim
                && Repro_core.Engine.green_count (Replica.engine victim)
                   >= Repro_core.Engine.green_count (Replica.engine peer)
              in
              let slices = ref 0 in
              while (not (caught_up ())) && !slices < 30_000 do
                incr slices;
                World.run w ~ms:1.
              done;
              let rec_ms =
                Sim.Time.to_ms (Sim.Time.diff (Sim.Engine.now sim) t0)
              in
              Format.fprintf ppf "%6d %10s %9s %14s %8d %8d %6d %8.1f%s@." len
                cadence_name fault_name
                (match Replica.last_recovery victim with
                | Some v -> Format.asprintf "%a" Repro_core.Persist.pp_verdict v
                | None -> "-")
                entries
                (Replica.log_flushes victim - flushes0)
                (chunks () - chunks0) rec_ms
                (if caught_up () then "" else "  (never caught up)"))
            faults)
        cadences)
    lengths

(* ------------------------------------------------------------------ *)
(* Model checking: state-space size and throughput at growing bounds —
   the cost curve of the mcheck exhaustive smoke, and how much of the
   naive branching the reductions remove.                              *)

let mcheck_space () =
  Format.fprintf ppf "@.== Model checker: state space and throughput ==@.";
  Format.fprintf ppf
    "%8s %7s %8s %10s %10s %8s %8s %10s@." "depth" "faults" "states"
    "distinct" "branches" "DPORx" "sleep" "states/s";
  let bounds =
    if quick then [ (6, 1); (8, 2) ] else [ (6, 1); (8, 2); (10, 2); (12, 2) ]
  in
  List.iter
    (fun (depth, faults) ->
      let o =
        Repro_mcheck.Explore.run ~nodes:3 ~depth ~faults ~submits:0 ()
      in
      let st = o.Repro_mcheck.Explore.stats in
      Format.fprintf ppf "%8d %7d %8d %10d %10d %7.2fx %8d %10.0f@." depth
        faults st.Repro_mcheck.Explore.st_states
        st.Repro_mcheck.Explore.st_distinct
        st.Repro_mcheck.Explore.st_branches
        (Repro_mcheck.Explore.reduction_factor st)
        st.Repro_mcheck.Explore.st_sleep_skips
        (float_of_int st.Repro_mcheck.Explore.st_states
        /. Float.max 1e-6 st.Repro_mcheck.Explore.st_elapsed);
      if o.Repro_mcheck.Explore.found <> None then
        Format.fprintf ppf "UNEXPECTED violation on the correct engine@.")
    bounds

(* ------------------------------------------------------------------ *)
(* Macro benchmarks: the paper's figures and tables.                   *)

let check_shape name ok =
  Format.fprintf ppf "shape check [%s]: %s@." name
    (if ok then "PASS" else "DIVERGES (see EXPERIMENTS.md)")

let last series = List.nth series (List.length series - 1) |> snd

let figure_5a () =
  let named = Figures.figure_5a ~clients ~duration ppf () in
  let get n = List.assoc n named in
  let engine = get "engine (forced writes)"
  and corel = get "COReL"
  and twopc = get "2PC" in
  check_shape "engine >= COReL >= 2PC at max clients"
    (last engine >= last corel && last corel >= last twopc *. 0.9);
  check_shape "engine beats COReL by >1.5x at max clients"
    (last engine > 1.5 *. last corel)

(* The seed's Figure 5(b) values (EXPERIMENTS.md before the hot-path
   batching overhaul): the old knee this PR's 10x target is measured
   against.  Kept hardcoded so the regression bound survives the very
   change that moved the curve. *)
let seed_5b_delayed_at_14 = 2844.
let seed_5b_forced_at_14 = 1112.

let figure_5b () =
  let named = Figures.figure_5b ~clients ~duration ppf () in
  let delayed = List.assoc "engine (delayed writes)" named
  and forced = List.assoc "engine (forced writes)" named in
  check_shape "delayed writes dominate forced" (last delayed > 2. *. last forced);
  check_shape "delayed knee >= 10x the seed's 2844/s at max clients"
    (last delayed >= 10. *. seed_5b_delayed_at_14);
  check_shape "delayed writes flatten toward a processing cap"
    (let n = List.length delayed in
     n < 3
     ||
     let tput_at i = snd (List.nth delayed i) in
     let clients_at i = float_of_int (fst (List.nth delayed i)) in
     let slope_late =
       (tput_at (n - 1) -. tput_at (n - 2))
       /. (clients_at (n - 1) -. clients_at (n - 2))
     in
     let slope_early = (tput_at 1 -. tput_at 0) /. (clients_at 1 -. clients_at 0) in
     slope_late < slope_early)

let latency_table () =
  let named = Figures.latency_table ppf () in
  let mean_of name =
    let series = List.assoc name named in
    List.fold_left (fun acc (_, v) -> acc +. v) 0. series
    /. float_of_int (List.length series)
  in
  let twopc = mean_of "2PC"
  and corel = mean_of "COReL"
  and engine = mean_of "engine (forced writes)" in
  check_shape "2PC pays roughly one extra forced write"
    (twopc > corel +. 5. && twopc < corel +. 18.);
  check_shape "engine and COReL within 25%"
    (Float.abs (engine -. corel) < 0.25 *. corel)

let wan () =
  let rows = Figures.wan_prediction ppf () in
  match rows with
  | [ (_, twopc_lan, twopc_wan); (_, corel_lan, corel_wan); (_, eng_lan, eng_wan) ]
    ->
    check_shape "2PC pays the most added WAN latency"
      (twopc_wan -. twopc_lan > corel_wan -. corel_lan);
    check_shape "the engine pays the least added WAN latency"
      (eng_wan -. eng_lan <= corel_wan -. corel_lan)
  | _ -> ()

let ablations () =
  let acks = Figures.ablation_ack_batching ~duration ppf () in
  (match (acks, List.rev acks) with
  | (_, tput_small) :: _, (_, tput_big) :: _ ->
    check_shape "ack batching amortises the safe-delivery cost"
      (tput_big > tput_small)
  | _ -> ());
  let (ordered_tput, _), (local_tput, local_lat) =
    Figures.ablation_query_path ~duration ppf ()
  in
  check_shape "local read path beats ordered reads"
    (local_tput > 1.5 *. ordered_tput && local_lat < 10.);
  let (dlv_casc, sta_casc), _chaos = Figures.ablation_quorum_availability ppf () in
  check_shape "dynamic linear voting wins under cascading splits"
    (dlv_casc > sta_casc);
  let timeline = Figures.partition_timeline ppf () in
  let rate_near t =
    List.fold_left
      (fun acc (s, r) -> if Float.abs (s -. t) <= 1. then max acc r else acc)
      0. timeline
  in
  check_shape "majority keeps committing during the partition"
    (rate_near 9. > 0.)

(* ------------------------------------------------------------------ *)
(* `bench6` mode: emit BENCH_6.json on stdout — the before/after
   Figure 5(b) curves around the hot-path batching overhaul, plus a
   submission batch-size sweep.  The JSON is hand-rolled (the tree has
   no JSON dependency and does not want one for a flat report); sweep
   progress goes to stderr.  Regenerate the committed copy with

       dune exec bench/main.exe -- bench6 > BENCH_6.json

   The runtest guard (bench/check_bench6.ml) re-parses the committed
   file and re-asserts the 10x knee, so a retune that moves the curve
   must regenerate the report in the same change.                      *)

let bench6 () =
  let eppf = Format.err_formatter in
  let clients = [ 1; 2; 4; 6; 8; 10; 12; 14 ] in
  let duration = Sim.Time.of_sec 2. in
  (* The seed's curves (EXPERIMENTS.md as of the pre-overhaul tree),
     measured on the same client ladder. *)
  let seed_delayed = [ 500.; 1000.; 1581.; 2202.; 2244.; 2328.; 2564.; 2844. ] in
  let seed_forced = [ 77.; 157.; 316.; 476.; 638.; 798.; 956.; 1112. ] in
  let sweep mode name =
    List.map
      (fun c ->
        let r =
          Experiment.run ~duration ~clients:c (Experiment.Engine_protocol mode)
        in
        Format.fprintf eppf "bench6: %-7s clients=%2d -> %9.1f/s@." name c
          r.Experiment.r_throughput;
        r.Experiment.r_throughput)
      clients
  in
  let after_delayed = sweep Repro_storage.Disk.Delayed "delayed" in
  let after_forced = sweep Repro_storage.Disk.Forced "forced" in
  let batch_delays_us = [ None; Some 0; Some 100; Some 250; Some 500 ] in
  let batch_points =
    List.map
      (fun d ->
        let submit_delay = Option.map Sim.Time.of_us d in
        let r, stats =
          Experiment.run_engine ~servers:5 ~duration ?submit_delay ~clients:40
            Repro_storage.Disk.Delayed
        in
        let batches, batched =
          List.fold_left
            (fun (b, a) s ->
              Repro_core.Engine.
                (b + s.s_submit_batches, a + s.s_batched_submissions))
            (0, 0) stats
        in
        let mean_batch =
          if batches = 0 then 1.
          else float_of_int batched /. float_of_int batches
        in
        Format.fprintf eppf
          "bench6: batch sweep delay=%s -> %9.1f/s mean batch %.2f@."
          (match d with None -> "off" | Some us -> Printf.sprintf "%dus" us)
          r.Experiment.r_throughput mean_batch;
        (d, mean_batch, r))
      batch_delays_us
  in
  let after_delayed_at_14 = List.nth after_delayed (List.length after_delayed - 1) in
  let speedup = after_delayed_at_14 /. seed_5b_delayed_at_14 in
  let floats l =
    "[" ^ String.concat ", " (List.map (Printf.sprintf "%.1f") l) ^ "]"
  in
  let ints l =
    "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"
  in
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"BENCH_6\",\n";
  add
    "  \"paper\": \"From Total Order to Database Replication (Amir & Tutu, \
     ICDCS 2002)\",\n";
  add "  \"network\": \"lan_gigabit\",\n";
  add "  \"servers\": 14,\n";
  add "  \"action_bytes\": 200,\n";
  add "  \"window_s\": %.1f,\n" (Sim.Time.to_sec duration);
  add "  \"figure_5b\": {\n";
  add "    \"clients\": %s,\n" (ints clients);
  add "    \"seed\": { \"delayed_per_s\": %s, \"forced_per_s\": %s },\n"
    (floats seed_delayed) (floats seed_forced);
  add "    \"after\": { \"delayed_per_s\": %s, \"forced_per_s\": %s }\n"
    (floats after_delayed) (floats after_forced);
  add "  },\n";
  add "  \"knee\": {\n";
  add "    \"clients\": 14,\n";
  add "    \"seed_delayed_per_s\": %.1f,\n" seed_5b_delayed_at_14;
  add "    \"seed_forced_per_s\": %.1f,\n" seed_5b_forced_at_14;
  add "    \"after_delayed_per_s\": %.1f,\n" after_delayed_at_14;
  add "    \"speedup\": %.2f,\n" speedup;
  add "    \"target_speedup\": 10.0,\n";
  add "    \"pass\": %b\n" (speedup >= 10.);
  add "  },\n";
  add "  \"batch_sweep\": {\n";
  add "    \"servers\": 5,\n";
  add "    \"clients\": 40,\n";
  add "    \"disk\": \"delayed\",\n";
  add "    \"points\": [\n";
  List.iteri
    (fun i (d, mean_batch, r) ->
      add
        "      { \"submit_delay_us\": %s, \"mean_batch\": %.2f, \
         \"throughput_per_s\": %.1f, \"mean_latency_ms\": %.2f }%s\n"
        (match d with None -> "null" | Some us -> string_of_int us)
        mean_batch r.Experiment.r_throughput r.Experiment.r_mean_latency_ms
        (if i = List.length batch_points - 1 then "" else ","))
    batch_points;
  add "    ]\n";
  add "  }\n";
  add "}\n";
  print_string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* `bench9` mode: emit BENCH_9.json on stdout — the overload sweep
   behind the client-reliability tier.  An open-loop Poisson arrival
   process is swept across multiples of the measured saturation rate,
   once with per-replica admission control and once without; goodput
   (completions within a 1 s deadline) is what admission is meant to
   protect.  Regenerate the committed copy with

       dune exec bench/main.exe -- bench9 > BENCH_9.json

   The runtest guard (bench/check_bench9.ml) re-parses the committed
   file and re-asserts the plateau, so a retune that moves the curve
   must regenerate the report in the same change.                      *)

let bench9 () =
  let eppf = Format.err_formatter in
  let servers = 5 in
  let deadline = Sim.Time.of_ms 1_000. in
  let warmup_ms = 500. in
  let window = Sim.Time.of_sec 2. in
  let admission =
    { Repro_core.Replica.adm_max_inflight = 8; adm_max_red = 64 }
  in
  let net = Repro_net.Network.lan_100mbit in
  (* One open-loop measurement point at [rate] arrivals/s. *)
  let point ?admission ~seed rate =
    let w =
      World.make ~net_config:net ~params:Repro_gcs.Params.default
        ~attach_cpu:true ?admission ~seed ~n:servers ()
    in
    let wl =
      Workload.open_loop ~deadline ~busy_retries:3 ~sim:(World.sim w)
        ~mix:Workload.default_mix ~rate_per_sec:rate
        ~replicas:(World.replicas w) ()
    in
    World.run w ~ms:warmup_ms;
    Workload.start_measuring wl;
    World.run w ~ms:(Sim.Time.to_ms window);
    Workload.stop wl;
    let goodput = Workload.goodput wl ~over:window in
    let p99 = Sim.Stats.Summary.percentile (Workload.latencies_ms wl) 99. in
    (* Congestion shows up as an unbounded CPU receive queue: report the
       worst replica so a collapsed point is attributable at a glance. *)
    let cpuq =
      List.fold_left
        (fun acc r ->
          match Repro_core.Replica.cpu_stats r with
          | Some (q, _) -> max acc q
          | None -> acc)
        0 (World.replicas w)
    in
    (goodput, p99, Workload.busy_retried wl, Workload.shed wl, cpuq)
  in
  (* Saturation: ramp the offered rate (no admission control) until
     goodput stops tracking it — closed-loop estimates are latency-bound
     and undershoot the knee badly on this profile. *)
  let rec ramp rate last_good =
    if rate > 1_000_000. then last_good
    else begin
      let goodput, p99, _, _, _ = point ~seed:9 rate in
      Format.fprintf eppf "bench9: ramp %9.0f/s -> goodput %9.1f/s p99 %8.2f ms@."
        rate goodput p99;
      if goodput >= 0.9 *. rate then ramp (rate *. 2.) rate
      else last_good
    end
  in
  let saturation = ramp 250. 250. in
  Format.fprintf eppf "bench9: saturation %.1f/s@." saturation;
  let multipliers = [ 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  let sweep ~admit =
    List.map
      (fun m ->
        let goodput, p99, retries, shed, cpuq =
          point
            ?admission:(if admit then Some admission else None)
            ~seed:(9 + int_of_float (m *. 10.))
            (m *. saturation)
        in
        Format.fprintf eppf
          "bench9: admission=%b offered %4.1fx -> goodput %8.1f/s p99 %8.2f \
           ms (retries %d, shed %d, max cpu queue %d)@."
          admit m goodput p99 retries shed cpuq;
        (m, goodput, p99, retries, shed, cpuq))
      multipliers
  in
  let with_adm = sweep ~admit:true in
  let without_adm = sweep ~admit:false in
  let goodput_at pts m =
    List.fold_left
      (fun acc (m', g, _, _, _, _) ->
        if Float.abs (m' -. m) < 1e-9 then g else acc)
      0. pts
  in
  let peak pts =
    List.fold_left (fun acc (_, g, _, _, _, _) -> max acc g) 0. pts
  in
  let peak_adm = peak with_adm in
  let adm_2x = goodput_at with_adm 2.0 in
  let noadm_2x = goodput_at without_adm 2.0 in
  let plateau = adm_2x >= 0.8 *. peak_adm in
  let points name pts =
    let b = Buffer.create 512 in
    Printf.bprintf b "  %S: [\n" name;
    List.iteri
      (fun i (m, g, p99, retries, shed, cpuq) ->
        Printf.bprintf b
          "    { \"offered_x\": %.1f, \"goodput_per_s\": %.1f, \
           \"p99_ms\": %.2f, \"busy_retries\": %d, \"shed\": %d, \
           \"max_cpu_queue\": %d }%s\n"
          m g p99 retries shed cpuq
          (if i = List.length pts - 1 then "" else ","))
      pts;
    Printf.bprintf b "  ]";
    Buffer.contents b
  in
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"BENCH_9\",\n";
  add
    "  \"paper\": \"From Total Order to Database Replication (Amir & Tutu, \
     ICDCS 2002)\",\n";
  add "  \"servers\": %d,\n" servers;
  add "  \"deadline_ms\": %.0f,\n" (Sim.Time.to_ms deadline);
  add "  \"window_s\": %.1f,\n" (Sim.Time.to_sec window);
  add "  \"admission\": { \"max_inflight\": %d, \"max_red\": %d },\n"
    admission.Repro_core.Replica.adm_max_inflight
    admission.Repro_core.Replica.adm_max_red;
  add "  \"saturation_per_s\": %.1f,\n" saturation;
  add "%s,\n" (points "with_admission" with_adm);
  add "%s,\n" (points "without_admission" without_adm);
  add "  \"guard\": {\n";
  add "    \"peak_goodput_per_s\": %.1f,\n" peak_adm;
  add "    \"goodput_at_2x_with_admission\": %.1f,\n" adm_2x;
  add "    \"goodput_at_2x_without_admission\": %.1f,\n" noadm_2x;
  add "    \"plateau_pass\": %b\n" plateau;
  add "  }\n";
  add "}\n";
  print_string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* `bench10` mode: emit BENCH_10.json on stdout — the two hot-path
   microbenchmarks behind the cost-analysis PR, swept over membership
   sizes.  "Before" is a bench-local reimplementation of the removed
   shape (the code itself is gone from the tree):

   - exchange: the old ComputeKnowledge intersected valid yellow sets
     by folding [List.filter (List.mem ...)] across members — O(n·m²)
     list scans.  The naive fold here times that intersection *alone*,
     a lower bound on the old exchange cost; the after-number is the
     full [Knowledge.compute] on the counting-table path.
   - step: the old simulator event queue was the generic closure-
     comparator heap over (float time, seq) pairs — every sift boxes
     two floats and calls a closure.  The after-number is the inline
     int-keyed [Heap.Keyed] the engine now runs on.

   Regenerate the committed copy with

       dune exec bench/main.exe -- bench10 > BENCH_10.json

   The runtest guard (bench/check_bench10.ml) re-parses the committed
   file and re-asserts after < before at 200 members, so the perf
   claim of the rework can never silently drift from the artifact.    *)

let bench10 () =
  let eppf = Format.err_formatter in
  let module Node_id = Repro_net.Node_id in
  let module Types = Repro_core.Types in
  let module Knowledge = Repro_core.Knowledge in
  let module Action = Repro_db.Action in
  let time ~reps f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6
  in
  (* Exchange-shaped state: every member advertises a yellow prefix of
     ~n actions (all sharing the common n-prefix, so the intersection
     has real work to do), a green count and a red cut. *)
  let states_for n =
    let ids = List.init n Fun.id in
    let members = Node_id.set_of_list ids in
    let prim = Types.initial_prim ~servers:members in
    let yellow_ids len =
      List.init len (fun i -> { Action.Id.server = 0; index = i + 1 })
    in
    let states =
      List.fold_left
        (fun m s ->
          let sm =
            {
              Types.sm_server = s;
              sm_conf = { Repro_gcs.Conf_id.coord = 0; counter = 1 };
              sm_red_cut = Node_id.Map.singleton 0 (50 + (s mod 3));
              sm_green_count = 100 + (s mod 7);
              sm_green_line = None;
              sm_green_floor = 0;
              sm_attempt = s mod 4;
              sm_prim = prim;
              sm_vulnerable = Types.invalid_vulnerable;
              sm_yellow =
                { Types.y_valid = true; y_set = yellow_ids (n + (s mod 5)) };
            }
          in
          Node_id.Map.add s sm m)
        Node_id.Map.empty ids
    in
    (members, states)
  in
  (* The removed intersection shape: fold a filter-by-membership scan
     across every member's list. *)
  let naive_intersection states =
    Node_id.Map.fold
      (fun _ sm acc ->
        let ys = sm.Types.sm_yellow.Types.y_set in
        match acc with
        | None -> Some ys
        | Some cur -> Some (List.filter (fun a -> List.mem a ys) cur))
      states None
  in
  (* Event-queue churn: [n] timers pending, 100k pop-reschedule ops. *)
  let churn_ops = 100_000 in
  let heap_before n () =
    let cmp (a_at, a_seq) (b_at, b_seq) =
      if Float.compare a_at b_at <> 0 then Float.compare a_at b_at
      else Int.compare a_seq b_seq
    in
    let h = Sim.Heap.create ~cmp in
    for i = 0 to n - 1 do
      Sim.Heap.push h (float_of_int (i * 17), i)
    done;
    let state = ref 9 in
    for i = 0 to churn_ops - 1 do
      match Sim.Heap.pop h with
      | Some (at, _) ->
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        Sim.Heap.push h (at +. float_of_int (1 + (!state mod 64)), n + i)
      | None -> ()
    done
  in
  let heap_after n () =
    let h = Sim.Heap.Keyed.create () in
    for i = 0 to n - 1 do
      Sim.Heap.Keyed.push h ~key:(i * 17) ~tie:i i
    done;
    let state = ref 9 in
    for i = 0 to churn_ops - 1 do
      let at = Sim.Heap.Keyed.min_key h in
      ignore (Sim.Heap.Keyed.pop h);
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      Sim.Heap.Keyed.push h ~key:(at + 1 + (!state mod 64)) ~tie:(n + i) (n + i)
    done
  in
  let sizes = [ 50; 100; 200 ] in
  let points =
    List.map
      (fun n ->
        let members, states = states_for n in
        let naive_us =
          time ~reps:(max 4 (2000 / n)) (fun () -> naive_intersection states)
        in
        let exchange_us =
          time ~reps:50 (fun () -> Knowledge.compute ~members states)
        in
        let before_ns =
          time ~reps:5 (heap_before n) /. float_of_int churn_ops *. 1e3
        in
        let after_ns =
          time ~reps:5 (heap_after n) /. float_of_int churn_ops *. 1e3
        in
        Format.fprintf eppf
          "bench10: n=%3d  intersect(naive) %9.1f us  exchange(after) %9.1f \
           us  step %7.1f -> %7.1f ns/op@."
          n naive_us exchange_us before_ns after_ns;
        (n, naive_us, exchange_us, before_ns, after_ns))
      sizes
  in
  let at_200 =
    List.find (fun (n, _, _, _, _) -> n = 200) points
  in
  let _, naive200, exch200, hb200, ha200 = at_200 in
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"BENCH_10\",\n";
  add
    "  \"paper\": \"From Total Order to Database Replication (Amir & Tutu, \
     ICDCS 2002)\",\n";
  add "  \"churn_ops\": %d,\n" churn_ops;
  add "  \"points\": [\n";
  List.iteri
    (fun i (n, naive_us, exchange_us, before_ns, after_ns) ->
      add
        "    { \"members\": %d, \"intersect_naive_us\": %.2f, \
         \"exchange_us\": %.2f, \"step_closure_heap_ns_per_op\": %.2f, \
         \"step_keyed_heap_ns_per_op\": %.2f }%s\n"
        n naive_us exchange_us before_ns after_ns
        (if i = List.length points - 1 then "" else ","))
    points;
  add "  ],\n";
  add "  \"guard\": {\n";
  add "    \"exchange_speedup_at_200\": %.2f,\n" (naive200 /. exch200);
  add "    \"step_speedup_at_200\": %.2f,\n" (hb200 /. ha200);
  add "    \"exchange_pass\": %b,\n" (exch200 < naive200);
  add "    \"step_pass\": %b\n" (ha200 < hb200);
  add "  }\n";
  add "}\n";
  print_string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (bechamel): the core building blocks.              *)

let microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  let test_heap =
    Test.make ~name:"sim: heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Sim.Heap.create ~cmp:Int.compare in
           for i = 0 to 99 do
             Sim.Heap.push h (i * 7919 mod 100)
           done;
           for _ = 0 to 99 do
             ignore (Sim.Heap.pop h)
           done))
  in
  let test_rng =
    let rng = Sim.Rng.of_int 42 in
    Test.make ~name:"sim: rng draw x100"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Sim.Rng.int rng 1000)
           done))
  in
  let test_db =
    Test.make ~name:"db: apply 100 sets"
      (Staged.stage (fun () ->
           let db = Repro_db.Database.create () in
           for i = 0 to 99 do
             Repro_db.Database.apply db
               [ Repro_db.Op.Set (string_of_int (i mod 10), Repro_db.Value.Int i) ]
           done))
  in
  let test_queue =
    Test.make ~name:"core: action queue 100 greens"
      (Staged.stage (fun () ->
           let q = Repro_core.Action_queue.create () in
           for i = 1 to 100 do
             ignore
               (Repro_core.Action_queue.append_green q
                  (Repro_db.Action.make ~server:0 ~index:i
                     (Repro_db.Action.Update [])))
           done))
  in
  let test_quorum =
    let prev = Repro_net.Node_id.set_of_list (List.init 14 Fun.id) in
    let half = Repro_net.Node_id.set_of_list (List.init 8 Fun.id) in
    Test.make ~name:"core: quorum decision x100 (14 servers)"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Repro_core.Quorum.has_majority ~prev half)
           done))
  in
  let test_repcheck =
    let greens =
      List.init 200 (fun i ->
          { Repro_db.Action.Id.server = i mod 5; index = (i / 5) + 1 })
    in
    let snap node =
      {
        Check.Snapshot.ns_node = node;
        ns_incarnation = 0;
        ns_state = Repro_core.Types.Reg_prim;
        ns_green_floor = 0;
        ns_green_ids = greens;
        ns_green_count = 200;
        ns_green_line = None;
        ns_red_ids = [];
        ns_yellow = Repro_core.Types.invalid_yellow;
        ns_red_cut = Repro_net.Node_id.Map.empty;
        ns_white_line = 0;
        ns_prim =
          Repro_core.Types.initial_prim
            ~servers:(Repro_net.Node_id.set_of_list (List.init 10 Fun.id));
        ns_vulnerable = Repro_core.Types.invalid_vulnerable;
        ns_in_primary = false;
      }
    in
    let snaps = List.init 10 snap in
    Test.make ~name:"check: invariant sweep (10 replicas x 200 greens)"
      (Staged.stage (fun () -> ignore (Check.Snapshot.check_observation snaps)))
  in
  let test_sim_round =
    Test.make ~name:"sim: engine 1000 events"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           for i = 1 to 1000 do
             ignore (Sim.Engine.schedule e ~delay:(Sim.Time.of_us i) (fun () -> ()))
           done;
           Sim.Engine.run e))
  in
  let tests =
    [
      test_heap;
      test_rng;
      test_db;
      test_queue;
      test_quorum;
      test_repcheck;
      test_sim_round;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Format.fprintf ppf "@.== Micro-benchmarks (bechamel) ==@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ estimate ] ->
            Format.fprintf ppf "%-44s %12.1f ns/run@." name estimate
          | _ -> Format.fprintf ppf "%-44s (no estimate)@." name)
        analysis)
    tests

let () =
  if bench6_mode then begin
    bench6 ();
    exit 0
  end;
  if bench9_mode then begin
    bench9 ();
    exit 0
  end;
  if bench10_mode then begin
    bench10 ();
    exit 0
  end;
  Format.fprintf ppf
    "Reproduction benchmarks: From Total Order to Database Replication@.\
     (Amir & Tutu, ICDCS 2002) — simulated substrate, virtual time.@.";
  repcheck_sanity ();
  recovery_table ();
  mcheck_space ();
  figure_5a ();
  figure_5b ();
  latency_table ();
  wan ();
  ablations ();
  microbenchmarks ();
  Format.fprintf ppf "@.bench: done@."
