(* runtest guard over the committed BENCH_6.json (regenerated with
   `dune exec bench/main.exe -- bench6 > BENCH_6.json`): re-parse the
   report and re-assert the Figure 5(b) knee target, so the perf claim
   in the repo can never silently drift from the recorded numbers.  The
   parser is a deliberately small scanner — the report is flat,
   machine-written JSON; there is no JSON library in the tree and this
   guard is not a reason to add one. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("BENCH_6 guard: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let is_num_char c =
  (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'

(* Position just after ["key"] followed by a colon, searching from
   [from]. *)
let after_key_opt s ~from key =
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle and len = String.length s in
  let rec find i =
    if i + nlen > len then None
    else if String.sub s i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find from with
  | None -> None
  | Some i ->
    let rec colon i =
      if i >= len then fail "no colon after key %S" key
      else
        match s.[i] with
        | ':' -> Some (i + 1)
        | ' ' | '\n' | '\t' -> colon (i + 1)
        | c -> fail "unexpected %C after key %S" c key
    in
    colon i

let after_key s ~from key =
  match after_key_opt s ~from key with
  | Some i -> i
  | None -> fail "missing key %S" key

let skip_ws s i =
  let len = String.length s in
  let rec go i =
    if i < len && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then go (i + 1)
    else i
  in
  go i

let number_at s i =
  let i = skip_ws s i in
  let len = String.length s in
  let j = ref i in
  while !j < len && is_num_char s.[!j] do incr j done;
  if !j = i then fail "expected a number at offset %d" i;
  float_of_string (String.sub s i (!j - i))

let float_field s ~from key = number_at s (after_key s ~from key)

let bool_field s ~from key =
  let i = skip_ws s (after_key s ~from key) in
  if String.length s - i >= 4 && String.sub s i 4 = "true" then true
  else if String.length s - i >= 5 && String.sub s i 5 = "false" then false
  else fail "expected a boolean for key %S" key

(* The numbers of the array starting at the next '[' after [i]. *)
let float_array s i =
  let len = String.length s in
  let rec open_bracket i =
    if i >= len then fail "expected an array"
    else if s.[i] = '[' then i + 1
    else open_bracket (i + 1)
  in
  let i = ref (open_bracket i) in
  let out = ref [] in
  let finished = ref false in
  while not !finished do
    let j = skip_ws s !i in
    if j >= len then fail "unterminated array"
    else if s.[j] = ']' then begin
      i := j + 1;
      finished := true
    end
    else if s.[j] = ',' then i := j + 1
    else begin
      out := number_at s j :: !out;
      let k = ref j in
      while !k < len && (is_num_char s.[!k] || s.[!k] = ' ') do incr k done;
      i := !k
    end
  done;
  List.rev !out

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_6.json" in
  let s = read_file path in
  (* Curve shape: the after-curves must cover the same client ladder as
     the seed curves. *)
  let fig = after_key s ~from:0 "figure_5b" in
  let ladder = float_array s (after_key s ~from:fig "clients") in
  let seed_obj = after_key s ~from:fig "seed" in
  let seed_delayed = float_array s (after_key s ~from:seed_obj "delayed_per_s") in
  let after_obj = after_key s ~from:seed_obj "after" in
  let after_delayed =
    float_array s (after_key s ~from:after_obj "delayed_per_s")
  in
  let after_forced = float_array s (after_key s ~from:after_obj "forced_per_s") in
  let n = List.length ladder in
  if n < 4 then fail "client ladder has only %d points" n;
  if List.length seed_delayed <> n then fail "seed delayed curve length mismatch";
  if List.length after_delayed <> n then
    fail "after delayed curve length mismatch";
  if List.length after_forced <> n then fail "after forced curve length mismatch";
  if List.exists (fun v -> v <= 0.) (after_delayed @ after_forced) then
    fail "non-positive throughput in an after-curve";
  (* The knee: recompute the speedup from the recorded numbers rather
     than trusting the recorded "speedup"/"pass" fields. *)
  let knee = after_key s ~from:0 "knee" in
  let seed_at_14 = float_field s ~from:knee "seed_delayed_per_s" in
  let after_at_14 = float_field s ~from:knee "after_delayed_per_s" in
  let target = float_field s ~from:knee "target_speedup" in
  let pass = bool_field s ~from:knee "pass" in
  let last l = List.nth l (List.length l - 1) in
  if Float.abs (seed_at_14 -. 2844.) > 0.5 then
    fail "seed baseline drifted from the recorded 2844/s: %.1f" seed_at_14;
  if Float.abs (after_at_14 -. last after_delayed) > 0.5 then
    fail "knee after_delayed_per_s (%.1f) disagrees with the curve (%.1f)"
      after_at_14 (last after_delayed);
  if target < 10. then fail "target_speedup weakened below 10: %.2f" target;
  if after_at_14 < target *. seed_at_14 then
    fail "knee miss: %.1f/s < %.1fx seed %.1f/s" after_at_14 target seed_at_14;
  if not pass then fail "report records pass=false";
  (* The batch sweep must show submission batching actually engaging:
     some recorded point has a mean frame size above one action. *)
  let sweep = after_key s ~from:0 "batch_sweep" in
  let rec means from acc =
    match after_key_opt s ~from "mean_batch" with
    | None -> List.rev acc
    | Some i -> means i (number_at s i :: acc)
  in
  let means = means sweep [] in
  if List.length means < 3 then
    fail "batch sweep has only %d points" (List.length means);
  if not (List.exists (fun m -> m > 1.05) means) then
    fail "no batch-sweep point shows a mean batch above 1 action";
  Printf.printf
    "BENCH_6 guard: OK (knee %.1f/s >= %.0fx seed %.0f/s; %d-point curves; max \
     mean batch %.2f)\n"
    after_at_14 target seed_at_14 n
    (List.fold_left Float.max 1. means)
