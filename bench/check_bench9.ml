(* runtest guard over the committed BENCH_9.json (regenerated with
   `dune exec bench/main.exe -- bench9 > BENCH_9.json`): re-parse the
   overload report and re-assert the admission-control plateau from
   the recorded numbers, so the robustness claim — goodput at twice
   the saturation rate stays within 20% of the peak when replicas
   shed, versus congestive collapse when they do not — can never
   silently drift from the artifact.  Same deliberately small scanner
   as check_bench6: flat machine-written JSON, no JSON library. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("BENCH_9 guard: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let is_num_char c =
  (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'

(* Position just after ["key"] followed by a colon, searching from
   [from]. *)
let after_key_opt s ~from key =
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle and len = String.length s in
  let rec find i =
    if i + nlen > len then None
    else if String.sub s i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find from with
  | None -> None
  | Some i ->
    let rec colon i =
      if i >= len then fail "no colon after key %S" key
      else
        match s.[i] with
        | ':' -> Some (i + 1)
        | ' ' | '\n' | '\t' -> colon (i + 1)
        | c -> fail "unexpected %C after key %S" c key
    in
    colon i

let after_key s ~from key =
  match after_key_opt s ~from key with
  | Some i -> i
  | None -> fail "missing key %S" key

let skip_ws s i =
  let len = String.length s in
  let rec go i =
    if i < len && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then go (i + 1)
    else i
  in
  go i

let number_at s i =
  let i = skip_ws s i in
  let len = String.length s in
  let j = ref i in
  while !j < len && is_num_char s.[!j] do incr j done;
  if !j = i then fail "expected a number at offset %d" i;
  float_of_string (String.sub s i (!j - i))

let float_field s ~from key = number_at s (after_key s ~from key)

let bool_field s ~from key =
  let i = skip_ws s (after_key s ~from key) in
  if String.length s - i >= 4 && String.sub s i 4 = "true" then true
  else if String.length s - i >= 5 && String.sub s i 5 = "false" then false
  else fail "expected a boolean for key %S" key

(* Collect every value of [key] inside the array that starts right
   after [from] and ends at its closing ']' (points are flat objects,
   so bracket counting is not needed: stop at the first ']' at or
   before which no further key occurs). *)
let series s ~from ~upto key =
  let rec go from acc =
    match after_key_opt s ~from key with
    | Some i when i < upto -> go i (number_at s i :: acc)
    | _ -> List.rev acc
  in
  go from []

let array_end s i =
  let len = String.length s in
  let rec go i =
    if i >= len then fail "unterminated points array"
    else if s.[i] = ']' then i
    else go (i + 1)
  in
  go i

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_9.json" in
  let s = read_file path in
  let sat = float_field s ~from:0 "saturation_per_s" in
  if sat <= 0. then fail "non-positive saturation rate %.1f" sat;
  let with_adm = after_key s ~from:0 "with_admission" in
  let with_end = array_end s with_adm in
  let without_adm = after_key s ~from:0 "without_admission" in
  let without_end = array_end s without_adm in
  let point_series from upto =
    ( series s ~from ~upto "offered_x",
      series s ~from ~upto "goodput_per_s",
      series s ~from ~upto "max_cpu_queue" )
  in
  let adm_x, adm_g, adm_q = point_series with_adm with_end in
  let no_x, no_g, no_q = point_series without_adm without_end in
  let n = List.length adm_x in
  if n < 4 then fail "with-admission sweep has only %d points" n;
  if List.length no_x <> n then fail "sweep lengths disagree";
  if List.length adm_g <> n || List.length no_g <> n then
    fail "goodput series length mismatch";
  if List.length adm_q <> n || List.length no_q <> n then
    fail "cpu-queue series length mismatch";
  let at xs ys x =
    let rec go xs ys =
      match (xs, ys) with
      | x' :: _, y :: _ when Float.abs (x' -. x) < 1e-9 -> y
      | _ :: xs, _ :: ys -> go xs ys
      | _ -> fail "sweep is missing the %.1fx point" x
    in
    go xs ys
  in
  (* Recompute the plateau from the recorded curves rather than
     trusting the recorded guard fields. *)
  let peak_adm = List.fold_left Float.max 0. adm_g in
  let adm_2x = at adm_x adm_g 2.0 in
  let no_2x = at no_x no_g 2.0 in
  if adm_2x < 0.8 *. peak_adm then
    fail "plateau miss: %.1f/s at 2x < 80%% of the %.1f/s peak" adm_2x peak_adm;
  (* The baseline must actually collapse — otherwise the plateau
     demonstrates nothing. *)
  if no_2x > 0.5 *. adm_2x then
    fail
      "no collapse to protect against: %.1f/s without admission at 2x vs \
       %.1f/s with"
      no_2x adm_2x;
  (* Attribution: the collapsed points must show the congestion (an
     unbounded CPU receive queue), and the shedding points must not. *)
  let no_q_2x = at no_x no_q 2.0 in
  let adm_q_2x = at adm_x adm_q 2.0 in
  if no_q_2x < 1_000. then
    fail "collapsed 2x point shows no CPU backlog (queue %.0f)" no_q_2x;
  if adm_q_2x > 1_000. then
    fail "admitted 2x point shows a CPU backlog (queue %.0f)" adm_q_2x;
  (* Cross-check the recorded guard block against the recomputation. *)
  let guard = after_key s ~from:0 "guard" in
  let rec_adm_2x = float_field s ~from:guard "goodput_at_2x_with_admission" in
  if Float.abs (rec_adm_2x -. adm_2x) > 0.5 then
    fail "guard block (%.1f) disagrees with the curve (%.1f)" rec_adm_2x adm_2x;
  if not (bool_field s ~from:guard "plateau_pass") then
    fail "report records plateau_pass=false";
  Printf.printf
    "BENCH_9 guard: OK (saturation %.0f/s; 2x goodput %.1f/s with admission \
     [>= 80%% of peak %.1f/s] vs %.1f/s without; collapse queue %.0f)\n"
    sat adm_2x peak_adm no_2x no_q_2x
