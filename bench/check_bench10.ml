(* runtest guard over the committed BENCH_10.json (regenerated with
   `dune exec bench/main.exe -- bench10 > BENCH_10.json`): re-parse the
   hot-path microbenchmark report and re-assert, from the recorded
   numbers, that the exchange and event-step reworks actually paid off
   at 200 members — the counting-table knowledge exchange beats the
   naive list intersection by at least 2x, and the int-keyed heap beats
   the closure-comparator heap outright.  Same deliberately small
   scanner as check_bench6: flat machine-written JSON, no JSON
   library. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("BENCH_10 guard: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let is_num_char c =
  (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'

(* Position just after ["key"] followed by a colon, searching from
   [from]. *)
let after_key_opt s ~from key =
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle and len = String.length s in
  let rec find i =
    if i + nlen > len then None
    else if String.sub s i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find from with
  | None -> None
  | Some i ->
    let rec colon i =
      if i >= len then fail "no colon after key %S" key
      else
        match s.[i] with
        | ':' -> Some (i + 1)
        | ' ' | '\n' | '\t' -> colon (i + 1)
        | c -> fail "unexpected %C after key %S" c key
    in
    colon i

let after_key s ~from key =
  match after_key_opt s ~from key with
  | Some i -> i
  | None -> fail "missing key %S" key

let skip_ws s i =
  let len = String.length s in
  let rec go i =
    if i < len && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then go (i + 1)
    else i
  in
  go i

let number_at s i =
  let i = skip_ws s i in
  let len = String.length s in
  let j = ref i in
  while !j < len && is_num_char s.[!j] do
    incr j
  done;
  if !j = i then fail "expected a number at offset %d" i;
  float_of_string (String.sub s i (!j - i))

let float_field s ~from key = number_at s (after_key s ~from key)

let bool_field s ~from key =
  let i = skip_ws s (after_key s ~from key) in
  if String.length s - i >= 4 && String.sub s i 4 = "true" then true
  else if String.length s - i >= 5 && String.sub s i 5 = "false" then false
  else fail "expected a boolean for key %S" key

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_10.json"
  in
  let s = read_file path in
  (* Every point of the membership ladder, keyed by its size. *)
  let point n =
    let rec find from =
      match after_key_opt s ~from "members" with
      | None -> fail "no point for %d members" n
      | Some i -> if int_of_float (number_at s i) = n then i else find i
    in
    let i = find 0 in
    ( float_field s ~from:i "intersect_naive_us",
      float_field s ~from:i "exchange_us",
      float_field s ~from:i "step_closure_heap_ns_per_op",
      float_field s ~from:i "step_keyed_heap_ns_per_op" )
  in
  List.iter
    (fun n ->
      let naive, exch, closure, keyed = point n in
      if naive <= 0. || exch <= 0. || closure <= 0. || keyed <= 0. then
        fail "non-positive measurement at %d members" n)
    [ 50; 100; 200 ];
  (* The claims, recomputed from the recorded numbers rather than
     trusting the recorded "speedup"/"pass" fields. *)
  let naive, exch, closure, keyed = point 200 in
  if exch *. 2. > naive then
    fail "exchange rework under 2x at 200 members: %.1f us vs naive %.1f us"
      exch naive;
  if keyed >= closure then
    fail "keyed heap not faster at 200 members: %.1f vs %.1f ns/op" keyed
      closure;
  let guard = after_key s ~from:0 "guard" in
  if not (bool_field s ~from:guard "exchange_pass") then
    fail "report records exchange_pass=false";
  if not (bool_field s ~from:guard "step_pass") then
    fail "report records step_pass=false";
  Printf.printf
    "BENCH_10 guard: OK (exchange %.1fx, step %.2fx at 200 members)\n"
    (naive /. exch) (closure /. keyed)
