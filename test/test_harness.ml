(* Tests of the measurement/checking harness itself: the world helper,
   the consistency checker (including its ability to DETECT violations),
   and a smoke test of the experiment driver. *)

open Repro_net
open Repro_db
open Repro_core
open Repro_harness

let test_world_basics () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  Alcotest.(check int) "three replicas" 3 (List.length (World.replicas w));
  Alcotest.(check bool) "all primary" true
    (List.for_all Replica.in_primary (World.replicas w));
  World.submit_update w ~node:0 ~key:"k" 1;
  World.run w ~ms:500.;
  Alcotest.(check int) "one green action" 1
    (Engine.green_count (Replica.engine (World.replica w 1)))

let test_world_heal_and_settle () =
  let w = World.make ~n:4 () in
  World.run w ~ms:1000.;
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3 ] ];
  Replica.crash (World.replica w 2);
  World.run w ~ms:1000.;
  World.heal_and_settle w;
  Alcotest.(check bool) "all back up" true
    (List.for_all Replica.is_up (World.replicas w));
  Alcotest.(check bool) "all primary again" true
    (List.for_all Replica.in_primary (World.replicas w))

let test_checker_passes_on_healthy_world () =
  let w = World.make ~n:4 () in
  World.run w ~ms:1000.;
  for i = 1 to 10 do
    World.submit_update w ~node:(i mod 4) ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:500.;
  Alcotest.(check int) "no violations" 0
    (List.length (Consistency.check_all ~converged:true (World.replicas w)))

let test_checker_detects_divergence () =
  (* Corrupt one replica's database behind the engine's back: the
     convergence check must notice. *)
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  World.submit_update w ~node:0 ~key:"k" 1;
  World.run w ~ms:500.;
  Database.apply (Replica.database (World.replica w 2)) [ Op.Set ("rogue", Value.Int 666) ];
  let violations = Consistency.check_convergence (World.replicas w) in
  Alcotest.(check bool) "divergence detected" true (List.length violations > 0)

let test_checker_single_primary_property () =
  let w = World.make ~n:5 () in
  World.run w ~ms:1000.;
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  World.run w ~ms:1500.;
  Alcotest.(check int) "no single-primary violation under partition" 0
    (List.length (Consistency.check_single_primary (World.replicas w)))

let test_checker_assert_ok_raises () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  World.submit_update w ~node:0 ~key:"k" 1;
  World.run w ~ms:500.;
  Database.apply (Replica.database (World.replica w 1)) [ Op.Remove "k" ];
  Alcotest.(check bool) "assert_ok raises on corruption" true
    (try
       Consistency.assert_ok ~converged:true (World.replicas w);
       false
     with Failure _ -> true)

let test_experiment_smoke () =
  (* A tiny run of each protocol: sane, non-zero numbers. *)
  let duration = Repro_sim.Time.of_sec 2. in
  List.iter
    (fun protocol ->
      let r = Experiment.run ~servers:3 ~duration ~clients:2 protocol in
      let name = Experiment.protocol_name r.Experiment.r_protocol in
      Alcotest.(check bool)
        (name ^ " throughput positive")
        true
        (r.Experiment.r_throughput > 10.);
      Alcotest.(check bool)
        (name ^ " latency sane")
        true
        (r.Experiment.r_mean_latency_ms > 1.
        && r.Experiment.r_mean_latency_ms < 200.))
    [
      Experiment.Engine_protocol Repro_storage.Disk.Forced;
      Experiment.Corel_protocol;
      Experiment.Twopc_protocol;
    ]

let test_experiment_engine_beats_2pc () =
  let duration = Repro_sim.Time.of_sec 2. in
  let engine =
    Experiment.run ~servers:5 ~duration ~clients:5
      (Experiment.Engine_protocol Repro_storage.Disk.Forced)
  in
  let twopc = Experiment.run ~servers:5 ~duration ~clients:5 Experiment.Twopc_protocol in
  Alcotest.(check bool) "engine throughput higher" true
    (engine.Experiment.r_throughput > twopc.Experiment.r_throughput)

let test_session_program_order () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  let s = Session.attach (World.replica w 0) ~client:1 in
  let log = ref [] in
  (* Three writes and a read queued at once: they must execute in program
     order and the read must see the last write (read-your-writes). *)
  Session.exec s (Action.Update [ Op.Set ("x", Value.Int 1) ]) ~k:(fun _ ->
      log := "w1" :: !log);
  Session.exec s (Action.Update [ Op.Set ("x", Value.Int 2) ]) ~k:(fun _ ->
      log := "w2" :: !log);
  Session.exec s (Action.Update [ Op.Set ("x", Value.Int 3) ]) ~k:(fun _ ->
      log := "w3" :: !log);
  Session.read s [ "x" ] ~k:(fun r ->
      match r with
      | [ ("x", Some (Value.Int 3)) ] -> log := "read3" :: !log
      | _ -> log := "read-wrong" :: !log);
  Alcotest.(check int) "all queued" 4 (Session.outstanding s);
  World.run w ~ms:1500.;
  Alcotest.(check (list string)) "program order + read-your-writes"
    [ "w1"; "w2"; "w3"; "read3" ]
    (List.rev !log);
  Alcotest.(check int) "completed" 4 (Session.completed s);
  Alcotest.(check int) "drained" 0 (Session.outstanding s)

let test_session_counts_aborts () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  let s = Session.attach (World.replica w 1) ~client:2 in
  Session.exec s (Action.Update [ Op.Set ("seat", Value.Text "free") ])
    ~k:(fun _ -> ());
  Session.exec s
    (Action.Interactive
       {
         expected = [ ("seat", Some (Value.Text "busy")) ];
         updates = [];
       })
    ~k:(fun _ -> ());
  World.run w ~ms:1500.;
  Alcotest.(check int) "one abort" 1 (Session.aborted s)

let test_workload_closed_loop_counts () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  let sim = World.sim w in
  let wl =
    Workload.closed_loop ~sim ~mix:Workload.default_mix ~clients:3
      ~replicas:(World.replicas w) ()
  in
  World.run w ~ms:500.;
  Workload.start_measuring wl;
  World.run w ~ms:2000.;
  let over = Repro_sim.Time.of_sec 2. in
  Alcotest.(check bool) "throughput positive" true
    (Workload.throughput wl ~over > 50.);
  Workload.stop wl;
  let at_stop = Workload.completed wl in
  World.run w ~ms:500.;
  Alcotest.(check bool) "stop halts issuing" true
    (Workload.completed wl - at_stop <= 3)

let test_workload_open_loop_rate () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  let sim = World.sim w in
  let wl =
    Workload.open_loop ~sim ~mix:Workload.default_mix ~rate_per_sec:200.
      ~replicas:(World.replicas w) ()
  in
  World.run w ~ms:500.;
  Workload.start_measuring wl;
  World.run w ~ms:4000.;
  let rate = Workload.throughput wl ~over:(Repro_sim.Time.of_sec 4.) in
  Alcotest.(check bool)
    (Printf.sprintf "poisson near target (%.0f/s)" rate)
    true
    (rate > 120. && rate < 280.)

let test_workload_mixed_reads () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  let sim = World.sim w in
  let mix =
    { Workload.default_mix with read_fraction = 0.5; optimized_reads = true }
  in
  let wl = Workload.closed_loop ~sim ~mix ~clients:4 ~replicas:(World.replicas w) () in
  Workload.start_measuring wl;
  World.run w ~ms:2000.;
  Alcotest.(check bool) "mixed workload progresses" true
    (Workload.completed wl > 100)

let test_white_line_advances () =
  let w = World.make ~n:3 () in
  World.run w ~ms:1000.;
  for i = 1 to 5 do
    World.submit_update w ~node:0 ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:1000.;
  (* After an exchange round everyone's green line knowledge spreads;
     the white line (actions known green everywhere) follows on the next
     view change.  Force one by isolating and healing a node. *)
  Topology.partition (World.topology w) [ [ 0; 1 ]; [ 2 ] ];
  World.run w ~ms:1500.;
  Topology.merge_all (World.topology w);
  World.run w ~ms:2500.;
  let e = Replica.engine (World.replica w 0) in
  Alcotest.(check bool) "white line reached the actions" true
    (Engine.white_line e >= 5)

let () =
  Alcotest.run "harness"
    [
      ( "world",
        [
          Alcotest.test_case "basics" `Quick test_world_basics;
          Alcotest.test_case "heal and settle" `Quick test_world_heal_and_settle;
        ] );
      ( "checker",
        [
          Alcotest.test_case "passes healthy world" `Quick
            test_checker_passes_on_healthy_world;
          Alcotest.test_case "detects divergence" `Quick
            test_checker_detects_divergence;
          Alcotest.test_case "single primary under partition" `Quick
            test_checker_single_primary_property;
          Alcotest.test_case "assert_ok raises" `Quick test_checker_assert_ok_raises;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "smoke all protocols" `Slow test_experiment_smoke;
          Alcotest.test_case "engine beats 2pc" `Slow test_experiment_engine_beats_2pc;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "program order" `Quick test_session_program_order;
          Alcotest.test_case "abort counting" `Quick test_session_counts_aborts;
        ] );
      ( "workload",
        [
          Alcotest.test_case "closed loop" `Quick test_workload_closed_loop_counts;
          Alcotest.test_case "open loop rate" `Quick test_workload_open_loop_rate;
          Alcotest.test_case "mixed reads" `Quick test_workload_mixed_reads;
        ] );
      ( "observability",
        [ Alcotest.test_case "white line advances" `Quick test_white_line_advances ] );
    ]
