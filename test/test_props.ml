(* Property-based testing: random fault schedules against a full cluster
   with the consistency checker on.

   Each case draws a schedule of partitions, merges, crashes and
   recoveries at random times, interleaved with a background update
   workload, runs it in the deterministic simulator, checks safety at
   every step, then heals everything and checks liveness (convergence).
   A failing seed reproduces exactly. *)

open Repro_net
open Repro_core
open Repro_harness

type fault =
  | Split of int list list (* partition groups over nodes 0..n-1 *)
  | Heal
  | Crash of int
  | Recover of int

let pp_fault = function
  | Split groups ->
    "split["
    ^ String.concat "|"
        (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups)
    ^ "]"
  | Heal -> "heal"
  | Crash n -> Printf.sprintf "crash %d" n
  | Recover n -> Printf.sprintf "recover %d" n

(* --- generators ----------------------------------------------------- *)

let n_nodes = 5

let gen_groups : int list list QCheck.Gen.t =
  let open QCheck.Gen in
  (* A random 2- or 3-way partition of 0..4 by assignment labels. *)
  list_repeat n_nodes (int_bound 2) >|= fun labels ->
  let group l =
    List.filteri (fun i _ -> List.nth labels i = l) (List.init n_nodes Fun.id)
  in
  List.filter (fun g -> g <> []) [ group 0; group 1; group 2 ]

let gen_fault : fault QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (3, gen_groups >|= fun g -> Split g);
      (2, return Heal);
      (2, int_bound (n_nodes - 1) >|= fun n -> Crash n);
      (3, int_bound (n_nodes - 1) >|= fun n -> Recover n);
    ]

let gen_schedule : fault list QCheck.Gen.t =
  QCheck.Gen.(list_size (int_range 1 8) gen_fault)

let arb_schedule =
  QCheck.make gen_schedule
    ~print:(fun s -> String.concat "; " (List.map pp_fault s))

(* --- the property --------------------------------------------------- *)

(* Returns true when the schedule preserves safety throughout and the
   cluster converges after healing. *)
let run_schedule ~seed schedule =
  let w = World.make ~seed ~n:n_nodes () in
  (* The repcheck monitor re-checks the paper's invariants online at
     every view change while the schedule runs. *)
  let mon = World.attach_monitor w in
  World.run w ~ms:1000.;
  let key = ref 0 in
  let background () =
    for node = 0 to n_nodes - 1 do
      incr key;
      let r = World.replica w node in
      if Replica.is_ready r then
        World.submit_update w ~node ~key:(Printf.sprintf "k%d" !key) !key
    done
  in
  let safety_ok = ref true in
  let check () =
    if Consistency.check_all (World.replicas w) <> [] then safety_ok := false
  in
  List.iter
    (fun fault ->
      (match fault with
      | Split groups -> Topology.partition (World.topology w) groups
      | Heal -> Topology.merge_all (World.topology w)
      | Crash n -> Replica.crash (World.replica w n)
      | Recover n -> Replica.recover (World.replica w n));
      background ();
      World.run w ~ms:700.;
      check ())
    schedule;
  (* Liveness: heal everything and wait for convergence. *)
  World.heal_and_settle ~ms:8000. w;
  background ();
  World.run w ~ms:2000.;
  let converged = Consistency.check_all ~converged:true (World.replicas w) in
  Repro_check.Monitor.check_now mon;
  if not (Repro_check.Monitor.ok mon) then
    QCheck.Test.fail_report
      (Format.asprintf "%t" (Repro_check.Monitor.report mon));
  !safety_ok && converged = []

let prop_fault_schedules_safe =
  QCheck.Test.make ~name:"random fault schedules preserve safety and liveness"
    ~count:25 arb_schedule
    (fun schedule -> run_schedule ~seed:1234 schedule)

let prop_fault_schedules_other_seed =
  QCheck.Test.make ~name:"random fault schedules (different timing seed)"
    ~count:15 arb_schedule
    (fun schedule -> run_schedule ~seed:987 schedule)

(* Focused generators: crash/recover churn only (exercises recovery and
   the vulnerable bookkeeping without partitions). *)
let gen_crash_churn : fault list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 2 10)
    (oneof
       [
         (int_bound (n_nodes - 1) >|= fun n -> Crash n);
         (int_bound (n_nodes - 1) >|= fun n -> Recover n);
       ])

let prop_crash_churn =
  QCheck.Test.make ~name:"crash/recover churn preserves safety and liveness"
    ~count:20
    (QCheck.make gen_crash_churn
       ~print:(fun s -> String.concat "; " (List.map pp_fault s)))
    (fun schedule -> run_schedule ~seed:555 schedule)

(* Partition churn only (no crashes): the pure eventual-path story. *)
let gen_partition_churn : fault list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 2 8)
    (frequency [ (3, gen_groups >|= fun g -> Split g); (1, return Heal) ])

let prop_partition_churn =
  QCheck.Test.make ~name:"partition churn preserves safety and liveness"
    ~count:20
    (QCheck.make gen_partition_churn
       ~print:(fun s -> String.concat "; " (List.map pp_fault s)))
    (fun schedule -> run_schedule ~seed:31415 schedule)

let () =
  Alcotest.run "props"
    [
      ( "fault-schedules",
        [
          QCheck_alcotest.to_alcotest prop_fault_schedules_safe;
          QCheck_alcotest.to_alcotest prop_fault_schedules_other_seed;
          QCheck_alcotest.to_alcotest prop_crash_churn;
          QCheck_alcotest.to_alcotest prop_partition_churn;
        ] );
    ]
