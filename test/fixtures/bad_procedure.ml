(* Seeded violations for the procedure key-space footprint analysis
   (Procfoot) and the lib/db determinism rules.

   [scatter] computes a key from [Random] output: its write set
   degrades to top (procedure-unbounded-footprint), the determinism
   verdict fails (procedure-nondeterminism + the ambient-nondeterminism
   rule on the [Random.int] itself), and its declared footprint is
   narrower than inference (procedure-footprint-drift) — one body, the
   full failure surface.

   [popular] derives a replica-visible key from [Hashtbl.fold]
   iteration order; [same] branches on physical equality of [Value.t].
   Both are the new nondeterminism sources the effect fixpoint tracks,
   each also surfaced by its pattern rule.

   [audited] is the clean twin: a helper-computed concat key, declared
   exactly, commutative — it must appear in the manifest with a
   bounded footprint and produce no findings. *)

module P = Repro_db.Procedure
module Db = Repro_db.Database
module Op = Repro_db.Op
module Value = Repro_db.Value

let scatter db = function
  | [ Value.Text bucket ] ->
    let spread = Random.int 8 in
    let key = Printf.sprintf "%s-%d" bucket spread in
    let prev = match Db.get db key with Some (Value.Int p) -> p | _ -> 0 in
    { P.updates = [ Op.Add (key, 1) ]; output = Value.Int (prev + spread) }
  | _ -> { P.updates = []; output = Value.Int 0 }

let popular db = function
  | [ Value.Text item ] ->
    let seen = Hashtbl.create 4 in
    Hashtbl.replace seen item (Db.get db item);
    let best = Hashtbl.fold (fun k _ acc -> if acc = "" then k else acc) seen "" in
    { P.updates = [ Op.Set (best, Value.Int 1) ]; output = Value.Int 1 }
  | _ -> { P.updates = []; output = Value.Int 0 }

let same db = function
  | [ Value.Text key; probe ] ->
    let hit =
      match Db.get db key with Some v -> v == probe | None -> false
    in
    {
      P.updates = (if hit then [ Op.Remove key ] else []);
      output = Value.Int (if hit then 1 else 0);
    }
  | _ -> { P.updates = []; output = Value.Int 0 }

let audit_key who = "audit-" ^ who

let audited db = function
  | [ Value.Text who; Value.Int n ] ->
    let prev =
      match Db.get db (audit_key who) with Some (Value.Int p) -> p | _ -> 0
    in
    { P.updates = [ Op.Add (audit_key who, n) ]; output = Value.Int (prev + n) }
  | _ -> { P.updates = []; output = Value.Int 0 }

let fleet () =
  let reg = P.create () in
  P.register reg "scatter" scatter
    ~footprint:{ P.reads = [ P.Kparam 0 ]; writes = [ P.Kparam 0 ] };
  P.register reg "popular" popular;
  P.register reg "same" same;
  P.register reg "audited" audited
    ~footprint:
      {
        P.reads = [ P.Kconcat [ P.Kconst "audit-"; P.Kparam 0 ] ];
        writes = [ P.Kconcat [ P.Kconst "audit-"; P.Kparam 0 ] ];
      };
  reg
