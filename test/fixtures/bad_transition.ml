(* Seeds: spec-drift.  [step] takes the replica straight from
   [Non_prim] to [Reg_prim] — a transition Figure 4 does not have (the
   only way back to a primary state is through Exchange_states).  The
   extraction must report the Non_prim -> Reg_prim edge as present in
   code but absent from the spec. *)

open Repro_core

type m = { mutable state : Types.engine_state }

let set_state m s = m.state <- s

let step m =
  match m.state with
  | Types.Non_prim -> set_state m Types.Reg_prim
  | Types.Reg_prim | Types.Trans_prim | Types.Exchange_states
  | Types.Exchange_actions | Types.Construct | Types.No_state | Types.Un_state
    ->
    ()
