open Repro_storage

type net = { send : size:int -> int -> unit }

let probe (log : int Wlog.t) (wire : net) seq =
  match seq with
  | 0 ->
    Wlog.append log seq;
    wire.send ~size:8 seq
  | n -> Wlog.append log n
