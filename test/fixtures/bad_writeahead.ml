(* Seeds: write-ahead-ordering.  [announce_before_force] multicasts an
   action whose log record has been appended but not yet forced — the
   exact crash window the paper's vulnerable-record discipline closes
   (§4): the node can send, crash before the force, and recover with no
   trace of an action the rest of the group ordered.  The analysis must
   flag the send in [announce_before_force] and accept
   [announce_after_force], where the send runs in the continuation of
   the stable-storage sync. *)

open Repro_storage

type net = { send : size:int -> int -> unit }

let announce_before_force (log : int Wlog.t) (wire : net) seq =
  Wlog.append log seq;
  wire.send ~size:8 seq;
  Wlog.sync log (fun () -> ())

let announce_after_force (log : int Wlog.t) (wire : net) seq =
  Wlog.append log seq;
  Wlog.sync log (fun () -> wire.send ~size:8 seq)

(* Frame-aware variant: one multi-record frame appended by
   [Wlog.append_batch] needs exactly one covering force before any of
   its records may be announced — sending between the batched append
   and the force reopens the same crash window for the whole frame. *)
let announce_batch_before_force (log : int Wlog.t) (wire : net) seqs =
  Wlog.append_batch log seqs;
  List.iter (fun seq -> wire.send ~size:8 seq) seqs;
  Wlog.sync log (fun () -> ())

let announce_batch_after_force (log : int Wlog.t) (wire : net) seqs =
  Wlog.append_batch log seqs;
  Wlog.sync log (fun () -> List.iter (fun seq -> wire.send ~size:8 seq) seqs)
