(* The false-positive-shaped twin of bad_race: the same two-domain
   fan-out over shared mutable state, but every cross-domain access
   runs inside [Mutex.protect] on the one shared lock — the common
   synchronization point the race pass must recognize, staying silent
   on this file.  ([gauge], not [counter]: distinct cell types keep
   this module's accesses from pairing with bad_race's in the same
   analysis run.) *)

type gauge = { mutable level : int }

let raise_level lock (g : gauge) =
  Mutex.protect lock (fun () -> g.level <- g.level + 1)

let read_level lock (g : gauge) = Mutex.protect lock (fun () -> g.level)

let guarded_pair lock (g : gauge) =
  let a = Domain.spawn (fun () -> raise_level lock g) in
  let b = Domain.spawn (fun () -> ignore (read_level lock g)) in
  Domain.join a;
  Domain.join b
