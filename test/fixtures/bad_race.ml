(* Seeds: parallel-race.  Two domains bump the same counter's mutable
   field through [bump] with no synchronization anywhere on either
   path: a write/write conflict on [counter.hits] between the two
   spawned closures.  (Each closure is a literal, so the checker's
   pseudo-roots — not named table entries — are what must collide.) *)

type counter = { mutable hits : int }

let bump (c : counter) = c.hits <- c.hits + 1

let racy (c : counter) =
  let a = Domain.spawn (fun () -> bump c) in
  let b = Domain.spawn (fun () -> bump c) in
  Domain.join a;
  Domain.join b
