(* Seeds: ambient-state (plus one stale exemption).

   [request_total] is process-wide mutable state: a second engine
   instance in the process would share (and corrupt) the count — the
   shape of the pre-PR 7 procedure-registry bug, pinned here so the
   detector's catch of that class of bug stays demonstrated after the
   real one was fixed.  [interned] is the same shape but carries a
   justified [@@analysis.ambient_ok] and must NOT be reported.
   [stale_helper]'s exemption excuses nothing (a pure function is not
   ambient state) and must be reported as unused. *)

let request_total : int ref = ref 0

let record_request n = request_total := !request_total + n

let requests_seen () = !request_total

(* The exact shape of the pre-fix lib/db/procedure.ml bug: a
   process-wide name -> handler registry that every "instance" in the
   process implicitly shares. *)
type handler = int -> int

let handlers : (string, handler) Hashtbl.t = Hashtbl.create 16

let install name h = Hashtbl.replace handlers name h
let lookup name = Hashtbl.find_opt handlers name

let interned : (string, string) Hashtbl.t = Hashtbl.create 8
[@@analysis.ambient_ok "fixture: deliberately excused cache"]

let intern s =
  match Hashtbl.find_opt interned s with
  | Some s' -> s'
  | None ->
    Hashtbl.replace interned s s;
    s

let stale_helper n = n + 1 [@@analysis.ambient_ok "fixture: excuses nothing"]
