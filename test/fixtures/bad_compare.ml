(* Seeds: no-poly-id-compare.  [Node_id.t] is abstract; polymorphic
   equality on it works today and silently breaks the day the
   representation changes.  The analysis must flag [same_node] and
   accept [same_node_ok]. *)

let same_node (a : Repro_net.Node_id.t) (b : Repro_net.Node_id.t) = a = b

let same_node_ok (a : Repro_net.Node_id.t) (b : Repro_net.Node_id.t) =
  Repro_net.Node_id.equal a b
