(* Seeds: hotpath-cost / hotpath-alloc / boxed-float-comparator.  Each
   bad shape is a miniature of a real hot-path regression: a per-event
   membership scan smuggled under an O(1) budget, a closure allocated
   per message under an alloc O(1) budget, and a float-comparator
   literal handed to a polymorphic sort.  [roster_size_ok] is the clean
   twin: same annotation discipline, genuinely constant work. *)

type msg = { sender : Repro_net.Node_id.t; body : string }

(* Per-event scan of the full membership: O(members) work inside an
   O(1) budget.  The analysis must flag the List.exists walk. *)
let roster_scan (roster : Repro_net.Node_id.t list) (m : msg) =
  List.exists (fun n -> Repro_net.Node_id.equal n m.sender) roster
[@@analysis.hotpath "O(1)"]

(* The work budget fits (one pass over the batch) but a closure is
   consed per message: alloc O(batch) against a declared alloc O(1). *)
let closure_per_message (sink : (unit -> unit) list ref) (ms : msg list) =
  List.iter (fun m -> sink := (fun () -> ignore m.body) :: !sink) ms
[@@analysis.hotpath "O(batch); alloc O(1)"]

(* A function-literal float comparator: both floats are boxed on every
   comparison.  Structural rule, fires with or without a budget. *)
let percentile_sort (xs : float array) =
  Array.sort (fun (a : float) (b : float) -> Float.compare a b) xs

(* Clean twin: annotated hot path that really is constant-time. *)
let roster_size_ok (roster : Repro_net.Node_id.t array) = Array.length roster
[@@analysis.hotpath "O(1)"]
