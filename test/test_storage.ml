(* Tests of the simulated stable storage: forced-write latency, group
   commit, delayed-mode durability loss, crash/recovery of the
   write-ahead log and the stable cell. *)

open Repro_sim
open Repro_storage

(* Timing assertions need a metronome disk: no flush jitter. *)
let forced_nojitter = { Disk.default_forced with sync_jitter = 0. }
let delayed_nojitter = { Disk.default_delayed with sync_jitter = 0. }

let make ?(config = forced_nojitter) () =
  let engine = Engine.create () in
  let disk = Disk.create ~engine ~config () in
  (engine, disk)

(* The verified prefix, as the old verdict-less recover returned it. *)
let entries log = (Wlog.recover log).Wlog.rv_trusted
let verdict log = (Wlog.recover log).Wlog.rv_verdict

let verdict_t : Wlog.verdict Alcotest.testable =
  Alcotest.testable Wlog.pp_verdict (fun a b -> a = b)

let test_forced_write_latency () =
  let engine, disk = make () in
  let done_at = ref Time.zero in
  Disk.force disk (fun () -> done_at := Engine.now engine);
  Engine.run engine;
  (* 10 ms platter write + 10 us group-commit gather window. *)
  Alcotest.(check int) "10 ms forced write" 10_010 (Time.to_us !done_at)

let test_group_commit_batches () =
  let engine, disk = make () in
  let completions = ref [] in
  (* First force starts a flush; the next ten arrive while it is in
     flight and must share the *second* flush. *)
  Disk.force disk (fun () -> completions := ("first", Engine.now engine) :: !completions);
  ignore
    (Engine.schedule engine ~delay:(Time.of_ms 1.) (fun () ->
         for i = 1 to 10 do
           Disk.force disk (fun () ->
               completions := (Printf.sprintf "b%d" i, Engine.now engine) :: !completions)
         done));
  Engine.run engine;
  Alcotest.(check int) "two flushes total" 2 (Disk.flushes disk);
  let batch_times =
    List.filter_map
      (fun (tag, t) -> if tag <> "first" then Some (Time.to_us t) else None)
      !completions
  in
  Alcotest.(check int) "ten batched" 10 (List.length batch_times);
  List.iter
    (fun t -> Alcotest.(check int) "all at second flush" 20_020 t)
    batch_times

let test_delayed_ack_fast () =
  let engine, disk = make ~config:delayed_nojitter () in
  let done_at = ref Time.zero in
  Disk.force disk (fun () -> done_at := Engine.now engine);
  Engine.run ~until:(Time.of_ms 1.) engine;
  Alcotest.(check int) "50 us delayed ack" 50 (Time.to_us !done_at)

let test_flush_jitter_within_bounds () =
  let config = { Disk.default_forced with sync_jitter = 0.4 } in
  let engine = Engine.create ~seed:3 () in
  let disk = Disk.create ~engine ~config () in
  (* Sequential flushes: each completion-to-completion gap must stay in
     [8, 12] ms (±20% of 10 ms) plus the 10 µs gather window. *)
  let completions = ref [] in
  let rec loop n =
    if n > 0 then
      Disk.force disk (fun () ->
          completions := Time.to_us (Engine.now engine) :: !completions;
          loop (n - 1))
  in
  loop 30;
  Engine.run engine;
  let times = List.rev !completions in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun gap ->
      Alcotest.(check bool)
        (Printf.sprintf "gap %d us within jitter bounds" gap)
        true
        (gap >= 8_000 && gap <= 12_100))
    (gaps times);
  (* And they are not all identical (jitter is real). *)
  Alcotest.(check bool) "gaps vary" true
    (List.sort_uniq Int.compare (gaps times) |> List.length > 5)

let test_wlog_append_recover () =
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append log "a";
  Wlog.append log "b";
  let synced = ref false in
  Wlog.sync log (fun () -> synced := true);
  Engine.run engine;
  Alcotest.(check bool) "synced" true !synced;
  Alcotest.(check (list string)) "recover order" [ "a"; "b" ] (entries log)

let test_wlog_crash_loses_unsynced () =
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append_sync log "durable" ignore;
  Engine.run engine;
  Wlog.append log "volatile";
  Wlog.crash log;
  Alcotest.(check (list string)) "only durable survives" [ "durable" ] (entries log)

let test_wlog_crash_during_flush () =
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  let acked = ref false in
  Wlog.append_sync log "inflight" (fun () -> acked := true);
  (* Crash at 5 ms: the 10 ms flush never completes. *)
  ignore (Engine.schedule engine ~delay:(Time.of_ms 5.) (fun () -> Wlog.crash log));
  Engine.run engine;
  Alcotest.(check bool) "ack never fired" false !acked;
  Alcotest.(check (list string)) "entry lost" [] (entries log)

let test_wlog_delayed_mode_can_lose_acked () =
  let engine, disk = make ~config:delayed_nojitter () in
  let log = Wlog.create ~engine ~disk () in
  let acked = ref false in
  Wlog.append_sync log "risky" (fun () -> acked := true);
  (* Crash after the ack but before the background flush (100 ms). *)
  ignore (Engine.schedule engine ~delay:(Time.of_ms 10.) (fun () -> Wlog.crash log));
  Engine.run ~until:(Time.of_ms 20.) engine;
  Alcotest.(check bool) "acked fast" true !acked;
  Alcotest.(check (list string)) "acked write lost on crash" [] (entries log)

let test_wlog_delayed_mode_survives_after_flush () =
  let engine, disk = make ~config:delayed_nojitter () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append_sync log "eventually-safe" ignore;
  (* Let the background flush run (100 ms interval + 10 ms flush). *)
  ignore (Engine.schedule engine ~delay:(Time.of_ms 300.) (fun () -> Wlog.crash log));
  Engine.run ~until:(Time.of_ms 400.) engine;
  Alcotest.(check (list string))
    "entry survives after background flush" [ "eventually-safe" ]
    (entries log)

(* --- record framing and fault verdicts ---------------------------- *)

let faulty ?(torn = 0.) ?(corrupt = 0.) ?(read_error = 0.) ?(read_retries = 4) () =
  {
    forced_nojitter with
    Disk.faults =
      {
        Disk.no_faults with
        torn_tail_on_crash = torn;
        corrupt_on_crash = corrupt;
        read_error;
        read_retries;
      };
  }

let test_wlog_torn_tail_verdict () =
  let engine, disk = make ~config:(faulty ~torn:1.0 ()) () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append_sync log "a" ignore;
  Engine.run engine;
  Wlog.append log "b";
  (* "b" is in flight; with certain torn-tail injection it survives the
     crash as a present-but-unverifiable record. *)
  Wlog.crash log;
  let rv = Wlog.recover log in
  Alcotest.check verdict_t "torn tail at 1" (Wlog.Torn_tail 1) rv.Wlog.rv_verdict;
  Alcotest.(check (list string)) "trusted prefix" [ "a" ] rv.Wlog.rv_trusted;
  Alcotest.(check (list string)) "readable = trusted" [ "a" ] rv.Wlog.rv_readable;
  (* Truncating the damage restores a clean log. *)
  Wlog.truncate_damaged log ~from:1;
  Alcotest.check verdict_t "clean after truncate" Wlog.Clean (verdict log);
  Alcotest.(check (list string)) "prefix intact" [ "a" ] (entries log)

let test_wlog_corrupt_interior () =
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append log "a";
  Wlog.append log "b";
  Wlog.append_sync log "c" ignore;
  Engine.run engine;
  Alcotest.(check bool) "injection in range" true (Wlog.corrupt log ~nth:1);
  let rv = Wlog.recover log in
  Alcotest.check verdict_t "interior damage at 1" (Wlog.Corrupt_interior 1)
    rv.Wlog.rv_verdict;
  Alcotest.(check (list string)) "trusted stops at damage" [ "a" ] rv.Wlog.rv_trusted;
  Alcotest.(check (list string))
    "readable skips the bad record" [ "a"; "c" ] rv.Wlog.rv_readable;
  Alcotest.(check bool) "out of range" false (Wlog.corrupt log ~nth:7)

let test_wlog_crash_corruption () =
  let engine, disk = make ~config:(faulty ~corrupt:1.0 ()) () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append log "a";
  Wlog.append_sync log "b" ignore;
  Engine.run engine;
  Wlog.crash log;
  (* Every durable record was corrupted at crash time: damage starts at
     the head, so nothing is trustworthy. *)
  let rv = Wlog.recover log in
  Alcotest.check verdict_t "head corruption" (Wlog.Corrupt_interior 0)
    rv.Wlog.rv_verdict;
  Alcotest.(check (list string)) "nothing trusted" [] rv.Wlog.rv_trusted;
  Alcotest.(check (list string)) "nothing readable" [] rv.Wlog.rv_readable

let test_wlog_read_retry_exhaustion () =
  let engine, disk =
    make ~config:(faulty ~read_error:1.0 ~read_retries:3 ()) ()
  in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append log "a";
  Wlog.append_sync log "b" ignore;
  Engine.run engine;
  let rv = Wlog.recover log in
  (* Each record burns the full retry budget: 2 retries with 500 us then
     1000 us of backoff, then it is declared unreadable. *)
  Alcotest.(check int) "two retries per record" 4 rv.Wlog.rv_read_retries;
  Alcotest.(check int) "exponential backoff total" 3_000
    (Time.to_us rv.Wlog.rv_backoff);
  Alcotest.check verdict_t "unreadable log" (Wlog.Corrupt_interior 0)
    rv.Wlog.rv_verdict

let test_wlog_batch_is_one_frame () =
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append_batch log [ "a"; "b"; "c" ];
  let synced = ref false in
  Wlog.sync log (fun () -> synced := true);
  Engine.run engine;
  Alcotest.(check bool) "synced" true !synced;
  Alcotest.(check int) "one frame" 1 (Wlog.frame_count log);
  Alcotest.(check int) "three records" 3 (Wlog.length log);
  (* A later unsynced batch is lost by a crash as a unit: no partial
     batch can survive, because the whole batch is one frame. *)
  Wlog.append_batch log [ "d"; "e" ];
  Wlog.crash log;
  Alcotest.check verdict_t "clean" Wlog.Clean (verdict log);
  Alcotest.(check (list string))
    "durable batch survives whole, in-flight batch dies whole"
    [ "a"; "b"; "c" ] (entries log)

let test_wlog_torn_batch_frame_granular () =
  let engine, disk = make ~config:(faulty ~torn:1.0 ()) () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append_sync log "a" ignore;
  Engine.run engine;
  Wlog.append_batch log [ "b"; "c"; "d" ];
  (* The batch is in flight; certain torn-tail injection leaves it
     behind damaged — as a unit, because the checksum covers the whole
     frame.  The verdict position is a frame index. *)
  Wlog.crash log;
  let rv = Wlog.recover log in
  Alcotest.check verdict_t "torn at frame 1" (Wlog.Torn_tail 1) rv.Wlog.rv_verdict;
  Alcotest.(check (list string)) "trusted prefix" [ "a" ] rv.Wlog.rv_trusted;
  Alcotest.(check (list string)) "no partial batch readable" [ "a" ]
    rv.Wlog.rv_readable;
  Wlog.truncate_damaged log ~from:1;
  Alcotest.check verdict_t "clean after frame truncate" Wlog.Clean (verdict log);
  Alcotest.(check int) "one record left" 1 (Wlog.length log);
  Alcotest.(check int) "one frame left" 1 (Wlog.frame_count log)

let test_wlog_seq_survives_compaction () =
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  Wlog.append log "a";
  Wlog.append_sync log "b" ignore;
  Engine.run engine;
  Wlog.compact log ~keep:(fun e -> e = "b");
  Wlog.append_sync log "c" ignore;
  Engine.run engine;
  (* Sequence numbers never restart, so the chain across a compaction
     boundary still verifies as strictly increasing. *)
  Alcotest.check verdict_t "clean across compaction" Wlog.Clean (verdict log);
  Alcotest.(check (list string)) "compacted prefix + new tail" [ "b"; "c" ]
    (entries log)

let test_stable_cell_roundtrip () =
  let engine, disk = make () in
  let cell = Stable_cell.create ~disk ~init:0 in
  Stable_cell.set_sync cell 42 ignore;
  Engine.run engine;
  Stable_cell.crash cell;
  Alcotest.(check int) "synced value survives" 42 (Stable_cell.get cell)

let test_stable_cell_crash_reverts () =
  let engine, disk = make () in
  let cell = Stable_cell.create ~disk ~init:1 in
  Stable_cell.set_sync cell 2 ignore;
  Engine.run engine;
  Stable_cell.set cell 3; (* never synced *)
  Stable_cell.crash cell;
  Alcotest.(check int) "reverts to last durable" 2 (Stable_cell.get cell)

let test_shared_disk_group_commit () =
  (* A wlog and a cell sharing one disk must group-commit together. *)
  let engine, disk = make () in
  let log = Wlog.create ~engine ~disk () in
  let cell = Stable_cell.create ~disk ~init:"x" in
  let completed = ref 0 in
  Wlog.append_sync log 1 (fun () -> incr completed);
  Stable_cell.set_sync cell "y" (fun () -> incr completed);
  Engine.run engine;
  Alcotest.(check int) "both complete" 2 !completed;
  Alcotest.(check int) "single flush" 1 (Disk.flushes disk)

let () =
  Alcotest.run "storage"
    [
      ( "disk",
        [
          Alcotest.test_case "forced write latency" `Quick test_forced_write_latency;
          Alcotest.test_case "group commit" `Quick test_group_commit_batches;
          Alcotest.test_case "delayed ack" `Quick test_delayed_ack_fast;
          Alcotest.test_case "flush jitter bounds" `Quick
            test_flush_jitter_within_bounds;
        ] );
      ( "wlog",
        [
          Alcotest.test_case "append and recover" `Quick test_wlog_append_recover;
          Alcotest.test_case "crash loses unsynced" `Quick test_wlog_crash_loses_unsynced;
          Alcotest.test_case "crash during flush" `Quick test_wlog_crash_during_flush;
          Alcotest.test_case "delayed mode loses acked" `Quick
            test_wlog_delayed_mode_can_lose_acked;
          Alcotest.test_case "delayed mode survives after flush" `Quick
            test_wlog_delayed_mode_survives_after_flush;
          Alcotest.test_case "torn tail verdict" `Quick test_wlog_torn_tail_verdict;
          Alcotest.test_case "corrupt interior" `Quick test_wlog_corrupt_interior;
          Alcotest.test_case "crash corruption" `Quick test_wlog_crash_corruption;
          Alcotest.test_case "read retry exhaustion" `Quick
            test_wlog_read_retry_exhaustion;
          Alcotest.test_case "batch is one frame" `Quick
            test_wlog_batch_is_one_frame;
          Alcotest.test_case "torn batch is frame-granular" `Quick
            test_wlog_torn_batch_frame_granular;
          Alcotest.test_case "seq survives compaction" `Quick
            test_wlog_seq_survives_compaction;
        ] );
      ( "stable-cell",
        [
          Alcotest.test_case "roundtrip" `Quick test_stable_cell_roundtrip;
          Alcotest.test_case "crash reverts" `Quick test_stable_cell_crash_reverts;
          Alcotest.test_case "shared disk group commit" `Quick
            test_shared_disk_group_commit;
        ] );
    ]
