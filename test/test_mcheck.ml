(* The model checker checked: scripts round-trip, the abstract EVS model
   honours the safe-delivery contract, exploration of the correct engine
   is clean and exhaustive, the seeded quorum mutation is found with a
   minimized, deterministically replayable counterexample, and the
   reductions (DPOR, sleep sets, cache) actually prune. *)

open Repro_net
open Repro_gcs
open Repro_core
module Check = Repro_check
open Repro_mcheck

(* --- scripts ---------------------------------------------------------- *)

let test_script_roundtrip () =
  let script =
    [
      Script.T_deliver 0;
      Script.T_submit 2;
      Script.T_crash 1;
      Script.T_recover 1;
      Script.T_partition [ [ 0 ]; [ 1; 2 ] ];
      Script.T_merge;
    ]
  in
  let text = Script.to_string script in
  Alcotest.(check bool) "round-trips" true
    (List.for_all2 Script.equal script (Script.of_string text));
  Alcotest.(check bool) "comments and blanks ignored" true
    (List.for_all2 Script.equal script
       (Script.of_string ("# header\n\n" ^ text ^ "\n# trailer\n")))

(* --- the abstract EVS model ------------------------------------------- *)

let test_model_safe_delivery () =
  (* A message sent in a configuration is delivered by every member that
     saw it in_regular, or demoted to the transitional configuration —
     and a member that saw nothing still gets the view events. *)
  let m = Model.create ~nodes:[ 0; 1; 2 ] ~pp_payload:string_of_int () in
  Model.reconfigure m ~components:[ Node_id.set_of_list [ 0; 1; 2 ] ];
  (* Everyone consumes the initial regular configuration. *)
  List.iter
    (fun n ->
      match Model.deliver m n with
      | Some (Endpoint.Reg_conf _) -> ()
      | _ -> Alcotest.fail "expected initial Reg_conf")
    [ 0; 1; 2 ];
  Model.send m ~from:0 7;
  (* Node 0 delivers its own message in_regular; 1 and 2 have not. *)
  (match Model.deliver m 0 with
  | Some (Endpoint.Deliver { payload = 7; in_regular = true; _ }) -> ()
  | _ -> Alcotest.fail "node 0 delivers 7 in_regular");
  (* Partition: because one member delivered it in_regular, the others
     must still receive it (the EVS safe rule) before the transitional
     configuration. *)
  Model.reconfigure m
    ~components:[ Node_id.set_of_list [ 0 ]; Node_id.set_of_list [ 1; 2 ] ];
  (match Model.deliver m 1 with
  | Some (Endpoint.Deliver { payload = 7; in_regular = true; _ }) -> ()
  | _ -> Alcotest.fail "node 1 still delivers 7 (safe rule)");
  (match Model.deliver m 1 with
  | Some (Endpoint.Trans_conf _) -> ()
  | _ -> Alcotest.fail "then the transitional configuration");
  (match Model.deliver m 1 with
  | Some (Endpoint.Reg_conf _) -> ()
  | _ -> Alcotest.fail "then the next regular configuration");
  (* A send into the closed configuration after the sender crashed is
     lost, not delivered. *)
  Model.crash m 2;
  Model.send m ~from:2 9;
  Alcotest.(check int) "ghost send lost" 1 (Model.lost_sends m)

(* --- the system harness ----------------------------------------------- *)

let test_system_stabilizes_clean () =
  let sys = System.create ~nodes:3 () in
  Alcotest.(check (list string)) "boot violates nothing" []
    (List.map
       (fun v -> Format.asprintf "%a" Check.Snapshot.pp_violation v)
       (System.stabilize sys));
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d in RegPrim" n)
        true
        (System.node_state sys n = Some Types.Reg_prim))
    [ 0; 1; 2 ];
  (* Quiescent: nothing to deliver, so only submissions and faults. *)
  Alcotest.(check bool) "no pending deliveries" true
    (not (List.exists Script.is_deliver (System.enabled sys)))

let test_system_fingerprint_deterministic () =
  let boot () =
    let sys = System.create ~nodes:3 () in
    ignore (System.stabilize sys);
    ignore (System.apply sys (Script.T_partition [ [ 0 ]; [ 1; 2 ] ]));
    ignore (System.apply sys (Script.T_deliver 1));
    sys
  in
  Alcotest.(check string)
    "same prefix, same fingerprint"
    (System.fingerprint (boot ()))
    (System.fingerprint (boot ()));
  let other = boot () in
  ignore (System.apply other (Script.T_deliver 2));
  Alcotest.(check bool) "progress changes the fingerprint" true
    (System.fingerprint (boot ()) <> System.fingerprint other)

let test_system_inapplicable () =
  let sys = System.create ~nodes:3 () in
  ignore (System.stabilize sys);
  Alcotest.(check bool) "recover of a live node refused" true
    (not (System.apply sys (Script.T_recover 0)).System.applied);
  Alcotest.(check bool) "merge of a whole network refused" true
    (not (System.apply sys Script.T_merge).System.applied);
  Alcotest.(check bool) "identity partition refused" true
    (not (System.apply sys (Script.T_partition [ [ 0; 1; 2 ] ])).System.applied)

(* --- exploration ------------------------------------------------------- *)

let test_explore_clean_small () =
  let o = Explore.run ~nodes:3 ~depth:6 ~faults:1 ~submits:1 () in
  Alcotest.(check bool) "no violations" true (o.Explore.found = None);
  Alcotest.(check bool) "exhaustive" true o.Explore.complete;
  Alcotest.(check bool) "explored something" true
    (o.Explore.stats.Explore.st_states > 10)

let test_explore_reductions_prune () =
  let o = Explore.run ~nodes:3 ~depth:8 ~faults:2 ~submits:0 () in
  Alcotest.(check bool) "exhaustive" true o.Explore.complete;
  let st = o.Explore.stats in
  Alcotest.(check bool) "DPOR skipped candidate branches" true
    (Explore.reduction_factor st > 1.0);
  Alcotest.(check bool) "sleep sets fired" true (st.Explore.st_sleep_skips > 0);
  Alcotest.(check bool) "cache fired" true (st.Explore.st_cache_hits > 0)

let test_explore_finds_seeded_mutation () =
  let o =
    Explore.run ~policy:Quorum.Mutated_weak_majority ~nodes:3 ~depth:12
      ~faults:2 ~submits:0 ()
  in
  match o.Explore.found with
  | None -> Alcotest.fail "seeded quorum mutation not found"
  | Some cx ->
    Alcotest.(check bool) "counterexample is minimized" true
      (List.length cx.Explore.cx_script <= cx.Explore.cx_raw_len);
    Alcotest.(check bool) "violation is a spec-refinement breach" true
      (List.exists
         (fun v -> v.Check.Snapshot.v_invariant = "spec-refinement")
         cx.Explore.cx_violations);
    (* The counterexample replays deterministically... *)
    (match
       Explore.replay_violations ~policy:Quorum.Mutated_weak_majority ~nodes:3
         cx.Explore.cx_script
     with
    | Some (_, vs) ->
      Alcotest.(check bool) "replay reproduces the violation" true
        (List.exists
           (fun v -> v.Check.Snapshot.v_invariant = "spec-refinement")
           vs)
    | None -> Alcotest.fail "replay did not reproduce");
    (* ...and the same script is clean on the correct engine: the bug is
       in the mutation, not the checker. *)
    Alcotest.(check bool) "correct engine passes the same script" true
      (Explore.replay_violations ~policy:Quorum.Dynamic_linear ~nodes:3
         cx.Explore.cx_script
      = None)

let test_explore_minimize_drops_noise () =
  (* Pad a failing script with irrelevant transitions; minimization must
     strip them and keep the failure. *)
  let o =
    Explore.run ~policy:Quorum.Mutated_weak_majority ~nodes:3 ~depth:12
      ~faults:2 ~submits:0 ()
  in
  match o.Explore.found with
  | None -> Alcotest.fail "no counterexample to pad"
  | Some cx ->
    let padded = (Script.T_submit 0 :: cx.Explore.cx_script) @ [ Script.T_merge ] in
    let minimized =
      Explore.minimize ~policy:Quorum.Mutated_weak_majority ~nodes:3 padded
    in
    Alcotest.(check bool) "padding removed" true
      (List.length minimized <= List.length cx.Explore.cx_script);
    Alcotest.(check bool) "still fails" true
      (Explore.replay_violations ~policy:Quorum.Mutated_weak_majority ~nodes:3
         minimized
      <> None)

let () =
  Alcotest.run "mcheck"
    [
      ( "script",
        [ Alcotest.test_case "text round-trip" `Quick test_script_roundtrip ] );
      ( "model",
        [
          Alcotest.test_case "safe delivery across a view change" `Quick
            test_model_safe_delivery;
        ] );
      ( "system",
        [
          Alcotest.test_case "clean boot to RegPrim" `Quick
            test_system_stabilizes_clean;
          Alcotest.test_case "fingerprints are deterministic" `Quick
            test_system_fingerprint_deterministic;
          Alcotest.test_case "inapplicable transitions refused" `Quick
            test_system_inapplicable;
        ] );
      ( "explore",
        [
          Alcotest.test_case "small clean space is exhaustive" `Slow
            test_explore_clean_small;
          Alcotest.test_case "reductions prune" `Slow
            test_explore_reductions_prune;
          Alcotest.test_case "seeded mutation found and replayed" `Slow
            test_explore_finds_seeded_mutation;
          Alcotest.test_case "minimization drops noise" `Slow
            test_explore_minimize_drops_noise;
        ] );
    ]
