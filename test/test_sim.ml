(* Unit and property tests for the simulation kernel. *)

open Repro_sim

let test_time_conversions () =
  Alcotest.(check int) "ms to us" 1_500 (Time.to_us (Time.of_ms 1.5));
  Alcotest.(check int) "sec to us" 2_000_000 (Time.to_us (Time.of_sec 2.));
  Alcotest.(check (float 1e-9)) "roundtrip" 0.25 (Time.to_sec (Time.of_sec 0.25));
  Alcotest.(check int) "add" 30 (Time.to_us (Time.add (Time.of_us 10) ~span:(Time.of_us 20)));
  Alcotest.(check int) "diff" 5 (Time.to_us (Time.diff (Time.of_us 12) (Time.of_us 7)));
  Alcotest.check_raises "negative of_us" (Invalid_argument "Time.of_us: negative")
    (fun () -> ignore (Time.of_us (-1)));
  Alcotest.check_raises "negative diff" (Invalid_argument "Time.diff: negative result")
    (fun () -> ignore (Time.diff (Time.of_us 1) (Time.of_us 2)))

let test_time_scale () =
  Alcotest.(check int) "scale up" 150 (Time.to_us (Time.scale (Time.of_us 100) 1.5));
  Alcotest.(check int) "scale zero" 0 (Time.to_us (Time.scale (Time.of_us 100) 0.))

let test_rng_determinism () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independence () =
  let parent = Rng.of_int 1 in
  let child = Rng.split parent in
  (* Drawing from the child must not change the parent's future draws
     relative to a parent that split but never used the child. *)
  let parent' = Rng.of_int 1 in
  let _child' = Rng.split parent' in
  ignore (Rng.int child 100);
  Alcotest.(check int) "parent unaffected" (Rng.int parent' 1000) (Rng.int parent 1000)

let test_rng_bounds () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0. && v < 2.5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.of_int 9 in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort Int.compare s)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 9; 3; 7; 2; 8; 0; 4; 6 ];
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Heap.to_sorted_list h);
  Alcotest.(check int) "length preserved" 10 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 0) (Heap.peek h)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) l;
      Heap.to_sorted_list h = List.sort Int.compare l)

let test_keyed_heap_ordering () =
  let h = Heap.Keyed.create () in
  Alcotest.(check bool) "empty" true (Heap.Keyed.is_empty h);
  List.iteri
    (fun i k -> Heap.Keyed.push h ~key:k ~tie:i (k * 10))
    [ 5; 1; 9; 3; 7; 2; 8; 0; 4; 6 ];
  Alcotest.(check int) "length" 10 (Heap.Keyed.length h);
  Alcotest.(check int) "min key" 0 (Heap.Keyed.min_key h);
  Alcotest.(check int) "peek payload" 0 (Heap.Keyed.peek h);
  let drained = List.init 10 (fun _ -> Heap.Keyed.pop h) in
  Alcotest.(check (list int)) "sorted by key"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    drained;
  Alcotest.(check bool) "drained empty" true (Heap.Keyed.is_empty h);
  Alcotest.(check bool) "pop empty raises" true
    (match Heap.Keyed.pop h with
    | exception Heap.Keyed.Empty -> true
    | _ -> false)

let test_keyed_heap_tiebreak () =
  (* Equal primary keys drain in tiebreak order — the FIFO guarantee the
     event queue relies on for same-instant timers. *)
  let h = Heap.Keyed.create () in
  List.iter (fun t -> Heap.Keyed.push h ~key:7 ~tie:t t) [ 3; 1; 4; 0; 2 ];
  Heap.Keyed.push h ~key:2 ~tie:99 99;
  Alcotest.(check int) "lower key first" 99 (Heap.Keyed.pop h);
  Alcotest.(check (list int)) "ties in push order" [ 0; 1; 2; 3; 4 ]
    (List.init 5 (fun _ -> Heap.Keyed.pop h))

let prop_keyed_heap_sorts =
  QCheck.Test.make ~name:"keyed heap drains any list sorted" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = Heap.Keyed.create () in
      List.iteri (fun i k -> Heap.Keyed.push h ~key:k ~tie:i k) l;
      let rec drain acc =
        if Heap.Keyed.is_empty h then List.rev acc
        else drain (Heap.Keyed.pop h :: acc)
      in
      drain [] = List.sort Int.compare l)

let test_engine_event_order () =
  let engine = Engine.create () in
  let order = ref [] in
  let record tag () = order := tag :: !order in
  ignore (Engine.schedule engine ~delay:(Time.of_us 30) (record "c"));
  ignore (Engine.schedule engine ~delay:(Time.of_us 10) (record "a"));
  ignore (Engine.schedule engine ~delay:(Time.of_us 20) (record "b"));
  Engine.run engine;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int) "clock at last event" 30 (Time.to_us (Engine.now engine))

let test_engine_fifo_tiebreak () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule engine ~delay:(Time.of_us 10) (fun () ->
           order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at same time" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule engine ~delay:(Time.of_us 10) (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run engine;
  Alcotest.(check bool) "cancelled timer silent" false !fired;
  Alcotest.(check bool) "not active" false (Engine.is_active timer)

let test_engine_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~delay:(Time.of_ms 1.) (fun () -> incr fired));
  ignore (Engine.schedule engine ~delay:(Time.of_ms 5.) (fun () -> incr fired));
  Engine.run ~until:(Time.of_ms 2.) engine;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "clock at limit" 2_000 (Time.to_us (Engine.now engine));
  Engine.run engine;
  Alcotest.(check int) "second fires later" 2 !fired

let test_engine_nested_schedule () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule engine ~delay:(Time.of_us 10) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule engine ~delay:(Time.of_us 5) (fun () ->
                log := "inner" :: !log))));
  Engine.run engine;
  Alcotest.(check (list string)) "nested runs" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock" 15 (Time.to_us (Engine.now engine))

let test_engine_controlled_scheduler () =
  let engine = Engine.create () in
  let seen = ref [] in
  Engine.set_scheduler engine
    (Engine.Controlled
       (fun choices ->
         seen := List.map (fun c -> c.Engine.c_label) choices :: !seen;
         List.length choices - 1));
  let order = ref [] in
  let record tag () = order := tag :: !order in
  ignore (Engine.schedule ~label:"a" engine ~delay:(Time.of_us 10) (record "a"));
  ignore (Engine.schedule ~label:"b" engine ~delay:(Time.of_us 10) (record "b"));
  ignore (Engine.schedule ~label:"c" engine ~delay:(Time.of_us 10) (record "c"));
  ignore (Engine.schedule ~label:"d" engine ~delay:(Time.of_us 20) (record "d"));
  Engine.run engine;
  Alcotest.(check (list string))
    "callback picked last-first among the same-time batch" [ "c"; "b"; "a"; "d" ]
    (List.rev !order);
  Alcotest.(check (list (list string)))
    "callback saw shrinking label lists; singletons bypass it"
    [ [ "a"; "b"; "c" ]; [ "a"; "b" ] ]
    (List.rev !seen)

let test_engine_controlled_out_of_range () =
  let engine = Engine.create () in
  Engine.set_scheduler engine (Engine.Controlled (fun _ -> 99));
  let order = ref [] in
  let record tag () = order := tag :: !order in
  ignore (Engine.schedule engine ~delay:(Time.of_us 10) (record "a"));
  ignore (Engine.schedule engine ~delay:(Time.of_us 10) (record "b"));
  Engine.run engine;
  Alcotest.(check (list string))
    "out-of-range choice falls back to scheduling order" [ "a"; "b" ]
    (List.rev !order)

let test_engine_stop () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore
    (Engine.schedule engine ~delay:(Time.of_us 1) (fun () ->
         incr fired;
         Engine.stop engine));
  ignore (Engine.schedule engine ~delay:(Time.of_us 2) (fun () -> incr fired));
  Engine.run engine;
  Alcotest.(check int) "stopped after first" 1 !fired

let test_resource_serialises () =
  let engine = Engine.create () in
  let r = Resource.create engine in
  let finish = ref [] in
  Resource.submit r ~duration:(Time.of_us 100) (fun () ->
      finish := ("a", Time.to_us (Engine.now engine)) :: !finish);
  Resource.submit r ~duration:(Time.of_us 50) (fun () ->
      finish := ("b", Time.to_us (Engine.now engine)) :: !finish);
  Engine.run engine;
  Alcotest.(check (list (pair string int)))
    "serial completion times"
    [ ("a", 100); ("b", 150) ]
    (List.rev !finish);
  Alcotest.(check int) "busy time" 150 (Time.to_us (Resource.busy_time r))

let test_resource_reset () =
  let engine = Engine.create () in
  let r = Resource.create engine in
  let fired = ref false in
  Resource.submit r ~duration:(Time.of_us 100) (fun () -> fired := true);
  Resource.reset r;
  Engine.run engine;
  Alcotest.(check bool) "reset drops jobs" false !fired

let test_summary_stats () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.Summary.percentile s 50.);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.Summary.stddev s)

let test_timeline_rates () =
  let tl = Stats.Timeline.create ~bucket:(Time.of_sec 1.) in
  Stats.Timeline.record tl ~at:(Time.of_ms 100.);
  Stats.Timeline.record tl ~at:(Time.of_ms 200.);
  Stats.Timeline.record tl ~at:(Time.of_ms 1500.);
  (match Stats.Timeline.rates tl with
  | [ (t0, r0); (t1, r1) ] ->
    Alcotest.(check (float 1e-9)) "bucket 0 start" 0. t0;
    Alcotest.(check (float 1e-9)) "bucket 0 rate" 2. r0;
    Alcotest.(check (float 1e-9)) "bucket 1 start" 1. t1;
    Alcotest.(check (float 1e-9)) "bucket 1 rate" 1. r1
  | l -> Alcotest.failf "expected 2 buckets, got %d" (List.length l));
  ()

let test_trace_roundtrip () =
  let tr = Trace.create () in
  Trace.record tr ~at:Time.zero ~node:1 ~tag:"view" "v1";
  Trace.record tr ~at:(Time.of_us 5) ~node:2 ~tag:"deliver" "m1";
  Trace.record tr ~at:(Time.of_us 9) ~node:1 ~tag:"view" "v2";
  Alcotest.(check int) "count by tag" 2 (Trace.count tr ~tag:"view");
  Alcotest.(check int) "all entries" 3 (List.length (Trace.entries tr));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries tr))

let prop_exponential_mean =
  QCheck.Test.make ~name:"exponential draws average near the mean" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 2000 in
      let sum = ref 0. in
      for _ = 1 to n do
        sum := !sum +. Rng.exponential rng ~mean:5.0
      done;
      let avg = !sum /. float_of_int n in
      avg > 4.0 && avg < 6.0)

let test_trace_capacity_trims () =
  let tr = Trace.create ~capacity:10 () in
  for i = 1 to 100 do
    Trace.record tr ~at:(Time.of_us i) ~node:0 ~tag:"t" (string_of_int i)
  done;
  let entries = Trace.entries tr in
  Alcotest.(check bool) "bounded" true (List.length entries <= 20);
  (* The newest entries survive. *)
  let last = List.nth entries (List.length entries - 1) in
  Alcotest.(check string) "newest kept" "100" last.Trace.detail

let test_summary_percentile_interpolates () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 0.; 10. ];
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.5
    (Stats.Summary.percentile s 25.);
  Alcotest.(check (float 1e-9)) "p100 is max" 10.
    (Stats.Summary.percentile s 100.);
  Alcotest.(check bool) "empty summary yields nan" true
    (Float.is_nan (Stats.Summary.percentile (Stats.Summary.create ()) 50.))

let prop_engine_executes_all =
  QCheck.Test.make ~name:"engine executes every scheduled event" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun delays ->
      let engine = Engine.create () in
      let count = ref 0 in
      List.iter
        (fun d ->
          ignore (Engine.schedule engine ~delay:(Time.of_us d) (fun () -> incr count)))
        delays;
      Engine.run engine;
      !count = List.length delays)

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "scale" `Quick test_time_scale;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          Alcotest.test_case "keyed ordering" `Quick test_keyed_heap_ordering;
          Alcotest.test_case "keyed tie-break" `Quick test_keyed_heap_tiebreak;
          QCheck_alcotest.to_alcotest prop_keyed_heap_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_engine_event_order;
          Alcotest.test_case "fifo tie-break" `Quick test_engine_fifo_tiebreak;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "controlled scheduler" `Quick
            test_engine_controlled_scheduler;
          Alcotest.test_case "controlled out-of-range" `Quick
            test_engine_controlled_out_of_range;
          QCheck_alcotest.to_alcotest prop_engine_executes_all;
        ] );
      ( "distributions",
        [ QCheck_alcotest.to_alcotest prop_exponential_mean ] );
      ( "resource",
        [
          Alcotest.test_case "serialises jobs" `Quick test_resource_serialises;
          Alcotest.test_case "reset drops jobs" `Quick test_resource_reset;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary_stats;
          Alcotest.test_case "timeline rates" `Quick test_timeline_rates;
          Alcotest.test_case "trace" `Quick test_trace_roundtrip;
          Alcotest.test_case "trace capacity" `Quick test_trace_capacity_trims;
          Alcotest.test_case "percentile interpolation" `Quick
            test_summary_percentile_interpolates;
        ] );
    ]
