(* Tests of the database substrate: operations, snapshots, digests,
   procedures, the action executor, and determinism/commutativity
   properties. *)

open Repro_db

let value = Alcotest.testable Value.pp Value.equal

(* One registry shared by the executor tests below; tests that need
   isolation (test_registry_isolation) build their own. *)
let procs = Procedure.builtins ()

let test_set_get () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("a", Value.Int 1); Op.Set ("b", Value.Text "x") ];
  Alcotest.(check (option value)) "a" (Some (Value.Int 1)) (Database.get db "a");
  Alcotest.(check (option value)) "b" (Some (Value.Text "x")) (Database.get db "b");
  Alcotest.(check (option value)) "missing" None (Database.get db "c")

let test_add_remove () =
  let db = Database.create () in
  Database.apply db [ Op.Add ("n", 5); Op.Add ("n", -2) ];
  Alcotest.(check (option value)) "add accumulates" (Some (Value.Int 3))
    (Database.get db "n");
  Database.apply db [ Op.Remove "n" ];
  Alcotest.(check (option value)) "removed" None (Database.get db "n");
  Database.apply db [ Op.Add ("n", 7) ];
  Alcotest.(check (option value)) "add from missing" (Some (Value.Int 7))
    (Database.get db "n")

let test_set_if_newer () =
  let db = Database.create () in
  Database.apply db [ Op.Set_if_newer ("loc", Value.Text "rome", 10) ];
  Database.apply db [ Op.Set_if_newer ("loc", Value.Text "oslo", 5) ];
  Alcotest.(check (option value)) "older ts loses" (Some (Value.Text "rome"))
    (Database.get db "loc");
  Database.apply db [ Op.Set_if_newer ("loc", Value.Text "lima", 20) ];
  Alcotest.(check (option value)) "newer ts wins" (Some (Value.Text "lima"))
    (Database.get db "loc")

let test_snapshot_restore () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("k", Value.Int 1) ];
  let snap = Database.snapshot db in
  Database.apply db [ Op.Set ("k", Value.Int 2) ];
  let db2 = Database.of_snapshot snap in
  Alcotest.(check (option value)) "snapshot frozen" (Some (Value.Int 1))
    (Database.get db2 "k");
  Database.restore db snap;
  Alcotest.(check (option value)) "restore rewinds" (Some (Value.Int 1))
    (Database.get db "k")

let test_digest_equality () =
  let a = Database.create () and b = Database.create () in
  Database.apply a [ Op.Set ("x", Value.Int 1); Op.Set ("y", Value.Int 2) ];
  Database.apply b [ Op.Set ("y", Value.Int 2) ];
  Database.apply b [ Op.Set ("x", Value.Int 1) ];
  Alcotest.(check int) "same state same digest" (Database.digest a)
    (Database.digest b);
  Database.apply b [ Op.Set ("x", Value.Int 9) ];
  Alcotest.(check bool) "diverged digest differs" true
    (Database.digest a <> Database.digest b)

let test_procedure_transfer () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("alice", Value.Int 100) ];
  let action =
    Action.make ~server:0 ~index:1
      (Action.Active
         {
           proc = "transfer";
           args = [ Value.Text "alice"; Value.Text "bob"; Value.Int 30 ];
         })
  in
  (match Executor.execute ~procs db action with
  | Action.Procedure_output (Value.Int 1) -> ()
  | r -> Alcotest.failf "unexpected %a" Action.pp_response r);
  Alcotest.(check (option value)) "debited" (Some (Value.Int 70))
    (Database.get db "alice");
  Alcotest.(check (option value)) "credited" (Some (Value.Int 30))
    (Database.get db "bob");
  (* Insufficient funds refuse deterministically. *)
  let too_much =
    Action.make ~server:0 ~index:2
      (Action.Active
         {
           proc = "transfer";
           args = [ Value.Text "alice"; Value.Text "bob"; Value.Int 1000 ];
         })
  in
  (match Executor.execute ~procs db too_much with
  | Action.Procedure_output (Value.Int 0) -> ()
  | r -> Alcotest.failf "unexpected %a" Action.pp_response r);
  Alcotest.(check (option value)) "unchanged" (Some (Value.Int 70))
    (Database.get db "alice")

let test_interactive_abort () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("seat", Value.Text "free") ];
  let book expected =
    Action.make ~server:0 ~index:1
      (Action.Interactive
         {
           expected = [ ("seat", Some (Value.Text expected)) ];
           updates = [ Op.Set ("seat", Value.Text "taken") ];
         })
  in
  (match Executor.execute ~procs db (book "free") with
  | Action.Committed _ -> ()
  | r -> Alcotest.failf "expected commit, got %a" Action.pp_response r);
  (* A second identical interactive action must abort: the read is stale. *)
  (match Executor.execute ~procs db (book "free") with
  | Action.Aborted -> ()
  | r -> Alcotest.failf "expected abort, got %a" Action.pp_response r);
  Alcotest.(check (option value)) "still taken" (Some (Value.Text "taken"))
    (Database.get db "seat")

let test_executor_query () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("q", Value.Int 9) ];
  let a = Action.make ~server:1 ~index:1 (Action.Query [ "q"; "nope" ]) in
  match Executor.execute ~procs db a with
  | Action.Committed [ ("q", Some (Value.Int 9)); ("nope", None) ] -> ()
  | r -> Alcotest.failf "unexpected %a" Action.pp_response r

let test_read_write_action () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("c", Value.Int 1) ];
  let a =
    Action.make ~server:1 ~index:1
      (Action.Read_write ([ "c" ], [ Op.Add ("c", 1) ]))
  in
  (match Executor.execute ~procs db a with
  | Action.Committed [ ("c", Some (Value.Int 1)) ] -> ()
  | r -> Alcotest.failf "unexpected %a" Action.pp_response r);
  Alcotest.(check (option value)) "updated after read" (Some (Value.Int 2))
    (Database.get db "c")

let prop_commutative_ops_converge =
  QCheck.Test.make ~name:"commutative ops converge under permutation" ~count:200
    QCheck.(list (pair (int_bound 3) (int_range (-10) 10)))
    (fun pairs ->
      let ops =
        List.map (fun (k, n) -> Op.Add (Printf.sprintf "k%d" k, n)) pairs
      in
      let a = Database.create () and b = Database.create () in
      Database.apply a ops;
      Database.apply b (List.rev ops);
      Database.digest a = Database.digest b)

let test_op_commutes () =
  Alcotest.(check bool) "distinct keys always commute" true
    (Op.commutes (Op.Set ("a", Value.Int 1)) (Op.Remove "b"));
  Alcotest.(check bool) "same-key sets do not" false
    (Op.commutes (Op.Set ("a", Value.Int 1)) (Op.Set ("a", Value.Int 2)));
  Alcotest.(check bool) "same-key adds do" true
    (Op.commutes (Op.Add ("a", 1)) (Op.Add ("a", 2)));
  Alcotest.(check bool) "add vs set-if-newer, same key" true
    (Op.commutes (Op.Add ("a", 1)) (Op.Set_if_newer ("a", Value.Int 2, 3)))

(* The pairwise law Op.commutes promises — and the §6 validation-
   skipping verdict of the key-space analysis rests on: whenever
   [Op.commutes a b], applying [a; b] and [b; a] from the same start
   state (itself randomly built, so counter and register key classes
   both occur) converges to the same database. *)
let prop_op_pairs_commute =
  let gen_op =
    QCheck.Gen.(
      let key = map (Printf.sprintf "k%d") (int_bound 2) in
      oneof
        [
          map2 (fun k n -> Op.Add (k, n)) key (int_range (-9) 9);
          map3
            (fun k n ts -> Op.Set_if_newer (k, Value.Int n, ts))
            key (int_range 0 9) (int_range 1 6);
          map2 (fun k n -> Op.Set (k, Value.Int n)) key (int_range 0 9);
          map (fun k -> Op.Remove k) key;
        ])
  in
  let print (prefix, (a, b)) =
    Format.asprintf "%a / %a after prefix [%a]" Op.pp a Op.pp b
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Op.pp)
      prefix
  in
  QCheck.Test.make ~name:"Op.commutes pairs really commute" ~count:500
    (QCheck.make ~print
       QCheck.Gen.(pair (list_size (int_bound 6) gen_op) (pair gen_op gen_op)))
    (fun (prefix, (a, b)) ->
      QCheck.assume (Op.commutes a b);
      let run ops =
        let db = Database.create () in
        Database.apply db prefix;
        Database.apply db ops;
        Database.digest db
      in
      run [ a; b ] = run [ b; a ])

(* The executor's procedure-trace hook reports the actual key accesses
   (sorted, deduplicated) the runtime footprint validator consumes. *)
let test_executor_trace () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("alice", Value.Int 100) ];
  let action =
    Action.make ~server:0 ~index:1
      (Action.Active
         {
           proc = "transfer";
           args = [ Value.Text "alice"; Value.Text "bob"; Value.Int 30 ];
         })
  in
  let traces = ref [] in
  (match
     Executor.execute
       ~on_procedure:(fun tr -> traces := tr :: !traces)
       ~procs db action
   with
  | Action.Procedure_output (Value.Int 1) -> ()
  | r -> Alcotest.failf "unexpected %a" Action.pp_response r);
  match !traces with
  | [ tr ] ->
    Alcotest.(check string) "procedure name" "transfer" tr.Executor.t_proc;
    Alcotest.(check (list string)) "actual reads" [ "alice" ]
      tr.Executor.t_reads;
    Alcotest.(check (list string)) "actual writes" [ "alice"; "bob" ]
      tr.Executor.t_writes
  | l -> Alcotest.failf "expected one trace, got %d" (List.length l)

let prop_executor_deterministic =
  QCheck.Test.make ~name:"execution is deterministic" ~count:100
    QCheck.(list (pair (int_bound 5) (int_range (-5) 5)))
    (fun pairs ->
      let actions =
        List.mapi
          (fun i (k, n) ->
            Action.make ~server:0 ~index:(i + 1)
              (Action.Update [ Op.Set (Printf.sprintf "k%d" k, Value.Int n) ]))
          pairs
      in
      let run () =
        let db = Database.create () in
        List.iter (fun a -> ignore (Executor.execute ~procs db a)) actions;
        Database.digest db
      in
      run () = run ())

let test_procedure_cas () =
  let db = Database.create () in
  Database.apply db [ Op.Set ("cfg", Value.Text "v1") ];
  let cas expected desired =
    Action.make ~server:0 ~index:1
      (Action.Active
         { proc = "cas"; args = [ Value.Text "cfg"; expected; desired ] })
  in
  (match Executor.execute ~procs db (cas (Value.Text "v1") (Value.Text "v2")) with
  | Action.Procedure_output (Value.Int 1) -> ()
  | r -> Alcotest.failf "cas should succeed: %a" Action.pp_response r);
  (match Executor.execute ~procs db (cas (Value.Text "v1") (Value.Text "v3")) with
  | Action.Procedure_output (Value.Int 0) -> ()
  | r -> Alcotest.failf "stale cas should fail: %a" Action.pp_response r);
  Alcotest.(check (option value)) "value is v2" (Some (Value.Text "v2"))
    (Database.get db "cfg")

let test_registry_isolation () =
  (* Two engines in one process must not observe each other's stored
     procedures — the bug the ambient-state analysis caught in the old
     process-wide registry. *)
  let a = Procedure.builtins () and b = Procedure.builtins () in
  Procedure.register a "boost" (fun _db _args ->
      { Procedure.updates = []; output = Value.Int 42 });
  Alcotest.(check bool) "a sees its registration" true
    (Procedure.find a "boost" <> None);
  Alcotest.(check bool) "b does not" true (Procedure.find b "boost" = None);
  Alcotest.(check (list string))
    "known lists this registry only"
    [ "boost"; "cas"; "restock"; "transfer" ]
    (Procedure.known a);
  let db = Database.create () in
  let act =
    Action.make ~server:0 ~index:1 (Action.Active { proc = "boost"; args = [] })
  in
  (match Executor.execute ~procs:a db act with
  | Action.Procedure_output (Value.Int 42) -> ()
  | r -> Alcotest.failf "unexpected %a" Action.pp_response r);
  match Executor.execute ~procs:b db act with
  | Action.Aborted -> ()
  | r -> Alcotest.failf "expected abort, got %a" Action.pp_response r

let test_snapshot_size_grows () =
  let db = Database.create () in
  let s0 = Database.snapshot_size (Database.snapshot db) in
  Database.apply db [ Op.Set ("key", Value.Text (String.make 1000 'a')) ];
  let s1 = Database.snapshot_size (Database.snapshot db) in
  Alcotest.(check bool) "size reflects content" true (s1 > s0 + 1000)

let test_bindings_sorted () =
  let db = Database.create () in
  Database.apply db
    [ Op.Set ("c", Value.Int 3); Op.Set ("a", Value.Int 1); Op.Set ("b", Value.Int 2) ];
  Alcotest.(check (list string)) "key order" [ "a"; "b"; "c" ]
    (List.map fst (Database.bindings db))

let prop_value_compare_total_order =
  QCheck.Test.make ~name:"value comparison is antisymmetric" ~count:200
    QCheck.(pair (pair bool small_int) (pair bool small_int))
    (fun ((ba, na), (bb, nb)) ->
      let v b n = if b then Value.Int n else Value.Text (string_of_int n) in
      let a = v ba na and b = v bb nb in
      compare (Value.compare a b) 0 = -compare (Value.compare b a) 0)

let test_action_id_order () =
  let open Action.Id in
  Alcotest.(check bool) "server major" true
    (compare { server = 1; index = 9 } { server = 2; index = 1 } < 0);
  Alcotest.(check bool) "index minor" true
    (compare { server = 1; index = 1 } { server = 1; index = 2 } < 0);
  Alcotest.(check bool) "equal" true
    (equal { server = 3; index = 4 } { server = 3; index = 4 })

let () =
  Alcotest.run "db"
    [
      ( "ops",
        [
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "set-if-newer" `Quick test_set_if_newer;
          Alcotest.test_case "op commutes" `Quick test_op_commutes;
          QCheck_alcotest.to_alcotest prop_commutative_ops_converge;
          QCheck_alcotest.to_alcotest prop_op_pairs_commute;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "digest" `Quick test_digest_equality;
        ] );
      ( "executor",
        [
          Alcotest.test_case "transfer procedure" `Quick test_procedure_transfer;
          Alcotest.test_case "interactive abort" `Quick test_interactive_abort;
          Alcotest.test_case "query" `Quick test_executor_query;
          Alcotest.test_case "read-write" `Quick test_read_write_action;
          Alcotest.test_case "procedure trace" `Quick test_executor_trace;
          QCheck_alcotest.to_alcotest prop_executor_deterministic;
        ] );
      ( "actions",
        [ Alcotest.test_case "id ordering" `Quick test_action_id_order ] );
      ( "more",
        [
          Alcotest.test_case "cas procedure" `Quick test_procedure_cas;
          Alcotest.test_case "registry isolation" `Quick
            test_registry_isolation;
          Alcotest.test_case "snapshot size" `Quick test_snapshot_size_grows;
          Alcotest.test_case "bindings sorted" `Quick test_bindings_sorted;
          QCheck_alcotest.to_alcotest prop_value_compare_total_order;
        ] );
    ]
