(* Recovery-under-storage-fault scenarios: each of the write-ahead
   log's damage verdicts driven end to end through a live cluster — a
   torn tail truncates and recovers in place, interior corruption past
   the trusted prefix salvages, head corruption forces an amnesiac
   rejoin by state transfer — plus the ongoing-queue re-proposal
   regression, the delayed-disk lost-acknowledged-write window
   (Figure 5(b)), and a pinned-seed nemesis campaign. *)

module Sim = Repro_sim
open Repro_storage
open Repro_db
open Repro_core
open Repro_harness

let nojitter = { Disk.default_forced with Disk.sync_jitter = 0. }

let quiet_disk ?(faults = Disk.no_faults) () =
  { nojitter with Disk.sync_latency = Sim.Time.of_ms 1.; faults }

let value_t = Alcotest.testable Value.pp Value.equal

let total_chunks w =
  List.fold_left (fun acc r -> acc + Replica.transfer_chunks_sent r) 0
    (World.replicas w)

let assert_converged ?(msg = "converged") w =
  Alcotest.(check int) msg 0
    (List.length (Consistency.check_all ~converged:true (World.replicas w)))

let submit_settled w ~n =
  for i = 1 to n do
    World.submit_update w
      ~node:(i mod List.length (World.nodes w))
      ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:500.

(* Torn tail: the record in flight at crash time survives damaged.
   Recovery truncates it and proceeds in place — no state transfer. *)
let test_torn_tail_recovers_in_place () =
  let disk_config =
    quiet_disk ~faults:{ Disk.no_faults with torn_tail_on_crash = 1.0 } ()
  in
  let w = World.make ~disk_config ~n:3 () in
  let monitor = World.attach_monitor w in
  World.run w ~ms:1000.;
  submit_settled w ~n:6;
  let chunks_before = total_chunks w in
  let victim = World.replica w 2 in
  (* Appended but unsynced when the crash hits: with certain torn-tail
     injection the record survives, failing its checksum. *)
  Replica.submit victim (Action.Update [ Op.Set ("torn", Value.Int 9) ])
    ~on_response:(fun _ -> ());
  Replica.crash victim;
  Replica.recover victim;
  (match Replica.last_recovery victim with
  | Some (Persist.V_torn_tail n) ->
    Alcotest.(check bool) "at least the torn record dropped" true (n >= 1)
  | v ->
    Alcotest.failf "expected torn-tail verdict, got %s"
      (match v with
      | None -> "no recovery"
      | Some v -> Format.asprintf "%a" Persist.pp_verdict v));
  World.run w ~ms:3000.;
  Alcotest.(check int) "no state transfer" chunks_before (total_chunks w);
  assert_converged w;
  Repro_check.Monitor.check_now monitor;
  Repro_check.Monitor.assert_ok monitor

(* Interior corruption beyond the trusted prefix (and not undermining a
   checkpoint): the prefix is salvaged, the lost suffix re-learned from
   peers — still no state transfer. *)
let test_interior_corruption_salvages () =
  let w =
    World.make ~disk_config:(quiet_disk ()) ~checkpoint_every:None ~n:3 ()
  in
  let monitor = World.attach_monitor w in
  World.run w ~ms:1000.;
  submit_settled w ~n:9;
  let chunks_before = total_chunks w in
  let victim = World.replica w 1 in
  Replica.crash victim;
  let len = Replica.log_entries victim in
  Alcotest.(check bool) "history in the log" true (len > 2);
  Alcotest.(check bool) "injection in range" true
    (Replica.corrupt_log victim ~nth:(len - 1));
  Replica.recover victim;
  (match Replica.last_recovery victim with
  | Some (Persist.V_salvaged n) ->
    Alcotest.(check bool) "dropped records counted" true (n >= 1)
  | v ->
    Alcotest.failf "expected salvaged verdict, got %s"
      (match v with
      | None -> "no recovery"
      | Some v -> Format.asprintf "%a" Persist.pp_verdict v));
  World.run w ~ms:3000.;
  Alcotest.(check int) "no state transfer" chunks_before (total_chunks w);
  assert_converged w;
  Repro_check.Monitor.check_now monitor;
  Repro_check.Monitor.assert_ok monitor

(* Corruption at the log's head: nothing is trustworthy.  The victim
   must discard its state and re-enter through the §5.1 join/state-
   transfer path under a fresh incarnation, then converge. *)
let test_head_corruption_goes_amnesiac () =
  let w = World.make ~disk_config:(quiet_disk ()) ~n:5 () in
  let monitor = World.attach_monitor w in
  World.run w ~ms:1000.;
  submit_settled w ~n:10;
  let chunks_before = total_chunks w in
  let victim = World.replica w 4 in
  Replica.crash victim;
  Alcotest.(check bool) "injection in range" true
    (Replica.corrupt_log victim ~nth:0);
  Replica.recover victim;
  Alcotest.(check bool) "amnesia verdict" true
    (Replica.last_recovery victim = Some Persist.V_amnesia);
  Alcotest.(check int) "incarnation: crash + amnesiac rebirth" 2
    (Replica.incarnation victim);
  World.run w ~ms:8000.;
  Alcotest.(check bool) "victim re-entered the group" true
    (Replica.is_ready victim);
  Alcotest.(check bool) "state transfer served the rejoin" true
    (total_chunks w > chunks_before);
  Alcotest.(check (option (option value_t)))
    "transferred state holds the history" (Some (Some (Value.Int 10)))
    (List.assoc_opt "k10" (Replica.weak_query victim [ "k10" ]));
  assert_converged w;
  Repro_check.Monitor.check_now monitor;
  Repro_check.Monitor.assert_ok monitor

(* A crashed replica's durable-but-undelivered action must survive as
   ongoing and be re-proposed after restart (CodeSegment A.13). *)
let test_ongoing_reproposed_after_restart () =
  let w = World.make ~disk_config:(quiet_disk ()) ~n:3 () in
  let monitor = World.attach_monitor w in
  World.run w ~ms:1000.;
  submit_settled w ~n:3;
  let victim = World.replica w 2 in
  Replica.submit victim
    (Action.Update [ Op.Set ("repropose", Value.Int 42) ])
    ~on_response:(fun _ -> ());
  (* The ongoing record's forced write completes at +1.01 ms; crash
     right after it, before the multicast copy comes back. *)
  ignore
    (Sim.Engine.schedule (World.sim w)
       ~delay:(Sim.Time.of_us 1_050)
       (fun () -> Replica.crash victim));
  World.run w ~ms:10.;
  Replica.recover victim;
  Alcotest.(check bool) "action restored to the ongoing queue" true
    (List.exists
       (fun (a : Action.t) ->
         match a.kind with
         | Action.Update (Op.Set ("repropose", _) :: _) -> true
         | _ -> false)
       (Engine.ongoing_actions (Replica.engine victim)));
  World.heal_and_settle w;
  List.iter
    (fun r ->
      Alcotest.(check (option (option value_t)))
        (Printf.sprintf "re-proposed action green at n%d" (Replica.node r))
        (Some (Some (Value.Int 42)))
        (List.assoc_opt "repropose" (Replica.weak_query r [ "repropose" ])))
    (World.replicas w);
  assert_converged w;
  Repro_check.Monitor.check_now monitor;
  Repro_check.Monitor.assert_ok monitor

(* Figure 5(b)'s trade-off, the loss side: in Delayed mode the client
   is acknowledged before durability.  Crash between the ack and the
   background flush; the survivor copies re-teach the victim and the
   cluster converges with the action applied exactly once. *)
let test_delayed_mode_lost_ack_window () =
  let disk_config =
    (* Stretch the background-flush period so the ack-to-flush window is
       wide enough to crash inside deterministically. *)
    {
      Disk.default_delayed with
      Disk.sync_jitter = 0.;
      delayed_flush_interval = Sim.Time.of_ms 400.;
      faults = Disk.no_faults;
    }
  in
  let w = World.make ~disk_config ~n:3 () in
  let monitor = World.attach_monitor w in
  World.run w ~ms:1000.;
  let victim = World.replica w 0 in
  let acked = ref false in
  Replica.submit victim
    (Action.Update [ Op.Set ("risky", Value.Int 7) ])
    ~on_response:(fun _ -> acked := true);
  (* Green (and the client answer) lands within a few ms; the background
     flush is ~100 ms away. *)
  World.run w ~ms:30.;
  Alcotest.(check bool) "client acknowledged before the crash" true !acked;
  let peer_greens = Engine.green_count (Replica.engine (World.replica w 1)) in
  Replica.crash victim;
  Replica.recover victim;
  Alcotest.(check bool) "log itself recovers clean" true
    (Replica.last_recovery victim = Some Persist.V_clean);
  Alcotest.(check bool) "acknowledged green knowledge was lost" true
    (Engine.green_count (Replica.engine victim) < peer_greens);
  World.heal_and_settle w;
  Alcotest.(check (option (option value_t)))
    "action re-learned from the survivors" (Some (Some (Value.Int 7)))
    (List.assoc_opt "risky" (Replica.weak_query victim [ "risky" ]));
  assert_converged w;
  Repro_check.Monitor.check_now monitor;
  Repro_check.Monitor.assert_ok monitor

(* The pinned campaign the dune @nemesis-smoke alias also runs: seed 42
   exercises every recovery verdict in one schedule — including a
   failover onto an amnesiac §5.1 rejoiner — and must converge with
   both checkers silent and the client oracle clean. *)
let test_nemesis_campaign_seed42 () =
  let config =
    { Nemesis.default_config with seed = 42; active_ms = 3_000. }
  in
  let o = Nemesis.run ~config () in
  Alcotest.(check (list string)) "no checker violations" [] o.Nemesis.o_violations;
  Alcotest.(check bool) "converged" true (Nemesis.converged o);
  Alcotest.(check int) "every replica ready" config.Nemesis.nodes o.Nemesis.o_ready;
  Alcotest.(check bool) "monitor observed the run" true (o.Nemesis.o_sweeps > 0);
  Alcotest.(check bool) "workload ran" true (o.Nemesis.o_submitted > 0);
  Alcotest.(check bool) "footprint guard exercised" true
    (o.Nemesis.o_procs > 0);
  Alcotest.(check bool) "clean recovery exercised" true (o.Nemesis.o_clean >= 1);
  Alcotest.(check bool) "torn tail exercised" true (o.Nemesis.o_torn >= 1);
  Alcotest.(check bool) "salvage exercised" true (o.Nemesis.o_salvaged >= 1);
  Alcotest.(check bool) "amnesia exercised" true (o.Nemesis.o_amnesia >= 1);
  Alcotest.(check bool) "client failover exercised" true
    (o.Nemesis.o_failovers >= 1);
  Alcotest.(check bool) "retried requests deduplicated" true
    (o.Nemesis.o_dupes_suppressed >= 1)

(* Determinism: the same seed must reproduce the same campaign. *)
let test_nemesis_deterministic () =
  let config =
    { Nemesis.default_config with seed = 2; active_ms = 1_500. }
  in
  let a = Nemesis.run ~config () in
  let b = Nemesis.run ~config () in
  Alcotest.(check bool) "same outcome" true (a = b)

let () =
  Alcotest.run "nemesis"
    [
      ( "verdicts",
        [
          Alcotest.test_case "torn tail recovers in place" `Quick
            test_torn_tail_recovers_in_place;
          Alcotest.test_case "interior corruption salvages" `Quick
            test_interior_corruption_salvages;
          Alcotest.test_case "head corruption goes amnesiac" `Quick
            test_head_corruption_goes_amnesiac;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "ongoing re-proposed after restart" `Quick
            test_ongoing_reproposed_after_restart;
          Alcotest.test_case "delayed-mode lost-ack window" `Quick
            test_delayed_mode_lost_ack_window;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "pinned seed 42 covers all verdicts" `Quick
            test_nemesis_campaign_seed42;
          Alcotest.test_case "seeded campaign is deterministic" `Quick
            test_nemesis_deterministic;
        ] );
    ]
