(* End-to-end client reliability (the failover session of
   lib/harness/client.ml): per-client FIFO and read-your-writes must
   survive a mid-stream crash of the session's target and its later
   rejoin, every request must execute exactly once across however many
   retries and failovers it takes, and the replicated dedup window —
   the state that pays for all of this — must stay bounded no matter
   how the campaign goes. *)

module Sim = Repro_sim
open Repro_storage
open Repro_db
open Repro_core
open Repro_harness

let nojitter = { Disk.default_forced with Disk.sync_jitter = 0. }
let quiet_disk = { nojitter with Disk.sync_latency = Sim.Time.of_ms 1. }

let value_t = Alcotest.testable Value.pp Value.equal

(* A client session streams writes 1..n to a private key, reading the
   key back (an ordered read, same request-id machinery) after every
   ack.  Mid-stream its contact replica crashes — the in-flight request
   must fail over, be deduplicated if the old target already executed
   it, and the stream must continue FIFO; the crashed replica later
   recovers and rejoins.  Client id 1 starts on replica index 0, so the
   crash provably hits the session's own target. *)
let test_failover_fifo_read_your_writes () =
  let total = 20 in
  let w = World.make ~disk_config:quiet_disk ~seed:11 ~n:5 () in
  let monitor = World.attach_monitor w in
  World.run w ~ms:1000.;
  let c =
    Client.create ~sim:(World.sim w) ~id:1
      ~replicas:(fun () -> World.replicas w)
      ()
  in
  let reads_seen = ref [] in
  let rec step i =
    if i <= total then
      Client.exec c
        (Action.Update [ Op.Set ("stream", Value.Int i); Op.Add ("cc1", 1) ])
        ~k:(fun _ ->
          (* Read-your-writes across failover: the ordered read that
             follows each ack must observe at least this write, on
             whichever replica the session reaches. *)
          Client.read c [ "stream" ] ~k:(fun kvs ->
              (match List.assoc_opt "stream" kvs with
              | Some (Some (Value.Int v)) ->
                reads_seen := v :: !reads_seen;
                if v < i then
                  Alcotest.failf "read-your-writes violated: wrote %d, read %d"
                    i v
              | _ -> Alcotest.failf "stream key missing after write %d" i);
              step (i + 1)))
  in
  step 1;
  (* Crash the session's target mid-stream, rejoin it later. *)
  let victim = World.replica w 0 in
  ignore
    (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 80.) (fun () ->
         Replica.crash victim));
  ignore
    (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 2000.) (fun () ->
         Replica.recover victim));
  World.run w ~ms:30_000.;
  World.heal_and_settle w;
  (* Each step is two requests: the write and the read-back. *)
  Alcotest.(check int) "every write and read acked" (2 * total)
    (Client.acked c);
  Alcotest.(check int) "nothing outstanding" 0 (Client.outstanding c);
  Alcotest.(check bool) "the crash forced at least one failover" true
    (Client.failovers c >= 1);
  (* FIFO: the interleaved reads observed a non-decreasing stream. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> b <= a && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "reads observed a FIFO stream" true
    (monotone !reads_seen);
  (* Exactly-once, replica-visible: the counter incremented once per
     acked WRITE on every replica, crashes and retries included (the
     interleaved reads must not move it, so the generic ledger — one
     increment per request — does not apply here). *)
  List.iter
    (fun r ->
      Alcotest.(check (option (option value_t)))
        (Printf.sprintf "write counter exact at n%d" (Replica.node r))
        (Some (Some (Value.Int total)))
        (List.assoc_opt "cc1" (Replica.weak_query r [ "cc1" ])))
    (World.replicas w);
  List.iter
    (fun r ->
      Alcotest.(check (option (option value_t)))
        (Printf.sprintf "final stream value at n%d" (Replica.node r))
        (Some (Some (Value.Int total)))
        (List.assoc_opt "stream" (Replica.weak_query r [ "stream" ])))
    (World.replicas w);
  Alcotest.(check (list string)) "all safety + convergence checks" []
    (List.map
       (fun v -> Format.asprintf "%a" Consistency.pp_violation v)
       (Consistency.check_all ~converged:true (World.replicas w)));
  Repro_check.Monitor.check_now monitor;
  Repro_check.Monitor.assert_ok monitor

(* Property: the per-client response cache that backs exactly-once
   never grows past the configured window, no matter how many clients,
   retries, failovers, crashes or recoveries a schedule packs in.  The
   bound is sampled DURING the campaign (not just at the end) — the
   window is replicated state, so an excursion would be a durable
   state-growth leak, exactly what the property exists to catch. *)
let test_dedup_cache_bounded () =
  let window = 3 in
  List.iter
    (fun seed ->
      let w =
        World.make ~disk_config:quiet_disk ~dedup_window:window ~seed ~n:5 ()
      in
      World.run w ~ms:1000.;
      let clients =
        List.init 4 (fun i ->
            Client.create
              ~config:
                {
                  Client.default_config with
                  request_timeout = Sim.Time.of_ms 120.;
                }
              ~sim:(World.sim w)
              ~id:(i + 1)
              ~replicas:(fun () -> World.replicas w)
              ())
      in
      List.iter
        (fun c ->
          let rec pump n =
            if n > 0 then
              Client.exec c
                (Action.Update [ Op.Add (Printf.sprintf "cc%d" (Client.id c), 1) ])
                ~k:(fun _ -> pump (n - 1))
          in
          pump 40)
        clients;
      (* Churn underneath the sessions: two targets crash and rejoin. *)
      ignore
        (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 150.)
           (fun () -> Replica.crash (World.replica w 0)));
      ignore
        (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 400.)
           (fun () -> Replica.crash (World.replica w 3)));
      ignore
        (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 1500.)
           (fun () -> Replica.recover (World.replica w 0)));
      ignore
        (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 1800.)
           (fun () -> Replica.recover (World.replica w 3)));
      for _slice = 1 to 100 do
        World.run w ~ms:100.;
        List.iter
          (fun r ->
            let cached = Replica.dedup_max_cached r in
            if cached > Replica.dedup_window r then
              Alcotest.failf
                "seed %d: n%d cached %d responses, window is %d (replicated \
                 state leak)"
                seed (Replica.node r) cached (Replica.dedup_window r))
          (World.replicas w)
      done;
      World.heal_and_settle w;
      List.iter (fun c -> Client.stop c) clients;
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d converged with checks clean" seed)
        []
        (List.map
           (fun v -> Format.asprintf "%a" Consistency.pp_violation v)
           (Consistency.check_all ~converged:true (World.replicas w))))
    [ 3; 9; 27 ]

(* The retried-applied path specifically: across the bounded-window
   campaigns above, at least one duplicate attempt must have been
   answered from the cache rather than re-executed — otherwise the
   suite never witnesses the response-replay branch at all.  Pinned
   seeds keep this deterministic. *)
let test_duplicate_answered_from_cache () =
  let w = World.make ~disk_config:quiet_disk ~seed:42 ~n:5 () in
  World.run w ~ms:1000.;
  let c =
    Client.create
      ~config:
        { Client.default_config with request_timeout = Sim.Time.of_ms 60. }
      ~sim:(World.sim w) ~id:1
      ~replicas:(fun () -> World.replicas w)
      ()
  in
  let rec pump n =
    if n > 0 then
      Client.exec c
        (Action.Update [ Op.Add ("cc1", 1) ])
        ~k:(fun _ -> pump (n - 1))
  in
  pump 30;
  (* Crash the target with requests in flight: the timed-out attempts
     are re-sent elsewhere while the total order may already carry the
     original — the duplicate must be answered, not re-applied. *)
  ignore
    (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 100.) (fun () ->
         Replica.crash (World.replica w 0)));
  ignore
    (Sim.Engine.schedule (World.sim w) ~delay:(Sim.Time.of_ms 2000.) (fun () ->
         Replica.recover (World.replica w 0)));
  World.run w ~ms:20_000.;
  World.heal_and_settle w;
  let dupes =
    List.fold_left
      (fun acc r -> acc + Replica.dupes_suppressed r)
      0 (World.replicas w)
  in
  Alcotest.(check bool) "a duplicate attempt was answered from the window"
    true (dupes >= 1);
  let ledgers =
    [
      {
        Consistency.l_client = 1;
        l_key = "cc1";
        l_issued = Client.issued c;
        l_acked = Client.acked c;
      };
    ]
  in
  Alcotest.(check (list string)) "exactly-once despite duplicates" []
    (List.map
       (fun v -> Format.asprintf "%a" Consistency.pp_violation v)
       (Consistency.check_exactly_once ~ledgers (World.replicas w)))

let () =
  Alcotest.run "client"
    [
      ( "failover-session",
        [
          Alcotest.test_case "FIFO + read-your-writes across crash/rejoin"
            `Quick test_failover_fifo_read_your_writes;
          Alcotest.test_case "duplicate answered from the dedup window" `Quick
            test_duplicate_answered_from_cache;
        ] );
      ( "dedup-window",
        [
          Alcotest.test_case "cache never exceeds the window" `Slow
            test_dedup_cache_bounded;
        ] );
    ]
