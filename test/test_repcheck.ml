(* The repcheck checker checked: every invariant of the catalogue must
   fire on a hand-built bad observation and stay silent on a good one;
   the online monitor must observe real scenarios without violations;
   and — the critical property of any checker — a deliberately broken
   engine must be caught. *)

module Sim = Repro_sim
open Repro_net
open Repro_gcs
open Repro_db
open Repro_core
open Repro_harness
module Check = Repro_check
module Snapshot = Repro_check.Snapshot

(* --- hand-built snapshots ------------------------------------------- *)

let id server index = { Action.Id.server; index }

let prim ?(index = 1) ?(attempt = 1) servers =
  {
    Types.prim_index = index;
    prim_attempt = attempt;
    prim_servers = Node_id.set_of_list servers;
  }

let snap ?(node = 0) ?(incarnation = 0) ?(state = Types.Reg_prim) ?(floor = 0)
    ?(greens = []) ?green_count ?(reds = []) ?(red_cut = []) ?(white = 0)
    ?(prim = prim [ 0; 1; 2 ]) ?(in_primary = true) () =
  let green_count =
    match green_count with Some c -> c | None -> floor + List.length greens
  in
  {
    Snapshot.ns_node = node;
    ns_incarnation = incarnation;
    ns_state = state;
    ns_green_floor = floor;
    ns_green_ids = greens;
    ns_green_count = green_count;
    ns_green_line =
      (match List.rev greens with [] -> None | last :: _ -> Some last);
    ns_red_ids = reds;
    ns_yellow = Types.invalid_yellow;
    ns_red_cut =
      List.fold_left
        (fun m (n, c) -> Node_id.Map.add n c m)
        Node_id.Map.empty red_cut;
    ns_white_line = white;
    ns_prim = prim;
    ns_vulnerable = Types.invalid_vulnerable;
    ns_in_primary = in_primary;
  }

let fired name vs =
  List.exists (fun v -> v.Snapshot.v_invariant = name) vs

let check_fires name vs =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" name)
    true (fired name vs)

let check_clean vs =
  Alcotest.(check int)
    (Format.asprintf "no violations, got: %a"
       (Format.pp_print_list Snapshot.pp_violation)
       vs)
    0 (List.length vs)

(* --- instantaneous invariants --------------------------------------- *)

let test_total_order () =
  let a = snap ~node:0 ~greens:[ id 0 1; id 1 1; id 0 2 ] () in
  let b = snap ~node:1 ~greens:[ id 0 1; id 1 1 ] () in
  check_clean (Snapshot.check_total_order [ a; b ]);
  let c = snap ~node:2 ~greens:[ id 0 1; id 2 1 ] () in
  check_fires "global-total-order" (Snapshot.check_total_order [ a; b; c ])

let test_total_order_floors () =
  (* A joiner with floor 2 holds positions 3..: its overlap with the
     full-history replica must still agree. *)
  let full = snap ~node:0 ~greens:[ id 0 1; id 1 1; id 0 2; id 1 2 ] () in
  let joiner = snap ~node:9 ~floor:2 ~greens:[ id 0 2; id 1 2 ] () in
  check_clean (Snapshot.check_total_order [ full; joiner ]);
  let bad_joiner = snap ~node:9 ~floor:2 ~greens:[ id 0 2; id 2 7 ] () in
  check_fires "global-total-order"
    (Snapshot.check_total_order [ full; bad_joiner ]);
  (* Disagreement below the longest replica's floor: only the two
     full-history replicas still see those positions. *)
  let ref_long =
    snap ~node:0 ~floor:2 ~greens:[ id 0 2; id 1 2; id 0 3 ] ()
  in
  let old_a = snap ~node:1 ~greens:[ id 0 1; id 1 1 ] ~green_count:2 () in
  let old_b = snap ~node:2 ~greens:[ id 5 5; id 1 1 ] ~green_count:2 () in
  check_fires "global-total-order"
    (Snapshot.check_total_order [ ref_long; old_a; old_b ])

let test_fifo () =
  let good = snap ~greens:[ id 0 1; id 1 1; id 0 2; id 1 2 ] () in
  check_clean (Snapshot.check_fifo [ good ]);
  let gap = snap ~greens:[ id 0 1; id 0 3 ] () in
  check_fires "global-fifo" (Snapshot.check_fifo [ gap ]);
  let reorder = snap ~greens:[ id 0 2; id 0 1 ] () in
  check_fires "global-fifo" (Snapshot.check_fifo [ reorder ])

let test_primary_exclusivity () =
  let a = snap ~node:0 ~prim:(prim [ 0; 1 ]) () in
  let b = snap ~node:1 ~prim:(prim [ 0; 1 ]) () in
  check_clean (Snapshot.check_primary_exclusivity [ a; b ]);
  (* Same index installed by two disjoint memberships: split brain. *)
  let c = snap ~node:2 ~prim:(prim ~attempt:2 [ 2; 3 ]) () in
  check_fires "primary-exclusivity"
    (Snapshot.check_primary_exclusivity [ a; b; c ]);
  (* A member operating in a primary it does not belong to. *)
  let outsider = snap ~node:7 ~prim:(prim [ 0; 1 ]) () in
  check_fires "primary-exclusivity"
    (Snapshot.check_primary_exclusivity [ outsider ])

let test_coherence () =
  let good = snap ~greens:[ id 0 1 ] ~white:1 () in
  check_clean (Snapshot.check_coherence [ good ]);
  let white_ahead = snap ~greens:[ id 0 1 ] ~white:5 () in
  check_fires "white-line" (Snapshot.check_coherence [ white_ahead ]);
  let bad_line =
    { (snap ~greens:[ id 0 1; id 0 2 ] ()) with
      Snapshot.ns_green_line = Some (id 0 1)
    }
  in
  check_fires "green-line" (Snapshot.check_coherence [ bad_line ])

(* --- step invariants ------------------------------------------------- *)

let test_step_monotonicity () =
  let prev = snap ~greens:[ id 0 1; id 1 1 ] ~white:1 ~red_cut:[ (0, 3) ] () in
  let cur =
    snap
      ~greens:[ id 0 1; id 1 1; id 0 2 ]
      ~white:2
      ~red_cut:[ (0, 4); (1, 1) ]
      ()
  in
  check_clean (Snapshot.check_step ~prev ~cur);
  (* Green regression. *)
  check_fires "green-monotone"
    (Snapshot.check_step ~prev ~cur:(snap ~greens:[ id 0 1 ] ()));
  (* A green position rewritten in place. *)
  check_fires "green-append-only"
    (Snapshot.check_step ~prev
       ~cur:(snap ~greens:[ id 0 1; id 5 5; id 0 2 ] ()));
  (* White regression. *)
  check_fires "white-monotone"
    (Snapshot.check_step ~prev ~cur:{ cur with Snapshot.ns_white_line = 0 });
  (* Red cut regression. *)
  check_fires "red-cut-monotone"
    (Snapshot.check_step ~prev
       ~cur:{ cur with Snapshot.ns_red_cut = Node_id.Map.singleton 0 1 });
  (* A crash (new incarnation) legitimately resets volatile state. *)
  check_clean
    (Snapshot.check_step ~prev
       ~cur:(snap ~incarnation:1 ~greens:[ id 0 1 ] ()));
  (* White GC: the floor rising past old positions is legitimate. *)
  check_clean
    (Snapshot.check_step ~prev
       ~cur:(snap ~floor:1 ~greens:[ id 1 1; id 0 2 ] ~white:1
               ~red_cut:[ (0, 3) ] ()))

(* --- the monitor over live scenarios --------------------------------- *)

let test_monitor_clean_run () =
  let w = World.make ~seed:21 ~n:5 () in
  let mon = World.attach_monitor w in
  World.run w ~ms:1000.;
  for i = 1 to 10 do
    World.submit_update w ~node:(i mod 5) ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:500.;
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  World.run w ~ms:1500.;
  Replica.crash (World.replica w 4);
  World.run w ~ms:1000.;
  Topology.merge_all (World.topology w);
  Replica.recover (World.replica w 4);
  World.run w ~ms:5000.;
  Check.Monitor.check_now mon;
  Alcotest.(check bool) "no violations" true (Check.Monitor.ok mon);
  Alcotest.(check bool) "monitor swept" true (Check.Monitor.observations mon > 0);
  let trace = Check.Monitor.trace mon in
  Alcotest.(check bool) "saw state transitions" true
    (Sim.Trace.count trace ~tag:"state" > 0);
  Alcotest.(check bool) "saw quorum decisions" true
    (Sim.Trace.count trace ~tag:"quorum" > 0);
  Alcotest.(check bool) "saw primary installs" true
    (Sim.Trace.count trace ~tag:"install" > 0)

(* The checker's reason to exist: feed two replicas conflicting forged
   actions — something a correct total-order layer can never do — and
   the monitor must notice the diverging green orders. *)
let test_monitor_catches_broken_engine () =
  let w = World.make ~seed:7 ~n:3 () in
  let mon = World.attach_monitor w in
  World.run w ~ms:1000.;
  Alcotest.(check bool) "cluster formed a primary" true
    (List.for_all Replica.in_primary (World.replicas w));
  let forged_conf = { Conf_id.coord = 0; counter = 999_999 } in
  let forge victim a =
    Engine.handle_event (Replica.engine victim)
      (Endpoint.Deliver
         {
           Endpoint.sender = a.Action.id.Action.Id.server;
           payload = Types.Action_msg a;
           conf = forged_conf;
           seq = 0;
           in_regular = true;
         })
  in
  (* Same green position, different actions, on two different replicas:
     a violation of Global Total Order by construction.  Each forgery
     carries the next FIFO index its victim expects of the creator, so
     it passes the engine's local sanity checks — exactly the kind of
     fault only a cross-replica checker can see. *)
  let forge_next victim ~creator v =
    let index = Engine.red_cut (Replica.engine victim) creator + 1 in
    forge victim
      (Action.make ~server:creator ~index
         (Action.Update [ Op.Set ("evil", Value.Int v) ]))
  in
  forge_next (World.replica w 1) ~creator:0 1;
  forge_next (World.replica w 2) ~creator:1 2;
  Check.Monitor.check_now mon;
  Alcotest.(check bool) "broken engine detected" false (Check.Monitor.ok mon);
  let names =
    List.map (fun v -> v.Snapshot.v_invariant) (Check.Monitor.violations mon)
  in
  Alcotest.(check bool) "caught by an order invariant" true
    (List.exists
       (fun n -> n = "global-total-order" || n = "global-fifo")
       names)

(* Violation reporting: a broken engine must produce full records — the
   violation, its timestamp, and a non-empty trace window around it —
   and the pretty-printed report must carry all of it. *)
let test_monitor_violation_report () =
  let w = World.make ~seed:11 ~n:3 () in
  let mon = World.attach_monitor w in
  World.run w ~ms:1000.;
  for i = 1 to 4 do
    World.submit_update w ~node:(i mod 3) ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:500.;
  (* Forge a green-order divergence (same construction as above: passes
     local FIFO checks, breaks the global order across replicas). *)
  let forge victim ~creator v =
    let index = Engine.red_cut (Replica.engine victim) creator + 1 in
    Engine.handle_event (Replica.engine victim)
      (Endpoint.Deliver
         {
           Endpoint.sender = creator;
           payload =
             Types.Action_msg
               (Action.make ~server:creator ~index
                  (Action.Update [ Op.Set ("evil", Value.Int v) ]));
           conf = { Conf_id.coord = 0; counter = 999_999 };
           seq = 0;
           in_regular = true;
         })
  in
  forge (World.replica w 1) ~creator:0 1;
  forge (World.replica w 2) ~creator:1 2;
  Check.Monitor.check_now mon;
  let records = Check.Monitor.records mon in
  Alcotest.(check bool) "at least one record" true (records <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "record has a trace window" true
        (r.Check.Monitor.r_window <> []))
    records;
  let report = Format.asprintf "%t" (Check.Monitor.report mon) in
  let contains needle =
    let nl = String.length needle and hl = String.length report in
    let rec scan i =
      i + nl <= hl && (String.sub report i nl = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "report counts violations" true
    (contains "violation(s)");
  Alcotest.(check bool) "report names the invariant" true
    (List.exists
       (fun r -> contains r.Check.Monitor.r_violation.Snapshot.v_invariant)
       records);
  Alcotest.(check bool) "report prints the trace window" true
    (contains "trace window")

(* --- determinism ------------------------------------------------------ *)

let scenario seed () =
  let w = World.make ~seed ~n:4 () in
  World.run w ~ms:800.;
  Topology.partition (World.topology w) [ [ 0; 1 ]; [ 2; 3 ] ];
  for i = 1 to 10 do
    World.submit_update w ~node:(i mod 4) ~key:(Printf.sprintf "k%d" i) i
  done;
  World.run w ~ms:1200.;
  World.heal_and_settle ~ms:4000. w;
  Check.Determinism.fingerprint ~sim:(World.sim w) (World.replicas w)

let test_determinism_same_seed () =
  let diff = Check.Determinism.check ~run:(scenario 42) () in
  Alcotest.(check (list string)) "two same-seed runs are identical" [] diff

(* A small seed matrix: determinism must hold across schedules, not for
   one lucky seed. *)
let test_determinism_seed_matrix () =
  List.iter
    (fun seed ->
      let diff = Check.Determinism.check ~run:(scenario seed) () in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d is deterministic" seed)
        [] diff)
    [ 7; 13; 99 ]

(* Submission batching must change only the framing and timing of the
   hot path, never the replicated state.  A single submitting node
   keeps the green order config-independent, so after quiescence the
   protocol-state fingerprint (no clock line: virtual time legitimately
   differs across configs) must be identical between a batched and an
   unbatched run — and each batched run must itself stay deterministic. *)
let batch_scenario ~submit_delay seed () =
  let w = World.make ?submit_delay ~seed ~n:3 () in
  World.run w ~ms:800.;
  for i = 1 to 25 do
    World.submit_update w ~node:0 ~key:(Printf.sprintf "k%d" (i mod 5)) i
  done;
  World.run w ~ms:3000.;
  Check.Determinism.fingerprint (World.replicas w)

let batching_seeds = [ 5; 21; 42 ]

let test_determinism_batched_runs () =
  List.iter
    (fun seed ->
      let run =
        batch_scenario
          ~submit_delay:(Some (Repro_sim.Time.of_us 250))
          seed
      in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: batched run is deterministic" seed)
        []
        (Check.Determinism.check ~run ()))
    batching_seeds

let test_determinism_batched_matches_unbatched () =
  List.iter
    (fun seed ->
      let unbatched = batch_scenario ~submit_delay:None seed () in
      let batched =
        batch_scenario ~submit_delay:(Some (Repro_sim.Time.of_us 250)) seed ()
      in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: batched state == unbatched state" seed)
        []
        (Check.Determinism.diff unbatched batched))
    batching_seeds

let test_determinism_diff_detects () =
  Alcotest.(check int) "one differing line" 1
    (List.length (Check.Determinism.diff [ "a"; "b" ] [ "a"; "c" ]));
  Alcotest.(check int) "missing tail line" 1
    (List.length (Check.Determinism.diff [ "a"; "b" ] [ "a" ]));
  Alcotest.(check (list string)) "equal lists" []
    (Check.Determinism.diff [ "a"; "b" ] [ "a"; "b" ])

let () =
  Alcotest.run "repcheck"
    [
      ( "snapshot-invariants",
        [
          Alcotest.test_case "global total order" `Quick test_total_order;
          Alcotest.test_case "total order across floors" `Quick
            test_total_order_floors;
          Alcotest.test_case "global fifo" `Quick test_fifo;
          Alcotest.test_case "primary exclusivity" `Quick
            test_primary_exclusivity;
          Alcotest.test_case "snapshot coherence" `Quick test_coherence;
          Alcotest.test_case "color monotonicity steps" `Quick
            test_step_monotonicity;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "clean scenario, zero violations" `Slow
            test_monitor_clean_run;
          Alcotest.test_case "broken engine is caught" `Quick
            test_monitor_catches_broken_engine;
          Alcotest.test_case "violation report carries trace window" `Quick
            test_monitor_violation_report;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical runs" `Slow
            test_determinism_same_seed;
          Alcotest.test_case "seed matrix is deterministic" `Slow
            test_determinism_seed_matrix;
          Alcotest.test_case "diff detects divergence" `Quick
            test_determinism_diff_detects;
          Alcotest.test_case "batched runs are deterministic" `Slow
            test_determinism_batched_runs;
          Alcotest.test_case "batched converges to unbatched state" `Slow
            test_determinism_batched_matches_unbatched;
        ] );
    ]
